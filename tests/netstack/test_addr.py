"""IPv4 address and prefix arithmetic."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.netstack.addr import Prefix, format_ip, parse_ip


class TestParseFormat:
    def test_basic(self):
        assert parse_ip("1.2.3.4") == 0x01020304
        assert format_ip(0x01020304) == "1.2.3.4"
        assert parse_ip("255.255.255.255") == 0xFFFFFFFF
        assert parse_ip("0.0.0.0") == 0

    def test_invalid(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "-1.0.0.0"):
            with pytest.raises(ValueError):
                parse_ip(bad)

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(1 << 32)
        with pytest.raises(ValueError):
            format_ip(-1)


class TestPrefix:
    def test_parse_and_str(self):
        prefix = Prefix.parse("44.0.0.0/9")
        assert str(prefix) == "44.0.0.0/9"
        assert prefix.size == 1 << 23

    def test_containment(self):
        prefix = Prefix.parse("157.240.1.0/24")
        assert parse_ip("157.240.1.77") in prefix
        assert parse_ip("157.240.2.1") not in prefix

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(parse_ip("1.2.3.4"), 24)

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_missing_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("1.2.3.0")

    def test_first_last(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert format_ip(prefix.first) == "10.0.0.0"
        assert format_ip(prefix.last) == "10.0.0.3"

    def test_host_indexing(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert format_ip(prefix.host(1)) == "10.0.0.1"
        with pytest.raises(ValueError):
            prefix.host(256)

    def test_random_host_inside(self):
        prefix = Prefix.parse("44.0.0.0/9")
        rng = random.Random(7)
        for _ in range(50):
            assert prefix.random_host(rng) in prefix

    def test_subnets(self):
        subnets = Prefix.parse("10.0.0.0/22").subnets(24)
        assert [str(s) for s in subnets] == [
            "10.0.0.0/24",
            "10.0.1.0/24",
            "10.0.2.0/24",
            "10.0.3.0/24",
        ]

    def test_subnets_invalid(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/24").subnets(16)

    def test_zero_prefix_contains_everything(self):
        everything = Prefix(0, 0)
        assert parse_ip("8.8.8.8") in everything


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_parse_format_roundtrip(value):
    assert parse_ip(format_ip(value)) == value


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
def test_prefix_contains_its_hosts(address, length):
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    prefix = Prefix(address & mask, length)
    assert prefix.first in prefix
    assert prefix.last in prefix
    assert (prefix.last - prefix.first + 1) == prefix.size
