"""IPv4/UDP codecs, checksums, and IP-in-IP encapsulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netstack.addr import parse_ip
from repro.netstack.checksum import internet_checksum, verify_checksum
from repro.netstack.encap import EncapError, decapsulate, encapsulate
from repro.netstack.ip import (
    IPv4Header,
    IpParseError,
    PROTO_UDP,
    decode_ipv4,
    encode_ipv4,
)
from repro.netstack.udp import UdpDatagram, UdpParseError, decode_udp, encode_udp


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_verify(self):
        data = bytes.fromhex("0001f203f4f5f6f7") + (0x220D).to_bytes(2, "big")
        assert verify_checksum(data)

    def test_odd_length(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_large_buffer_numpy_path(self):
        data = bytes(range(256)) * 8
        small_sum = internet_checksum(data[:50])
        assert 0 <= small_sum <= 0xFFFF
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header(
            src=parse_ip("1.2.3.4"), dst=parse_ip("5.6.7.8"), ttl=17
        )
        packet = encode_ipv4(header, b"payload")
        decoded, payload = decode_ipv4(packet)
        assert payload == b"payload"
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert decoded.ttl == 17
        assert decoded.total_length == 27

    def test_header_checksum_valid(self):
        packet = encode_ipv4(IPv4Header(src=1, dst=2), b"x")
        assert verify_checksum(packet[:20])

    def test_rejects_short(self):
        with pytest.raises(IpParseError):
            decode_ipv4(b"\x45\x00")

    def test_rejects_wrong_version(self):
        packet = bytearray(encode_ipv4(IPv4Header(src=1, dst=2), b""))
        packet[0] = 0x65
        with pytest.raises(IpParseError):
            decode_ipv4(bytes(packet))

    def test_rejects_oversized(self):
        with pytest.raises(IpParseError):
            encode_ipv4(IPv4Header(src=1, dst=2), b"\x00" * 65530)

    def test_rejects_bad_total_length(self):
        packet = bytearray(encode_ipv4(IPv4Header(src=1, dst=2), b"abc"))
        packet[2:4] = (100).to_bytes(2, "big")  # longer than the buffer
        with pytest.raises(IpParseError):
            decode_ipv4(bytes(packet))


class TestUdp:
    def datagram(self, payload=b"quic bytes"):
        return UdpDatagram(
            src_ip=parse_ip("10.0.0.1"),
            dst_ip=parse_ip("10.0.0.2"),
            src_port=5555,
            dst_port=443,
            payload=payload,
        )

    def test_roundtrip(self):
        assert decode_udp(encode_udp(self.datagram())) == self.datagram()

    def test_pseudo_header_checksum_nonzero(self):
        packet = encode_udp(self.datagram())
        checksum = int.from_bytes(packet[26:28], "big")
        assert checksum != 0

    def test_reply_swaps_endpoints(self):
        reply = self.datagram().reply(b"resp")
        assert reply.src_ip == parse_ip("10.0.0.2")
        assert reply.dst_port == 5555
        assert reply.payload == b"resp"

    def test_flow_tuple(self):
        flow = self.datagram().flow
        assert flow == (parse_ip("10.0.0.1"), 5555, parse_ip("10.0.0.2"), 443, 17)

    def test_rejects_non_udp(self):
        packet = encode_ipv4(
            IPv4Header(src=1, dst=2, protocol=6), b"\x00" * 20
        )
        with pytest.raises(UdpParseError):
            decode_udp(packet)

    def test_rejects_truncated_udp(self):
        packet = encode_ipv4(IPv4Header(src=1, dst=2, protocol=PROTO_UDP), b"\x00" * 4)
        with pytest.raises(UdpParseError):
            decode_udp(packet)

    def test_rejects_bad_udp_length(self):
        raw = bytearray(encode_udp(self.datagram()))
        raw[24:26] = (4).to_bytes(2, "big")  # UDP length below header size
        with pytest.raises(UdpParseError):
            decode_udp(bytes(raw))


class TestEncap:
    def test_roundtrip(self):
        inner = UdpDatagram(
            src_ip=parse_ip("198.51.100.1"),
            dst_ip=parse_ip("157.240.1.10"),
            src_port=40000,
            dst_port=443,
            payload=b"initial",
        )
        tunneled = encapsulate(inner, parse_ip("10.1.0.1"), parse_ip("10.1.0.99"))
        src, dst, decoded = decapsulate(tunneled)
        assert src == parse_ip("10.1.0.1")
        assert dst == parse_ip("10.1.0.99")
        assert decoded == inner

    def test_rejects_plain_packet(self):
        inner = UdpDatagram(src_ip=1, dst_ip=2, src_port=3, dst_port=4, payload=b"")
        with pytest.raises(EncapError):
            decapsulate(encode_udp(inner))


@settings(max_examples=50, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst=st.integers(min_value=0, max_value=(1 << 32) - 1),
    sport=st.integers(min_value=0, max_value=65535),
    dport=st.integers(min_value=0, max_value=65535),
    payload=st.binary(min_size=0, max_size=1500),
)
def test_udp_roundtrip_property(src, dst, sport, dport, payload):
    datagram = UdpDatagram(
        src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport, payload=payload
    )
    packet = encode_udp(datagram)
    assert decode_udp(packet) == datagram
    # Both checksums hold.
    assert verify_checksum(packet[:20])
