"""Flow-template encapsulation parity and the columnar capture buffer."""

import io
import random

import pytest

from repro import hotpath
from repro.netstack.capbuf import CaptureBuffer
from repro.netstack.pcap import PcapRecord, PcapWriter, read_pcap
from repro.netstack.udp import (
    FlowTemplate,
    UdpDatagram,
    _encode_udp_rebuild,
    encode_udp,
    encode_udp_into,
)


@pytest.fixture(autouse=True)
def _hotpath_on():
    hotpath.set_enabled(True)
    yield
    hotpath.set_enabled(True)


def _datagram(payload, ttl=64, src_port=4242):
    return UdpDatagram(
        src_ip=0x0A000001,
        dst_ip=0xC0A80102,
        src_port=src_port,
        dst_port=443,
        payload=payload,
        ttl=ttl,
    )


class TestFlowTemplateParity:
    @pytest.mark.parametrize("size", (0, 1, 2, 63, 64, 65, 1199, 1200, 1472))
    def test_encode_matches_rebuild(self, size):
        """Odd and even payload lengths exercise checksum padding."""
        rng = random.Random(size)
        payload = rng.getrandbits(8 * size).to_bytes(size, "big") if size else b""
        datagram = _datagram(payload)
        assert encode_udp(datagram) == _encode_udp_rebuild(datagram)

    def test_random_flows_match_rebuild(self):
        rng = random.Random(42)
        for _ in range(200):
            datagram = UdpDatagram(
                src_ip=rng.getrandbits(32),
                dst_ip=rng.getrandbits(32),
                src_port=rng.randrange(1024, 65536),
                dst_port=rng.choice([443, 80, rng.randrange(1, 65536)]),
                payload=rng.randbytes(rng.randrange(0, 300)),
                ttl=rng.choice([1, 32, 64, 128, 255]),
            )
            assert encode_udp(datagram) == _encode_udp_rebuild(datagram)

    def test_disabled_hotpath_uses_rebuild(self):
        datagram = _datagram(b"hello")
        with hotpath.disabled():
            assert encode_udp(datagram) == _encode_udp_rebuild(datagram)

    def test_encode_into_appends_identical_bytes(self):
        out = bytearray(b"prefix")
        datagram = _datagram(b"payload-bytes")
        encode_udp_into(out, datagram)
        assert bytes(out) == b"prefix" + encode_udp(datagram)

    def test_template_rejects_oversized_payload(self):
        template = FlowTemplate(1, 2, 3, 4, 64)
        with pytest.raises(Exception):
            template.encode(b"\x00" * 70000)

    def test_zero_udp_checksum_becomes_ffff(self):
        """RFC 768: a computed zero checksum is transmitted as 0xFFFF."""
        # Brute-force a payload whose checksum folds to zero.
        for filler in range(65536):
            datagram = _datagram(filler.to_bytes(2, "big"))
            encoded = _encode_udp_rebuild(datagram)
            if encoded[26:28] == b"\xff\xff":
                assert encode_udp(datagram) == encoded
                return
        pytest.skip("no zero-checksum payload found for this flow")


class TestCaptureBuffer:
    def test_append_and_materialize(self):
        buffer = CaptureBuffer()
        buffer.append(1.5, b"aaa")
        buffer.append(2.25, b"bbbb")
        assert len(buffer) == 2
        assert buffer.record(0) == PcapRecord(timestamp=1.5, data=b"aaa")
        assert buffer.record(-1) == PcapRecord(timestamp=2.25, data=b"bbbb")
        with pytest.raises(IndexError):
            buffer.record(2)

    def test_commit_after_in_place_encode(self):
        buffer = CaptureBuffer()
        start = len(buffer.data)
        encode_udp_into(buffer.data, _datagram(b"direct"))
        buffer.commit(3.0, start)
        assert buffer.record(0).data == encode_udp(_datagram(b"direct"))
        assert buffer.record(0).timestamp == 3.0

    def test_records_view_sequence_protocol(self):
        buffer = CaptureBuffer()
        for i in range(5):
            buffer.append(float(i), bytes([i]) * (i + 1))
        records = buffer.records
        assert len(records) == 5
        assert records[1].data == b"\x01\x01"
        assert [r.timestamp for r in records] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert [r.data for r in records[1:3]] == [b"\x01\x01", b"\x02\x02\x02"]
        records.append(PcapRecord(timestamp=9.0, data=b"late"))
        assert len(buffer) == 6
        assert buffer.record(5).data == b"late"

    def test_sorted_records_orders_by_time(self):
        buffer = CaptureBuffer()
        buffer.append(2.0, b"second")
        buffer.append(1.0, b"first")
        assert [r.data for r in buffer.sorted_records()] == [b"first", b"second"]

    def test_write_to_matches_record_writer(self):
        buffer = CaptureBuffer()
        rng = random.Random(3)
        for i in range(20):
            buffer.append(i * 0.125, rng.randbytes(rng.randrange(1, 100)))

        columnar = io.BytesIO()
        buffer.write_to(PcapWriter(columnar))

        reference = io.BytesIO()
        PcapWriter(reference).write_all(iter(buffer))

        assert columnar.getvalue() == reference.getvalue()

    def test_write_to_roundtrips_through_reader(self, tmp_path):
        buffer = CaptureBuffer()
        buffer.append(1.000001, b"\x01\x02\x03")
        buffer.append(2.5, b"\x04")
        path = tmp_path / "capbuf.pcap"
        with open(path, "wb") as fh:
            buffer.write_to(PcapWriter(fh))
        records = read_pcap(str(path))
        assert [r.data for r in records] == [b"\x01\x02\x03", b"\x04"]
        assert records[0].ts_usec == 1
