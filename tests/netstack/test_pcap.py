"""Classic pcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.netstack.pcap import (
    GLOBAL_HEADER_SIZE,
    LINKTYPE_RAW,
    PcapError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    iter_pcap_range,
    merge_pcap_files,
    read_pcap,
    record_sort_key,
    scan_pcap_offsets,
    scan_pcap_tail,
    write_pcap,
)


def roundtrip(records):
    buf = io.BytesIO()
    PcapWriter(buf).write_all(records)
    buf.seek(0)
    return list(PcapReader(buf))


class TestRoundtrip:
    def test_empty_file(self):
        assert roundtrip([]) == []

    def test_records_preserved(self):
        records = [
            PcapRecord(timestamp=1.5, data=b"\x45" + b"\x00" * 19),
            PcapRecord(timestamp=2.000001, data=b"hello"),
        ]
        decoded = roundtrip(records)
        assert [r.data for r in decoded] == [r.data for r in records]
        assert decoded[0].ts_sec == 1 and decoded[0].ts_usec == 500000
        assert decoded[1].ts_usec == 1

    def test_linktype_header(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        buf.seek(0)
        reader = PcapReader(buf)
        assert reader.linktype == LINKTYPE_RAW

    def test_snaplen_truncation(self):
        buf = io.BytesIO()
        PcapWriter(buf, snaplen=4).write(PcapRecord(0.0, b"longpayload"))
        buf.seek(0)
        record = list(PcapReader(buf))[0]
        assert record.data == b"long"

    def test_file_helpers(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        write_pcap(path, [PcapRecord(3.25, b"abc")])
        records = read_pcap(path)
        assert records[0].data == b"abc"
        assert abs(records[0].timestamp - 3.25) < 1e-6


class TestBigEndianFiles:
    def test_swapped_magic(self):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack(">IIII", 1, 250, 3, 3) + b"abc"
        reader = PcapReader(io.BytesIO(header + record))
        records = list(reader)
        assert records[0].data == b"abc"


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.0, b"abcd"))
        data = buf.getvalue()[:-10]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(data)))

    def test_truncated_record_body(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.0, b"abcd"))
        data = buf.getvalue()[:-2]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(data)))


class TestScanTail:
    """The tolerant twin of scan_pcap_offsets for live captures."""

    def write(self, tmp_path, records):
        path = str(tmp_path / "live.pcap")
        write_pcap(path, records)
        return path

    def records(self, count=4):
        return [PcapRecord(float(i), bytes([i]) * (i + 3)) for i in range(count)]

    def test_complete_file_matches_strict_scan(self, tmp_path):
        path = self.write(tmp_path, self.records())
        offsets, end = scan_pcap_tail(path)
        assert offsets == scan_pcap_offsets(path)
        import os

        assert end == os.path.getsize(path)

    def test_torn_record_header_stops_before_it(self, tmp_path):
        path = self.write(tmp_path, self.records())
        complete = scan_pcap_offsets(path)
        with open(path, "ab") as fileobj:
            fileobj.write(b"\x01\x02\x03")  # 3 of 16 header bytes
        offsets, end = scan_pcap_tail(path)
        assert offsets == complete
        # a reader bounded by ``end`` never sees the torn bytes
        tail = list(iter_pcap_range(path, offsets[-1], 1))
        assert tail[0].data == self.records()[-1].data

    def test_torn_record_body_stops_before_it(self, tmp_path):
        records = self.records()
        path = self.write(tmp_path, records)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-2])  # last body short by 2 bytes
        offsets, _end = scan_pcap_tail(path)
        assert len(offsets) == len(records) - 1

    def test_resume_from_previous_end(self, tmp_path):
        records = self.records(6)
        path = self.write(tmp_path, records[:3])
        first, end = scan_pcap_tail(path)
        assert len(first) == 3
        with open(path, "ab") as fileobj:
            buf = io.BytesIO()
            writer = PcapWriter(buf)
            for record in records[3:]:
                writer.write(record)
            fileobj.write(buf.getvalue()[GLOBAL_HEADER_SIZE:])
        tail, new_end = scan_pcap_tail(path, start=end)
        assert len(tail) == 3
        assert tail[0] == end
        assert new_end > end

    def test_incomplete_global_header_waits(self, tmp_path):
        path = str(tmp_path / "starting.pcap")
        open(path, "wb").write(b"\xd4\xc3")
        offsets, end = scan_pcap_tail(path)
        assert offsets == [] and end == GLOBAL_HEADER_SIZE

    def test_bad_magic_still_raises(self, tmp_path):
        path = str(tmp_path / "bad.pcap")
        open(path, "wb").write(b"\x00" * 48)
        with pytest.raises(PcapError):
            scan_pcap_tail(path)


class TestMerge:
    def write(self, tmp_path, name, records):
        path = str(tmp_path / name)
        write_pcap(path, sorted(records, key=record_sort_key))
        return path

    def test_kway_merge_is_time_ordered(self, tmp_path):
        a = self.write(tmp_path, "a.pcap", [PcapRecord(1.0, b"a"), PcapRecord(3.0, b"c")])
        b = self.write(tmp_path, "b.pcap", [PcapRecord(2.0, b"b"), PcapRecord(4.0, b"d")])
        out = str(tmp_path / "merged.pcap")
        assert merge_pcap_files([a, b], out) == 4
        assert [r.data for r in read_pcap(out)] == [b"a", b"b", b"c", b"d"]

    def test_merge_is_partition_independent(self, tmp_path):
        records = [PcapRecord(t / 7.0, b"p%d" % t) for t in range(30)]
        whole = self.write(tmp_path, "whole.pcap", records)
        evens = self.write(tmp_path, "e.pcap", records[::2])
        odds = self.write(tmp_path, "o.pcap", records[1::2])
        out = str(tmp_path / "m.pcap")
        merge_pcap_files([evens, odds], out)
        with open(whole, "rb") as a, open(out, "rb") as b:
            assert a.read() == b.read()

    def test_same_timestamp_ties_break_on_data(self, tmp_path):
        a = self.write(tmp_path, "a.pcap", [PcapRecord(5.0, b"zz")])
        b = self.write(tmp_path, "b.pcap", [PcapRecord(5.0, b"aa")])
        out = str(tmp_path / "m.pcap")
        merge_pcap_files([a, b], out)
        reversed_out = str(tmp_path / "m2.pcap")
        merge_pcap_files([b, a], reversed_out)
        assert [r.data for r in read_pcap(out)] == [b"aa", b"zz"]
        with open(out, "rb") as x, open(reversed_out, "rb") as y:
            assert x.read() == y.read()

    def test_sort_key_uses_quantized_timestamps(self):
        # Sub-microsecond differences vanish on the wire; the canonical
        # key must agree before and after a pcap round-trip.
        near = PcapRecord(1.0000004, b"x")
        assert record_sort_key(near) == (1, 0, b"x")

    def test_merge_empty_inputs(self, tmp_path):
        a = self.write(tmp_path, "a.pcap", [])
        out = str(tmp_path / "m.pcap")
        assert merge_pcap_files([a], out) == 0
        assert read_pcap(out) == []


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=2**31, allow_nan=False),
            st.binary(min_size=0, max_size=200),
        ),
        max_size=10,
    )
)
def test_roundtrip_property(items):
    records = [PcapRecord(timestamp=t, data=d) for t, d in items]
    decoded = roundtrip(records)
    assert [r.data for r in decoded] == [r.data for r in records]
    for original, copy in zip(records, decoded):
        assert abs(original.timestamp - copy.timestamp) < 1e-5
