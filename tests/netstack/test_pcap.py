"""Classic pcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.netstack.pcap import (
    LINKTYPE_RAW,
    PcapError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def roundtrip(records):
    buf = io.BytesIO()
    PcapWriter(buf).write_all(records)
    buf.seek(0)
    return list(PcapReader(buf))


class TestRoundtrip:
    def test_empty_file(self):
        assert roundtrip([]) == []

    def test_records_preserved(self):
        records = [
            PcapRecord(timestamp=1.5, data=b"\x45" + b"\x00" * 19),
            PcapRecord(timestamp=2.000001, data=b"hello"),
        ]
        decoded = roundtrip(records)
        assert [r.data for r in decoded] == [r.data for r in records]
        assert decoded[0].ts_sec == 1 and decoded[0].ts_usec == 500000
        assert decoded[1].ts_usec == 1

    def test_linktype_header(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        buf.seek(0)
        reader = PcapReader(buf)
        assert reader.linktype == LINKTYPE_RAW

    def test_snaplen_truncation(self):
        buf = io.BytesIO()
        PcapWriter(buf, snaplen=4).write(PcapRecord(0.0, b"longpayload"))
        buf.seek(0)
        record = list(PcapReader(buf))[0]
        assert record.data == b"long"

    def test_file_helpers(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        write_pcap(path, [PcapRecord(3.25, b"abc")])
        records = read_pcap(path)
        assert records[0].data == b"abc"
        assert abs(records[0].timestamp - 3.25) < 1e-6


class TestBigEndianFiles:
    def test_swapped_magic(self):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack(">IIII", 1, 250, 3, 3) + b"abc"
        reader = PcapReader(io.BytesIO(header + record))
        records = list(reader)
        assert records[0].data == b"abc"


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.0, b"abcd"))
        data = buf.getvalue()[:-10]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(data)))

    def test_truncated_record_body(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.0, b"abcd"))
        data = buf.getvalue()[:-2]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(data)))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=2**31, allow_nan=False),
            st.binary(min_size=0, max_size=200),
        ),
        max_size=10,
    )
)
def test_roundtrip_property(items):
    records = [PcapRecord(timestamp=t, data=d) for t, d in items]
    decoded = roundtrip(records)
    assert [r.data for r in decoded] == [r.data for r in records]
    for original, copy in zip(records, decoded):
        assert abs(original.timestamp - copy.timestamp) < 1e-5
