"""Classic pcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.netstack.pcap import (
    LINKTYPE_RAW,
    PcapError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    merge_pcap_files,
    read_pcap,
    record_sort_key,
    write_pcap,
)


def roundtrip(records):
    buf = io.BytesIO()
    PcapWriter(buf).write_all(records)
    buf.seek(0)
    return list(PcapReader(buf))


class TestRoundtrip:
    def test_empty_file(self):
        assert roundtrip([]) == []

    def test_records_preserved(self):
        records = [
            PcapRecord(timestamp=1.5, data=b"\x45" + b"\x00" * 19),
            PcapRecord(timestamp=2.000001, data=b"hello"),
        ]
        decoded = roundtrip(records)
        assert [r.data for r in decoded] == [r.data for r in records]
        assert decoded[0].ts_sec == 1 and decoded[0].ts_usec == 500000
        assert decoded[1].ts_usec == 1

    def test_linktype_header(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        buf.seek(0)
        reader = PcapReader(buf)
        assert reader.linktype == LINKTYPE_RAW

    def test_snaplen_truncation(self):
        buf = io.BytesIO()
        PcapWriter(buf, snaplen=4).write(PcapRecord(0.0, b"longpayload"))
        buf.seek(0)
        record = list(PcapReader(buf))[0]
        assert record.data == b"long"

    def test_file_helpers(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        write_pcap(path, [PcapRecord(3.25, b"abc")])
        records = read_pcap(path)
        assert records[0].data == b"abc"
        assert abs(records[0].timestamp - 3.25) < 1e-6


class TestBigEndianFiles:
    def test_swapped_magic(self):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack(">IIII", 1, 250, 3, 3) + b"abc"
        reader = PcapReader(io.BytesIO(header + record))
        records = list(reader)
        assert records[0].data == b"abc"


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.0, b"abcd"))
        data = buf.getvalue()[:-10]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(data)))

    def test_truncated_record_body(self):
        buf = io.BytesIO()
        PcapWriter(buf).write(PcapRecord(0.0, b"abcd"))
        data = buf.getvalue()[:-2]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(data)))


class TestMerge:
    def write(self, tmp_path, name, records):
        path = str(tmp_path / name)
        write_pcap(path, sorted(records, key=record_sort_key))
        return path

    def test_kway_merge_is_time_ordered(self, tmp_path):
        a = self.write(tmp_path, "a.pcap", [PcapRecord(1.0, b"a"), PcapRecord(3.0, b"c")])
        b = self.write(tmp_path, "b.pcap", [PcapRecord(2.0, b"b"), PcapRecord(4.0, b"d")])
        out = str(tmp_path / "merged.pcap")
        assert merge_pcap_files([a, b], out) == 4
        assert [r.data for r in read_pcap(out)] == [b"a", b"b", b"c", b"d"]

    def test_merge_is_partition_independent(self, tmp_path):
        records = [PcapRecord(t / 7.0, b"p%d" % t) for t in range(30)]
        whole = self.write(tmp_path, "whole.pcap", records)
        evens = self.write(tmp_path, "e.pcap", records[::2])
        odds = self.write(tmp_path, "o.pcap", records[1::2])
        out = str(tmp_path / "m.pcap")
        merge_pcap_files([evens, odds], out)
        with open(whole, "rb") as a, open(out, "rb") as b:
            assert a.read() == b.read()

    def test_same_timestamp_ties_break_on_data(self, tmp_path):
        a = self.write(tmp_path, "a.pcap", [PcapRecord(5.0, b"zz")])
        b = self.write(tmp_path, "b.pcap", [PcapRecord(5.0, b"aa")])
        out = str(tmp_path / "m.pcap")
        merge_pcap_files([a, b], out)
        reversed_out = str(tmp_path / "m2.pcap")
        merge_pcap_files([b, a], reversed_out)
        assert [r.data for r in read_pcap(out)] == [b"aa", b"zz"]
        with open(out, "rb") as x, open(reversed_out, "rb") as y:
            assert x.read() == y.read()

    def test_sort_key_uses_quantized_timestamps(self):
        # Sub-microsecond differences vanish on the wire; the canonical
        # key must agree before and after a pcap round-trip.
        near = PcapRecord(1.0000004, b"x")
        assert record_sort_key(near) == (1, 0, b"x")

    def test_merge_empty_inputs(self, tmp_path):
        a = self.write(tmp_path, "a.pcap", [])
        out = str(tmp_path / "m.pcap")
        assert merge_pcap_files([a], out) == 0
        assert read_pcap(out) == []


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=2**31, allow_nan=False),
            st.binary(min_size=0, max_size=200),
        ),
        max_size=10,
    )
)
def test_roundtrip_property(items):
    records = [PcapRecord(timestamp=t, data=d) for t, d in items]
    decoded = roundtrip(records)
    assert [r.data for r in decoded] == [r.data for r in records]
    for original, copy in zip(records, decoded):
        assert abs(original.timestamp - copy.timestamp) < 1e-5
