"""Traffic generators: clients, attackers, scanners, scenario wiring."""

import random

import pytest

from repro.netstack.addr import Prefix, parse_ip
from repro.quic.packet import PacketType, decode_datagram, parse_long_header
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device, Network, PathModel
from repro.workloads.attackers import AttackPlan, SpoofingAttacker
from repro.workloads.clients import ClientConnection
from repro.workloads.scanners import NoiseSource, ResearchScanner, UnknownScanner
from repro.workloads.scenario import ScenarioConfig, april_2021_config, build_scenario


class Recorder(Device):
    def __init__(self, name, prefix):
        super().__init__(name)
        self._prefix = Prefix.parse(prefix)
        self.received = []

    def prefixes(self):
        return [self._prefix]

    def handle_datagram(self, datagram, now):
        self.received.append(datagram)


class TestClientConnection:
    def test_initial_padded_to_1200(self):
        connection = ClientConnection(
            rng=random.Random(1),
            src_ip=parse_ip("1.1.1.1"),
            src_port=4000,
            dst_ip=parse_ip("2.2.2.2"),
        )
        datagram = connection.initial_datagram()
        assert len(datagram.payload) == 1200
        parsed = parse_long_header(datagram.payload)
        assert parsed.packet_type is PacketType.INITIAL
        assert parsed.dcid == connection.dcid

    def test_version_negotiation_recorded(self):
        connection = ClientConnection(
            rng=random.Random(1),
            src_ip=parse_ip("1.1.1.1"),
            src_port=4000,
            dst_ip=parse_ip("2.2.2.2"),
        )
        from repro.quic.packet import VersionNegotiationPacket, encode_version_negotiation
        from repro.netstack.udp import UdpDatagram

        vn = encode_version_negotiation(
            VersionNegotiationPacket(
                dcid=connection.scid, scid=connection.dcid, supported_versions=(1, 0xFF00001D)
            )
        )
        reply = connection.on_datagram(
            UdpDatagram(
                src_ip=parse_ip("2.2.2.2"),
                dst_ip=parse_ip("1.1.1.1"),
                src_port=443,
                dst_port=4000,
                payload=vn,
            )
        )
        assert reply is None
        assert connection.result.version_negotiation == (1, 0xFF00001D)
        assert not connection.result.completed

    def test_ignores_unrelated_datagram(self):
        connection = ClientConnection(
            rng=random.Random(1),
            src_ip=parse_ip("1.1.1.1"),
            src_port=4000,
            dst_ip=parse_ip("2.2.2.2"),
        )
        from repro.netstack.udp import UdpDatagram

        assert (
            connection.on_datagram(
                UdpDatagram(
                    src_ip=parse_ip("2.2.2.2"),
                    dst_ip=parse_ip("1.1.1.1"),
                    src_port=443,
                    dst_port=4000,
                    payload=b"garbage",
                )
            )
            is None
        )


class TestAttacker:
    def make(self, bias=1.0):
        loop = EventLoop()
        net = Network(loop, random.Random(5), PathModel(jitter=0.0))
        telescope = Recorder("telescope", "44.0.0.0/9")
        victim = Recorder("victim", "157.240.1.0/24")
        net.add_device(telescope)
        net.add_device(victim)
        attacker = SpoofingAttacker(
            name="atk",
            loop=loop,
            rng=random.Random(7),
            telescope_prefix=Prefix.parse("44.0.0.0/9"),
            spoof_pool=[Prefix.parse("87.128.0.0/16")],
            telescope_bias=bias,
        )
        net.add_device(attacker)
        return loop, telescope, victim, attacker

    def test_flood_reaches_victim_with_spoofed_sources(self):
        loop, telescope, victim, attacker = self.make(bias=1.0)
        attacker.launch(
            AttackPlan(
                targets=(parse_ip("157.240.1.10"),), packet_count=50, duration=10.0
            )
        )
        loop.run()
        assert len(victim.received) == 50
        telescope_prefix = Prefix.parse("44.0.0.0/9")
        assert all(d.src_ip in telescope_prefix for d in victim.received)
        assert attacker.packets_sent == 50

    def test_bias_splits_spoof_pool(self):
        loop, _telescope, victim, attacker = self.make(bias=0.5)
        attacker.launch(
            AttackPlan(
                targets=(parse_ip("157.240.1.10"),), packet_count=300, duration=10.0
            )
        )
        loop.run()
        telescope_prefix = Prefix.parse("44.0.0.0/9")
        inside = sum(1 for d in victim.received if d.src_ip in telescope_prefix)
        assert 90 < inside < 210

    def test_multi_target_plan(self):
        loop, _telescope, victim, attacker = self.make()
        targets = tuple(parse_ip("157.240.1.%d" % i) for i in range(1, 11))
        attacker.launch(AttackPlan(targets=targets, packet_count=200, duration=5.0))
        loop.run()
        assert len({d.dst_ip for d in victim.received}) == 10

    def test_bogus_version_share(self):
        loop, _telescope, victim, attacker = self.make()
        attacker.launch(
            AttackPlan(
                targets=(parse_ip("157.240.1.10"),),
                packet_count=100,
                duration=5.0,
                bogus_version_probability=1.0,
            )
        )
        loop.run()
        versions = {parse_long_header(d.payload).version for d in victim.received}
        assert versions == {SpoofingAttacker.BOGUS_VERSION}

    def test_empty_plan_rejected(self):
        _loop, _telescope, _victim, attacker = self.make()
        with pytest.raises(ValueError):
            attacker.launch(AttackPlan(targets=(1,), packet_count=0))


class TestScanners:
    def make_net(self):
        loop = EventLoop()
        net = Network(loop, random.Random(5), PathModel(jitter=0.0))
        telescope = Recorder("telescope", "44.0.0.0/9")
        net.add_device(telescope)
        return loop, net, telescope

    def test_research_scanner_uses_grease_version(self):
        loop, net, telescope = self.make_net()
        scanner = ResearchScanner(
            name="umich",
            address=parse_ip("141.212.0.7"),
            loop=loop,
            rng=random.Random(1),
            target_prefix=Prefix.parse("44.0.0.0/9"),
        )
        net.add_device(scanner)
        scanner.sweep(20, duration=5.0)
        loop.run()
        assert len(telescope.received) == 20
        versions = {parse_long_header(d.payload).version for d in telescope.received}
        assert versions == {ResearchScanner.GREASE_VERSION}
        # Stateless probes are small (unpadded).
        assert all(len(d.payload) < 600 for d in telescope.received)

    def test_unknown_scanner_version_mix(self):
        loop, net, telescope = self.make_net()
        scanner = UnknownScanner(
            name="bot",
            address=parse_ip("87.128.9.9"),
            loop=loop,
            rng=random.Random(1),
            target_prefix=Prefix.parse("44.0.0.0/9"),
            versions=((1, 0.5), (0xFACEB002, 0.5)),
        )
        net.add_device(scanner)
        scanner.sweep(200, duration=5.0)
        loop.run()
        versions = [parse_long_header(d.payload).version for d in telescope.received]
        assert versions.count(1) > 50
        assert versions.count(0xFACEB002) > 50

    def test_zero_rtt_scanner(self):
        loop, net, telescope = self.make_net()
        scanner = UnknownScanner(
            name="bot0rtt",
            address=parse_ip("87.128.9.9"),
            loop=loop,
            rng=random.Random(1),
            target_prefix=Prefix.parse("44.0.0.0/9"),
            zero_rtt_probability=1.0,
        )
        net.add_device(scanner)
        scanner.sweep(10, duration=1.0)
        loop.run()
        types = {
            parse_long_header(d.payload).packet_type for d in telescope.received
        }
        assert types == {PacketType.ZERO_RTT}

    def test_noise_is_not_quic(self):
        from repro.core.dissector import is_quic_datagram

        loop, net, telescope = self.make_net()
        noise = NoiseSource(
            name="noise",
            address=parse_ip("87.128.1.1"),
            loop=loop,
            rng=random.Random(1),
            target_prefix=Prefix.parse("44.0.0.0/9"),
        )
        net.add_device(noise)
        noise.emit(50, duration=5.0)
        loop.run()
        assert len(telescope.received) == 50
        assert not any(is_quic_datagram(d.payload) for d in telescope.received)


class TestScenarioBuilder:
    def test_2021_config_scaled(self):
        cfg = april_2021_config()
        base = ScenarioConfig()
        assert cfg.year == 2021
        assert cfg.attacks_google < base.attacks_google / 4
        assert cfg.unknown_scan_packets < base.unknown_scan_packets / 7

    def test_scaled_helper(self):
        cfg = ScenarioConfig().scaled(0.1)
        assert cfg.attacks_facebook == ScenarioConfig().attacks_facebook // 10

    def test_small_scenario_wiring(self, small_scenario):
        scenario = small_scenario
        assert len(scenario.clusters["Facebook"]) == 3
        assert scenario.vips("Facebook")
        assert scenario.attacker is not None
        assert len(scenario.telescope.records) > 1000
        # Host IDs disjoint across Facebook clusters.
        all_ids = [
            host_id
            for cluster in scenario.clusters["Facebook"]
            for host_id in cluster.host_ids
        ]
        assert len(all_ids) == len(set(all_ids))

    def test_classification_has_all_populations(self, small_capture):
        origins = {p.origin for p in small_capture.backscatter}
        assert {"Facebook", "Google", "Cloudflare", "Remaining"} <= origins
        assert small_capture.stats.acknowledged_scanner > 0
        assert small_capture.stats.failed_dissection > 0
        assert small_capture.stats.scans > 0
