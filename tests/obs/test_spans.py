"""Hierarchical spans: nesting, trace emission, canonical timelines."""

import io
import json

from repro.obs import (
    NULL_SPAN,
    JsonlTracer,
    Observability,
    Profiler,
    merge_span_timelines,
)
from repro.obs.spans import canonical_span_line, canonical_span_lines
from repro.obs.trace import CAT_SPAN


def _obs(sink=None, every=64):
    tracer = JsonlTracer(sink) if sink is not None else None
    return Observability(tracer=tracer, prof=Profiler(every=every))


def _events(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestSpanContextManager:
    def test_without_profiler_returns_null_span(self):
        obs = Observability()
        assert obs.span("simulate.unit", unit="x") is NULL_SPAN
        with obs.span("anything") as span:
            span.note(packets=3)  # inert, never raises

    def test_nesting_links_parent_ids(self):
        sink = io.StringIO()
        obs = _obs(sink)
        with obs.span("simulate.unit", time=1.0, unit="bots") as outer:
            with obs.span("engine.flight", time=1.0) as inner:
                assert inner.parent_id == outer.span_id
        unit_evt = next(e for e in _events(sink) if e["name"] == "simulate.unit")
        flight_evt = next(e for e in _events(sink) if e["name"] == "engine.flight")
        assert flight_evt["data"]["parent"] == unit_evt["data"]["span"]
        assert unit_evt["category"] == CAT_SPAN

    def test_parent_ids_stable_across_sampling_intervals(self):
        """Thinning the profiler must never renumber the span tree."""

        def collect(every):
            obs = _obs(io.StringIO(), every=every)
            ids = []
            for _ in range(5):
                with obs.span("simulate.unit") as outer:
                    with obs.span("engine.flight") as inner:
                        ids.append((outer.span_id, inner.span_id, inner.parent_id))
            return ids

        assert collect(1) == collect(10_000)

    def test_note_fields_land_in_the_event(self):
        sink = io.StringIO()
        obs = _obs(sink)
        with obs.span("engine.flight", time=2.5) as span:
            span.note(packets=4, bytes=4800)
        event = _events(sink)[0]
        assert event["time"] == 2.5
        assert event["data"]["packets"] == 4
        assert event["data"]["bytes"] == 4800
        assert "time" not in event["data"]

    def test_packets_feed_the_profiler(self):
        obs = _obs()
        with obs.span("engine.flight") as span:
            span.note(packets=7)
        node = obs.prof.root.children[("engine.flight", None)]
        assert node.packets == 7

    def test_no_tracer_still_profiles(self):
        obs = _obs(sink=None)
        with obs.span("simulate.run"):
            pass
        assert obs.prof.root.children[("simulate.run", None)].calls == 1


class TestCanonicalization:
    def test_non_span_events_are_dropped(self):
        assert canonical_span_line({"category": "transport", "name": "x"}) is None

    def test_local_spans_are_dropped(self):
        event = {"category": "span", "name": "simulate.build", "data": {"local": True}}
        assert canonical_span_line(event) is None

    def test_volatile_fields_stripped_and_keys_sorted(self):
        event = {
            "category": "span",
            "name": "engine.flight",
            "time": 3.0,
            "wall": 123.4,
            "data": {"span": 17, "parent": 3, "wall": 9.9, "packets": 2, "cid": "ab"},
        }
        line = canonical_span_line(event)
        assert json.loads(line) == {
            "time": 3.0,
            "name": "engine.flight",
            "data": {"cid": "ab", "packets": 2},
        }
        assert line.index('"data"') < line.index('"name"') < line.index('"time"')


class TestMerge:
    def _write_trace(self, path, spans):
        tracer = JsonlTracer.to_path(path)
        for time, name, data in spans:
            tracer.emit(CAT_SPAN, name, time=time, **data)
        tracer.close()

    def test_merge_orders_by_time_then_line(self, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        self._write_trace(a, [(2.0, "engine.flight", {"cid": "aa"}),
                              (1.0, "simulate.unit", {"unit": "z"})])
        self._write_trace(b, [(1.0, "simulate.unit", {"unit": "a"}),
                              (3.0, "engine.flight", {"cid": "bb"})])
        out = str(tmp_path / "merged.jsonl")
        assert merge_span_timelines([a, b], out) == 4
        merged = [json.loads(line) for line in open(out)]
        assert [e["time"] for e in merged] == [1.0, 1.0, 2.0, 3.0]
        # same-instant spans order by serialized bytes, not input order
        assert merged[0]["data"]["unit"] == "a"

    def test_split_streams_merge_identically_to_one_stream(self, tmp_path):
        spans = [
            (float(i % 5), "engine.flight", {"cid": "%02x" % i}) for i in range(40)
        ]
        whole = str(tmp_path / "whole.jsonl")
        self._write_trace(whole, spans)
        parts = []
        for k in range(4):
            part = str(tmp_path / ("part%d.jsonl" % k))
            self._write_trace(part, spans[k::4])
            parts.append(part)
        merged_whole = str(tmp_path / "m1.jsonl")
        merged_parts = str(tmp_path / "m4.jsonl")
        assert merge_span_timelines([whole], merged_whole) == 40
        assert merge_span_timelines(parts, merged_parts) == 40
        assert open(merged_whole, "rb").read() == open(merged_parts, "rb").read()

    def test_local_spans_excluded_from_merge(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._write_trace(
            path,
            [(0.0, "simulate.build", {"local": True}),
             (1.0, "engine.flight", {"cid": "aa"})],
        )
        assert canonical_span_lines(path) == [
            '{"data":{"cid":"aa"},"name":"engine.flight","time":1.0}'
        ]
