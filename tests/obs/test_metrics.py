"""Counters, gauges, histograms, stage timers, and snapshot export."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)


class TestCounter:
    def test_inc_with_labels(self):
        counter = Counter("net.dropped", ("reason", "device"))
        counter.inc(reason="loss", device="telescope")
        counter.inc(2, reason="loss", device="telescope")
        counter.inc(reason="no_route", device="botnet")
        assert counter.value(reason="loss", device="telescope") == 3
        assert counter.total() == 4

    def test_sum_where_partial_match(self):
        counter = Counter("net.dropped", ("reason", "device"))
        counter.inc(reason="loss", device="a")
        counter.inc(reason="loss", device="b")
        counter.inc(reason="no_route", device="a")
        assert counter.sum_where(reason="loss") == 2
        assert counter.sum_where(device="a") == 2

    def test_wrong_labels_rejected(self):
        counter = Counter("x", ("device",))
        with pytest.raises(ValueError):
            counter.inc(reason="loss")

    def test_inc_key_fast_path(self):
        counter = Counter("x", ("device",))
        counter.inc_key(("t",), 5)
        assert counter.value(device="t") == 5


class TestHistogram:
    def test_bucketing_including_overflow(self):
        hist = Histogram("bytes", (10, 100, 1000))
        for value in (5, 50, 50, 500, 5000):
            hist.observe_key((), value)
        series = hist.series[()]
        assert series.counts == [1, 2, 1, 1]
        assert series.count == 5
        assert series.sum == 5605

    def test_labeled_series_are_independent(self):
        hist = Histogram("bytes", (100,), ("kind",))
        hist.observe(50, kind="scan")
        hist.observe(500, kind="backscatter")
        assert hist.series[("scan",)].counts == [1, 0]
        assert hist.series[("backscatter",)].counts == [0, 1]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", (100, 10))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a", ("x",)) is registry.counter("a", ("x",))

    def test_label_mismatch_on_reregistration(self):
        registry = MetricsRegistry()
        registry.counter("a", ("x",))
        with pytest.raises(ValueError):
            registry.counter("a", ("y",))

    def test_time_block_accumulates(self):
        registry = MetricsRegistry()
        with registry.time_block("classify"):
            pass
        with registry.time_block("classify"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["timers"]["classify"]["calls"] == 2
        assert snapshot["timers"]["classify"]["seconds"] >= 0
        assert registry.timer_seconds("classify") >= 0

    def test_time_block_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time_block("boom"):
                raise RuntimeError()
        assert registry.snapshot()["timers"]["boom"]["calls"] == 1


class TestSnapshot:
    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("net.dropped", ("reason",)).inc(reason="loss")
        registry.gauge("sim.ratio").set_key((), 12.5)
        registry.histogram("bytes", (100, 1000), ("kind",)).observe(42, kind="scan")
        with registry.time_block("simulate"):
            pass
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"]["net.dropped"]["values"]["loss"] == 1
        assert snapshot["gauges"]["sim.ratio"]["values"][""] == 12.5
        hist = snapshot["histograms"]["bytes"]
        assert hist["buckets"] == ["<=100", "<=1000", "+Inf"]
        assert hist["values"]["scan"]["counts"] == [1, 0, 0]
        assert "simulate" in snapshot["timers"]

    def test_write_and_load_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc_key((), 7)
        path = str(tmp_path / "m.json")
        registry.write(path)
        snapshot = load_snapshot(path)
        assert snapshot["counters"]["c"]["values"][""] == 7
