"""Counters, gauges, histograms, stage timers, and snapshot export."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)


class TestCounter:
    def test_inc_with_labels(self):
        counter = Counter("net.dropped", ("reason", "device"))
        counter.inc(reason="loss", device="telescope")
        counter.inc(2, reason="loss", device="telescope")
        counter.inc(reason="no_route", device="botnet")
        assert counter.value(reason="loss", device="telescope") == 3
        assert counter.total() == 4

    def test_sum_where_partial_match(self):
        counter = Counter("net.dropped", ("reason", "device"))
        counter.inc(reason="loss", device="a")
        counter.inc(reason="loss", device="b")
        counter.inc(reason="no_route", device="a")
        assert counter.sum_where(reason="loss") == 2
        assert counter.sum_where(device="a") == 2

    def test_wrong_labels_rejected(self):
        counter = Counter("x", ("device",))
        with pytest.raises(ValueError):
            counter.inc(reason="loss")

    def test_inc_key_fast_path(self):
        counter = Counter("x", ("device",))
        counter.inc_key(("t",), 5)
        assert counter.value(device="t") == 5


class TestHistogram:
    def test_bucketing_including_overflow(self):
        hist = Histogram("bytes", (10, 100, 1000))
        for value in (5, 50, 50, 500, 5000):
            hist.observe_key((), value)
        series = hist.series[()]
        assert series.counts == [1, 2, 1, 1]
        assert series.count == 5
        assert series.sum == 5605

    def test_labeled_series_are_independent(self):
        hist = Histogram("bytes", (100,), ("kind",))
        hist.observe(50, kind="scan")
        hist.observe(500, kind="backscatter")
        assert hist.series[("scan",)].counts == [1, 0]
        assert hist.series[("backscatter",)].counts == [0, 1]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", (100, 10))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a", ("x",)) is registry.counter("a", ("x",))

    def test_label_mismatch_on_reregistration(self):
        registry = MetricsRegistry()
        registry.counter("a", ("x",))
        with pytest.raises(ValueError):
            registry.counter("a", ("y",))

    def test_time_block_accumulates(self):
        registry = MetricsRegistry()
        with registry.time_block("classify"):
            pass
        with registry.time_block("classify"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["timers"]["classify"]["calls"] == 2
        assert snapshot["timers"]["classify"]["seconds"] >= 0
        assert registry.timer_seconds("classify") >= 0

    def test_time_block_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time_block("boom"):
                raise RuntimeError()
        assert registry.snapshot()["timers"]["boom"]["calls"] == 1


class TestSnapshot:
    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("net.dropped", ("reason",)).inc(reason="loss")
        registry.gauge("sim.ratio").set_key((), 12.5)
        registry.histogram("bytes", (100, 1000), ("kind",)).observe(42, kind="scan")
        with registry.time_block("simulate"):
            pass
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"]["net.dropped"]["values"]["loss"] == 1
        assert snapshot["gauges"]["sim.ratio"]["values"][""] == 12.5
        hist = snapshot["histograms"]["bytes"]
        assert hist["buckets"] == ["<=100", "<=1000", "+Inf"]
        assert hist["values"]["scan"]["counts"] == [1, 0, 0]
        assert "simulate" in snapshot["timers"]

    def test_write_and_load_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc_key((), 7)
        path = str(tmp_path / "m.json")
        registry.write(path)
        snapshot = load_snapshot(path)
        assert snapshot["counters"]["c"]["values"][""] == 7


class TestMergeSnapshot:
    """Pushgateway-style aggregation of worker snapshots (sharded runs)."""

    def worker_registry(self, delivered, payload_bytes):
        registry = MetricsRegistry()
        registry.counter("net.delivered", ("device",)).inc(delivered, device="tele")
        registry.gauge("sim.events").set_key((), delivered * 10)
        hist = registry.histogram("payload", (100, 1000), ("kind",))
        for value in payload_bytes:
            hist.observe(value, kind="scan")
        with registry.time_block("simulate"):
            pass
        return registry

    def test_counters_gauges_histograms_timers_sum(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self.worker_registry(3, [50, 500]).snapshot())
        parent.merge_snapshot(self.worker_registry(4, [5000]).snapshot())
        assert parent.counter("net.delivered", ("device",)).values[("tele",)] == 7
        assert parent.gauge("sim.events").values[()] == 70
        hist = parent.histogram("payload", (100, 1000), ("kind",))
        series = hist.series[("scan",)]
        assert series.counts == [1, 1, 1]
        assert series.count == 3 and series.sum == 5550
        assert parent.snapshot()["timers"]["simulate"]["calls"] == 2

    def test_merge_into_nonempty_parent(self):
        parent = self.worker_registry(1, [10])
        parent.merge_snapshot(self.worker_registry(2, [20]).snapshot())
        assert parent.counter("net.delivered", ("device",)).values[("tele",)] == 3
        assert parent.histogram("payload", (100, 1000), ("kind",)).series[
            ("scan",)
        ].count == 2

    def test_merge_is_associative_with_snapshot_roundtrip(self, tmp_path):
        a = self.worker_registry(5, [1])
        b = self.worker_registry(6, [2])
        left = MetricsRegistry()
        left.merge_snapshot(a.snapshot())
        left.merge_snapshot(b.snapshot())
        right = MetricsRegistry()
        right.merge_snapshot(b.snapshot())
        right.merge_snapshot(a.snapshot())
        assert left.snapshot() == right.snapshot()
        # snapshots survive a JSON round-trip (the IPC path)
        path = str(tmp_path / "w.json")
        a.write(path)
        reparsed = MetricsRegistry()
        reparsed.merge_snapshot(load_snapshot(path))
        assert reparsed.snapshot() == a.snapshot()

    def test_label_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.counter("net.delivered", ("other",))
        with pytest.raises(ValueError):
            parent.merge_snapshot(self.worker_registry(1, []).snapshot())

    def test_histogram_without_bounds_rejected(self):
        snapshot = self.worker_registry(1, [10]).snapshot()
        del snapshot["histograms"]["payload"]["bounds"]
        with pytest.raises(ValueError, match="bounds"):
            MetricsRegistry().merge_snapshot(snapshot)

    def test_snapshot_carries_bounds(self):
        snapshot = self.worker_registry(1, [10]).snapshot()
        assert snapshot["histograms"]["payload"]["bounds"] == [100, 1000]
