"""The qlog-style JSONL tracer."""

import io
import json

import pytest

from repro.obs import NULL_OBS, JsonlTracer, NullTracer, Observability
from repro.obs.trace import CAT_TRANSPORT, read_trace


class TestJsonlTracer:
    def test_one_json_object_per_line(self):
        sink = io.StringIO()
        tracer = JsonlTracer(sink)
        tracer.emit(CAT_TRANSPORT, "packet_sent", time=1.5, cid="ab", bytes=120)
        tracer.emit("recovery", "rto_fired", time=2.0)
        lines = sink.getvalue().strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["time"] == 1.5
        assert first["category"] == "transport"
        assert first["name"] == "packet_sent"
        assert first["data"] == {"cid": "ab", "bytes": 120}
        assert "wall" in first

    def test_required_fields_always_present(self):
        sink = io.StringIO()
        JsonlTracer(sink).emit("sim", "run_start")
        event = json.loads(sink.getvalue())
        for field in ("time", "category", "name"):
            assert field in event

    def test_scoped_context_merged_into_data(self):
        sink = io.StringIO()
        tracer = JsonlTracer(sink).scoped(host=3, worker=1)
        tracer.emit("transport", "packet_sent", time=0.0, cid="ff")
        event = json.loads(sink.getvalue())
        assert event["data"] == {"host": 3, "worker": 1, "cid": "ff"}

    def test_scoped_nesting_and_override(self):
        sink = io.StringIO()
        tracer = JsonlTracer(sink).scoped(host=3).scoped(worker=2)
        tracer.emit("lb", "dispatch", time=0.0, host=9)
        event = json.loads(sink.getvalue())
        assert event["data"] == {"host": 9, "worker": 2}

    def test_events_emitted_counter(self):
        tracer = JsonlTracer(io.StringIO())
        for _ in range(3):
            tracer.emit("sim", "tick")
        assert tracer.events_emitted == 3

    def test_to_path_and_read_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = JsonlTracer.to_path(path)
        tracer.emit("telescope", "capture", time=4.2, bytes=1200)
        tracer.close()
        events = list(read_trace(path))
        assert len(events) == 1
        assert events[0]["name"] == "capture"
        assert events[0]["data"]["bytes"] == 1200

    def test_read_trace_skips_truncated_tail_with_warning(self, tmp_path):
        """A crash mid-write leaves a torn last line; the rest stays loadable."""
        path = str(tmp_path / "crash.jsonl")
        tracer = JsonlTracer.to_path(path)
        tracer.emit("sim", "run_start", time=0.0)
        tracer.emit("telescope", "capture", time=1.0, bytes=64)
        tracer.close()
        with open(path, "a") as fileobj:
            fileobj.write('{"time": 2.0, "category": "telesc')  # torn write
        with pytest.warns(RuntimeWarning, match="truncated"):
            events = list(read_trace(path))
        assert [e["name"] for e in events] == ["run_start", "capture"]


class TestNullTracer:
    def test_falsy_and_disabled(self):
        tracer = NullTracer()
        assert not tracer
        assert not tracer.enabled

    def test_emit_is_noop_and_scoped_returns_self(self):
        tracer = NullTracer()
        tracer.emit("transport", "packet_sent", time=1.0, anything="goes")
        assert tracer.scoped(host=1) is tracer

    def test_jsonl_tracer_is_truthy(self):
        assert JsonlTracer(io.StringIO())


class TestObservability:
    def test_null_obs_disabled(self):
        assert not NULL_OBS.enabled
        assert NULL_OBS.metrics is None

    def test_enabled_with_tracer_or_metrics(self):
        from repro.obs import MetricsRegistry

        assert Observability(tracer=JsonlTracer(io.StringIO())).enabled
        assert Observability(metrics=MetricsRegistry()).enabled
        assert not Observability().enabled
