"""Sampling and ring-buffer trace sinks."""

import io
import json

import pytest

from repro.obs import (
    DEFAULT_ALWAYS_KEEP,
    JsonlTracer,
    RingBufferTracer,
    SamplingTracer,
)
from repro.obs.trace import read_trace


class _ListTracer(JsonlTracer):
    """JsonlTracer writing into an inspectable StringIO."""

    def __init__(self):
        self.sink = io.StringIO()
        super().__init__(self.sink)

    def records(self):
        return [
            json.loads(line)
            for line in self.sink.getvalue().splitlines()
            if line
        ]


class TestSamplingTracer:
    def test_keeps_every_nth_per_event_type(self):
        inner = _ListTracer()
        tracer = SamplingTracer(inner, every=4, always_keep=frozenset())
        for i in range(10):
            tracer.emit("net", "packet_delivered", time=float(i), seq=i)
        kept = inner.records()
        # counts 0, 4, 8 survive: the first event of a type is always kept.
        assert [r["data"]["seq"] for r in kept] == [0, 4, 8]
        assert all(r["data"]["sampled"] == 4 for r in kept)
        assert tracer.events_kept == 3
        assert tracer.events_dropped == 7

    def test_counters_are_per_event_type(self):
        inner = _ListTracer()
        tracer = SamplingTracer(inner, every=4, always_keep=frozenset())
        tracer.emit("net", "packet_delivered", seq=0)
        tracer.emit("net", "packet_dropped", seq=1)
        tracer.emit("transport", "packet_delivered", seq=2)
        # Three distinct types: each first occurrence is kept.
        assert [r["data"]["seq"] for r in inner.records()] == [0, 1, 2]

    def test_sampling_is_deterministic(self):
        def run():
            inner = _ListTracer()
            tracer = SamplingTracer(inner, every=8)
            for i in range(100):
                tracer.emit("net", "packet_delivered", time=float(i), seq=i)
                if i % 3 == 0:
                    tracer.emit("lb", "dispatch", time=float(i), seq=i)
            return [
                (r["category"], r["name"], r["data"]["seq"])
                for r in inner.records()
            ]

        assert run() == run()

    def test_always_keep_category_never_sampled(self):
        inner = _ListTracer()
        tracer = SamplingTracer(inner, every=64)
        for i in range(10):
            tracer.emit("security", "stateless_reset", seq=i)
        kept = inner.records()
        assert len(kept) == 10
        # Always-keep events stand only for themselves.
        assert all(r["data"]["sampled"] == 1 for r in kept)

    def test_always_keep_category_name_pair(self):
        inner = _ListTracer()
        tracer = SamplingTracer(inner, every=64)
        assert "connectivity:migration_accepted" in DEFAULT_ALWAYS_KEEP
        for i in range(5):
            tracer.emit("connectivity", "migration_accepted", seq=i)
            tracer.emit("connectivity", "cid_issued", seq=i)
        names = [r["name"] for r in inner.records()]
        assert names.count("migration_accepted") == 5
        assert names.count("cid_issued") == 1  # sampled: only count 0 kept

    def test_scoped_children_share_sampling_counters(self):
        inner = _ListTracer()
        parent = SamplingTracer(inner, every=2, always_keep=frozenset())
        child = parent.scoped(worker=1)
        # Interleave: parent sees counts 0, 2; child sees counts 1, 3.
        parent.emit("net", "packet_delivered", seq=0)
        child.emit("net", "packet_delivered", seq=1)
        parent.emit("net", "packet_delivered", seq=2)
        child.emit("net", "packet_delivered", seq=3)
        kept = inner.records()
        assert [r["data"]["seq"] for r in kept] == [0, 2]
        assert parent.events_kept == child.events_kept == 2

    def test_scoped_context_reaches_inner_tracer(self):
        inner = _ListTracer()
        tracer = SamplingTracer(inner, every=1).scoped(host=7)
        tracer.emit("net", "packet_delivered", seq=0)
        assert inner.records()[0]["data"] == {"host": 7, "seq": 0, "sampled": 1}

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingTracer(_ListTracer(), every=0)

    def test_close_closes_inner(self, tmp_path):
        path = str(tmp_path / "sampled.jsonl")
        tracer = SamplingTracer(JsonlTracer.to_path(path), every=2)
        tracer.emit("net", "packet_delivered", seq=0)
        tracer.close()
        assert len(list(read_trace(path))) == 1


class TestRingBufferTracer:
    def test_keeps_only_last_capacity_events(self):
        tracer = RingBufferTracer(capacity=3)
        for i in range(10):
            tracer.emit("net", "packet_delivered", time=float(i), seq=i)
        assert len(tracer) == 3
        assert tracer.events_emitted == 10
        assert [e["data"]["seq"] for e in tracer.events()] == [7, 8, 9]

    def test_dump_is_jsonl_oldest_first(self, tmp_path):
        path = str(tmp_path / "ring.jsonl")
        tracer = RingBufferTracer(capacity=4)
        for i in range(6):
            tracer.emit("net", "packet_delivered", time=float(i), seq=i)
        assert tracer.dump(path) == 4
        events = list(read_trace(path))
        assert [e["data"]["seq"] for e in events] == [2, 3, 4, 5]
        for event in events:
            assert set(("time", "wall", "category", "name")) <= set(event)

    def test_close_dumps_to_dump_path(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        tracer = RingBufferTracer(capacity=8, dump_path=path)
        tracer.emit("sim", "run_start", time=0.0)
        tracer.close()
        assert [e["name"] for e in read_trace(path)] == ["run_start"]

    def test_scoped_children_share_the_ring(self):
        parent = RingBufferTracer(capacity=3)
        child = parent.scoped(worker=2)
        parent.emit("net", "a", seq=0)
        child.emit("net", "b", seq=1)
        events = parent.events()
        assert [e["name"] for e in events] == ["a", "b"]
        assert events[1]["data"] == {"worker": 2, "seq": 1}

    def test_event_without_fields_has_no_data_key(self):
        tracer = RingBufferTracer(capacity=2)
        tracer.emit("sim", "run_start", time=1.0)
        assert "data" not in tracer.events()[0]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferTracer(capacity=0)


class TestSignalDump:
    """SIGUSR1 snapshots the ring mid-run without stopping anything."""

    @pytest.fixture(autouse=True)
    def _restore_handler(self):
        signal = pytest.importorskip("signal")
        if not hasattr(signal, "SIGUSR1"):
            pytest.skip("platform without SIGUSR1")
        previous = signal.getsignal(signal.SIGUSR1)
        yield
        signal.signal(signal.SIGUSR1, previous)

    def test_signal_dumps_retained_window(self, tmp_path):
        import os
        import signal

        from repro.obs import install_signal_dump

        path = str(tmp_path / "ring.jsonl")
        tracer = RingBufferTracer(capacity=4, dump_path=path)
        assert install_signal_dump(tracer) is True
        for i in range(6):
            tracer.emit("net", "packet_delivered", time=float(i), seq=i)
        os.kill(os.getpid(), signal.SIGUSR1)
        events = list(read_trace(path))
        assert [e["data"]["seq"] for e in events] == [2, 3, 4, 5]
        # the run keeps going: later events land in the next dump
        tracer.emit("net", "packet_delivered", time=6.0, seq=6)
        os.kill(os.getpid(), signal.SIGUSR1)
        assert [e["data"]["seq"] for e in read_trace(path)] == [3, 4, 5, 6]

    def test_no_dump_path_is_a_noop(self, tmp_path):
        import os
        import signal

        from repro.obs import install_signal_dump

        tracer = RingBufferTracer(capacity=4)
        assert install_signal_dump(tracer) is True
        tracer.emit("net", "packet_delivered", time=0.0, seq=0)
        os.kill(os.getpid(), signal.SIGUSR1)  # must not raise
        assert list(tmp_path.iterdir()) == []

    def test_platform_without_sigusr1_reports_false(self, monkeypatch):
        from repro.obs import install_signal_dump

        monkeypatch.delattr("signal.SIGUSR1")
        tracer = RingBufferTracer(capacity=4)
        assert install_signal_dump(tracer) is False

    def test_off_main_thread_reports_false(self):
        import threading

        from repro.obs import install_signal_dump

        tracer = RingBufferTracer(capacity=4)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(install_signal_dump(tracer))
        )
        thread.start()
        thread.join()
        assert results == [False]
