"""The cross-process progress plane: heartbeat files and rendering."""

import json
import multiprocessing
import os
import time

import pytest

from repro.obs.progress import (
    EVENTS_PER_WEIGHT,
    HeartbeatWriter,
    aggregate,
    clean_progress_dir,
    expected_events,
    read_heartbeats,
    render_progress,
    resolve_progress_dir,
)


class TestHeartbeatWriter:
    def test_document_contents(self, tmp_path):
        directory = str(tmp_path / "progress")
        writer = HeartbeatWriter(directory, worker=3, total=200.0)
        assert writer.update("run", done=50.0, records=12, span="engine.flight")
        with open(writer.path) as fileobj:
            doc = json.load(fileobj)
        assert doc["worker"] == 3
        assert doc["pid"] == os.getpid()
        assert doc["stage"] == "run"
        assert doc["done"] == 50.0
        assert doc["total"] == 200.0
        assert doc["records"] == 12
        assert doc["span"] == "engine.flight"
        assert doc["status"] == "running"
        assert doc["eta"] is None or doc["eta"] >= 0

    def test_rate_limit_skips_but_final_always_writes(self, tmp_path):
        writer = HeartbeatWriter(str(tmp_path), worker=0, min_interval=3600.0)
        assert writer.update("run", done=1.0)
        assert not writer.update("run", done=2.0)  # inside the interval
        assert writer.update("done", done=3.0, final=True)
        with open(writer.path) as fileobj:
            doc = json.load(fileobj)
        assert doc["status"] == "done"
        assert doc["done"] == 3.0

    def test_tmp_staging_file_invisible_to_readers(self, tmp_path):
        directory = str(tmp_path)
        writer = HeartbeatWriter(directory, worker=0, min_interval=0.0)
        writer.update("run")
        assert not any(name.endswith(".tmp") for name in os.listdir(directory))
        assert len(read_heartbeats(directory)) == 1

    def test_close_removes_orphaned_tmp(self, tmp_path):
        writer = HeartbeatWriter(str(tmp_path), worker=0)
        with open(writer._tmp, "w") as fileobj:
            fileobj.write("{partial")
        writer.close()
        assert not os.path.exists(writer._tmp)


def _hammer(directory, worker, rounds):
    writer = HeartbeatWriter(directory, worker=worker, total=rounds, min_interval=0.0)
    for i in range(rounds):
        writer.update("run", done=float(i), records=i, span="engine.flight")
    writer.update("done", done=float(rounds), final=True)
    writer.close()


class TestAtomicity:
    def test_concurrent_writers_never_tear(self, tmp_path):
        """Readers racing hammering writers always parse complete docs."""
        directory = str(tmp_path / "progress")
        os.makedirs(directory)
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        rounds = 400
        procs = [
            ctx.Process(target=_hammer, args=(directory, worker, rounds))
            for worker in range(3)
        ]
        for proc in procs:
            proc.start()
        reads = 0
        deadline = time.time() + 30.0
        try:
            while any(proc.is_alive() for proc in procs):
                assert time.time() < deadline, "writers did not finish"
                for beat in read_heartbeats(directory):
                    # read_heartbeats already json-parses: a torn write
                    # would have raised / been skipped; assert shape too.
                    assert beat["stage"] in ("run", "done")
                    assert 0 <= beat["done"] <= rounds
                    reads += 1
        finally:
            for proc in procs:
                proc.join()
        beats = read_heartbeats(directory)
        assert [beat["worker"] for beat in beats] == [0, 1, 2]
        assert all(beat["status"] == "done" for beat in beats)
        assert reads > 0


class TestReaders:
    def test_read_skips_garbage_files(self, tmp_path):
        directory = str(tmp_path)
        HeartbeatWriter(directory, worker=1, min_interval=0.0).update("run")
        with open(os.path.join(directory, "worker9.hb.json"), "w") as fileobj:
            fileobj.write("{torn")
        beats = read_heartbeats(directory)
        assert [beat["worker"] for beat in beats] == [1]

    def test_skipped_collects_unreadable_basenames(self, tmp_path):
        directory = str(tmp_path)
        HeartbeatWriter(directory, worker=1, min_interval=0.0).update("run")
        with open(os.path.join(directory, "worker8.hb.json"), "wb") as fileobj:
            fileobj.write(b"\xff\xfe not utf-8 \x00")
        with open(os.path.join(directory, "worker9.hb.json"), "w") as fileobj:
            fileobj.write("{torn")
        skipped: list = []
        beats = read_heartbeats(directory, skipped=skipped)
        assert [beat["worker"] for beat in beats] == [1]
        assert sorted(skipped) == ["worker8.hb.json", "worker9.hb.json"]

    def test_cli_progress_notes_skipped_heartbeats(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "run.pcap.progress")
        os.makedirs(directory)
        HeartbeatWriter(directory, worker=0, min_interval=0.0).update(
            "done", done=1.0, final=True
        )
        with open(os.path.join(directory, "worker7.hb.json"), "w") as fileobj:
            fileobj.write("{caught mid-write")
        assert main(["progress", directory]) == 0
        captured = capsys.readouterr()
        assert "worker" in captured.out  # the table still renders
        assert "skipped 1 unreadable heartbeat(s): worker7.hb.json" in (
            captured.err
        )

    def test_clean_progress_dir(self, tmp_path):
        directory = str(tmp_path)
        HeartbeatWriter(directory, worker=0, min_interval=0.0).update("run")
        clean_progress_dir(directory)
        assert read_heartbeats(directory) == []

    def test_resolve_accepts_dir_or_output_path(self, tmp_path):
        output = str(tmp_path / "month.pcap")
        directory = output + ".progress"
        os.makedirs(directory)
        assert resolve_progress_dir(directory) == directory
        assert resolve_progress_dir(output) == directory

    def test_resolve_missing_exits_one_line(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            resolve_progress_dir(str(tmp_path / "nope.pcap"))
        message = str(excinfo.value)
        assert "no progress directory" in message
        assert "\n" not in message


class TestAggregateRender:
    def _beats(self):
        return [
            {"worker": 0, "stage": "run", "done": 50.0, "total": 100.0,
             "records": 20, "eta": 5.0, "status": "running",
             "sim_time": 10.0, "updated": time.time()},
            {"worker": 1, "stage": "done", "done": 100.0, "total": 100.0,
             "records": 44, "eta": None, "status": "done",
             "sim_time": 30.0, "updated": time.time()},
        ]

    def test_aggregate_totals(self):
        totals = aggregate(self._beats())
        assert totals["workers"] == 2
        assert totals["running"] == 1
        assert totals["done"] == 150.0
        assert totals["percent"] == pytest.approx(75.0)
        assert totals["eta"] == 5.0

    def test_render_table_and_summary(self):
        text = render_progress(self._beats())
        assert "worker" in text and "eta" in text
        assert "75.0%" in text
        assert "1/2 workers running" in text

    def test_render_empty(self):
        assert "no heartbeats" in render_progress([])

    def test_expected_events_calibration(self):
        assert expected_events(100) == pytest.approx(100 * EVENTS_PER_WEIGHT)
