"""The event-count-sampled stage profiler."""

import pytest

from repro.obs import MetricsRegistry, Profiler, validate_speedscope


def _run_sequence(prof, flights=10, seals_per_flight=3):
    """A deterministic push/pop workload: flights containing AEAD leaves."""
    ids = []
    for _ in range(flights):
        node, start, span_id, parent_id = prof.push("engine.flight", "facebook")
        ids.append((span_id, parent_id))
        for _ in range(seals_per_flight):
            leaf, leaf_start = prof.leaf_begin("engine.aead")
            prof.leaf_end(leaf, leaf_start, packets=1)
        prof.pop(node, start, packets=seals_per_flight)
    return ids


class TestSampling:
    def test_first_occurrence_always_sampled(self):
        prof = Profiler(every=1000)
        _run_sequence(prof, flights=5)
        flight = prof.root.children[("engine.flight", "facebook")]
        assert flight.calls == 5
        assert flight.sampled == 1  # occurrence 1 only; 1001 never reached

    def test_sampling_is_a_pure_function_of_call_counts(self):
        a, b = Profiler(every=7), Profiler(every=7)
        _run_sequence(a, flights=30)
        _run_sequence(b, flights=30)
        node_a = a.root.children[("engine.flight", "facebook")]
        node_b = b.root.children[("engine.flight", "facebook")]
        assert node_a.sampled == node_b.sampled == 5  # occurrences 1,8,15,22,29

    def test_every_one_samples_everything(self):
        prof = Profiler(every=1)
        _run_sequence(prof, flights=4, seals_per_flight=2)
        flight = prof.root.children[("engine.flight", "facebook")]
        aead = flight.children[("engine.aead", None)]
        assert (flight.calls, flight.sampled) == (4, 4)
        assert (aead.calls, aead.sampled) == (8, 8)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Profiler(every=0)

    def test_wall_estimate_rescales_by_sampling(self):
        prof = Profiler(every=4)
        node = prof.root.child("stage", None)
        node.calls, node.sampled, node.wall = 8, 2, 0.5
        assert node.wall_estimate() == pytest.approx(2.0)

    def test_packets_accumulate_on_unsampled_occurrences_too(self):
        prof = Profiler(every=1000)
        _run_sequence(prof, flights=6, seals_per_flight=2)
        flight = prof.root.children[("engine.flight", "facebook")]
        aead = flight.children[("engine.aead", None)]
        assert flight.packets == 12
        assert aead.packets == 12


class TestSpanIds:
    def test_parent_ids_follow_nesting(self):
        prof = Profiler(every=64)
        outer_node, outer_start, outer_id, outer_parent = prof.push("simulate.unit")
        assert outer_parent == 0  # root
        inner = prof.push("engine.flight")
        assert inner[3] == outer_id
        assert prof.current_span_id == inner[2]
        prof.pop(inner[0], inner[1])
        prof.pop(outer_node, outer_start)
        assert prof.current_span_id == 0

    def test_ids_are_independent_of_sampling_interval(self):
        """Span ids come from a plain counter — thinning never shifts them."""
        dense = Profiler(every=1)
        sparse = Profiler(every=10_000)
        assert _run_sequence(dense) == _run_sequence(sparse)

    def test_current_path_tracks_the_stack(self):
        prof = Profiler()
        unit = prof.push("simulate.unit")
        flight = prof.push("engine.flight")
        assert prof.current_path == "simulate.unit/engine.flight"
        prof.pop(flight[0], flight[1])
        prof.pop(unit[0], unit[1])
        assert prof.current_path == ""


class TestSnapshotMerge:
    def test_roundtrip_preserves_tree(self):
        prof = Profiler(every=3)
        _run_sequence(prof, flights=9)
        merged = Profiler(every=3)
        merged.merge_snapshot(prof.snapshot())
        assert merged.snapshot() == prof.snapshot()

    def test_merge_adds_counters(self):
        workers = []
        for _ in range(3):
            prof = Profiler(every=5)
            _run_sequence(prof, flights=10)
            workers.append(prof.snapshot())
        parent = Profiler(every=5)
        for snap in workers:
            parent.merge_snapshot(snap)
        flight = parent.root.children[("engine.flight", "facebook")]
        aead = flight.children[("engine.aead", None)]
        assert flight.calls == 30
        assert aead.calls == 90
        assert flight.sampled == 6  # 2 sampled per worker (occurrences 1, 6)

    def test_merged_estimates_recompute_from_sums(self):
        a, b = Profiler(every=1), Profiler(every=1)
        _run_sequence(a, flights=2)
        _run_sequence(b, flights=2)
        parent = Profiler(every=1)
        parent.merge_snapshot(a.snapshot())
        parent.merge_snapshot(b.snapshot())
        assert parent.total_estimate() == pytest.approx(
            a.total_estimate() + b.total_estimate()
        )


class TestAttribution:
    def test_stage_totals_sum_packets_and_calls(self):
        prof = Profiler(every=1)
        _run_sequence(prof, flights=4, seals_per_flight=2)
        totals = prof.stage_totals()
        assert totals["engine.flight"]["calls"] == 4
        assert totals["engine.aead"]["packets"] == 8

    def test_stage_shares_sum_to_one(self):
        prof = Profiler(every=1)
        _run_sequence(prof, flights=20)
        shares = prof.stage_shares()
        assert shares
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_self_estimate_subtracts_children(self):
        prof = Profiler(every=1)
        parent = prof.root.child("outer", None)
        child = parent.child("inner", None)
        parent.calls = parent.sampled = 1
        child.calls = child.sampled = 1
        parent.wall, child.wall = 1.0, 0.25
        assert parent.self_estimate() == pytest.approx(0.75)
        child.wall = 2.0  # estimates can cross; self time clamps at zero
        assert parent.self_estimate() == 0.0


class TestExports:
    def test_speedscope_document_is_valid(self):
        prof = Profiler(every=2)
        _run_sequence(prof, flights=6)
        assert validate_speedscope(prof.to_speedscope("test")) == []

    def test_speedscope_labels_carry_profiles(self):
        prof = Profiler(every=1)
        _run_sequence(prof, flights=1)
        doc = prof.to_speedscope()
        names = {frame["name"] for frame in doc["shared"]["frames"]}
        assert "engine.flight [facebook]" in names
        assert "engine.aead" in names

    def test_write_speedscope_roundtrip(self, tmp_path):
        import json

        prof = Profiler(every=1)
        _run_sequence(prof)
        path = str(tmp_path / "prof.speedscope.json")
        prof.write_speedscope(path)
        with open(path) as fileobj:
            assert validate_speedscope(json.load(fileobj)) == []

    def test_metrics_histogram_observes_sampled_occurrences(self):
        metrics = MetricsRegistry()
        prof = Profiler(every=2, metrics=metrics)
        _run_sequence(prof, flights=4)
        snapshot = metrics.snapshot()
        hist = snapshot["histograms"]["prof.stage_seconds"]
        flight = hist["values"]["engine.flight|facebook"]
        assert flight["count"] == 2  # occurrences 1 and 3


class TestValidateSpeedscope:
    def test_rejects_non_object(self):
        assert validate_speedscope([]) == ["document is not a JSON object"]

    def test_flags_missing_pieces(self):
        problems = validate_speedscope({})
        assert "missing $schema" in problems
        assert "shared.frames missing or not a list" in problems
        assert "profiles missing or empty" in problems

    def test_flags_sample_frame_mismatch(self):
        doc = {
            "$schema": "x",
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [
                {
                    "type": "sampled",
                    "name": "p",
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": 1,
                    "samples": [[0, 5]],
                    "weights": [1.0],
                }
            ],
        }
        assert any("unknown frame" in p for p in validate_speedscope(doc))
