"""Prometheus text-format export: rendering, file writer, HTTP endpoint."""

import os
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    PromFileWriter,
    render_prometheus,
    start_http_exporter,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    counter = reg.counter("transport.datagrams_sent", ["profile"])
    counter.inc_key(("cloud",), 7)
    counter.inc_key(("cdn",), 3)
    reg.gauge("sim.events_per_sec").set_key((), 1234.5)
    hist = reg.histogram("transport.datagram_bytes", [100, 1000], ["profile"])
    for value in (50, 500, 5000):
        hist.observe_key(("cloud",), value)
    with reg.time_block("simulate"):
        pass
    return reg


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_labels(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE transport_datagrams_sent_total counter" in text
        assert 'transport_datagrams_sent_total{profile="cloud"} 7' in text
        assert 'transport_datagrams_sent_total{profile="cdn"} 3' in text

    def test_gauge_rendered_without_suffix(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE sim_events_per_sec gauge" in text
        assert "sim_events_per_sec 1234.5" in text

    def test_histogram_buckets_are_cumulative(self, registry):
        text = render_prometheus(registry)
        assert 'transport_datagram_bytes_bucket{profile="cloud",le="100"} 1' in text
        assert 'transport_datagram_bytes_bucket{profile="cloud",le="1000"} 2' in text
        assert 'transport_datagram_bytes_bucket{profile="cloud",le="+Inf"} 3' in text
        assert 'transport_datagram_bytes_sum{profile="cloud"} 5550' in text
        assert 'transport_datagram_bytes_count{profile="cloud"} 3' in text

    def test_stage_timers_become_labeled_counters(self, registry):
        text = render_prometheus(registry)
        assert 'repro_stage_calls_total{stage="simulate"} 1' in text
        assert 'repro_stage_seconds_total{stage="simulate"}' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("drops", ["reason"]).inc_key(('quo"te\\back\nline',))
        text = render_prometheus(reg)
        assert 'reason="quo\\"te\\\\back\\nline"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_registry_to_prometheus_method(self, registry):
        assert registry.to_prometheus() == render_prometheus(registry)

    def test_ends_with_newline(self, registry):
        assert render_prometheus(registry).endswith("\n")


class TestPromFileWriter:
    def test_write_produces_parseable_file(self, registry, tmp_path):
        path = str(tmp_path / "repro.prom")
        writer = PromFileWriter(registry, path)
        writer.write()
        with open(path) as fileobj:
            content = fileobj.read()
        assert content == render_prometheus(registry)
        assert writer.writes == 1

    def test_rewrite_is_atomic_rename(self, registry, tmp_path):
        path = str(tmp_path / "repro.prom")
        writer = PromFileWriter(registry, path)
        writer.write()
        registry.counter("transport.datagrams_sent", ["profile"]).inc_key(
            ("cloud",), 1
        )
        writer.write()
        # The temp file never survives a completed write.
        assert not os.path.exists(path + ".tmp")
        with open(path) as fileobj:
            assert 'transport_datagrams_sent_total{profile="cloud"} 8' in fileobj.read()


class TestHttpExporter:
    def test_serves_metrics_endpoint(self, registry):
        exporter = start_http_exporter(registry, port=0)
        try:
            with urllib.request.urlopen(exporter.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
            assert 'transport_datagrams_sent_total{profile="cloud"} 7' in body
        finally:
            exporter.close()

    def test_unknown_path_is_404(self, registry):
        exporter = start_http_exporter(registry, port=0)
        try:
            url = "http://127.0.0.1:%d/nope" % exporter.port
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404
        finally:
            exporter.close()

    def test_scrape_reflects_live_updates(self, registry):
        exporter = start_http_exporter(registry, port=0)
        try:
            registry.counter("transport.datagrams_sent", ["profile"]).inc_key(
                ("cloud",), 5
            )
            with urllib.request.urlopen(exporter.url, timeout=5) as response:
                body = response.read().decode("utf-8")
            assert 'transport_datagrams_sent_total{profile="cloud"} 12' in body
        finally:
            exporter.close()
