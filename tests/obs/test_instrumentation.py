"""Observability hooks threaded through simnet, servers, and the telescope."""

import io
import json
import random

from repro.obs import JsonlTracer, MetricsRegistry, Observability
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device, Network, PathModel
from repro.netstack.addr import Prefix, parse_ip
from repro.netstack.udp import UdpDatagram


class Sink(Device):
    def __init__(self, name, prefix):
        super().__init__(name)
        self._prefix = Prefix.parse(prefix)
        self.received = []

    def prefixes(self):
        return [self._prefix]

    def handle_datagram(self, datagram, now):
        self.received.append(datagram)


def make_obs():
    sink = io.StringIO()
    return Observability(tracer=JsonlTracer(sink), metrics=MetricsRegistry()), sink


def events_of(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def dgram(src, dst, payload=b"x"):
    return UdpDatagram(
        src_ip=parse_ip(src), dst_ip=parse_ip(dst), src_port=1000, dst_port=443,
        payload=payload,
    )


class TestNetworkInstrumentation:
    def test_every_outcome_labelled(self):
        obs, sink = make_obs()
        loop = EventLoop(obs)
        net = Network(loop, random.Random(1), PathModel(jitter=0.0), obs=obs)
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        sender.send(dgram("192.0.2.1", "10.0.0.1"))  # delivered
        sender.send(dgram("192.0.2.1", "203.0.113.9"))  # unrouted
        loop.run()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["net.delivered"]["values"]["r"] == 1
        assert counters["net.dropped"]["values"]["no_route|s"] == 1
        names = {(e["category"], e["name"]) for e in events_of(sink)}
        assert ("net", "packet_delivered") in names
        assert ("net", "packet_dropped") in names

    def test_loss_gets_its_own_drop_reason(self):
        obs, _sink = make_obs()
        loop = EventLoop(obs)
        net = Network(
            loop, random.Random(1), PathModel(jitter=0.0, loss_rate=1.0), obs=obs
        )
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        for _ in range(4):
            sender.send(dgram("192.0.2.1", "10.0.0.1"))
        loop.run()
        dropped = obs.metrics.counter("net.dropped", ("reason", "device"))
        assert dropped.sum_where(reason="loss") == 4
        # The compatibility view reads through to the same counters.
        assert net.stats.dropped_loss == 4
        assert net.stats.delivered == 0

    def test_stats_view_without_obs(self):
        loop = EventLoop()
        net = Network(loop, random.Random(1), PathModel(jitter=0.0))
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(sender)
        sender.send(dgram("192.0.2.1", "203.0.113.9"))
        loop.run()
        assert net.stats.dropped_unrouted == 1


class TestEventLoopInstrumentation:
    def test_run_start_and_end_events(self):
        obs, sink = make_obs()
        loop = EventLoop(obs)
        loop.schedule(1.0, lambda: None)
        loop.run()
        names = [(e["category"], e["name"]) for e in events_of(sink)]
        assert ("sim", "run_start") in names
        assert ("sim", "run_end") in names
        counters = obs.metrics.snapshot()["counters"]
        assert counters["sim.events_processed"]["values"][""] == 1
        gauges = obs.metrics.snapshot()["gauges"]
        assert "sim.sim_to_wall_ratio" in gauges

    def test_budget_raise_still_works_instrumented(self):
        import pytest

        obs, _sink = make_obs()
        loop = EventLoop(obs)

        def rearm():
            loop.schedule(0.001, rearm)

        loop.schedule(0.001, rearm)
        with pytest.raises(RuntimeError):
            loop.run(max_events=50)


class TestScenarioTracing:
    def test_tiny_scenario_emits_core_categories(self):
        from repro.workloads.scenario import ScenarioConfig, build_scenario

        obs, sink = make_obs()
        config = ScenarioConfig(seed=5).scaled(0.01)
        scenario = build_scenario(config, obs=obs)
        scenario.run()
        categories = {e["category"] for e in events_of(sink)}
        for expected in (
            "sim",
            "net",
            "lb",
            "transport",
            "recovery",
            "connectivity",
            "telescope",
            "workload",
        ):
            assert expected in categories, categories
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["telescope.captured"]["values"]
        hist = snapshot["histograms"]["telescope.payload_bytes"]
        assert hist["label_names"] == ["kind"]
        assert any(series["count"] for series in hist["values"].values())

    def test_classify_counts_every_drop(self):
        from repro.telescope.classify import classify_capture
        from repro.workloads.scenario import ScenarioConfig, build_scenario

        scenario = build_scenario(ScenarioConfig(seed=5).scaled(0.01))
        scenario.run()
        obs, sink = make_obs()
        capture = classify_capture(scenario.telescope.records, obs=obs)
        stage = obs.metrics.counter("sanitize.packets", ("stage",))
        kept = stage.value(stage="kept_backscatter") + stage.value(stage="kept_scan")
        assert kept == len(capture)
        dropped = stage.total() - kept
        assert dropped == capture.stats.removed
        drop_events = [
            e for e in events_of(sink) if (e["category"], e["name"]) == ("sanitize", "drop")
        ]
        assert len(drop_events) == capture.stats.removed
        assert all("reason" in e["data"] for e in drop_events)
