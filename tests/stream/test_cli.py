"""CLI surface of the streaming plane: live parity, trace tail, stats --follow.

The load-bearing assertion is byte parity: a ``repro live`` run driven
to completion prints exactly what batch ``repro analyze`` prints for the
same capture — for a single pcap and for a ``--no-merge`` shard set.
"""

import json

import pytest

from repro.cli import main
from repro.netstack.pcap import write_pcap
from repro.obs.metrics import MetricsRegistry
from repro.simnet.shard import plan_shards, run_shard
from repro.workloads.scenario import ScenarioConfig


def live_args(paths, *extra):
    return (
        ["live"]
        + list(paths)
        + ["--quiet", "--interval", "0", "--exit-idle", "1"]
        + list(extra)
    )


class TestLiveParity:
    def test_single_pcap_matches_analyze_byte_for_byte(self, pcap_copy, capsys):
        assert main(["analyze", pcap_copy, "--no-cache"]) == 0
        batch = capsys.readouterr().out
        assert main(live_args([pcap_copy], "--no-cache")) == 0
        live = capsys.readouterr().out
        assert live == batch

    def test_shard_set_matches_analyze_byte_for_byte(self, tmp_path, capsys):
        config = ScenarioConfig(seed=9).scaled(0.02)
        shards = plan_shards(config, 3)
        paths = []
        for shard in shards:
            records = run_shard(config, [unit.name for unit in shard.units])
            path = str(tmp_path / ("out.pcap.shard%d" % shard.index))
            write_pcap(path, records)
            paths.append(path)
        assert main(["analyze"] + paths + ["--no-cache"]) == 0
        batch = capsys.readouterr().out
        assert main(live_args(paths, "--no-cache")) == 0
        live = capsys.readouterr().out
        assert live == batch

    def test_cached_live_matches_uncached(self, pcap_copy, capsys):
        assert main(live_args([pcap_copy], "--no-cache")) == 0
        uncached = capsys.readouterr().out
        assert main(live_args([pcap_copy])) == 0  # builds + persists sidecar
        warm_build = capsys.readouterr().out
        assert main(live_args([pcap_copy])) == 0  # seeds from the sidecar
        warm_hit = capsys.readouterr().out
        assert warm_build == uncached
        assert warm_hit == uncached

    def test_missing_capture_fails_with_one_line(self, tmp_path, capsys):
        path = str(tmp_path / "never.pcap")
        assert main(live_args([path])) == 1
        captured = capsys.readouterr()
        assert "no capture appeared" in captured.err

    def test_dashboard_and_prom_file(self, pcap_copy, tmp_path, capsys):
        prom = str(tmp_path / "live.prom")
        assert (
            main(
                ["live", pcap_copy, "--interval", "0", "--exit-idle", "1",
                 "--no-cache", "--prom-file", prom]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Version mix (online)" in out
        assert "Table 2 — version adoption" in out  # final batch render
        text = open(prom).read()
        assert "stream_rows_fed" in text
        assert "stream_offnet_servers" in text


class TestTraceTail:
    def write_trace(self, path, events, tail_bytes=b""):
        with open(path, "wb") as fileobj:
            for event in events:
                fileobj.write(json.dumps(event).encode() + b"\n")
            fileobj.write(tail_bytes)

    def events(self):
        return [
            {"time": 1.5, "category": "engine", "name": "flight",
             "data": {"n": 1}},
            {"time": 2.0, "category": "quic", "name": "initial", "data": {}},
        ]

    def test_formats_events_one_per_line(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace")
        self.write_trace(path, self.events())
        assert (
            main(["trace", "tail", path, "--interval", "0", "--exit-idle", "1"])
            == 0
        )
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 2
        assert "engine:flight" in out[0] and '{"n":1}' in out[0]
        assert "quic:initial" in out[1]

    def test_raw_passthrough_and_malformed_note(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace")
        self.write_trace(path, self.events(), tail_bytes=b"{torn garbage\n")
        assert (
            main(
                ["trace", "tail", path, "--raw", "--interval", "0",
                 "--exit-idle", "1"]
            )
            == 0
        )
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert [json.loads(line) for line in lines] == self.events()
        assert "skipped 1 malformed line(s)" in captured.err

    def test_waiting_note_for_missing_file(self, tmp_path, capsys):
        path = str(tmp_path / "never.trace")
        assert (
            main(["trace", "tail", path, "--interval", "0", "--exit-idle", "2"])
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "waiting for" in captured.err


class TestStatsFollow:
    def snapshot_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("stream.polls").inc_key((), 4)
        registry.gauge("stream.rows_fed").set_key((), 123)
        path = str(tmp_path / "metrics.json")
        with open(path, "w") as fileobj:
            json.dump(registry.snapshot(), fileobj)
        return path

    def test_first_load_prints_the_full_snapshot(self, tmp_path, capsys):
        path = self.snapshot_file(tmp_path)
        assert main(["stats", path, "--follow", "0.01", "--updates", "1"]) == 0
        out = capsys.readouterr().out
        assert "stream.polls" in out
        assert "stream.rows_fed" in out

    def test_follow_matches_plain_stats_render(self, tmp_path, capsys):
        path = self.snapshot_file(tmp_path)
        assert main(["stats", path]) == 0
        plain = capsys.readouterr().out
        assert main(["stats", path, "--follow", "0.01", "--updates", "1"]) == 0
        followed = capsys.readouterr().out
        assert followed == plain
