"""Follow-a-file primitives: JSONL tailing and snapshot re-reading."""

import json
import os

from repro.stream.tail import JsonlTail, SnapshotTail


def append(path, text):
    with open(path, "ab") as fileobj:
        fileobj.write(text if isinstance(text, bytes) else text.encode())


class TestJsonlTail:
    def test_missing_file_returns_nothing(self, tmp_path):
        tail = JsonlTail(str(tmp_path / "nope.jsonl"))
        assert tail.poll() == []
        assert tail.offset == 0

    def test_appends_arrive_across_polls(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tail = JsonlTail(path)
        append(path, '{"a": 1}\n')
        assert tail.poll() == [{"a": 1}]
        assert tail.poll() == []
        append(path, '{"a": 2}\n{"a": 3}\n')
        assert tail.poll() == [{"a": 2}, {"a": 3}]

    def test_partial_trailing_line_is_buffered_not_torn(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tail = JsonlTail(path)
        append(path, '{"a": 1}\n{"a": ')  # writer caught mid-record
        assert tail.poll() == [{"a": 1}]
        append(path, "2}\n")
        assert tail.poll() == [{"a": 2}]
        assert tail.bad_lines == 0

    def test_bad_lines_counted_and_skipped(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tail = JsonlTail(path)
        append(path, 'not json\n{"ok": 1}\n[1, 2]\n\n')
        assert tail.poll() == [{"ok": 1}]
        assert tail.bad_lines == 2  # unparsable + non-object; blank skipped

    def test_truncation_resets_to_the_start(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tail = JsonlTail(path)
        append(path, '{"run": 1}\n{"run": 1}\n')
        assert len(tail.poll()) == 2
        with open(path, "wb") as fileobj:  # log rotated / path reused
            fileobj.write(b'{"run": 2}\n')
        assert tail.poll() == [{"run": 2}]
        assert tail.resets == 1
        assert tail.offset == os.path.getsize(path)


class TestSnapshotTail:
    def write(self, path, doc):
        with open(path, "w") as fileobj:
            json.dump(doc, fileobj)

    def test_missing_then_first_load(self, tmp_path):
        path = str(tmp_path / "m.json")
        tail = SnapshotTail(path)
        assert tail.poll() is None
        self.write(path, {"v": 1})
        assert tail.poll() == {"v": 1}

    def test_unchanged_file_reports_nothing(self, tmp_path):
        path = str(tmp_path / "m.json")
        self.write(path, {"v": 1})
        tail = SnapshotTail(path)
        assert tail.poll() == {"v": 1}
        assert tail.poll() is None

    def test_rewrite_is_detected(self, tmp_path):
        path = str(tmp_path / "m.json")
        self.write(path, {"v": 1})
        tail = SnapshotTail(path)
        assert tail.poll() == {"v": 1}
        self.write(path, {"v": 2, "extra": True})
        os.utime(path, ns=(0, os.stat(path).st_mtime_ns + 10**9))
        assert tail.poll() == {"v": 2, "extra": True}

    def test_mid_rewrite_garbage_retries_without_advancing(self, tmp_path):
        path = str(tmp_path / "m.json")
        self.write(path, {"v": 1})
        tail = SnapshotTail(path)
        assert tail.poll() == {"v": 1}
        with open(path, "w") as fileobj:  # writer truncated, not yet done
            fileobj.write('{"v": 2')
        os.utime(path, ns=(0, os.stat(path).st_mtime_ns + 10**9))
        assert tail.poll() is None  # invalid JSON: stamp must NOT advance
        append(path, "}")
        os.utime(path, ns=(0, os.stat(path).st_mtime_ns + 2 * 10**9))
        assert tail.poll() == {"v": 2}
