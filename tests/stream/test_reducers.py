"""Online reducers agree exactly with their batch counterparts.

Every test feeds the same columnar table the batch plane analyzes —
in deliberately uneven batches — and asserts the reducer state equals
the ``repro.core`` function computed over the whole capture at once.
"""

import pytest

from repro.core.packet_mix import packet_mix
from repro.core.offnet import extract_features
from repro.core.scid_entropy import nybble_matrix
from repro.core.scid_stats import scids_by_origin
from repro.core.versions import table2
from repro.obs.metrics import MetricsRegistry
from repro.stream import StreamAnalyses
from repro.stream.reducers import ScidAccumulator


def feed_unevenly(table):
    """One StreamAnalyses fed the full table in ragged batch sizes."""
    analyses = StreamAnalyses()
    sizes = [1, 7, 50, 3, 211, 19]
    start = 0
    step = 0
    while start < table.num_rows:
        end = min(start + sizes[step % len(sizes)], table.num_rows)
        analyses.feed(table, start, end)
        start = end
        step += 1
    return analyses


@pytest.fixture(scope="module")
def analyses(batch_view):
    return feed_unevenly(batch_view.table)


class TestScidAccumulator:
    def test_matrix_matches_batch_nybble_matrix(self):
        scids = [b"\x12\x34", b"\xab\xcd", b"\x12\x34", b"\x00\xff\x10"]
        accumulator = ScidAccumulator()
        added = [accumulator.add(s) for s in scids]
        assert added == [True, True, False, True]
        batch = nybble_matrix(set(scids))
        online = accumulator.matrix()
        assert online.freq == batch.freq
        assert online.sample_size == batch.sample_size
        assert online.position_totals == batch.position_totals

    def test_dominant_length(self):
        accumulator = ScidAccumulator()
        assert accumulator.dominant_length is None
        for scid in (b"\x01" * 8, b"\x02" * 8, b"\x03" * 4):
            accumulator.add(scid)
        assert accumulator.dominant_length == 8


class TestBatchParity:
    def test_rows_per_class(self, analyses, batch_view):
        assert analyses.rows["backscatter"] == len(batch_view.backscatter)
        assert analyses.rows["scan"] == len(batch_view.scans)
        assert analyses.rows_fed == batch_view.table.num_rows

    def test_version_mix_equals_table2(self, analyses, batch_view):
        shares = table2(batch_view)
        for code, side in ((1, "clients"), (0, "servers")):
            assert analyses.session_buckets[code] == shares[side].counts
            assert len(analyses._session_keys[code]) == shares[side].total

    def test_packet_mix_equals_table3(self, analyses, batch_view):
        batch = packet_mix(batch_view.backscatter + batch_view.scans)
        assert {o: dict(c) for o, c in analyses.packet_mix.items()} == {
            o: dict(c) for o, c in batch.counts.items()
        }

    def test_scids_equal_table4_populations(self, analyses, batch_view):
        batch = scids_by_origin(batch_view.backscatter)
        assert {o: a.scids for o, a in analyses.scids.items()} == batch
        for origin, scids in batch.items():
            online = analyses.matrix(origin)
            reference = nybble_matrix(scids)
            assert online.freq == reference.freq
            assert online.sample_size == reference.sample_size
            assert online.position_totals == reference.position_totals

    def test_offnet_counts_equal_extract_features(self, analyses, batch_view):
        features = extract_features(batch_view.backscatter)
        servers, low = analyses.offnet_counts()
        assert servers == len(features)
        assert low == sum(1 for f in features.values() if f.low_host_id())
        assert low > 0  # the scenario plants off-net caches; keep it honest

    def test_batching_is_irrelevant(self, analyses, batch_view):
        whole = StreamAnalyses()
        whole.feed(batch_view.table, 0, batch_view.table.num_rows)
        assert whole.snapshot() == analyses.snapshot()

    def test_span_covers_the_capture(self, analyses, batch_view):
        ts = batch_view.table.ts
        assert analyses.span_seconds == pytest.approx(max(ts) - min(ts))


class TestSnapshotAndPublish:
    def test_empty_reducers_are_safe(self):
        analyses = StreamAnalyses()
        snap = analyses.snapshot()
        assert snap["rows_fed"] == 0
        assert snap["sessions"]["clients"]["total"] == 0
        assert snap["span_seconds"] == 0.0
        analyses.publish(MetricsRegistry())  # no instruments needed: no-op
        analyses.publish(None)

    def test_snapshot_shape(self, analyses):
        snap = analyses.snapshot()
        assert set(snap) == {
            "rows",
            "rows_fed",
            "sessions",
            "packet_mix",
            "scids",
            "offnet",
            "span_seconds",
            "rows_per_sec",
        }
        for origin, entry in snap["scids"].items():
            assert set(entry) == {
                "unique",
                "lengths",
                "dominant_length",
                "structured",
                "max_chi2",
            }
            assert entry["unique"] == sum(entry["lengths"].values())

    def test_publish_mirrors_state_into_gauges(self, analyses, batch_view):
        registry = MetricsRegistry()
        analyses.publish(registry)
        rows = registry.gauge("stream.rows", ("klass",))
        assert rows.value(klass="backscatter") == len(batch_view.backscatter)
        assert rows.value(klass="scan") == len(batch_view.scans)
        sessions = registry.gauge("stream.sessions", ("side", "bucket"))
        shares = table2(batch_view)
        assert sessions.value(side="clients", bucket="total") == (
            shares["clients"].total
        )
        assert sessions.value(side="servers", bucket="QUICv1") == (
            shares["servers"].counts.get("QUICv1", 0)
        )
        servers, low = analyses.offnet_counts()
        assert registry.gauge("stream.offnet_servers").value() == servers
        assert registry.gauge("stream.offnet_low_host_id").value() == low
        assert registry.gauge("stream.rows_fed").value() == analyses.rows_fed

    def test_republish_is_idempotent(self, analyses):
        registry = MetricsRegistry()
        analyses.publish(registry)
        first = registry.snapshot()["gauges"]
        analyses.publish(registry)
        assert registry.snapshot()["gauges"] == first
