"""PcapFollower: a growing capture converges on the batch-built table."""

import os

import pytest

from repro.capstore import build_capture_table
from repro.capstore.cache import load_or_build, load_or_build_ex
from repro.netstack.pcap import GLOBAL_HEADER_SIZE, scan_pcap_offsets
from repro.obs.metrics import MetricsRegistry
from repro.stream import PcapFollower, StreamAnalyses, render_dashboard


def grow_in_steps(source, dest, cuts):
    """Yield after writing each prefix of ``source`` (record-aligned cuts
    plus a final whole-file step), simulating an appending writer."""
    data = open(source, "rb").read()
    offsets = scan_pcap_offsets(source)
    boundaries = [offsets[int(len(offsets) * cut)] for cut in cuts]
    for boundary in boundaries + [len(data)]:
        with open(dest, "wb") as fileobj:
            fileobj.write(data[:boundary])
        yield boundary


class TestFollowerGrowth:
    def test_stepwise_growth_equals_batch_build(self, stream_pcap, tmp_path):
        dest = str(tmp_path / "grow.pcap")
        follower = PcapFollower(dest, use_cache=False)
        analyses = StreamAnalyses()
        fed = 0
        for _boundary in grow_in_steps(stream_pcap, dest, [0.25, 0.5, 0.9]):
            follower.poll()
            analyses.feed(follower.table, fed, follower.num_rows)
            fed = follower.num_rows
        table, stats = build_capture_table(stream_pcap, workers=1)
        assert follower.table == table
        assert follower.stats == stats
        assert analyses.rows_fed == table.num_rows

    def test_torn_tail_bytes_are_left_for_the_next_poll(self, pcap_copy):
        data = open(pcap_copy, "rb").read()
        cut = scan_pcap_offsets(pcap_copy)[-1]
        with open(pcap_copy, "wb") as fileobj:
            fileobj.write(data[: cut + 5])  # last record header torn
        follower = PcapFollower(pcap_copy, use_cache=False)
        follower.poll()
        assert follower.offset == cut  # stopped at the record boundary
        partial = follower.num_rows
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(data[cut + 5 :])
        follower.poll()
        assert follower.num_rows > partial
        assert follower.offset == len(data)

    def test_waits_for_missing_file_and_header(self, tmp_path):
        path = str(tmp_path / "later.pcap")
        follower = PcapFollower(path, use_cache=False)
        assert follower.poll() == 0 and not follower.started
        with open(path, "wb") as fileobj:
            fileobj.write(b"\xd4\xc3\xb2\xa1")  # header still being written
        assert follower.poll() == 0 and not follower.started
        assert os.path.getsize(path) < GLOBAL_HEADER_SIZE

    def test_shrunk_capture_resets_and_reseeds(self, pcap_copy):
        follower = PcapFollower(pcap_copy, use_cache=False)
        follower.poll()
        rows = follower.num_rows
        assert rows > 0
        data = open(pcap_copy, "rb").read()
        cut = scan_pcap_offsets(pcap_copy)[len(scan_pcap_offsets(pcap_copy)) // 2]
        with open(pcap_copy, "wb") as fileobj:  # fresh run reusing the path
            fileobj.write(data[:cut])
        follower.poll()
        assert follower.resets == 1
        assert 0 < follower.num_rows < rows


class TestFollowerCache:
    def test_seeds_from_existing_sidecar(self, pcap_copy):
        load_or_build(pcap_copy)  # leaves a .capidx next to the copy
        follower = PcapFollower(pcap_copy)
        rows = follower.poll()
        assert follower.offset == os.path.getsize(pcap_copy)
        table, _stats = build_capture_table(pcap_copy, workers=1)
        assert rows == table.num_rows
        assert follower.table == table

    def test_finish_persists_a_sidecar_the_batch_plane_hits(self, pcap_copy):
        follower = PcapFollower(pcap_copy)
        follower.poll()
        follower.finish()
        result = load_or_build_ex(pcap_copy)
        assert result.status == "hit"
        assert result.view.table == follower.table

    def test_no_cache_never_writes_a_sidecar(self, pcap_copy):
        follower = PcapFollower(pcap_copy, use_cache=False)
        follower.poll()
        follower.finish()
        assert not os.path.exists(pcap_copy + ".capidx")
        assert os.listdir(os.path.dirname(pcap_copy)) == ["month.pcap"]


class TestDashboard:
    def test_render_covers_followers_and_reducers(self, pcap_copy):
        follower = PcapFollower(pcap_copy, use_cache=False)
        follower.poll()
        analyses = StreamAnalyses()
        analyses.feed(follower.table, 0, follower.num_rows)
        text = render_dashboard([follower], analyses, polls=3)
        assert "repro live — poll 3" in text
        assert "month.pcap" in text and "live" in text
        assert "Version mix (online)" in text
        assert "Per-origin mix (online)" in text
        assert "off-net servers:" in text

    def test_render_before_any_capture_appears(self, tmp_path):
        follower = PcapFollower(str(tmp_path / "nope.pcap"), use_cache=False)
        follower.poll()
        text = render_dashboard([follower], StreamAnalyses(), polls=1)
        assert "waiting" in text
        assert "0 rows fed" in text
