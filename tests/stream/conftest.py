"""Fixtures for the streaming plane tests.

One small simulated month is built once per session; tests that grow or
rewrite a capture (or cache against it) take a private copy first.  The
batch-built view of the same pcap is the parity oracle every streaming
test compares against.
"""

import shutil

import pytest

from repro.capstore import ClassifiedView, build_capture_table
from repro.cli import main


@pytest.fixture(scope="session")
def stream_pcap(tmp_path_factory):
    """A small simulated telescope month (no sidecar next to it)."""
    root = tmp_path_factory.mktemp("stream")
    path = str(root / "month.pcap")
    assert main(["simulate", path, "--scale", "0.04", "--seed", "11"]) == 0
    return path


@pytest.fixture
def pcap_copy(stream_pcap, tmp_path):
    """A private copy of the month pcap, safe to grow or cache against."""
    dest = tmp_path / "month.pcap"
    shutil.copy(stream_pcap, dest)
    return str(dest)


@pytest.fixture(scope="session")
def batch_view(stream_pcap):
    """The batch-plane truth the online reducers must agree with."""
    table, stats = build_capture_table(stream_pcap, workers=1)
    return ClassifiedView(table, stats)
