"""Darknet capture, acknowledged scanners, and the sanitization pipeline."""

import io
import random

import pytest

from repro.core.dissector import dissect_datagram
from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.netstack.addr import Prefix, parse_ip
from repro.netstack.pcap import PcapRecord
from repro.netstack.udp import UdpDatagram, encode_udp
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import PacketClass, classify_capture
from repro.telescope.darknet import Telescope
from repro.workloads.clients import ClientConnection


def quic_record(src, dst, sport, dport, ts=1.0, version=1, pad=1200):
    connection = ClientConnection(
        rng=random.Random(sport),
        src_ip=parse_ip(src),
        src_port=sport,
        dst_ip=parse_ip(dst),
        dst_port=dport,
        version=version,
        pad_to=pad,
    )
    datagram = connection.initial_datagram()
    # For backscatter-style records we need the source port to be 443.
    datagram = UdpDatagram(
        src_ip=datagram.src_ip,
        dst_ip=datagram.dst_ip,
        src_port=sport,
        dst_port=dport,
        payload=datagram.payload,
    )
    return PcapRecord(timestamp=ts, data=encode_udp(datagram))


def noise_record(src, dst, sport, dport, payload=b"\x16\x03\x03junk"):
    datagram = UdpDatagram(
        src_ip=parse_ip(src),
        dst_ip=parse_ip(dst),
        src_port=sport,
        dst_port=dport,
        payload=payload,
    )
    return PcapRecord(timestamp=1.0, data=encode_udp(datagram))


class TestTelescopeDevice:
    def test_records_and_serializes(self):
        telescope = Telescope(prefix="44.0.0.0/9")
        datagram = UdpDatagram(
            src_ip=parse_ip("1.2.3.4"),
            dst_ip=parse_ip("44.0.0.1"),
            src_port=443,
            dst_port=5,
            payload=b"x",
        )
        telescope.handle_datagram(datagram, 12.5)
        assert len(telescope) == 1
        buf = io.BytesIO()
        telescope.write_pcap(buf)
        buf.seek(0)
        records = Telescope.load_records(buf)
        assert len(records) == 1
        assert abs(records[0].timestamp - 12.5) < 1e-6

    def test_owns_prefix(self):
        telescope = Telescope()
        assert telescope.prefixes() == [Prefix.parse("44.0.0.0/9")]


class TestAcknowledgedScanners:
    def test_lookup(self):
        scanners = AcknowledgedScanners()
        scanners.register("141.212.0.0/16", "umich", "University of Michigan")
        assert scanners.is_acknowledged(parse_ip("141.212.5.5"))
        assert not scanners.is_acknowledged(parse_ip("141.213.5.5"))
        entry = scanners.lookup(parse_ip("141.212.1.1"))
        assert entry.name == "umich"
        assert len(scanners) == 1
        assert scanners.names == {"umich"}


class TestClassification:
    def test_backscatter_vs_scan_by_port(self):
        records = [
            quic_record("157.240.1.1", "44.1.1.1", 443, 4000),  # backscatter
            quic_record("5.6.7.8", "44.1.1.2", 4000, 443),  # scan
        ]
        capture = classify_capture(records)
        assert capture.stats.backscatter == 1
        assert capture.stats.scans == 1
        assert capture.backscatter[0].klass is PacketClass.BACKSCATTER

    def test_non_443_removed(self):
        capture = classify_capture([noise_record("1.1.1.1", "44.0.0.1", 53, 53)])
        assert capture.stats.non_port_443 == 1
        assert len(capture) == 0

    def test_non_udp_removed(self):
        capture = classify_capture([PcapRecord(1.0, b"\x45" + b"\x00" * 10)])
        assert capture.stats.non_udp == 1

    def test_dissector_removes_false_positives(self):
        capture = classify_capture(
            [noise_record("1.1.1.1", "44.0.0.1", 443, 9999)]
        )
        assert capture.stats.failed_dissection == 1

    def test_acknowledged_scanner_removed_from_scans(self):
        scanners = AcknowledgedScanners()
        scanners.register("141.212.0.0/16", "umich")
        records = [quic_record("141.212.1.1", "44.1.1.1", 5000, 443)]
        capture = classify_capture(records, acknowledged=scanners)
        assert capture.stats.acknowledged_scanner == 1
        assert capture.stats.scans == 0

    def test_acknowledged_source_does_not_affect_backscatter(self):
        scanners = AcknowledgedScanners()
        scanners.register("157.240.0.0/16", "oops")
        records = [quic_record("157.240.1.1", "44.1.1.1", 443, 4000)]
        capture = classify_capture(records, acknowledged=scanners)
        assert capture.stats.backscatter == 1

    def test_origin_mapping(self):
        db = AsDatabase.with_hypergiants()
        records = [quic_record("157.240.1.1", "44.1.1.1", 443, 4000)]
        capture = classify_capture(records, asdb=db)
        assert capture.backscatter[0].origin == "Facebook"

    def test_crypto_validation_rejects_corrupted_initial(self):
        record = quic_record("5.6.7.8", "44.1.1.2", 4000, 443)
        corrupted = bytearray(record.data)
        corrupted[-1] ^= 0xFF  # damage the AEAD tag
        capture = classify_capture(
            [PcapRecord(1.0, bytes(corrupted))], validate_crypto_scans=True
        )
        assert capture.stats.failed_dissection == 1

    def test_removed_share(self):
        records = [
            quic_record("5.6.7.8", "44.1.1.2", 4000, 443),
            noise_record("1.1.1.1", "44.0.0.1", 443, 9999),
        ]
        capture = classify_capture(records)
        assert capture.stats.removed == 1
        assert capture.stats.removed_share == pytest.approx(0.5)


class TestDissector:
    def test_accepts_valid_initial(self):
        record = quic_record("5.6.7.8", "44.1.1.2", 4000, 443)
        datagram = record.data[28:]  # strip IP+UDP headers
        dissected = dissect_datagram(datagram, validate_crypto=True)
        assert dissected.crypto_validated
        assert not dissected.coalesced

    def test_rejects_unknown_version(self):
        from repro.core.dissector import DissectError

        record = quic_record("5.6.7.8", "44.1.1.2", 4000, 443, version=0x12345678)
        with pytest.raises(DissectError):
            dissect_datagram(record.data[28:])

    def test_rejects_tiny_payload(self):
        from repro.core.dissector import DissectError

        with pytest.raises(DissectError):
            dissect_datagram(b"\xc0\x00\x00")

    def test_is_quic_datagram_helper(self):
        from repro.core.dissector import is_quic_datagram

        record = quic_record("5.6.7.8", "44.1.1.2", 4000, 443)
        assert is_quic_datagram(record.data[28:])
        assert not is_quic_datagram(b"\x16\x03\x03\x00\x01xxxxx")
