"""Fuzzing invariants: hostile bytes must never crash, only be rejected.

The engine, the dissector, and every codec face attacker-controlled input;
each must either parse correctly or raise its module's typed error —
nothing else, and never an unhandled exception.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dissector import DissectError, dissect_datagram
from repro.netstack.addr import parse_ip
from repro.netstack.udp import UdpDatagram, UdpParseError, decode_udp
from repro.quic.frames import FrameParseError, decode_frames
from repro.quic.packet import PacketParseError, decode_datagram, parse_long_header
from repro.quic.transport_params import TransportParamError, TransportParameters
from repro.server.engine import QuicServerEngine
from repro.server.profiles import facebook_profile, google_profile
from repro.simnet.eventloop import EventLoop
from repro.tls.certs import Certificate, CertificateError
from repro.tls.handshake import TlsParseError, decode_handshake


@settings(max_examples=300, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_packet_parser_never_crashes(data):
    try:
        parse_long_header(data)
    except PacketParseError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(min_size=0, max_size=400))
def test_datagram_decoder_never_crashes(data):
    try:
        decode_datagram(data)
    except PacketParseError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_frame_decoder_never_crashes(data):
    try:
        decode_frames(data)
    except FrameParseError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_dissector_never_crashes(data):
    try:
        dissect_datagram(data, validate_crypto=True)
    except DissectError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=120))
def test_transport_params_never_crash(data):
    try:
        TransportParameters.decode(data)
    except TransportParamError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=150))
def test_tls_decoder_never_crashes(data):
    try:
        decode_handshake(data)
    except TlsParseError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=120))
def test_certificate_decoder_never_crashes(data):
    try:
        Certificate.decode(data)
    except CertificateError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=0, max_size=120))
def test_udp_decoder_never_crashes(data):
    try:
        decode_udp(data)
    except (UdpParseError, ValueError):
        pass


class _Fuzzed:
    """Shared engine for the stateful datagram fuzz below."""

    def __init__(self, profile):
        self.loop = EventLoop()
        self.sent = []
        self.engine = QuicServerEngine(
            profile=profile,
            loop=self.loop,
            rng=random.Random(1),
            send=self.sent.append,
            host_id=3,
            worker_id=1,
        )


@settings(max_examples=250, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=300),
    sport=st.integers(min_value=1, max_value=65535),
)
def test_engine_survives_arbitrary_datagrams(payload, sport):
    """No byte sequence may crash the server or leak an exception."""
    fuzz = _Fuzzed(facebook_profile())
    datagram = UdpDatagram(
        src_ip=parse_ip("203.0.113.5"),
        dst_ip=parse_ip("157.240.1.1"),
        src_port=sport,
        dst_port=443,
        payload=payload,
    )
    fuzz.engine.on_datagram(datagram, 0.0)
    fuzz.loop.run()


@settings(max_examples=100, deadline=None)
@given(
    flips=st.lists(
        st.tuples(st.integers(0, 1199), st.integers(1, 255)),
        min_size=1,
        max_size=8,
    )
)
def test_engine_survives_corrupted_initials(flips):
    """Bit-flipped versions of a *valid* Initial exercise deeper paths."""
    from repro.workloads.clients import ClientConnection

    fuzz = _Fuzzed(google_profile())
    connection = ClientConnection(
        rng=random.Random(7),
        src_ip=parse_ip("203.0.113.9"),
        src_port=4444,
        dst_ip=parse_ip("142.250.0.1"),
    )
    datagram = connection.initial_datagram()
    data = bytearray(datagram.payload)
    for position, mask in flips:
        data[position % len(data)] ^= mask
    fuzz.engine.on_datagram(datagram.with_payload(bytes(data)), 0.0)
    fuzz.loop.run()


def test_engine_fuzz_still_functions_after_abuse():
    """After a fuzzing barrage the engine still serves real clients."""
    from repro.quic.packet import parse_long_header as plh
    from repro.workloads.clients import ClientConnection

    fuzz = _Fuzzed(facebook_profile())
    rng = random.Random(3)
    for i in range(300):
        fuzz.engine.on_datagram(
            UdpDatagram(
                src_ip=parse_ip("203.0.113.1"),
                dst_ip=parse_ip("157.240.1.1"),
                src_port=1024 + i,
                dst_port=443,
                payload=rng.randbytes(rng.randint(0, 100)),
            ),
            0.0,
        )
    connection = ClientConnection(
        rng=rng,
        src_ip=parse_ip("203.0.113.2"),
        src_port=5555,
        dst_ip=parse_ip("157.240.1.1"),
    )
    before = len(fuzz.sent)
    fuzz.engine.on_datagram(connection.initial_datagram(), 1.0)
    assert len(fuzz.sent) == before + 2  # a real flight went out
    assert plh(fuzz.sent[before].payload).scid  # with a server CID
