"""End-to-end: scenario → pcap → sanitization → every analysis.

These tests walk the same path as the benchmarks and assert the paper's
qualitative findings all hold at once on a single simulated month.
"""

import io

import pytest

from repro.core.offnet import evaluate_classifiers, extract_features
from repro.core.packet_mix import packet_mix
from repro.core.scid_stats import table4
from repro.core.summary import summarize
from repro.core.timing import timing_profiles
from repro.core.versions import table2
from repro.netstack.pcap import PcapReader
from repro.telescope.classify import classify_capture
from repro.workloads.scenario import april_2021_config, build_scenario


class TestPcapRoundtripPipeline:
    def test_analysis_works_from_pcap_bytes(self, small_scenario):
        """The pipeline must work on serialized captures, not just live
        objects — that is what makes it applicable to real telescope data."""
        buf = io.BytesIO()
        small_scenario.telescope.write_pcap(buf)
        buf.seek(0)
        records = list(PcapReader(buf))
        assert len(records) == len(small_scenario.telescope.records)
        capture = classify_capture(
            records,
            asdb=small_scenario.asdb,
            acknowledged=small_scenario.acknowledged,
        )
        assert capture.stats.backscatter > 0
        profiles = timing_profiles(capture.backscatter)
        assert profiles["Facebook"].initial_rto == pytest.approx(0.4, abs=0.05)


class TestPaperHeadlines:
    """Table 1, re-derived end to end."""

    def test_summary_matrix(self, small_capture):
        summary = summarize(small_capture.backscatter)
        rows = {
            name: (
                s.coalescence,
                s.server_chosen_ids,
                s.structured_scids,
                s.l7_load_balancers,
            )
            for name, s in summary.items()
        }
        assert rows["Cloudflare"] == (True, True, True, False)
        assert rows["Facebook"] == (False, True, True, True)
        assert rows["Google"] == (True, False, False, False)

    def test_sanitization_removes_majority(self, small_capture):
        """Paper: sanitization removes most raw packets (92% there)."""
        assert small_capture.stats.removed_share > 0.08
        assert small_capture.stats.acknowledged_scanner > (
            small_capture.stats.failed_dissection
        )

    def test_table4_fingerprints(self, small_capture):
        stats = table4(small_capture.backscatter)
        assert stats["Cloudflare"].dominant_length == 20
        assert stats["Facebook"].dominant_length == 8

    def test_offnet_detection_end_to_end(self, small_scenario, small_capture):
        features = extract_features(small_capture.backscatter)
        metrics = {
            m.name: m
            for m in evaluate_classifiers(features, small_scenario.certstore)
        }
        best = metrics["SCID off-net (low host ID)"]
        plain = metrics["SCID"]
        assert best.tpr == 1.0
        assert best.fpr <= plain.fpr
        assert best.precision >= plain.precision


class TestYearComparison:
    """Table 2 and §5 growth: 2021 vs 2022."""

    @pytest.fixture(scope="class")
    def capture_2021(self):
        config = april_2021_config()
        config = config.scaled(0.35)
        scenario = build_scenario(config)
        scenario.run()
        return scenario.classify()

    def test_version_shift_2021_to_2022(self, capture_2021, small_capture):
        old = table2(capture_2021)
        new = table2(small_capture)
        # 2021: draft-29 dominates, v1 absent; 2022: v1 dominates.
        assert old["servers"].share("draft-29") > 40
        assert old["servers"].share("QUICv1") < 5
        assert new["servers"].share("QUICv1") > 35
        assert new["servers"].share("draft-29") < 10
        assert old["clients"].share("QUICv1") < 5
        assert new["clients"].share("QUICv1") > 60

    def test_backscatter_growth(self, capture_2021, small_capture):
        """§5: backscatter grew ~4.4x from 2021 to 2022 (we scale the 2021
        scenario down further, so only the direction is asserted)."""
        assert small_capture.stats.backscatter > capture_2021.stats.backscatter


class TestVersionNegotiationRarity:
    def test_vn_seen_but_rare(self, small_capture):
        """The paper observed a VN from only one server."""
        vn = [
            p
            for p in small_capture.backscatter
            if p.packets[0].packet_type.label == "VersionNegotiation"
        ]
        assert len(vn) < small_capture.stats.backscatter * 0.02


class TestPacketMixConsistency:
    def test_mix_and_sessions_agree(self, small_capture):
        """Coalescence at the packet level implies shorter sessions."""
        from repro.core.session import SessionStore

        mix = packet_mix(small_capture.backscatter)
        store = SessionStore.from_packets(small_capture.backscatter)
        fb = store.by_origin("Facebook")
        gg = store.by_origin("Google")
        avg_fb = sum(s.datagram_count for s in fb) / len(fb)
        avg_gg = sum(s.datagram_count for s in gg) / len(gg)
        # Google coalesces and retransmits less -> fewer datagrams/session.
        assert avg_gg < avg_fb
