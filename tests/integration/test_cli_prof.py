"""CLI profiling plane: --profile, progress, trace merge, shard analyze."""

import glob
import json
import os

import pytest

from repro.cli import main
from repro.obs import validate_speedscope
from repro.obs.trace import read_trace

SCALE = "0.02"
SEED = "9"


@pytest.fixture(scope="module")
def profiled_run(tmp_path_factory):
    """One serial profiled simulate shared by the assertions below."""
    root = tmp_path_factory.mktemp("prof")
    pcap = str(root / "month.pcap")
    trace = str(root / "month.trace.jsonl")
    code = main(
        ["simulate", pcap, "--scale", SCALE, "--seed", SEED,
         "--profile", "--trace", trace]
    )
    assert code == 0
    return pcap, trace


@pytest.fixture(scope="module")
def sharded_run(tmp_path_factory):
    """A 4-worker profiled simulate with per-worker traces."""
    root = tmp_path_factory.mktemp("prof_sharded")
    pcap = str(root / "month.pcap")
    trace = str(root / "month.trace.jsonl")
    code = main(
        ["simulate", pcap, "--scale", SCALE, "--seed", SEED,
         "--workers", "4", "--profile", "--trace", trace]
    )
    assert code == 0
    return pcap, trace


class TestSimulateProfile:
    def test_speedscope_written_next_to_output_and_valid(self, profiled_run):
        pcap, _trace = profiled_run
        path = pcap + ".speedscope.json"
        assert os.path.exists(path)
        with open(path) as fileobj:
            doc = json.load(fileobj)
        assert validate_speedscope(doc) == []
        names = {frame["name"] for frame in doc["shared"]["frames"]}
        assert any(name.startswith("engine.flight") for name in names)
        assert "simulate.run" in names

    def test_summary_table_printed(self, tmp_path, capsys):
        pcap = str(tmp_path / "small.pcap")
        assert main(["simulate", pcap, "--scale", "0.01", "--seed", "3",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Profile (sampled every" in out
        assert "engine.flight" in out
        assert "Wrote speedscope profile" in out

    def test_span_events_present_in_trace(self, profiled_run):
        _pcap, trace = profiled_run
        spans = [e for e in read_trace(trace) if e["category"] == "span"]
        names = {event["name"] for event in spans}
        assert {"simulate.unit", "engine.flight", "simulate.run"} <= names
        flights = [e for e in spans if e["name"] == "engine.flight"]
        assert all(e["data"]["span"] > e["data"]["parent"] >= 0 for e in flights)

    def test_profile_does_not_perturb_the_simulation(self, profiled_run, tmp_path):
        pcap, _trace = profiled_run
        plain = str(tmp_path / "plain.pcap")
        assert main(["simulate", plain, "--scale", SCALE, "--seed", SEED]) == 0
        with open(pcap, "rb") as a, open(plain, "rb") as b:
            assert a.read() == b.read()


class TestProgressCommand:
    def test_serial_run_leaves_a_done_heartbeat(self, profiled_run):
        pcap, _trace = profiled_run
        beats = glob.glob(os.path.join(pcap + ".progress", "*.hb.json"))
        assert len(beats) == 1
        with open(beats[0]) as fileobj:
            doc = json.load(fileobj)
        assert doc["status"] == "done"
        assert doc["done"] > 0

    def test_progress_renders_finished_run(self, profiled_run, capsys):
        pcap, _trace = profiled_run
        assert main(["progress", pcap]) == 0
        out = capsys.readouterr().out
        assert "worker" in out
        assert "done" in out
        assert "0/1 workers running" in out

    def test_sharded_run_heartbeats_per_worker(self, sharded_run, capsys):
        pcap, _trace = sharded_run
        assert main(["progress", pcap]) == 0
        out = capsys.readouterr().out
        assert "0/4 workers running" in out

    def test_missing_target_is_a_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["progress", str(tmp_path / "never_ran.pcap")])
        assert "no progress directory" in str(excinfo.value)


class TestTraceMerge:
    def test_merged_timeline_identical_serial_vs_sharded(
        self, profiled_run, sharded_run, tmp_path, capsys
    ):
        """The satellite contract: one canonical timeline, any worker count."""
        _pcap1, trace1 = profiled_run
        _pcap2, trace2 = sharded_run
        worker_traces = sorted(glob.glob(trace2 + ".worker*"))
        assert len(worker_traces) == 4
        merged1 = str(tmp_path / "serial.jsonl")
        merged2 = str(tmp_path / "sharded.jsonl")
        assert main(["trace", "merge", merged1, trace1]) == 0
        assert main(["trace", "merge", merged2] + worker_traces) == 0
        out = capsys.readouterr().out
        assert "Merged" in out
        with open(merged1, "rb") as a, open(merged2, "rb") as b:
            serial_bytes = a.read()
            assert serial_bytes == b.read()
        assert serial_bytes  # non-trivial timeline

    def test_missing_input_is_a_one_line_error(self, tmp_path):
        out = str(tmp_path / "merged.jsonl")
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "merge", out, str(tmp_path / "gone.jsonl")])
        assert "no such trace file" in str(excinfo.value)


class TestShardConsumers:
    @pytest.fixture(scope="class")
    def unmerged_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("shards")
        pcap = str(root / "month.pcap")
        code = main(
            ["simulate", pcap, "--scale", SCALE, "--seed", SEED,
             "--workers", "2", "--no-merge"]
        )
        assert code == 0
        shards = sorted(glob.glob(pcap + ".shard*"))
        assert len(shards) == 2
        assert not os.path.exists(pcap)  # merge really skipped
        return pcap, shards

    def test_analyze_from_shards_equals_merged_analyze(
        self, unmerged_run, sharded_run, capsys
    ):
        _pcap, shards = unmerged_run
        merged_pcap, _trace = sharded_run
        assert main(["analyze"] + shards) == 0
        from_shards = capsys.readouterr().out
        assert main(["analyze", merged_pcap]) == 0
        from_merged = capsys.readouterr().out
        assert from_shards == from_merged

    def test_index_from_shards_reports_in_memory(self, unmerged_run, capsys):
        _pcap, shards = unmerged_run
        assert main(["index"] + shards) == 0
        out = capsys.readouterr().out
        assert "Indexed 2 shard pcaps in memory" in out
        assert "no sidecar written" in out
        assert not any(os.path.exists(path + ".capidx") for path in shards)

    def test_index_shards_reject_single_pcap_flags(self, unmerged_run):
        _pcap, shards = unmerged_run
        with pytest.raises(SystemExit) as excinfo:
            main(["index", "--info"] + shards)
        assert "single pcap" in str(excinfo.value)

    def test_missing_shard_is_a_one_line_error(self, unmerged_run, tmp_path):
        _pcap, shards = unmerged_run
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", shards[0], str(tmp_path / "gone.shard1")])
        assert "no such pcap" in str(excinfo.value)

    def test_keep_shards_leaves_both_merged_and_shards(self, tmp_path):
        pcap = str(tmp_path / "kept.pcap")
        assert main(["simulate", pcap, "--scale", "0.01", "--seed", "3",
                     "--workers", "2", "--keep-shards"]) == 0
        assert os.path.exists(pcap)
        assert len(glob.glob(pcap + ".shard*")) == 2

    def test_shard_flags_require_workers(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(tmp_path / "x.pcap"), "--scale", "0.01",
                  "--no-merge"])
        assert "--workers" in str(excinfo.value)


class TestOneLineErrors:
    def test_stats_diff_missing_snapshot(self, tmp_path):
        present = str(tmp_path / "a.json")
        with open(present, "w") as fileobj:
            fileobj.write("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "--diff", present, str(tmp_path / "b.json")])
        message = str(excinfo.value)
        assert "no such snapshot file" in message
        assert "\n" not in message

    def test_stats_diff_truncated_snapshot(self, tmp_path):
        good = str(tmp_path / "a.json")
        bad = str(tmp_path / "b.json")
        with open(good, "w") as fileobj:
            fileobj.write("{}")
        with open(bad, "w") as fileobj:
            fileobj.write('{"counters": {"x"')  # torn mid-write
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "--diff", good, bad])
        message = str(excinfo.value)
        assert "invalid snapshot JSON" in message
        assert "truncated" in message

    def test_trace_summarize_missing_file(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "summarize", str(tmp_path / "gone.jsonl")])
        message = str(excinfo.value)
        assert "trace summarize" in message
        assert "\n" not in message
