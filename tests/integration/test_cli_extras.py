"""Remaining CLI surfaces: length histograms and analyze-all flow."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli2") / "m.pcap")
    assert main(["simulate", path, "--scale", "0.05", "--seed", "77"]) == 0
    return path


def test_lengths_output(pcap_path, capsys):
    assert main(["analyze", pcap_path, "--tables", "lengths"]) == 0
    out = capsys.readouterr().out
    assert "Facebook" in out
    assert "1200" in out


def test_combined_selection(pcap_path, capsys):
    assert main(["analyze", pcap_path, "--tables", "1", "4"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 4" in out
    assert "Table 2" not in out


def test_seed_changes_capture(tmp_path):
    from repro.netstack.pcap import read_pcap

    a = str(tmp_path / "a.pcap")
    b = str(tmp_path / "b.pcap")
    main(["simulate", a, "--scale", "0.02", "--seed", "1"])
    main(["simulate", b, "--scale", "0.02", "--seed", "2"])
    assert read_pcap(a)[0].data != read_pcap(b)[0].data


def test_same_seed_reproducible(tmp_path):
    from repro.netstack.pcap import read_pcap

    a = str(tmp_path / "a.pcap")
    b = str(tmp_path / "b.pcap")
    main(["simulate", a, "--scale", "0.02", "--seed", "5"])
    main(["simulate", b, "--scale", "0.02", "--seed", "5"])
    records_a, records_b = read_pcap(a), read_pcap(b)
    assert len(records_a) == len(records_b)
    assert all(x.data == y.data for x, y in zip(records_a, records_b))
