"""Remaining CLI surfaces: length histograms and analyze-all flow."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli2") / "m.pcap")
    assert main(["simulate", path, "--scale", "0.05", "--seed", "77"]) == 0
    return path


def test_lengths_output(pcap_path, capsys):
    assert main(["analyze", pcap_path, "--tables", "lengths"]) == 0
    out = capsys.readouterr().out
    assert "Facebook" in out
    assert "1200" in out


def test_combined_selection(pcap_path, capsys):
    assert main(["analyze", pcap_path, "--tables", "1", "4"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 4" in out
    assert "Table 2" not in out


def test_seed_changes_capture(tmp_path):
    from repro.netstack.pcap import read_pcap

    a = str(tmp_path / "a.pcap")
    b = str(tmp_path / "b.pcap")
    main(["simulate", a, "--scale", "0.02", "--seed", "1"])
    main(["simulate", b, "--scale", "0.02", "--seed", "2"])
    assert read_pcap(a)[0].data != read_pcap(b)[0].data


def test_same_seed_reproducible(tmp_path):
    from repro.netstack.pcap import read_pcap

    a = str(tmp_path / "a.pcap")
    b = str(tmp_path / "b.pcap")
    main(["simulate", a, "--scale", "0.02", "--seed", "5"])
    main(["simulate", b, "--scale", "0.02", "--seed", "5"])
    records_a, records_b = read_pcap(a), read_pcap(b)
    assert len(records_a) == len(records_b)
    assert all(x.data == y.data for x, y in zip(records_a, records_b))


class TestSimulateWorkers:
    """`simulate --workers N`: the sharded runner behind the CLI flag."""

    def classify_stats(self, pcap, capsys):
        import json

        assert main(["classify", pcap, "--json"]) == 0
        return json.loads(capsys.readouterr().out)["stats"]

    def test_sharded_classifies_identically_to_serial(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.pcap")
        sharded = str(tmp_path / "sharded.pcap")
        assert main(["simulate", serial, "--scale", "0.02", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "workers" not in out
        assert main(
            ["simulate", sharded, "--scale", "0.02", "--seed", "9",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 workers" in out and "merged from" in out
        assert self.classify_stats(sharded, capsys) == self.classify_stats(
            serial, capsys
        )

    def test_workers_one_is_byte_identical_serial_path(self, tmp_path):
        a = str(tmp_path / "a.pcap")
        b = str(tmp_path / "b.pcap")
        assert main(["simulate", a, "--scale", "0.02", "--seed", "9"]) == 0
        assert main(
            ["simulate", b, "--scale", "0.02", "--seed", "9", "--workers", "1"]
        ) == 0
        with open(a, "rb") as x, open(b, "rb") as y:
            assert x.read() == y.read()

    def test_sharded_metrics_and_worker_traces(self, tmp_path):
        from repro.obs import load_snapshot
        from repro.obs.trace import read_trace

        pcap = str(tmp_path / "m.pcap")
        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.json")
        assert main(
            ["simulate", pcap, "--scale", "0.02", "--seed", "9",
             "--workers", "2", "--trace", trace, "--metrics", metrics]
        ) == 0
        snapshot = load_snapshot(metrics)
        assert snapshot["counters"]["net.delivered"]["values"]
        parent = list(read_trace(trace))
        assert any(e["name"] == "shard_plan" for e in parent)
        import glob

        worker_traces = sorted(glob.glob(trace + ".worker*"))
        assert worker_traces
        for worker_trace in worker_traces:
            assert list(read_trace(worker_trace))
