"""The command-line interface, exercised through main()."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def pcap_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "month.pcap")
    code = main(["simulate", path, "--scale", "0.05", "--seed", "42"])
    assert code == 0
    return path


class TestSimulate:
    def test_writes_pcap(self, pcap_path, capsys):
        from repro.netstack.pcap import read_pcap

        records = read_pcap(pcap_path)
        assert len(records) > 500

    def test_2021_mode(self, tmp_path, capsys):
        path = str(tmp_path / "old.pcap")
        assert main(["simulate", path, "--year", "2021", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "2021" in out


class TestClassify:
    def test_prints_stage_table(self, pcap_path, capsys):
        assert main(["classify", pcap_path]) == 0
        out = capsys.readouterr().out
        assert "backscatter kept" in out
        assert "acknowledged scanners" in out


class TestAnalyze:
    def test_default_tables(self, pcap_path, capsys):
        assert main(["analyze", pcap_path]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Table 4" in out

    def test_selected_outputs(self, pcap_path, capsys):
        assert main(["analyze", pcap_path, "--tables", "rto"]) == 0
        out = capsys.readouterr().out
        assert "retransmission" in out
        assert "Table 2" not in out

    def test_rto_values_visible(self, pcap_path, capsys):
        main(["analyze", pcap_path, "--tables", "rto"])
        out = capsys.readouterr().out
        assert "0.40" in out  # Facebook
        assert "0.30" in out  # Google


class TestProbe:
    def test_enumerate(self, capsys):
        assert main(
            ["probe", "enumerate", "--hosts", "6", "--handshakes", "150"]
        ) == 0
        out = capsys.readouterr().out
        assert "Enumerated 6 L7LBs" in out

    def test_lb_type(self, capsys):
        assert main(["probe", "lb-type", "--hosts", "6"]) == 0
        out = capsys.readouterr().out
        assert "5-tuple" in out
        assert "cid-aware" in out

    def test_migration(self, capsys):
        assert main(["probe", "migration", "--hosts", "6"]) == 0
        out = capsys.readouterr().out
        assert "QuicLB" in out
        assert "survived" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_pcap_argument(self):
        with pytest.raises(SystemExit):
            main(["classify"])
