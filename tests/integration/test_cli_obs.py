"""CLI observability surface: --trace, --metrics, --json, and `repro stats`."""

import json

import pytest

from repro.cli import main
from repro.obs import load_snapshot
from repro.obs.trace import read_trace


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced + metered simulate, shared by the assertions below."""
    root = tmp_path_factory.mktemp("obs")
    pcap = str(root / "month.pcap")
    trace = str(root / "month.qlog.jsonl")
    metrics = str(root / "month.metrics.json")
    code = main(
        [
            "simulate", pcap, "--scale", "0.05", "--seed", "42",
            "--trace", trace, "--metrics", metrics,
        ]
    )
    assert code == 0
    return pcap, trace, metrics


class TestSimulateTracing:
    def test_trace_is_valid_jsonl_with_required_fields(self, traced_run):
        _pcap, trace, _metrics = traced_run
        events = list(read_trace(trace))
        assert len(events) > 1000
        for event in events[:50] + events[-50:]:
            assert set(("time", "category", "name")) <= set(event)

    def test_at_least_eight_distinct_categories(self, traced_run):
        _pcap, trace, _metrics = traced_run
        categories = {event["category"] for event in read_trace(trace)}
        assert len(categories) >= 8, categories

    def test_metrics_snapshot_contents(self, traced_run):
        _pcap, _trace, metrics = traced_run
        snapshot = load_snapshot(metrics)
        assert snapshot["counters"]["net.delivered"]["values"]
        assert snapshot["counters"]["engine.events"]["values"]
        hist = snapshot["histograms"]["telescope.payload_bytes"]
        assert hist["label_names"] == ["kind"]
        assert any(series["count"] for series in hist["values"].values())
        for stage in ("build_scenario", "simulate", "write_pcap"):
            assert snapshot["timers"][stage]["calls"] == 1

    def test_untraced_output_identical(self, traced_run, tmp_path):
        """Tracing must not perturb the simulation (pure observation)."""
        pcap, _trace, _metrics = traced_run
        plain = str(tmp_path / "plain.pcap")
        assert main(["simulate", plain, "--scale", "0.05", "--seed", "42"]) == 0
        with open(pcap, "rb") as a, open(plain, "rb") as b:
            assert a.read() == b.read()


class TestClassifyObs:
    def test_json_mode(self, traced_run, capsys):
        pcap, _trace, _metrics = traced_run
        assert main(["classify", pcap, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        assert stats["total_records"] > 0
        kept = stats["backscatter"] + stats["scans"]
        assert kept + stats["removed"] == stats["total_records"]
        counters = payload["metrics"]["counters"]["sanitize.packets"]["values"]
        assert counters["kept_backscatter"] == stats["backscatter"]
        assert "classify" in payload["metrics"]["timers"]

    def test_classify_metrics_flag(self, traced_run, tmp_path, capsys):
        pcap, _trace, _metrics = traced_run
        out = str(tmp_path / "classify.metrics.json")
        assert main(["classify", pcap, "--metrics", out]) == 0
        snapshot = load_snapshot(out)
        assert snapshot["counters"]["sanitize.packets"]["values"]


class TestStatsCommand:
    def test_renders_tables_and_histograms(self, traced_run, capsys):
        _pcap, _trace, metrics = traced_run
        assert main(["stats", metrics]) == 0
        out = capsys.readouterr().out
        assert "Stage timings" in out
        assert "Counters" in out
        assert "net.delivered" in out
        assert "telescope.payload_bytes" in out
        assert "#" in out  # histogram bars

    def test_probe_with_metrics(self, tmp_path, capsys):
        out = str(tmp_path / "probe.metrics.json")
        assert main(
            ["probe", "enumerate", "--hosts", "4", "--handshakes", "60",
             "--metrics", out]
        ) == 0
        snapshot = load_snapshot(out)
        assert "probe.enumerate" in snapshot["timers"]
        assert snapshot["counters"]["lb.dispatch"]["values"]

    def test_analyze_with_metrics(self, traced_run, tmp_path, capsys):
        pcap, _trace, _metrics = traced_run
        out = str(tmp_path / "analyze.metrics.json")
        assert main(["analyze", pcap, "--tables", "2", "--metrics", out]) == 0
        snapshot = load_snapshot(out)
        timers = snapshot["timers"]
        assert "analyze" in timers
        # Cold runs build the columnar index, warm runs load the sidecar —
        # either way the capstore stage shows up in the timings.
        assert "index.build" in timers or "index.load" in timers
        cache = snapshot["counters"]["capstore.cache"]["values"]
        assert sum(cache.values()) == 1


class TestStatsDiff:
    def test_diff_reports_deltas_and_percentages(self, traced_run, tmp_path, capsys):
        _pcap, _trace, metrics = traced_run
        other_pcap = str(tmp_path / "small.pcap")
        other_metrics = str(tmp_path / "small.metrics.json")
        assert main(
            ["simulate", other_pcap, "--scale", "0.02", "--seed", "42",
             "--metrics", other_metrics]
        ) == 0
        assert main(["stats", "--diff", metrics, other_metrics]) == 0
        out = capsys.readouterr().out
        assert "Snapshot diff" in out
        assert "net.delivered" in out
        assert "%" in out
        assert "changed," in out and "unchanged" in out

    def test_diff_identical_snapshots(self, traced_run, capsys):
        _pcap, _trace, metrics = traced_run
        assert main(["stats", "--diff", metrics, metrics]) == 0
        out = capsys.readouterr().out
        assert "0 changed" in out

    def test_stats_without_args_errors(self, capsys):
        assert main(["stats"]) == 2
        assert "--diff" in capsys.readouterr().out


class TestTraceSummarize:
    def test_summarize_full_trace(self, traced_run, capsys):
        _pcap, trace, _metrics = traced_run
        assert main(["trace", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "types" in out
        assert "Events per category" in out
        assert "Top" in out
        assert "transport:" in out

    def test_summarize_missing_events(self, tmp_path, capsys):
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        assert main(["trace", "summarize", empty]) == 1

    def test_truncated_tail_notice_goes_to_stderr(self, traced_run, tmp_path, capsys):
        """Crash-dump tails are reported on stderr; stdout stays clean."""
        _pcap, trace, _metrics = traced_run
        truncated = str(tmp_path / "truncated.jsonl")
        with open(trace) as src, open(truncated, "w") as dst:
            for _ in range(20):
                dst.write(src.readline())
            dst.write('{"time": 1.0, "category": "sim", "na')  # torn write
        assert main(["trace", "summarize", truncated]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.err
        assert truncated in captured.err
        assert "truncated write" not in captured.out
        assert "Events per category" in captured.out


class TestAlwaysOnSinks:
    @pytest.fixture(scope="class")
    def sampled_run(self, tmp_path_factory):
        """simulate with sampling, a ring dump, and Prometheus file export."""
        root = tmp_path_factory.mktemp("sinks")
        pcap = str(root / "s.pcap")
        trace = str(root / "s.qlog.jsonl")
        ring = str(root / "ring.qlog.jsonl")
        prom = str(root / "repro.prom")
        assert main(
            ["simulate", pcap, "--scale", "0.05", "--seed", "42",
             "--trace", trace, "--trace-sample", "16", "--prom-file", prom]
        ) == 0
        ring_pcap = str(root / "r.pcap")
        assert main(
            ["simulate", ring_pcap, "--scale", "0.05", "--seed", "42",
             "--trace", ring, "--trace-ring", "256"]
        ) == 0
        return pcap, trace, ring, prom

    def test_sampled_trace_is_thinner_but_typed(self, traced_run, sampled_run):
        _pcap, full_trace, _metrics = traced_run
        _pcap2, sampled_trace, _ring, _prom = sampled_run
        full = list(read_trace(full_trace))
        sampled = list(read_trace(sampled_trace))
        assert 0 < len(sampled) < len(full) / 2
        assert all("sampled" in e.get("data", {}) for e in sampled)

    def test_sampling_does_not_perturb_simulation(self, traced_run, sampled_run):
        pcap_full, _trace, _metrics = traced_run
        pcap_sampled, _strace, _ring, _prom = sampled_run
        with open(pcap_full, "rb") as a, open(pcap_sampled, "rb") as b:
            assert a.read() == b.read()

    def test_summarize_reports_presampling_estimate(self, sampled_run, capsys):
        _pcap, trace, _ring, _prom = sampled_run
        assert main(["trace", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "sampled; estimated" in out
        assert "estimated" in out  # rescaled column present

    def test_ring_dump_holds_last_events(self, sampled_run):
        _pcap, _trace, ring, _prom = sampled_run
        events = list(read_trace(ring))
        assert len(events) == 256
        # the dump is the tail of the run: run_end is in the window
        assert events[-1]["category"] == "sim"
        assert events[-1]["name"] == "run_end"

    def test_prom_file_written_with_transport_counters(self, sampled_run):
        _pcap, _trace, _ring, prom = sampled_run
        with open(prom) as fileobj:
            content = fileobj.read()
        assert "# TYPE transport_datagrams_sent_total counter" in content
        assert "transport_datagrams_sent_total{profile=" in content
        assert "transport_datagram_bytes_bucket" in content
        assert "net_delivered_total" in content

    def test_ring_without_trace_file_rejected(self, tmp_path):
        pcap = str(tmp_path / "x.pcap")
        with pytest.raises(SystemExit):
            main(["simulate", pcap, "--scale", "0.02", "--trace-ring", "64"])

    def test_ring_signal_flag_installs_live_dump(self, tmp_path):
        """--trace-ring-signal arms SIGUSR1; a kill mid-process dumps the ring."""
        import os
        import signal

        if not hasattr(signal, "SIGUSR1"):
            pytest.skip("platform without SIGUSR1")
        previous = signal.getsignal(signal.SIGUSR1)
        pcap = str(tmp_path / "sig.pcap")
        ring = str(tmp_path / "sig.qlog.jsonl")
        try:
            assert main(
                ["simulate", pcap, "--scale", "0.02", "--seed", "42",
                 "--trace", ring, "--trace-ring", "128", "--trace-ring-signal"]
            ) == 0
            # The handler stays armed after main() returns; firing it now
            # re-dumps the retained window over the close-time dump.
            os.unlink(ring)
            os.kill(os.getpid(), signal.SIGUSR1)
            events = list(read_trace(ring))
            assert events
            assert events[-1]["name"] == "run_end"
        finally:
            signal.signal(signal.SIGUSR1, previous)
