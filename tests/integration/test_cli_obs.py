"""CLI observability surface: --trace, --metrics, --json, and `repro stats`."""

import json

import pytest

from repro.cli import main
from repro.obs import load_snapshot
from repro.obs.trace import read_trace


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced + metered simulate, shared by the assertions below."""
    root = tmp_path_factory.mktemp("obs")
    pcap = str(root / "month.pcap")
    trace = str(root / "month.qlog.jsonl")
    metrics = str(root / "month.metrics.json")
    code = main(
        [
            "simulate", pcap, "--scale", "0.05", "--seed", "42",
            "--trace", trace, "--metrics", metrics,
        ]
    )
    assert code == 0
    return pcap, trace, metrics


class TestSimulateTracing:
    def test_trace_is_valid_jsonl_with_required_fields(self, traced_run):
        _pcap, trace, _metrics = traced_run
        events = list(read_trace(trace))
        assert len(events) > 1000
        for event in events[:50] + events[-50:]:
            assert set(("time", "category", "name")) <= set(event)

    def test_at_least_eight_distinct_categories(self, traced_run):
        _pcap, trace, _metrics = traced_run
        categories = {event["category"] for event in read_trace(trace)}
        assert len(categories) >= 8, categories

    def test_metrics_snapshot_contents(self, traced_run):
        _pcap, _trace, metrics = traced_run
        snapshot = load_snapshot(metrics)
        assert snapshot["counters"]["net.delivered"]["values"]
        assert snapshot["counters"]["engine.events"]["values"]
        hist = snapshot["histograms"]["telescope.payload_bytes"]
        assert hist["label_names"] == ["kind"]
        assert any(series["count"] for series in hist["values"].values())
        for stage in ("build_scenario", "simulate", "write_pcap"):
            assert snapshot["timers"][stage]["calls"] == 1

    def test_untraced_output_identical(self, traced_run, tmp_path):
        """Tracing must not perturb the simulation (pure observation)."""
        pcap, _trace, _metrics = traced_run
        plain = str(tmp_path / "plain.pcap")
        assert main(["simulate", plain, "--scale", "0.05", "--seed", "42"]) == 0
        with open(pcap, "rb") as a, open(plain, "rb") as b:
            assert a.read() == b.read()


class TestClassifyObs:
    def test_json_mode(self, traced_run, capsys):
        pcap, _trace, _metrics = traced_run
        assert main(["classify", pcap, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        assert stats["total_records"] > 0
        kept = stats["backscatter"] + stats["scans"]
        assert kept + stats["removed"] == stats["total_records"]
        counters = payload["metrics"]["counters"]["sanitize.packets"]["values"]
        assert counters["kept_backscatter"] == stats["backscatter"]
        assert "classify" in payload["metrics"]["timers"]

    def test_classify_metrics_flag(self, traced_run, tmp_path, capsys):
        pcap, _trace, _metrics = traced_run
        out = str(tmp_path / "classify.metrics.json")
        assert main(["classify", pcap, "--metrics", out]) == 0
        snapshot = load_snapshot(out)
        assert snapshot["counters"]["sanitize.packets"]["values"]


class TestStatsCommand:
    def test_renders_tables_and_histograms(self, traced_run, capsys):
        _pcap, _trace, metrics = traced_run
        assert main(["stats", metrics]) == 0
        out = capsys.readouterr().out
        assert "Stage timings" in out
        assert "Counters" in out
        assert "net.delivered" in out
        assert "telescope.payload_bytes" in out
        assert "#" in out  # histogram bars

    def test_probe_with_metrics(self, tmp_path, capsys):
        out = str(tmp_path / "probe.metrics.json")
        assert main(
            ["probe", "enumerate", "--hosts", "4", "--handshakes", "60",
             "--metrics", out]
        ) == 0
        snapshot = load_snapshot(out)
        assert "probe.enumerate" in snapshot["timers"]
        assert snapshot["counters"]["lb.dispatch"]["values"]

    def test_analyze_with_metrics(self, traced_run, tmp_path, capsys):
        pcap, _trace, _metrics = traced_run
        out = str(tmp_path / "analyze.metrics.json")
        assert main(["analyze", pcap, "--tables", "2", "--metrics", out]) == 0
        snapshot = load_snapshot(out)
        for stage in ("read_pcap", "classify", "analyze"):
            assert stage in snapshot["timers"]
