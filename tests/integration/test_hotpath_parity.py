"""End-to-end parity gate for the write-side template plane.

The strongest form of the hot-path contract: the same scenario simulated
with the fast paths on and off writes byte-identical pcaps, and the
``--workers auto`` spelling resolves to a run that matches an explicit
worker count.
"""

import filecmp

import pytest

from repro import hotpath
from repro.cli import main
from repro.quic.crypto.memo import clear_crypto_memos


@pytest.fixture(autouse=True)
def _hotpath_reset():
    clear_crypto_memos()
    hotpath.set_enabled(True)
    yield
    clear_crypto_memos()
    hotpath.set_enabled(True)


def test_pcap_identical_with_hotpath_disabled(tmp_path):
    fast = str(tmp_path / "fast.pcap")
    slow = str(tmp_path / "slow.pcap")
    assert main(["simulate", fast, "--scale", "0.02", "--seed", "42"]) == 0
    hotpath.set_enabled(False)
    clear_crypto_memos()
    assert main(["simulate", slow, "--scale", "0.02", "--seed", "42"]) == 0
    assert filecmp.cmp(fast, slow, shallow=False)


def test_workers_auto_matches_serial(tmp_path):
    auto = str(tmp_path / "auto.pcap")
    serial = str(tmp_path / "serial.pcap")
    assert (
        main(["simulate", auto, "--scale", "0.02", "--seed", "42", "--workers", "auto"])
        == 0
    )
    assert main(["simulate", serial, "--scale", "0.02", "--seed", "42"]) == 0
    assert filecmp.cmp(auto, serial, shallow=False)


def test_workers_rejects_garbage():
    with pytest.raises(SystemExit):
        main(["simulate", "/tmp/x.pcap", "--workers", "many"])
