"""Failure injection: loss, corruption, and hostile inputs.

The pipeline must stay correct when the network drops packets, when
captures contain corrupted bytes, and when counts are tiny.
"""

import random

import pytest

from repro.active.prober import Prober
from repro.core.timing import timing_profiles
from repro.netstack.pcap import PcapRecord
from repro.telescope.classify import classify_capture
from repro.workloads.scenario import (
    ScenarioConfig,
    build_lb_lab,
    build_scenario,
)


class TestPacketLoss:
    def test_handshakes_complete_despite_loss(self):
        """Client retries are not modelled, but server retransmissions
        recover from lost flights."""
        lab = build_lb_lab(google_hosts=4, facebook_hosts=4, seed=3)
        lab.network.path.loss_rate = 0.2
        prober = Prober(lab.loop, lab.network, timeout=10.0)
        completed = 0
        for _ in range(30):
            result = prober.handshake(lab.vips("Facebook")[0], timeout=10.0)
            completed += result.completed
        # With a 20% loss rate most handshakes still complete (server
        # retransmits its flight on the RTO ladder).
        assert completed >= 20

    def test_lossy_telescope_still_yields_rto_estimates(self):
        config = ScenarioConfig(
            facebook_clusters=2,
            google_clusters=1,
            cloudflare_clusters=1,
            remaining_servers=10,
            facebook_offnets=2,
            cloudflare_offnets=0,
            attacks_facebook=150,
            attacks_google=80,
            attacks_cloudflare=20,
            attacks_offnet=30,
            attacks_remaining=30,
            research_scan_packets=200,
            unknown_scan_packets=100,
            zero_rtt_scan_packets=0,
            noise_packets=50,
        )
        scenario = build_scenario(config)
        scenario.network.path.loss_rate = 0.1
        scenario.run()
        capture = scenario.classify()
        profiles = timing_profiles(capture.backscatter)
        # Despite 10% loss, the RTO mode survives.
        assert profiles["Facebook"].initial_rto == pytest.approx(0.4, abs=0.06)


class TestCorruptedCaptures:
    def test_truncated_and_garbled_records_are_skipped(self, small_scenario):
        rng = random.Random(7)
        records = list(small_scenario.telescope.records[:500])
        mangled = []
        for record in records:
            roll = rng.random()
            if roll < 0.1:
                mangled.append(PcapRecord(record.timestamp, record.data[:10]))
            elif roll < 0.2:
                data = bytearray(record.data)
                data[rng.randrange(len(data))] ^= 0xFF
                mangled.append(PcapRecord(record.timestamp, bytes(data)))
            else:
                mangled.append(record)
        capture = classify_capture(mangled, asdb=small_scenario.asdb)
        # No exception, and the majority of intact records classified.
        assert len(capture) > 300
        assert capture.stats.total_records == 500

    def test_empty_capture(self):
        capture = classify_capture([])
        assert len(capture) == 0
        assert capture.stats.removed_share == 0.0

    def test_all_garbage_capture(self):
        records = [
            PcapRecord(float(i), bytes([i % 256]) * (i % 40 + 1))
            for i in range(50)
        ]
        capture = classify_capture(records)
        assert len(capture) == 0
        assert capture.stats.removed == 50


class TestTinyScenarios:
    def test_single_attack_packet(self):
        config = ScenarioConfig(
            facebook_clusters=1,
            google_clusters=1,
            cloudflare_clusters=1,
            remaining_servers=2,
            facebook_offnets=1,
            cloudflare_offnets=0,
            attacks_facebook=1,
            attacks_google=1,
            attacks_cloudflare=1,
            attacks_offnet=1,
            attacks_remaining=1,
            telescope_bias=1.0,
            research_scan_packets=1,
            unknown_scan_packets=1,
            zero_rtt_scan_packets=0,
            noise_packets=1,
        )
        scenario = build_scenario(config)
        scenario.run()
        capture = scenario.classify()
        # Every spoofed packet had a telescope source -> backscatter exists.
        assert capture.stats.backscatter > 0
        profiles = timing_profiles(capture.backscatter)
        assert profiles  # analyses cope with single-session populations
