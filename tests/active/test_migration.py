"""Client migration across load-balancer fabrics (paper §2.2)."""

import pytest

from repro.active.migration import migration_matrix, migration_probe
from repro.active.prober import Prober
from repro.workloads.scenario import build_lb_lab


@pytest.fixture(scope="module")
def lab():
    return build_lb_lab(
        google_hosts=10, facebook_hosts=10, quic_lb_hosts=10, seed=5
    )


@pytest.fixture(scope="module")
def prober(lab):
    return Prober(lab.loop, lab.network)


class TestNewConnectionIds:
    def test_server_issues_spare_cid(self, lab, prober):
        result = prober.handshake(lab.vips("Facebook")[0])
        prober.advance(0.3)
        assert result.new_connection_ids
        assert result.new_connection_ids[0] != result.server_scid

    def test_google_rotated_cid_is_not_an_echo(self, lab, prober):
        """Echo schemes cannot mint fresh IDs: rotation must be random."""
        result = prober.handshake(lab.vips("Google")[0])
        prober.advance(0.3)
        assert result.new_connection_ids
        assert result.new_connection_ids[0] != result.server_scid

    def test_quic_lb_rotated_cid_same_server_id(self, lab, prober):
        from repro.quic.cid import quic_lb
        from repro.server.profiles import quic_lb_profile

        config = quic_lb_profile().cid_scheme.config
        result = prober.handshake(lab.vips("QuicLB")[0])
        prober.advance(0.3)
        original_sid, _ = quic_lb.decode(config, result.server_scid)
        rotated_sid, _ = quic_lb.decode(config, result.new_connection_ids[0])
        assert original_sid == rotated_sid


class TestMigrationOutcomes:
    def test_facebook_5tuple_breaks_migration(self, lab, prober):
        outcomes = [
            migration_probe(prober, lab.vips("Facebook")[i % 8])
            for i in range(6)
        ]
        # A new 5-tuple rehashes to a different L7LB almost always.
        assert sum(o.survived for o in outcomes) <= 1

    def test_google_cid_aware_survives_same_cid(self, lab, prober):
        outcomes = [
            migration_probe(prober, lab.vips("Google")[i % 8]) for i in range(4)
        ]
        assert all(o.survived for o in outcomes)

    def test_google_rotated_cid_breaks(self, lab, prober):
        """§2.2: the CID transition is hidden even from a CID-aware L4LB."""
        outcomes = [
            migration_probe(prober, lab.vips("Google")[i % 8], rotate_cid=True)
            for i in range(4)
        ]
        assert not any(o.survived for o in outcomes)

    def test_quic_lb_survives_both(self, lab, prober):
        for rotate in (False, True):
            outcomes = [
                migration_probe(
                    prober, lab.vips("QuicLB")[i % 8], rotate_cid=rotate
                )
                for i in range(4)
            ]
            assert all(o.survived for o in outcomes)

    def test_matrix_helper(self, lab, prober):
        matrix = migration_matrix(
            {
                "Google": (prober, lab.vips("Google")[:4]),
                "QuicLB": (prober, lab.vips("QuicLB")[:4]),
            },
            probes_per_cell=4,
        )
        assert matrix["Google"]["same_cid"] == 1.0
        assert matrix["Google"]["rotated_cid"] == 0.0
        assert matrix["QuicLB"]["rotated_cid"] == 1.0


class TestStatelessReset:
    def test_unknown_cid_triggers_reset(self, lab):
        """1-RTT packets for unknown connections get a stateless reset."""
        prober = Prober(lab.loop, lab.network)
        result = prober.handshake(lab.vips("Facebook")[1])
        connection = prober.last_connection
        # Forge a probe to a CID nobody issued.
        datagram = connection.migration_datagram(
            prober.take_port(), dcid=b"\xde\xad" * 4
        )
        prober.host.send_raw(datagram)
        prober.advance(1.0)
        cluster = lab.clusters["Facebook"][0]
        stats = cluster.engine_stats()
        assert stats.get("stateless_resets_sent", 0) >= 1

    def test_migration_counted_by_engine(self, lab):
        prober = Prober(lab.loop, lab.network)
        outcome = migration_probe(prober, lab.vips("Google")[3])
        assert outcome.survived
        cluster = lab.clusters["Google"][0]
        assert cluster.engine_stats().get("migrations_accepted", 0) >= 1
