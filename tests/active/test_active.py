"""Active prober and the Appendix-D load-balancer inference."""

import pytest

from repro.active.lb_inference import (
    classify_lb,
    follow_up_delay,
    same_instance_probe,
)
from repro.active.prober import Prober
from repro.core.l7lb import convergence_curve, host_id_of
from repro.workloads.scenario import build_facebook_lab, build_lb_lab


@pytest.fixture(scope="module")
def lab():
    return build_lb_lab(google_hosts=10, facebook_hosts=10)


@pytest.fixture(scope="module")
def prober(lab):
    return Prober(lab.loop, lab.network)


class TestHandshakes:
    def test_facebook_handshake_completes(self, lab, prober):
        result = prober.handshake(lab.vips("Facebook")[0])
        assert result.completed
        assert len(result.server_scid) == 8
        assert result.rtt > 0

    def test_transport_parameters_extracted(self, lab, prober):
        params = prober.transport_parameters(lab.vips("Facebook")[0])
        assert params is not None
        named = params.named()
        assert named["max_idle_timeout"] == 60000
        assert named["initial_source_connection_id"]

    def test_certificate_extracted(self, lab, prober):
        cert = prober.certificate(lab.vips("Facebook")[0])
        assert cert is not None
        assert cert.matches_any_suffix(("facebook.com",))

    def test_unreachable_vip_times_out(self, lab, prober):
        from repro.netstack.addr import parse_ip

        result = prober.handshake(parse_ip("203.0.113.1"), timeout=0.5)
        assert not result.completed

    def test_probe_log_grows(self, lab, prober):
        before = len(prober.logs)
        prober.handshake(lab.vips("Facebook")[0])
        assert len(prober.logs) == before + 1
        assert prober.logs[-1].completed
        assert prober.logs[-1].host_id is not None


class TestEchoDetection:
    """Paper §4.2: Google echoes the first 8 bytes of the client DCID."""

    def test_google_detected_as_echo(self, lab, prober):
        assert prober.detect_echo_behaviour(lab.vips("Google")[0])

    def test_facebook_not_echo(self, lab, prober):
        assert not prober.detect_echo_behaviour(lab.vips("Facebook")[0])


class TestEnumeration:
    def test_all_hosts_discovered(self, lab, prober):
        ids = prober.enumerate_host_ids(lab.vips("Facebook")[0], 400)
        unique = {h for h in ids if h is not None}
        assert len(unique) == 10

    def test_convergence_shape(self):
        """§4.3: discovery converges; most hosts appear early."""
        lab = build_facebook_lab([(4, 40, "US")], seed=3)
        prober = Prober(lab.loop, lab.network)
        ids = prober.enumerate_host_ids(lab.vips("Facebook")[0], 600)
        curve = convergence_curve([h for h in ids if h is not None])
        assert curve.total == 40
        # Half the handshake budget already finds the large majority.
        assert curve.coverage_at(300) > 0.9

    def test_scan_vips_shared_sets(self):
        """VIPs of one cluster expose the same host-ID set."""
        lab = build_facebook_lab([(3, 12, "US")], seed=5)
        prober = Prober(lab.loop, lab.network)
        per_vip = prober.scan_vips(lab.vips("Facebook"), handshakes_per_vip=150)
        sets = list(per_vip.values())
        assert sets[0] == sets[1] == sets[2]
        assert len(sets[0]) == 12


class TestAppendixD:
    def test_facebook_followup_immediate(self, lab, prober):
        outcome = follow_up_delay(prober, lab.vips("Facebook")[0], max_wait=30.0)
        assert outcome.delay is not None
        assert outcome.delay < 10.0
        assert classify_lb(outcome) == "5-tuple"

    def test_facebook_followup_new_host_or_worker(self, lab, prober):
        result = same_instance_probe(prober, lab.vips("Facebook")[0])
        assert result.reached_new_instance

    def test_google_followup_blocked_for_idle_timeout(self):
        lab = build_lb_lab(google_hosts=6, facebook_hosts=6, seed=21)
        prober = Prober(lab.loop, lab.network)
        outcome = follow_up_delay(prober, lab.vips("Google")[0], max_wait=400.0)
        assert outcome.delay is not None
        # Paper: ~240 s (the connection-state idle timeout).
        assert 200.0 < outcome.delay < 280.0
        assert classify_lb(outcome) == "cid-aware"

    def test_follow_up_requires_reachable_vip(self, lab, prober):
        from repro.netstack.addr import parse_ip

        with pytest.raises(RuntimeError):
            follow_up_delay(prober, parse_ip("203.0.113.2"), max_wait=2.0)
