"""Shared fixtures: a small but fully featured telescope scenario.

Built once per test session — several analysis test modules consume the
same classified capture.
"""

import pytest

from repro.workloads.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="session")
def small_scenario():
    """A reduced January-2022 month: every traffic class, quick to run."""
    config = ScenarioConfig(
        seed=20220101,
        facebook_clusters=3,
        google_clusters=3,
        cloudflare_clusters=2,
        facebook_hosts_per_cluster=12,
        google_hosts_per_cluster=10,
        cloudflare_hosts_per_cluster=8,
        facebook_offnets=10,
        cloudflare_offnets=2,
        remaining_servers=60,
        attacks_facebook=420,
        attacks_google=700,
        attacks_cloudflare=60,
        attacks_offnet=260,
        attacks_remaining=400,
        research_scan_packets=1500,
        unknown_scan_packets=900,
        zero_rtt_scan_packets=25,
        noise_packets=300,
        window=600.0,
    )
    scenario = build_scenario(config)
    scenario.run()
    return scenario


@pytest.fixture(scope="session")
def small_capture(small_scenario):
    return small_scenario.classify()
