"""The experiment book's command families actually run, not just parse.

``tools/check_doc_commands.py`` guarantees every fenced ``repro …``
command in EXPERIMENTS.md parses against the real CLI grammar; this
module guarantees they *work*: every command family the book uses is
executed here end to end at tiny scale (a 2-second simulated month, a
two-cell sweep).  Adding a section to the book that introduces a new
family without a tiny-scale exercise fails
``test_book_families_are_exercised``.

A "family" is the subcommand — plus the nested subcommand for the
grouped commands (``sweep run`` vs ``sweep render``, ``trace summarize``
vs ``trace merge``) — because those dispatch to entirely different code.
Flags are the grammar checker's job.
"""

import json
import os
import sys

import pytest

from repro.cli import main

from tests.sweep.conftest import MICRO

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
BOOK = os.path.join(REPO_ROOT, "EXPERIMENTS.md")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
from check_doc_commands import fenced_commands, repro_argv  # noqa: E402

#: Grouped commands whose nested subcommand picks the code path.
_GROUPED = ("sweep", "trace", "probe")

#: Every family a test in this module drives through ``main()``.
EXERCISED = {
    ("simulate",),
    ("classify",),
    ("analyze",),
    ("index",),
    ("live",),
    ("stats",),
    ("progress",),
    ("top",),
    ("probe", "enumerate"),
    ("sweep", "run"),
    ("sweep", "status"),
    ("sweep", "render"),
    ("trace", "summarize"),
    ("trace", "merge"),
    ("trace", "tail"),
}


def family(argv):
    """(command,) or (command, subcommand) for grouped commands."""
    if argv[0] in _GROUPED:
        # In every book command the nested subcommand is the first
        # non-flag token (flag values never precede it).
        sub = next(tok for tok in argv[1:] if not tok.startswith("-"))
        return (argv[0], sub)
    return (argv[0],)


def book_argvs():
    return [repro_argv(command) for _lineno, command in fenced_commands(BOOK)]


def book_tables():
    """Every ``--tables`` argument list the book's analyze commands use."""
    variants = []
    for argv in book_argvs():
        if argv[0] != "analyze" or "--tables" not in argv:
            continue
        tables = []
        for token in argv[argv.index("--tables") + 1 :]:
            if token.startswith("-"):
                break
            tables.append(token)
        variants.append(tables)
    return variants


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    """One tiny capture (+ trace, metrics, sweep) shared by every test."""
    root = tmp_path_factory.mktemp("book")
    pcap = str(root / "tiny.pcap")
    trace = str(root / "tiny.trace.jsonl")
    metrics = str(root / "tiny.metrics.json")
    assert (
        main(
            [
                "simulate",
                pcap,
                "--scale",
                "0.05",
                "--seed",
                "7",
                "--trace",
                trace,
                "--metrics",
                metrics,
            ]
        )
        == 0
    )

    spec = root / "micro.json"
    spec.write_text(
        json.dumps(
            {
                "name": "book-micro",
                "axes": {"loss_rate": [0.0, 0.2], "attack_scale": [1.0]},
                "base": MICRO,
                "metrics": ["rows.total"],
            }
        )
    )
    sweep_dir = str(root / "micro.sweep")
    assert main(["sweep", "run", str(spec), "--out", sweep_dir, "--quiet"]) == 0

    return {
        "pcap": pcap,
        "trace": trace,
        "metrics": metrics,
        "sweep": sweep_dir,
        "root": root,
    }


def test_book_families_are_exercised():
    """Each family the book documents has a live exercise below."""
    used = {family(argv) for argv in book_argvs()}
    assert used, "the experiment book documents no repro commands"
    missing = used - EXERCISED
    assert not missing, (
        "EXPERIMENTS.md uses command families this module never runs: %s"
        % sorted(missing)
    )


class TestCaptureFamilies:
    def test_classify(self, env, capsys):
        assert main(["classify", env["pcap"]]) == 0
        assert "kept" in capsys.readouterr().out

    def test_analyze_every_book_tables_variant(self, env, capsys):
        variants = book_tables()
        assert variants, "the book documents no analyze --tables commands"
        for tables in variants:
            assert main(["analyze", env["pcap"], "--tables"] + tables) == 0
        assert capsys.readouterr().out.strip()

    def test_index_build_and_info(self, env, capsys):
        assert main(["index", env["pcap"], "--workers", "2"]) == 0
        assert main(["index", env["pcap"], "--info"]) == 0
        assert "rows" in capsys.readouterr().out

    def test_live_on_finished_capture(self, env, capsys):
        code = main(
            ["live", env["pcap"], "--interval", "0.05", "--exit-idle", "1", "--quiet"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()


class TestObservabilityFamilies:
    def test_stats(self, env, capsys):
        assert main(["stats", env["metrics"]]) == 0
        assert capsys.readouterr().out.strip()

    def test_trace_summarize(self, env, capsys):
        assert main(["trace", "summarize", env["trace"]]) == 0
        assert capsys.readouterr().out.strip()

    def test_trace_merge(self, env):
        merged = str(env["root"] / "merged.jsonl")
        assert main(["trace", "merge", merged, env["trace"]]) == 0
        assert os.path.exists(merged)

    def test_trace_tail_exits_when_idle(self, env):
        code = main(
            ["trace", "tail", env["trace"], "--exit-idle", "1", "--interval", "0.05"]
        )
        assert code == 0


class TestProbeFamily:
    def test_probe_enumerate(self, capsys):
        code = main(
            ["probe", "enumerate", "--hosts", "6", "--handshakes", "120", "--seed", "7"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()


class TestSweepFamilies:
    def test_sweep_status(self, env, capsys):
        assert main(["sweep", "status", env["sweep"]]) == 0
        assert "simulated" in capsys.readouterr().out

    def test_sweep_render(self, env, capsys):
        assert main(["sweep", "render", env["sweep"]]) == 0
        assert "rows.total" in capsys.readouterr().out

    def test_progress_and_top_on_sweep_dir(self, env, capsys):
        # Both exit immediately on a finished sweep: every cell's final
        # heartbeat reports done, so the follow loop has nothing to wait
        # for — which is exactly why the book can tell readers to point
        # `repro top` at a sweep output directory.
        assert main(["progress", env["sweep"]]) == 0
        assert main(["top", env["sweep"], "--interval", "0.05"]) == 0
        assert capsys.readouterr().out.strip()
