"""Documented ``repro`` commands must parse against the real CLI."""

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_doc_commands.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
from check_doc_commands import (  # noqa: E402
    check_file,
    fenced_commands,
    parses,
    repro_argv,
)


class TestRepoDocs:
    def test_every_documented_command_parses(self):
        """The CI docs job, run as a tier-1 gate."""
        result = subprocess.run(
            [sys.executable, CHECKER],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "doc commands ok" in result.stdout

    def test_experiment_book_actually_documents_commands(self):
        """An experiment book with no runnable commands is not a book."""
        commands = fenced_commands(os.path.join(REPO_ROOT, "EXPERIMENTS.md"))
        assert len(commands) >= 10


class TestExtraction:
    def test_prompts_comments_and_fences(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "\n".join(
                [
                    "repro simulate outside-fence.pcap  (prose, ignored)",
                    "```console",
                    "$ repro simulate month.pcap --scale 0.5   # a comment",
                    "$ ls -l month.pcap",
                    "# a fenced comment line",
                    "REPRO_BENCH_SCALE=0.1 repro classify month.pcap",
                    "```",
                    "```",
                    "repro analyze month.pcap \\",
                    "  --tables 2 3",
                    "```",
                ]
            )
        )
        commands = [text for _lineno, text in fenced_commands(str(doc))]
        assert commands == [
            "$ repro simulate month.pcap --scale 0.5   # a comment",
            "REPRO_BENCH_SCALE=0.1 repro classify month.pcap",
            "repro analyze month.pcap --tables 2 3",
        ]

    def test_argv_strips_prompt_env_comment_and_operators(self):
        assert repro_argv(
            "$ VAR=1 repro analyze month.pcap --workers 4 # fast"
        ) == ["analyze", "month.pcap", "--workers", "4"]
        assert repro_argv("repro simulate out.pcap & ") == [
            "simulate",
            "out.pcap",
        ]
        assert repro_argv("repro stats a.json | head") == ["stats", "a.json"]


class TestParses:
    def test_accepts_real_command(self):
        ok, why = parses(["analyze", "month.pcap", "--tables", "2"])
        assert ok, why

    def test_accepts_help(self):
        ok, _why = parses(["sweep", "--help"])
        assert ok

    def test_rejects_unknown_flag(self):
        ok, why = parses(["analyze", "month.pcap", "--no-such-flag"])
        assert not ok
        assert "no-such-flag" in why

    def test_rejects_unknown_subcommand(self):
        ok, _why = parses(["frobnicate"])
        assert not ok

    def test_check_file_reports_line_numbers(self, tmp_path):
        doc = tmp_path / "bad.md"
        doc.write_text("```\nrepro analyze month.pcap --bogus\n```\n")
        seen, errors = check_file(str(doc))
        assert seen == 1
        assert len(errors) == 1
        assert ":2:" in errors[0]
