"""The docs layer: link integrity and the checker's own behaviour."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_md_links.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
from check_md_links import check_file, github_slug  # noqa: E402


class TestRepoDocs:
    def test_all_intra_repo_links_resolve(self):
        """The CI docs job, run as a tier-1 gate."""
        result = subprocess.run(
            [sys.executable, CHECKER],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "markdown links ok" in result.stdout

    def test_core_documents_exist_and_are_linked(self):
        for name in ("README.md", "ARCHITECTURE.md", "EXPERIMENTS.md",
                     "ROADMAP.md", "DESIGN.md"):
            assert os.path.exists(os.path.join(REPO_ROOT, name)), name
        with open(os.path.join(REPO_ROOT, "README.md")) as fileobj:
            readme = fileobj.read()
        assert "ARCHITECTURE.md" in readme


class TestGithubSlug:
    @pytest.mark.parametrize(
        ("heading", "slug"),
        [
            ("Layer diagram", "layer-diagram"),
            ("The shard/merge plane (`repro.simnet.shard`)",
             "the-shardmerge-plane-reprosimnetshard"),
            ("Data flow: one spoofed Initial, end to end",
             "data-flow-one-spoofed-initial-end-to-end"),
            ("Fidelity and substitutions", "fidelity-and-substitutions"),
        ],
    )
    def test_matches_github_anchor_rules(self, heading, slug):
        assert github_slug(heading) == slug


class TestCheckFile:
    def write(self, tmp_path, name, content):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    def test_flags_missing_file_and_anchor(self, tmp_path):
        doc = self.write(
            tmp_path,
            "doc.md",
            "# Title\n\n[a](gone.md) [b](#absent) [c](#title)\n",
        )
        errors = check_file(doc, str(tmp_path))
        assert len(errors) == 2
        assert any("gone.md" in e for e in errors)
        assert any("#absent" in e for e in errors)

    def test_skips_external_and_code_fences(self, tmp_path):
        doc = self.write(
            tmp_path,
            "doc.md",
            "# T\n\n[ok](https://example.com)\n\n"
            "```\n[broken](nowhere.md)\n```\n",
        )
        assert check_file(doc, str(tmp_path)) == []

    def test_cross_document_anchor(self, tmp_path):
        self.write(tmp_path, "other.md", "# Deep Dive\n")
        doc = self.write(
            tmp_path, "doc.md", "[x](other.md#deep-dive) [y](other.md#nope)\n"
        )
        errors = check_file(doc, str(tmp_path))
        assert len(errors) == 1 and "#nope" in errors[0]

    def test_link_escaping_repo_rejected(self, tmp_path):
        sub = tmp_path / "sub"
        sub.mkdir()
        doc = self.write(sub, "doc.md", "[up](../../etc/passwd)\n")
        errors = check_file(doc, str(sub))
        assert errors and "escapes" in errors[0]
