"""The ``repro lint`` CLI surface: exit codes, reporters, baseline flags."""

import json
import os
import textwrap

import pytest

from repro.cli import main

VIOLATION = textwrap.dedent(
    """
    import random
    import time

    def pick():
        return random.randint(0, 7)

    def stamp():
        return time.time()

    METRIC = "version_share.clients.bogus"
    """
)

CLEAN = textwrap.dedent(
    """
    import random

    RNG = random.Random(7)

    def pick():
        return RNG.randint(0, 7)
    """
)


@pytest.fixture
def scratch(tmp_path):
    module = tmp_path / "scratch.py"
    module.write_text(VIOLATION)
    return str(module)


class TestExitCodes:
    def test_violations_fail_with_rule_ids_and_lines(self, scratch, capsys):
        assert main(["lint", scratch]) == 3
        out = capsys.readouterr().out
        assert "DET001" in out and ":6:" in out
        assert "DET002" in out and ":9:" in out
        assert "OBS001" in out and ":11:" in out
        assert "3 findings" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        module = tmp_path / "clean.py"
        module.write_text(CLEAN)
        assert main(["lint", str(module)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_is_a_one_line_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "does/not/exist"])
        assert "no such path" in str(excinfo.value)


class TestJsonReporter:
    def test_json_report_carries_rule_and_line(self, scratch, capsys):
        assert main(["lint", "--json", scratch]) == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro-lint"
        assert doc["ok"] is False
        assert doc["checked"] == 1
        by_rule = {f["rule"]: f for f in doc["findings"]}
        assert by_rule["DET001"]["line"] == 6
        assert by_rule["DET002"]["line"] == 9
        assert by_rule["OBS001"]["line"] == 11

    def test_clean_json_report(self, tmp_path, capsys):
        module = tmp_path / "clean.py"
        module.write_text(CLEAN)
        assert main(["lint", "--json", str(module)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["findings"] == []


class TestBaselineFlags:
    def test_update_baseline_then_clean_run(self, scratch, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", scratch, "--baseline", baseline,
                     "--update-baseline"]) == 0
        assert "3 finding(s)" in capsys.readouterr().out
        assert main(["lint", scratch, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "3 baselined" in out

    def test_show_baselined_lists_grandfathered(self, scratch, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        main(["lint", scratch, "--baseline", baseline, "--update-baseline"])
        capsys.readouterr()
        assert main(["lint", scratch, "--baseline", baseline,
                     "--show-baselined"]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out and "DET001" in out

    def test_corrupt_baseline_is_a_one_line_error(self, scratch, tmp_path):
        baseline = tmp_path / "bad.json"
        baseline.write_text("{nope")
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", scratch, "--baseline", str(baseline)])
        assert "baseline" in str(excinfo.value)


class TestRulesListing:
    def test_rules_flag_prints_the_pack(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                        "OBS001", "MP001"):
            assert rule_id in out


class TestDefaults:
    def test_default_path_is_src(self, tmp_path, monkeypatch, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["lint"]) == 0
        assert "1 file checked" in capsys.readouterr().out
