"""Golden positive/negative fixtures per lint rule.

Each rule gets at least one snippet that must fire and one that must
stay silent, exercised through :func:`repro.lint.lint_file` so findings
carry real line numbers.  Paths are synthetic — DET002's allowlist
keys off path components, so the same snippet can be checked inside and
outside the observability layer.
"""

import textwrap

from repro.lint import default_rules, lint_file, rule_table


def findings_for(source, path="src/repro/simnet/fake.py"):
    return lint_file(path, default_rules(), source=textwrap.dedent(source))


def rules_hit(source, path="src/repro/simnet/fake.py"):
    return sorted({finding.rule for finding in findings_for(source, path)})


class TestDET001UnseededRandom:
    def test_module_level_call_fires(self):
        findings = findings_for(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 5
        assert "unseeded" in findings[0].message

    def test_import_alias_is_tracked(self):
        assert rules_hit(
            """
            import random as rnd

            def pick():
                return rnd.randint(0, 7)
            """
        ) == ["DET001"]

    def test_from_import_of_function_fires_at_import(self):
        findings = findings_for(
            """
            from random import randint
            """
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 2

    def test_unseeded_random_instance_fires(self):
        assert rules_hit(
            """
            import random

            RNG = random.Random()
            """
        ) == ["DET001"]

    def test_seeded_instance_and_methods_are_clean(self):
        assert rules_hit(
            """
            import random

            RNG = random.Random(0xBEEF)

            def pick():
                return RNG.randint(0, 7)
            """
        ) == []

    def test_from_import_of_random_class_is_clean(self):
        assert rules_hit(
            """
            from random import Random

            RNG = Random(7)
            """
        ) == []


class TestDET002WallClock:
    def test_time_time_fires_outside_obs(self):
        findings = findings_for(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert [f.rule for f in findings] == ["DET002"]
        assert findings[0].line == 5

    def test_perf_counter_from_import_fires(self):
        assert rules_hit(
            """
            from time import perf_counter

            def stamp():
                return perf_counter()
            """
        ) == ["DET002"]

    def test_datetime_now_fires_through_from_import(self):
        assert rules_hit(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        ) == ["DET002"]

    def test_module_alias_is_resolved(self):
        assert rules_hit(
            """
            import time as _wall

            def stamp():
                return _wall.monotonic()
            """
        ) == ["DET002"]

    def test_obs_layer_is_allowlisted(self):
        source = """
        import time

        def stamp():
            return time.time()
        """
        assert rules_hit(source, path="src/repro/obs/export.py") == []
        assert rules_hit(source, path="tools/check_things.py") == []
        assert rules_hit(source, path="benchmarks/bench_x.py") == []

    def test_time_sleep_is_not_a_clock_read(self):
        assert rules_hit(
            """
            import time

            def nap():
                time.sleep(1)
            """
        ) == []


class TestDET003Entropy:
    def test_mixed_entropy_sources_all_fire(self):
        findings = findings_for(
            """
            import os
            import secrets
            import uuid

            def token():
                return os.urandom(8), uuid.uuid4(), secrets.token_hex(4)
            """
        )
        assert [f.rule for f in findings] == ["DET003"] * 3

    def test_each_entropy_source_fires(self):
        for call in ("os.urandom(8)", "uuid.uuid4()", "secrets.token_hex(4)",
                     "random.SystemRandom()"):
            module = call.split(".")[0]
            findings = findings_for(
                "import %s\n\nVALUE = %s\n" % (module, call)
            )
            assert [f.rule for f in findings] == ["DET003"], call

    def test_uuid5_is_deterministic_and_clean(self):
        assert rules_hit(
            """
            import uuid

            def name_based(ns, name):
                return uuid.uuid5(ns, name)
            """
        ) == []


class TestDET004BuiltinHash:
    def test_builtin_hash_fires(self):
        findings = findings_for(
            """
            def key(value):
                return hash(value) & 0xFFFF
            """
        )
        assert [f.rule for f in findings] == ["DET004"]
        assert "blake2b" in findings[0].message

    def test_hashlib_is_clean(self):
        assert rules_hit(
            """
            import hashlib

            def key(value):
                return hashlib.blake2b(value, digest_size=8).digest()
            """
        ) == []


class TestDET005UnorderedIteration:
    def test_for_over_set_call_fires(self):
        assert rules_hit(
            """
            def emit(values):
                for value in set(values):
                    print(value)
            """
        ) == ["DET005"]

    def test_comprehension_over_set_literal_fires(self):
        assert rules_hit(
            """
            def emit():
                return [v for v in {3, 1, 2}]
            """
        ) == ["DET005"]

    def test_glob_iteration_fires(self):
        assert rules_hit(
            """
            import glob

            def emit():
                for path in glob.glob("*.pcap"):
                    print(path)
            """
        ) == ["DET005"]

    def test_sorted_wrapping_is_clean(self):
        assert rules_hit(
            """
            import os

            def emit(values):
                for value in sorted(set(values)):
                    print(value)
                for name in sorted(os.listdir(".")):
                    print(name)
            """
        ) == []

    def test_dict_iteration_is_clean(self):
        # Dict preserves insertion order in Python 3.7+: deterministic as
        # long as insertions are — not this rule's business.
        assert rules_hit(
            """
            def emit(mapping):
                for key in mapping:
                    print(key, mapping[key])
            """
        ) == []


class TestOBS001MetricNames:
    def test_bad_version_share_bucket_fires(self):
        findings = findings_for('METRIC = "version_share.clients.bogus"\n')
        assert [f.rule for f in findings] == ["OBS001"]
        assert "version_share" in findings[0].message

    def test_bare_registry_prefix_fires_nothing(self):
        # Bare prefixes are the grammar machinery itself (prefix tables,
        # startswith() checks) — only literals *naming* a metric count.
        assert rules_hit('PREFIXES = ("counter:", "gauge:", "timer:")\n') == []

    def test_valid_names_are_clean(self):
        assert rules_hit(
            'METRICS = ("rows.total", "counter:net.dropped",\n'
            '           "version_share.clients.QUICv1",\n'
            '           "scid_unique.Google", "timer:simulate.run")\n'
        ) == []

    def test_bad_scid_origin_fires(self):
        assert rules_hit('METRIC = "scid_unique.Akamai"\n') == ["OBS001"]


class TestMP001MultiprocessingTargets:
    def test_lambda_pool_target_fires(self):
        assert rules_hit(
            """
            def run(pool, items):
                return pool.map(lambda item: item * 2, items)
            """
        ) == ["MP001"]

    def test_nested_function_target_fires(self):
        assert rules_hit(
            """
            def run(pool, items):
                def work(item):
                    return item * 2

                return pool.imap_unordered(work, items)
            """
        ) == ["MP001"]

    def test_process_lambda_target_fires(self):
        assert rules_hit(
            """
            import multiprocessing

            def run():
                worker = multiprocessing.Process(target=lambda: None)
                worker.start()
            """
        ) == ["MP001"]

    def test_toplevel_target_is_clean(self):
        assert rules_hit(
            """
            def work(item):
                return item * 2

            def run(pool, items):
                return pool.map(work, items)
            """
        ) == []


class TestRuleTable:
    def test_every_rule_is_listed_with_id_and_title(self):
        rows = rule_table()
        ids = [row[0] for row in rows]
        assert {"DET001", "DET002", "DET003", "DET004", "DET005",
                "OBS001", "MP001", "PERF001"} == set(ids)
        for _id, title, doc in rows:
            assert title and doc


class TestPERF001PacketHotLoop:
    HOT = "src/repro/quic/fake.py"

    def test_bytes_accumulation_in_hot_loop_fires(self):
        findings = findings_for(
            """
            def build(packets):
                out = b""
                for packet in packets:
                    out += packet
                return out
            """,
            path=self.HOT,
        )
        assert [f.rule for f in findings] == ["PERF001"]
        assert findings[0].line == 5
        assert "O(n" in findings[0].message

    def test_schedule_builder_in_hot_loop_fires(self):
        assert rules_hit(
            """
            from repro.quic.crypto.gcm import AesGcm

            def seal_all(key, packets):
                for packet in packets:
                    AesGcm(key).seal(b"\\x00" * 12, packet, b"")
            """,
            path=self.HOT,
        ) == ["PERF001"]

    def test_derive_initial_keys_in_while_loop_fires(self):
        assert rules_hit(
            """
            from repro.quic.crypto.initial import derive_initial_keys

            def churn(dcids):
                while dcids:
                    keys = derive_initial_keys(1, dcids.pop())
            """,
            path="src/repro/netstack/fake.py",
        ) == ["PERF001"]

    def test_server_engine_is_hot(self):
        assert rules_hit(
            """
            def flights(conns):
                data = b""
                for conn in conns:
                    data += conn.flight
            """,
            path="src/repro/server/engine.py",
        ) == ["PERF001"]

    def test_cold_module_stays_silent(self):
        assert (
            rules_hit(
                """
                def build(packets):
                    out = b""
                    for packet in packets:
                        out += packet
                    return out
                """,
                path="src/repro/workloads/fake.py",
            )
            == []
        )

    def test_bytearray_accumulator_is_exempt(self):
        assert (
            rules_hit(
                """
                def build(packets):
                    out = bytearray()
                    for packet in packets:
                        out += packet
                    return bytes(out)
                """,
                path=self.HOT,
            )
            == []
        )

    def test_one_shot_work_outside_loop_is_silent(self):
        assert (
            rules_hit(
                """
                from repro.quic.crypto.gcm import AesGcm

                def seal_all(key, packets):
                    gcm = AesGcm(key)
                    sealed = b""
                    sealed += b"header"
                    return [gcm.seal(b"\\x00" * 12, p, b"") for p in packets]
                """,
                path=self.HOT,
            )
            == []
        )

    def test_pragma_suppresses(self):
        assert (
            rules_hit(
                """
                def build(packets):
                    out = b""
                    for packet in packets:
                        out += packet  # repro: allow(PERF001) -- tiny bounded loop
                    return out
                """,
                path=self.HOT,
            )
            == []
        )

    def test_nested_loop_reported_once(self):
        findings = findings_for(
            """
            def build(batches):
                out = b""
                for batch in batches:
                    for packet in batch:
                        out += packet
                return out
            """,
            path=self.HOT,
        )
        assert [f.rule for f in findings] == ["PERF001"]
