"""Engine behaviour: pragmas, baselines, walking, broken files."""

import json
import textwrap

from repro.lint import (
    Baseline,
    BaselineError,
    collect_pragmas,
    default_rules,
    iter_python_files,
    lint_file,
    lint_paths,
)

VIOLATION = textwrap.dedent(
    """
    import random

    def pick():
        return random.randint(0, 7)
    """
)


def lint_source(source, path="src/repro/simnet/fake.py"):
    return lint_file(path, default_rules(), source=textwrap.dedent(source))


class TestPragmas:
    def test_inline_pragma_suppresses_matching_rule(self):
        assert lint_source(
            """
            import random

            def pick():
                return random.randint(0, 7)  # repro: allow(DET001) -- fixture
            """
        ) == []

    def test_pragma_on_line_above_suppresses(self):
        assert lint_source(
            """
            import random

            def pick():
                # repro: allow(DET001) -- fixture noise source
                return random.randint(0, 7)
            """
        ) == []

    def test_justification_may_continue_across_comment_lines(self):
        assert lint_source(
            """
            import time

            def stamp():
                # repro: allow(DET002) -- this wall read only feeds an
                # operator-facing log line, never simulated behaviour
                return time.time()
            """
        ) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        findings = lint_source(
            """
            import random

            def pick():
                return random.randint(0, 7)  # repro: allow(DET002) -- wrong id
            """
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_pragma_without_justification_is_malformed(self):
        findings = lint_source(
            """
            import random

            def pick():
                return random.randint(0, 7)  # repro: allow(DET001)
            """
        )
        assert sorted(f.rule for f in findings) == ["DET001", "LNT001"]
        malformed = [f for f in findings if f.rule == "LNT001"][0]
        assert "justification is mandatory" in malformed.message

    def test_pragma_in_string_literal_does_not_suppress(self):
        findings = lint_source(
            """
            import random

            DOC = "# repro: allow(DET001) -- not a comment"

            def pick():
                return random.randint(0, 7)
            """
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_multiple_ids_in_one_pragma(self):
        assert lint_source(
            """
            import random
            import time

            def pick():
                # repro: allow(DET001, DET002) -- fixture mixes both
                return random.randint(0, int(time.time()))
            """
        ) == []

    def test_collect_pragmas_reports_lines(self):
        pragmas, malformed = collect_pragmas(
            "x = 1  # repro: allow(DET004) -- fixture\n", "f.py"
        )
        assert pragmas == {1: {"DET004"}}
        assert malformed == []


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(VIOLATION)
        assert len(findings) == 1
        path = str(tmp_path / "baseline.json")
        Baseline.write(path, findings)
        loaded = Baseline.load(path)
        assert loaded.contains(findings[0])
        doc = json.loads(open(path).read())
        assert doc["version"] == Baseline.VERSION
        assert doc["findings"][0]["rule"] == "DET001"

    def test_baseline_match_survives_line_drift(self, tmp_path):
        findings = lint_source(VIOLATION)
        path = str(tmp_path / "baseline.json")
        Baseline.write(path, findings)
        drifted = lint_source("\n\n\n" + VIOLATION)
        assert drifted[0].line != findings[0].line
        assert Baseline.load(path).contains(drifted[0])

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "nope.json"))
        assert baseline.keys == set()

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        try:
            Baseline.load(str(path))
        except BaselineError:
            pass
        else:
            raise AssertionError("expected BaselineError")

    def test_lint_paths_splits_baselined_findings(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(VIOLATION)
        dirty = lint_paths([str(tmp_path)])
        assert len(dirty.findings) == 1 and not dirty.ok
        baseline_path = str(tmp_path / "baseline.json")
        Baseline.write(baseline_path, dirty.findings)
        clean = lint_paths([str(tmp_path)], baseline=Baseline.load(baseline_path))
        assert clean.ok
        assert len(clean.baselined) == 1
        assert clean.baselined[0].rule == "DET001"


class TestWalking:
    def test_walk_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b").mkdir()
        (tmp_path / "a").mkdir()
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "b" / "two.py").write_text("x = 1\n")
        (tmp_path / "a" / "one.py").write_text("x = 1\n")
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "top.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([str(tmp_path)]))
        names = [f.replace(str(tmp_path), "").lstrip("/") for f in files]
        assert names == ["top.py", "a/one.py", "b/two.py"]

    def test_named_file_is_linted_even_without_py_suffix(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.write_text(VIOLATION)
        assert list(iter_python_files([str(scratch)])) == [str(scratch)]

    def test_syntax_error_becomes_lnt000(self, tmp_path):
        findings = lint_file(
            "broken.py", default_rules(), source="def broken(:\n"
        )
        assert [f.rule for f in findings] == ["LNT000"]
        assert "does not parse" in findings[0].message
