"""The shared ``tools/_report.py`` helper and the checkers' --json mode."""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOLS = os.path.join(REPO_ROOT, "tools")

sys.path.insert(0, TOOLS)
from _report import Report, split_json_flag  # noqa: E402


class TestReport:
    def test_located_text_findings_are_structured(self, capsys):
        report = Report("demo")
        report.checked = 2
        report.add_text("DESIGN.md:14: missing target: nope.md")
        report.add_text("a bare message")
        code = report.emit("all ok", json_mode=True)
        assert code == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "demo" and doc["checked"] == 2
        assert doc["findings"][0] == {
            "path": "DESIGN.md",
            "line": 14,
            "message": "missing target: nope.md",
        }
        assert doc["findings"][1] == {"message": "a bare message"}
        assert doc["ok"] is False

    def test_text_mode_prints_findings_to_stderr(self, capsys):
        report = Report("demo")
        report.add("broken", path="x.md", line=3)
        assert report.emit("all ok") == 1
        captured = capsys.readouterr()
        assert "x.md:3: broken" in captured.err
        assert "all ok" not in captured.out

    def test_clean_report_prints_ok_text(self, capsys):
        report = Report("demo")
        assert report.emit("all ok") == 0
        assert "all ok" in capsys.readouterr().out

    def test_split_json_flag(self):
        assert split_json_flag(["--json", "a"]) == (True, ["a"])
        assert split_json_flag(["a"]) == (False, ["a"])


class TestCheckersJsonMode:
    def run_checker(self, script, *args):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        return subprocess.run(
            [sys.executable, os.path.join(TOOLS, script), "--json", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env=env,
        )

    def test_md_links_json(self):
        result = self.run_checker("check_md_links.py")
        assert result.returncode == 0, result.stderr
        doc = json.loads(result.stdout)
        assert doc["tool"] == "check-md-links"
        assert doc["ok"] is True and doc["findings"] == []

    def test_doc_commands_json(self):
        result = self.run_checker("check_doc_commands.py")
        assert result.returncode == 0, result.stderr
        doc = json.loads(result.stdout)
        assert doc["tool"] == "check-doc-commands"
        assert doc["ok"] is True and doc["checked"] > 20

    def test_speedscope_json_flags_invalid_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        result = self.run_checker("check_speedscope.py", str(bad))
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        assert doc["tool"] == "check-speedscope"
        assert doc["ok"] is False
        assert any("$schema" in f["message"] for f in doc["findings"])

    def test_bench_json_all_repo_files_valid(self):
        result = self.run_checker("check_bench_json.py")
        assert result.returncode == 0, result.stderr
        doc = json.loads(result.stdout)
        assert doc["tool"] == "check-bench-json"
        assert doc["ok"] is True and doc["checked"] >= 7

    def test_bench_json_flags_non_finite_numbers(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"arms": {"speedup": NaN}}')
        result = self.run_checker("check_bench_json.py", str(bad))
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        assert doc["ok"] is False
        assert any("non-finite" in f["message"] for f in doc["findings"])

    def test_bench_json_requires_hotpath_gate_keys(self, tmp_path):
        stale = tmp_path / "BENCH_hotpath.json"
        stale.write_text('{"arms": {"flight_emission": {"speedup": 3.0}}}')
        result = self.run_checker("check_bench_json.py", str(stale))
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        messages = [f["message"] for f in doc["findings"]]
        assert any("initial_keys_memo" in m for m in messages)
        assert any("parity.pcap_identical" in m for m in messages)

    def test_bench_json_rejects_empty_object(self, tmp_path):
        empty = tmp_path / "BENCH_empty.json"
        empty.write_text("{}")
        result = self.run_checker("check_bench_json.py", str(empty))
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        assert any("empty" in f["message"] for f in doc["findings"])
