"""The tier-1 self-lint gate: this repo honours its own contract.

``repro lint src tools`` must exit 0 with the committed (empty)
baseline — every deliberate wall-clock or unordered-iteration use in
the tree carries a justified pragma instead of an unexplained pass.
"""

import json
import os

from repro.lint import Baseline, lint_paths

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def repo_path(*parts):
    return os.path.join(REPO_ROOT, *parts)


class TestSelfLint:
    def test_src_and_tools_lint_clean(self):
        baseline = Baseline.load(repo_path("lint_baseline.json"))
        result = lint_paths(
            [repo_path("src"), repo_path("tools")], baseline=baseline
        )
        assert result.files > 100
        assert result.findings == [], "\n".join(
            finding.render() for finding in result.findings
        )

    def test_committed_baseline_is_empty(self):
        with open(repo_path("lint_baseline.json")) as fileobj:
            doc = json.load(fileobj)
        assert doc == {"version": 1, "findings": []}

    def test_deliberate_violations_carry_pragmas_not_baseline(self):
        # The suppressed count is the number of justified pragmas in the
        # tree; it should be small and every one deliberate.  If this
        # number jumps unexpectedly, someone is pragma-ing their way
        # around the contract instead of fixing the violation.
        result = lint_paths([repo_path("src"), repo_path("tools")])
        assert 0 < result.suppressed <= 20
