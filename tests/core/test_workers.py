"""Worker-level enumeration from mvfst SCIDs."""

import random

from repro.core.l7lb import worker_count_distribution, workers_per_host
from repro.core.scid_stats import scids_by_origin
from repro.quic.cid.mvfst import MvfstCid


def make_scid(host_id, worker_id, rng):
    return MvfstCid(
        version=1,
        host_id=host_id,
        worker_id=worker_id,
        process_id=0,
        random_bits=rng.getrandbits(37),
    ).encode()


class TestWorkersPerHost:
    def test_grouping(self):
        rng = random.Random(1)
        scids = [
            make_scid(1, 0, rng),
            make_scid(1, 1, rng),
            make_scid(1, 1, rng),
            make_scid(2, 3, rng),
        ]
        grouped = workers_per_host(scids)
        assert grouped[1] == {0, 1}
        assert grouped[2] == {3}

    def test_non_mvfst_ignored(self):
        assert workers_per_host([b"\x00" * 8, b"\x01" * 20]) == {}

    def test_distribution(self):
        rng = random.Random(2)
        scids = [make_scid(h, w, rng) for h in range(5) for w in range(4)]
        dist = worker_count_distribution(scids)
        assert dist == {4: 5}

    def test_facebook_backscatter_shows_multiple_workers(self, small_capture):
        """Active fact behind §4.3: hosts run several worker processes."""
        scids = scids_by_origin(small_capture.backscatter)["Facebook"]
        grouped = workers_per_host(scids)
        assert grouped
        busiest = max(grouped.values(), key=len)
        # The Facebook profile runs 4 workers per host.
        assert 2 <= len(busiest) <= 4
        assert all(len(w) <= 4 for w in grouped.values())
