"""Table 6 (off-net classification) and §4.3 L7LB machinery."""

import pytest

from repro.core.l7lb import (
    ConvergenceCurve,
    cluster_vips,
    convergence_curve,
    host_id_of,
    jaccard,
    passive_coverage,
    passive_host_ids,
)
from repro.core.offnet import (
    CLASSIFIERS,
    ClassifierMetrics,
    evaluate_classifiers,
    extract_features,
)
from repro.inetdata.hypergiants import FACEBOOK
from repro.quic.cid.mvfst import MvfstCid


class TestFeatures:
    def test_features_exclude_hypergiant_ases(self, small_scenario, small_capture):
        features = extract_features(small_capture.backscatter)
        asdb = small_scenario.asdb
        assert all(
            asdb.origin_name(addr) == "Remaining" for addr in features
        )

    def test_offnet_servers_have_fb_features(self, small_scenario, small_capture):
        features = extract_features(small_capture.backscatter)
        offnet_addresses = {
            s.address
            for s in small_scenario.offnet_servers
            if s.profile.name == "Facebook"
        }
        observed = offnet_addresses & set(features)
        assert observed
        for addr in observed:
            feats = features[addr]
            assert feats.scid_structured_like_facebook()
            assert feats.low_host_id()
            assert feats.coalescence_like_facebook()


class TestClassifierMetrics:
    def test_metric_arithmetic(self):
        metrics = ClassifierMetrics(name="x", tp=8, fp=2, tn=18, fn=2)
        assert metrics.tpr == pytest.approx(0.8)
        assert metrics.fpr == pytest.approx(0.1)
        assert metrics.tnr == pytest.approx(0.9)
        assert metrics.fnr == pytest.approx(0.2)
        assert metrics.precision == pytest.approx(0.8)
        assert metrics.recall == metrics.tpr

    def test_zero_division_safe(self):
        metrics = ClassifierMetrics(name="x", tp=0, fp=0, tn=0, fn=0)
        assert metrics.tpr == 0.0
        assert metrics.precision == 0.0


class TestTable6:
    def test_all_nine_rows(self, small_scenario, small_capture):
        features = extract_features(small_capture.backscatter)
        results = evaluate_classifiers(features, small_scenario.certstore)
        assert len(results) == len(CLASSIFIERS) == 9

    def test_scid_classifier_perfect_recall(self, small_scenario, small_capture):
        """Paper: SCID-based classifiers reach TPR 1.0."""
        features = extract_features(small_capture.backscatter)
        results = {
            m.name: m
            for m in evaluate_classifiers(features, small_scenario.certstore)
        }
        assert results["SCID"].tpr == 1.0
        assert results["SCID off-net (low host ID)"].tpr == 1.0

    def test_low_host_id_slashes_fpr(self, small_scenario, small_capture):
        """Paper §4.2: the improved predictor drops FPR 0.19 -> 0.027."""
        features = extract_features(small_capture.backscatter)
        results = {
            m.name: m
            for m in evaluate_classifiers(features, small_scenario.certstore)
        }
        assert (
            results["SCID off-net (low host ID)"].fpr
            < results["SCID"].fpr
        )
        assert results["SCID off-net (low host ID)"].fpr < 0.08

    def test_coalescence_alone_is_weak(self, small_scenario, small_capture):
        """Paper Table 6: coalescence-only has near-total FPR."""
        features = extract_features(small_capture.backscatter)
        results = {
            m.name: m
            for m in evaluate_classifiers(features, small_scenario.certstore)
        }
        assert results["Coalescence"].tpr == 1.0
        assert results["Coalescence"].fpr > 0.5

    def test_universe_excludes_unverifiable(self, small_scenario, small_capture):
        features = extract_features(small_capture.backscatter)
        results = evaluate_classifiers(features, small_scenario.certstore)
        universe = results[0].tp + results[0].fp + results[0].tn + results[0].fn
        assert universe <= len(features)


class TestL7lbPrimitives:
    def test_host_id_of(self):
        cid = MvfstCid(
            version=1, host_id=777, worker_id=1, process_id=0, random_bits=5
        ).encode()
        assert host_id_of(cid) == 777
        assert host_id_of(b"\x00" * 8) is None
        assert host_id_of(b"\x01" * 20) is None

    def test_jaccard(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0
        assert jaccard({1}, {2}) == 0.0
        assert jaccard(set(), set()) == 0.0
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_convergence_curve(self):
        curve = convergence_curve([1, 1, 2, 3, 3, 3, 4])
        assert curve.counts == [1, 1, 2, 3, 3, 3, 4]
        assert curve.total == 4
        assert curve.coverage_at(3) == pytest.approx(0.5)
        assert curve.handshakes_for_coverage(0.75) == 4
        assert curve.handshakes_for_coverage(1.01) is None

    def test_empty_curve(self):
        curve = ConvergenceCurve(counts=[])
        assert curve.total == 0
        assert curve.coverage_at(10) == 0.0

    def test_passive_coverage(self):
        assert passive_coverage({1, 2}, {1, 2, 3, 4}) == pytest.approx(0.5)
        assert passive_coverage(set(), set()) == 0.0


class TestVipClustering:
    def test_disjoint_clusters(self):
        vips = {
            1: {10, 11, 12},
            2: {10, 11, 12},
            3: {20, 21},
            4: {20, 21},
            5: {30},
        }
        clustering = cluster_vips(vips)
        assert clustering.size_histogram() == {2: 2, 1: 1}
        assert clustering.min_intra_jaccard == 1.0
        assert clustering.max_inter_jaccard == 0.0

    def test_partial_overlap_still_groups(self):
        vips = {1: {10, 11, 12, 13}, 2: {10, 11, 12}}
        clustering = cluster_vips(vips)
        assert len(clustering.clusters) == 1
        assert clustering.min_intra_jaccard == pytest.approx(0.75)

    def test_passive_host_ids(self, small_capture):
        per_vip = passive_host_ids(small_capture.backscatter, origin="Facebook")
        assert per_vip
        all_ids = set().union(*per_vip.values())
        assert all_ids

    def test_passive_vs_deployment_coverage(self, small_scenario, small_capture):
        """Backscatter reveals a real subset of deployed host IDs (cf. the
        paper's 19%)."""
        per_vip = passive_host_ids(small_capture.backscatter, origin="Facebook")
        passive = set().union(*per_vip.values()) if per_vip else set()
        deployed = small_scenario.all_onnet_host_ids("Facebook")
        coverage = passive_coverage(passive, deployed)
        assert 0.05 < coverage <= 1.0
