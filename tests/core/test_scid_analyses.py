"""Table 4 (SCID lengths), Figure 5 (nybble entropy), Table 1 (summary)."""

import random

import pytest

from repro.core.scid_entropy import (
    chi_square_uniformity,
    is_structured,
    nybble_matrix,
    nybbles,
)
from repro.core.scid_stats import table4
from repro.core.summary import summarize


class TestTable4:
    def test_scid_lengths_per_origin(self, small_capture):
        stats = table4(small_capture.backscatter)
        assert stats["Cloudflare"].dominant_length == 20
        assert stats["Facebook"].dominant_length == 8
        assert stats["Google"].dominant_length == 8
        assert stats["Remaining"].dominant_length == 8

    def test_google_most_unique_scids(self, small_capture):
        """Table 4 ordering: Google > Facebook > Remaining > Cloudflare."""
        stats = table4(small_capture.backscatter)
        assert stats["Google"].unique_count > stats["Facebook"].unique_count
        assert stats["Facebook"].unique_count > stats["Cloudflare"].unique_count

    def test_remaining_has_rare_other_lengths(self, small_capture):
        summary = table4(small_capture.backscatter)["Remaining"].length_summary()
        assert summary.startswith("8")

    def test_length_summary_empty(self):
        from repro.core.scid_stats import ScidStats

        assert ScidStats(origin="x", unique_scids=set()).length_summary() == "-"


class TestNybbles:
    def test_nybble_split(self):
        assert nybbles(b"\xab\x01") == [0xA, 0xB, 0x0, 0x1]

    def test_matrix_rows_sum_to_one(self):
        rng = random.Random(1)
        scids = {rng.getrandbits(64).to_bytes(8, "big") for _ in range(200)}
        matrix = nybble_matrix(scids)
        assert matrix.positions == 16
        for row in matrix.freq:
            assert sum(row) == pytest.approx(1.0)

    def test_empty_population(self):
        matrix = nybble_matrix(set())
        assert matrix.positions == 0
        assert not is_structured(matrix)


class TestStructureDetection:
    """Figure 5: Google uniform, Facebook structured."""

    def test_google_scids_look_random(self, small_capture):
        from repro.core.scid_stats import scids_by_origin

        scids = scids_by_origin(small_capture.backscatter)["Google"]
        matrix = nybble_matrix(scids)
        assert not is_structured(matrix)

    def test_facebook_scids_structured(self, small_capture):
        from repro.core.scid_stats import scids_by_origin

        scids = scids_by_origin(small_capture.backscatter)["Facebook"]
        matrix = nybble_matrix(scids)
        assert is_structured(matrix)
        # Structure concentrates in the leading positions (host/worker IDs).
        hot = matrix.hot_positions(threshold=0.2)
        assert hot and min(hot) == 0

    def test_cloudflare_scids_structured(self, small_capture):
        from repro.core.scid_stats import scids_by_origin

        scids = scids_by_origin(small_capture.backscatter)["Cloudflare"]
        matrix = nybble_matrix(scids)
        assert is_structured(matrix)
        # First byte is fixed 0x01: position 0 frequency of nybble 0 is 1.
        assert matrix.freq[0][0] == pytest.approx(1.0)
        assert matrix.freq[1][1] == pytest.approx(1.0)

    def test_entropy_per_position(self, small_capture):
        from repro.core.scid_stats import scids_by_origin

        scids = scids_by_origin(small_capture.backscatter)["Facebook"]
        matrix = nybble_matrix(scids)
        entropy = matrix.entropy_per_position()
        # Leading (structured) positions carry less entropy than the random
        # tail of the mvfst CID.
        assert entropy[0] < entropy[-1]
        assert entropy[-1] > 3.5

    def test_chi_square_flags_fixed_position(self):
        scids = {bytes([0x01]) + bytes([i]) * 7 for i in range(100)}
        matrix = nybble_matrix(scids)
        stats = chi_square_uniformity(matrix)
        assert stats[0] > 100  # fixed first nybble


class TestTable1Summary:
    def test_matches_paper_matrix(self, small_capture):
        summary = summarize(small_capture.backscatter)
        cf, fb, gg = (
            summary["Cloudflare"],
            summary["Facebook"],
            summary["Google"],
        )
        # Coalescence: CF yes (rarely), FB no, GG yes.
        assert cf.coalescence and gg.coalescence and not fb.coalescence
        # Server-chosen IDs: CF/FB yes, GG no (echo).
        assert cf.server_chosen_ids and fb.server_chosen_ids
        assert not gg.server_chosen_ids
        # Structured SCIDs: CF/FB yes, GG no.
        assert cf.structured_scids and fb.structured_scids
        assert not gg.structured_scids
        # L7LB quantifiable only for Facebook.
        assert fb.l7_load_balancers
        assert not gg.l7_load_balancers
        assert not cf.l7_load_balancers
        # Initial RTO: 1 / 0.4 / 0.3 s.
        assert cf.initial_rto == pytest.approx(1.0, abs=0.07)
        assert fb.initial_rto == pytest.approx(0.4, abs=0.05)
        assert gg.initial_rto == pytest.approx(0.3, abs=0.05)

    def test_labels(self, small_capture):
        summary = summarize(small_capture.backscatter)
        assert summary["Facebook"].rto_label() == "0.4 s"
        assert "-" in summary["Facebook"].resend_label()
