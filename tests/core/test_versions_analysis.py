"""Table 2: version adoption from sessions."""

from repro.core.versions import TABLE2_ROWS, table2, table2_rows, version_shares


class TestVersionShares:
    def test_shares_sum_to_100(self, small_capture):
        shares = table2(small_capture)
        for side in ("clients", "servers"):
            total = sum(shares[side].share(b) for b in TABLE2_ROWS)
            assert abs(total - 100.0) < 1e-6

    def test_2022_client_mix_v1_dominant(self, small_capture):
        """Paper Table 2 (2022 clients): QUICv1 ~78%, mvfst2 ~21%."""
        clients = table2(small_capture)["clients"]
        assert clients.share("QUICv1") > 60
        assert 8 < clients.share("Facebook mvfst 2") < 35
        assert clients.share("draft-29") < 5

    def test_2022_server_mix(self, small_capture):
        """Paper Table 2 (2022 servers): v1 ~48%, mvfst2 ~33%."""
        servers = table2(small_capture)["servers"]
        assert servers.share("QUICv1") > 35
        assert servers.share("Facebook mvfst 2") > 20
        # Servers show more mvfst than clients do (Facebook's footprint).
        assert servers.share("Facebook mvfst 2") > table2(small_capture)[
            "clients"
        ].share("Facebook mvfst 2")

    def test_sessions_counted_once(self, small_capture):
        """Retransmissions must not inflate version counts."""
        servers = version_shares(small_capture.backscatter)
        assert servers.total < len(small_capture.backscatter) / 2

    def test_table2_rows_structure(self, small_capture):
        rows = table2_rows({2022: small_capture})
        assert [r[0] for r in rows] == list(TABLE2_ROWS)
        bucket, clients, servers = rows[0]
        assert 2022 in clients and 2022 in servers

    def test_empty_population(self):
        shares = version_shares([])
        assert shares.total == 0
        assert shares.share("QUICv1") == 0.0
