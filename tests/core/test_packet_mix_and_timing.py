"""Table 3 / Figure 7 (packet mix) and Figures 3 / 4 (timing)."""

import pytest

from repro.core.packet_mix import (
    packet_mix,
    top_length_signatures,
)
from repro.core.timing import (
    estimate_rto,
    gap_histogram,
    resend_count_distribution,
    timing_profiles,
)


class TestPacketMix:
    def test_shares_sum_to_100_per_origin(self, small_capture):
        mix = packet_mix(small_capture.backscatter)
        for origin in mix.origins():
            total = sum(
                mix.share(origin, cat)
                for cat in (
                    "Initial",
                    "Handshake",
                    "0-RTT",
                    "Retry",
                    "Coalesced Initial & Handshake",
                    "Coalesced other",
                )
            )
            assert total == pytest.approx(100.0, abs=0.01)

    def test_google_coalesces_facebook_does_not(self, small_capture):
        """Table 3's headline: only Google predominantly coalesces."""
        mix = packet_mix(small_capture.backscatter)
        assert mix.coalescence_share("Google") > 30
        assert mix.coalescence_share("Facebook") == 0.0
        assert 0 <= mix.coalescence_share("Cloudflare") < 15
        assert mix.uses_coalescence("Google")
        assert not mix.uses_coalescence("Facebook")

    def test_facebook_initial_handshake_split(self, small_capture):
        """Without coalescence, Initials and Handshakes are ~50/50."""
        mix = packet_mix(small_capture.backscatter)
        assert 40 < mix.share("Facebook", "Initial") < 60
        assert 40 < mix.share("Facebook", "Handshake") < 60

    def test_zero_rtt_only_from_google_and_remaining(self, small_capture):
        """Table 3: 0-RTT appears for Google and Remaining only (cloud bots)."""
        mix = packet_mix(small_capture.scans + small_capture.backscatter)
        assert mix.share("Google", "0-RTT") > 0
        assert mix.share("Facebook", "0-RTT") == 0.0
        assert mix.share("Cloudflare", "0-RTT") == 0.0

    def test_unknown_origin_share_zero(self, small_capture):
        mix = packet_mix(small_capture.backscatter)
        assert mix.share("Nonexistent", "Initial") == 0.0


class TestLengthSignatures:
    def test_facebook_signature_lengths(self, small_capture):
        """Figure 7: per-provider characteristic packet lengths."""
        tops = top_length_signatures(small_capture.backscatter)
        fb = dict(tops["Facebook"])
        # Facebook flights: 1200-byte Initial datagrams, 1232-byte Handshake.
        assert any(sig == "1200" for sig in fb)
        assert any(sig == "1232" for sig in fb)
        assert all("," not in sig for sig in fb)  # never coalesced

    def test_google_has_coalesced_signature(self, small_capture):
        tops = top_length_signatures(small_capture.backscatter)
        google = [sig for sig, _n in tops["Google"]]
        assert any("," in sig for sig in google)

    def test_top_n_limit(self, small_capture):
        tops = top_length_signatures(small_capture.backscatter, top=3)
        assert all(len(entries) <= 3 for entries in tops.values())


class TestTiming:
    def test_initial_rtos_match_profiles(self, small_capture):
        """Figure 3: Cloudflare 1 s, Facebook 0.4 s, Google 0.3 s."""
        profiles = timing_profiles(small_capture.backscatter)
        assert profiles["Facebook"].initial_rto == pytest.approx(0.4, abs=0.05)
        assert profiles["Google"].initial_rto == pytest.approx(0.3, abs=0.05)
        assert profiles["Cloudflare"].initial_rto == pytest.approx(1.0, abs=0.07)

    def test_rto_ordering(self, small_capture):
        profiles = timing_profiles(small_capture.backscatter)
        assert (
            profiles["Google"].initial_rto
            < profiles["Facebook"].initial_rto
            < profiles["Cloudflare"].initial_rto
        )

    def test_exponential_backoff_detected(self, small_capture):
        profiles = timing_profiles(small_capture.backscatter)
        for origin in ("Facebook", "Google", "Cloudflare"):
            assert profiles[origin].backoff_factor == pytest.approx(2.0, abs=0.2)

    def test_resend_ranges(self, small_capture):
        """Figure 4: Facebook 7-9 resends, Google/Cloudflare 3-6."""
        profiles = timing_profiles(small_capture.backscatter)
        fb_low, fb_high = profiles["Facebook"].resend_range
        assert 7 <= fb_low <= fb_high <= 9
        gg_low, gg_high = profiles["Google"].resend_range
        assert 3 <= gg_low <= gg_high <= 6
        cf_low, cf_high = profiles["Cloudflare"].resend_range
        assert 3 <= cf_low <= cf_high <= 6

    def test_facebook_attempts_more_reconnects(self, small_capture):
        """Figure 4's conclusion: Facebook is the most persistent."""
        profiles = timing_profiles(small_capture.backscatter)
        assert profiles["Facebook"].resend_range[1] > profiles["Google"].resend_range[1]

    def test_gap_histogram_has_rto_peak(self, small_capture):
        histogram = gap_histogram(small_capture.backscatter, bin_width=0.1)
        fb = histogram["Facebook"]
        # The 0.4 s bin must be populated and a clear local peak.
        assert fb.get(0.4, 0) > 0
        assert fb.get(0.4, 0) > fb.get(0.6, 0)

    def test_resend_count_distribution_keys(self, small_capture):
        dist = resend_count_distribution(small_capture.backscatter)
        assert set(dist) >= {"Facebook", "Google", "Cloudflare"}

    def test_estimate_rto_empty(self):
        assert estimate_rto([]) is None

    def test_estimate_rto_mode(self):
        gaps = [0.41, 0.39, 0.4, 0.42, 1.0]
        assert estimate_rto(gaps) == pytest.approx(0.4, abs=0.03)
