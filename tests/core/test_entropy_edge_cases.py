"""Edge cases for the entropy analysis: mixed lengths, small samples."""

import random

import pytest

from repro.core.scid_entropy import (
    chi_square_uniformity,
    is_structured,
    nybble_matrix,
)


class TestMixedLengths:
    def test_position_totals_respect_short_ids(self):
        scids = [b"\x01" * 8] * 50 + [b"\x02" * 20] * 10
        matrix = nybble_matrix(scids)
        assert matrix.positions == 40
        # All 60 IDs cover the head positions; only the 20-byte ones reach
        # the tail.
        assert matrix.position_totals[0] == 60
        assert matrix.position_totals[39] == 10

    def test_chi_square_uses_per_position_totals(self):
        rng = random.Random(3)
        # 200 random 8-byte + 20 random 20-byte IDs: tail positions have a
        # much smaller sample and must not produce inflated statistics.
        scids = [rng.getrandbits(64).to_bytes(8, "big") for _ in range(200)]
        scids += [rng.getrandbits(160).to_bytes(20, "big") for _ in range(20)]
        matrix = nybble_matrix(scids)
        stats = chi_square_uniformity(matrix)
        assert all(s < 60 for s in stats), stats
        assert not is_structured(matrix)

    def test_structured_tail_detected_despite_small_sample(self):
        rng = random.Random(4)
        # 8-byte randoms plus 20-byte IDs with a *fixed* byte 12.
        scids = [rng.getrandbits(64).to_bytes(8, "big") for _ in range(100)]
        scids += [
            rng.getrandbits(96).to_bytes(12, "big")
            + b"\x7f"
            + rng.getrandbits(56).to_bytes(7, "big")
            for _ in range(40)
        ]
        matrix = nybble_matrix(scids)
        assert is_structured(matrix)


class TestSmallSamples:
    def test_fewer_than_eight_ids_never_structured(self):
        scids = [b"\x01" * 8] * 7
        assert not is_structured(nybble_matrix(scids))

    def test_eight_constant_ids_structured(self):
        scids = {bytes([1, i, 3, 4, 5, 6, 7, 8]) for i in range(9)}
        assert is_structured(nybble_matrix(scids))
