"""Session reconstruction and report rendering."""

from repro.core.report import format_cell, render_histogram, render_table
from repro.core.session import SessionStore


class TestSessionStore:
    def test_groups_by_scid_dcid_and_addresses(self, small_capture):
        store = SessionStore.from_packets(small_capture.backscatter)
        assert len(store) > 100
        for session in store.sessions()[:50]:
            assert session.datagram_count >= 1
            assert session.timestamps == sorted(session.timestamps)

    def test_relative_times_start_at_zero(self, small_capture):
        store = SessionStore.from_packets(small_capture.backscatter)
        session = max(store.sessions(), key=lambda s: s.datagram_count)
        rel = session.relative_times()
        assert rel[0] == 0.0
        assert all(b >= a for a, b in zip(rel, rel[1:]))

    def test_resend_count_counts_initial_flights(self, small_capture):
        store = SessionStore.from_packets(small_capture.backscatter)
        facebook = store.by_origin("Facebook")
        assert facebook
        # Facebook resends 7-9 times; all flights reach the telescope.
        counts = {s.resend_count() for s in facebook if s.datagram_count > 2}
        assert counts <= set(range(0, 10))
        assert max(counts) >= 7

    def test_by_origin_partitions(self, small_capture):
        store = SessionStore.from_packets(small_capture.backscatter)
        total = sum(
            len(store.by_origin(o))
            for o in ("Facebook", "Google", "Cloudflare", "Remaining")
        )
        assert total == len(store)


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(
            ["name", "value"],
            [["a", 1], ["long-name", 2.5]],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "long-name" in table
        assert "2.500" in table

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.12345) == "0.123"
        assert format_cell("x") == "x"

    def test_render_histogram(self):
        out = render_histogram([("0.4", 100), ("0.8", 50)], width=10)
        lines = out.splitlines()
        assert lines[0].endswith("#" * 10)
        assert lines[1].endswith("#" * 5)

    def test_render_histogram_empty(self):
        assert "empty" in render_histogram([])

    def test_render_histogram_all_zero_counts(self):
        """All-zero series must render (no ZeroDivisionError, no bars)."""
        out = render_histogram([("a", 0), ("b", 0)], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert "#" not in out

    def test_render_histogram_empty_label_rows(self):
        out = render_histogram([("", 3), ("x", 1)], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("#" * 10)

    def test_render_table_ragged_rows_raise(self):
        import pytest

        with pytest.raises(ValueError, match="expected 2"):
            render_table(["a", "b"], [["1", "2"], ["only-one"]])

    def test_render_table_too_many_cells_raise(self):
        import pytest

        with pytest.raises(ValueError):
            render_table(["a", "b"], [["1", "2", "3"]])
