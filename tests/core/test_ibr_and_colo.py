"""IBR activity analysis and Cloudflare colo fingerprinting."""

import pytest

from repro.core.colo import cloudflare_colos
from repro.core.ibr_activity import (
    FloodEvent,
    activity_series,
    detect_flood_events,
    summarize_ibr,
)
from repro.telescope.classify import CapturedPacket, PacketClass


def synth_packet(ts, src=1, dst=2):
    """A minimal CapturedPacket for event-detection logic tests."""
    from repro.quic.packet import PacketType, ParsedLongHeader

    header = ParsedLongHeader(
        packet_type=PacketType.INITIAL,
        version=1,
        dcid=b"\x01" * 8,
        scid=b"\x02" * 8,
        token=b"",
        pn_offset=20,
        packet_length=1200,
        payload_length=1180,
    )
    return CapturedPacket(
        timestamp=ts,
        src_ip=src,
        dst_ip=dst,
        src_port=443,
        dst_port=4000,
        udp_payload_length=1200,
        packets=[header],
        klass=PacketClass.BACKSCATTER,
        origin="Facebook",
    )


class TestActivitySeries:
    def test_binning(self):
        packets = [synth_packet(t) for t in (0.0, 10.0, 61.0, 150.0)]
        series = activity_series(packets, bin_width=60.0)
        assert series == {0.0: 2, 60.0: 1, 120.0: 1}

    def test_empty(self):
        assert activity_series([]) == {}


class TestFloodDetection:
    def test_single_burst(self):
        packets = [synth_packet(float(t)) for t in range(20)]
        events = detect_flood_events(packets, quiet_gap=60, min_packets=5)
        assert len(events) == 1
        event = events[0]
        assert event.packets == 20
        assert event.duration == 19.0
        assert event.rate == pytest.approx(20 / 19)

    def test_quiet_gap_splits_events(self):
        packets = [synth_packet(float(t)) for t in range(15)]
        packets += [synth_packet(500.0 + t) for t in range(15)]
        events = detect_flood_events(packets, quiet_gap=120, min_packets=5)
        assert len(events) == 2
        assert events[0].end < events[1].start

    def test_min_packets_filters_noise(self):
        packets = [synth_packet(0.0), synth_packet(1.0)]
        assert detect_flood_events(packets, min_packets=5) == []

    def test_distinct_victims_distinct_events(self):
        packets = [synth_packet(float(t), src=1) for t in range(10)]
        packets += [synth_packet(float(t), src=2) for t in range(10)]
        events = detect_flood_events(packets, min_packets=5)
        assert {e.victim for e in events} == {1, 2}

    def test_spoofed_target_count(self):
        packets = [synth_packet(float(t), dst=100 + t % 7) for t in range(14)]
        events = detect_flood_events(packets, min_packets=5)
        assert events[0].spoofed_targets == 7

    def test_on_simulated_month(self, small_capture):
        summary = summarize_ibr(small_capture.backscatter, min_packets=4)
        assert summary.victims > 50
        per_origin = summary.events_per_origin()
        assert per_origin["Facebook"] > 0
        assert per_origin["Google"] > 0
        busiest = summary.busiest(3)
        assert busiest[0].packets >= busiest[-1].packets


class TestCloudflareColos:
    def test_colos_recovered(self, small_scenario, small_capture):
        view = cloudflare_colos(small_capture.backscatter)
        # The small scenario deploys 2 Cloudflare clusters = 2 colo IDs.
        assert view.colo_count == len(small_scenario.clusters["Cloudflare"])
        for colo, metal_count in view.metal_counts().items():
            assert metal_count >= 1

    def test_metals_bounded_by_deployment(self, small_scenario, small_capture):
        view = cloudflare_colos(small_capture.backscatter)
        hosts = small_scenario.clusters["Cloudflare"][0].hosts
        for metals in view.metals_by_colo.values():
            assert len(metals) <= len(hosts) * 2  # metal = host_id & 0xff

    def test_empty_capture(self):
        view = cloudflare_colos([])
        assert view.colo_count == 0
