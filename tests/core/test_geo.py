"""Figure 6: geographic aggregation of cluster sizes."""

import pytest

from repro.core.geo import BoxStats, GeoAggregation, aggregate_clusters, _quantile
from repro.inetdata.geodb import GeoDatabase
from repro.netstack.addr import parse_ip


def make_geodb():
    db = GeoDatabase()
    db.register("157.240.1.0/24", "IN")
    db.register("157.240.2.0/24", "SG")
    db.register("157.240.3.0/24", "DE")
    db.register("157.240.4.0/24", "US")
    return db


class TestQuantile:
    def test_median_odd(self):
        assert _quantile([1, 2, 9], 0.5) == 2

    def test_median_even_interpolates(self):
        assert _quantile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)

    def test_single_value(self):
        assert _quantile([7], 0.25) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _quantile([], 0.5)


class TestBoxStats:
    def test_five_numbers(self):
        box = BoxStats.from_values("IN", [100, 200, 300, 400, 500])
        assert box.minimum == 100
        assert box.median == 300
        assert box.maximum == 500
        assert box.q1 == 200
        assert box.q3 == 400
        assert box.count == 5


class TestAggregation:
    def test_by_country_and_continent(self):
        sizes = {
            parse_ip("157.240.1.1"): 450,
            parse_ip("157.240.2.1"): 460,
            parse_ip("157.240.3.1"): 340,
            parse_ip("157.240.4.1"): 290,
        }
        agg = aggregate_clusters(sizes, make_geodb())
        assert agg.by_country["IN"] == [450]
        medians = agg.continent_medians()
        assert medians["Asia"] == pytest.approx(455)
        assert medians["Europe"] == 340
        assert medians["North America"] == 290
        assert agg.clusters_per_continent()["Asia"] == 2

    def test_asia_ordering_like_paper(self):
        """Figure 6's headline: Asia's median exceeds EU's exceeds NA's."""
        sizes = {
            parse_ip("157.240.1.1"): 453,
            parse_ip("157.240.3.1"): 339,
            parse_ip("157.240.4.1"): 292,
        }
        medians = aggregate_clusters(sizes, make_geodb()).continent_medians()
        assert medians["Asia"] > medians["Europe"] > medians["North America"]

    def test_unlocated_vips_skipped(self):
        sizes = {parse_ip("203.0.113.7"): 99}
        agg = aggregate_clusters(sizes, make_geodb())
        assert agg.by_country == {}

    def test_country_boxes_sorted(self):
        sizes = {
            parse_ip("157.240.1.1"): 1,
            parse_ip("157.240.3.1"): 2,
        }
        boxes = aggregate_clusters(sizes, make_geodb()).country_boxes()
        assert [b.country for b in boxes] == ["DE", "IN"]
