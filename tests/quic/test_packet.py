"""Long-header packets, coalescence, Retry, and Version Negotiation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.crypto.suites import FastProtection, Rfc9001Protection
from repro.quic.packet import (
    MIN_INITIAL_DATAGRAM,
    LongHeaderPacket,
    PacketParseError,
    PacketType,
    RetryPacket,
    VersionNegotiationPacket,
    decode_datagram,
    encode_datagram,
    encode_packet,
    encode_retry,
    encode_version_negotiation,
    parse_long_header,
    unprotect_packet,
)

DCID = b"\x83\x94\xc8\xf0\x3e\x51\x57\x08"
SCID = b"\xaa" * 8


def suite():
    return FastProtection(1, DCID)


def initial(payload=b"\x06\x01\x02\x03" + b"\x00" * 30, pn=0, token=b""):
    return LongHeaderPacket(
        packet_type=PacketType.INITIAL,
        version=1,
        dcid=DCID,
        scid=SCID,
        packet_number=pn,
        payload=payload,
        token=token,
    )


def handshake(payload=b"\x06" + b"\x00" * 40, pn=1):
    return LongHeaderPacket(
        packet_type=PacketType.HANDSHAKE,
        version=1,
        dcid=DCID,
        scid=SCID,
        packet_number=pn,
        payload=payload,
    )


class TestParseLongHeader:
    def test_initial_fields_visible_without_keys(self):
        wire = encode_packet(initial(token=b"tok"), suite(), is_server=False)
        parsed = parse_long_header(wire)
        assert parsed.packet_type is PacketType.INITIAL
        assert parsed.version == 1
        assert parsed.dcid == DCID
        assert parsed.scid == SCID
        assert parsed.token == b"tok"
        assert parsed.packet_length == len(wire)

    def test_rejects_short_header(self):
        with pytest.raises(PacketParseError):
            parse_long_header(b"\x40" + b"\x00" * 30)

    def test_rejects_zero_fixed_bit(self):
        wire = bytearray(encode_packet(initial(), suite(), is_server=False))
        # Clear form+fixed: craft a first byte with form set, fixed cleared.
        wire[0] = 0x80
        with pytest.raises(PacketParseError):
            parse_long_header(bytes(wire))

    def test_rejects_oversized_cid(self):
        raw = bytes([0xC0, 0, 0, 0, 1, 21]) + b"\x00" * 40
        with pytest.raises(PacketParseError):
            parse_long_header(raw)

    def test_rejects_length_overrun(self):
        wire = bytearray(encode_packet(initial(), suite(), is_server=False))
        truncated = bytes(wire[: len(wire) // 2])
        with pytest.raises(PacketParseError):
            parse_long_header(truncated)


class TestCoalescence:
    def test_two_packets_one_datagram(self):
        s = suite()
        data = encode_datagram([initial(), handshake()], s, is_server=True)
        packets = decode_datagram(data)
        assert [p.packet_type for p, _ in packets] == [
            PacketType.INITIAL,
            PacketType.HANDSHAKE,
        ]
        # Both decrypt independently.
        for parsed, raw in packets:
            plain = unprotect_packet(parsed, raw, s, from_server=True)
            assert plain.payload

    def test_padding_extends_last_packet(self):
        s = suite()
        data = encode_datagram(
            [initial(), handshake()], s, is_server=True, pad_to=1252
        )
        assert len(data) == 1252
        packets = decode_datagram(data)
        assert len(packets) == 2
        plain = unprotect_packet(packets[1][0], packets[1][1], s, from_server=True)
        assert plain.payload.endswith(b"\x00" * 10)

    def test_client_initial_padded_to_minimum(self):
        s = suite()
        data = encode_datagram(
            [initial()], s, is_server=False, pad_to=MIN_INITIAL_DATAGRAM
        )
        assert len(data) == MIN_INITIAL_DATAGRAM

    def test_no_padding_when_already_long(self):
        s = suite()
        big = initial(payload=b"\x00" * 1500)
        data = encode_datagram([big], s, is_server=False, pad_to=1200)
        assert len(data) > 1200

    def test_empty_datagram_rejected(self):
        with pytest.raises(PacketParseError):
            encode_datagram([], suite(), is_server=False)

    def test_decode_garbage_rejected(self):
        with pytest.raises(PacketParseError):
            decode_datagram(b"\x17\x03\x03\x00\x10" + b"\x00" * 16)


class TestVersionNegotiation:
    def test_roundtrip(self):
        packet = VersionNegotiationPacket(
            dcid=b"\x01" * 8,
            scid=b"\x02" * 8,
            supported_versions=(0x00000001, 0xFF00001D),
        )
        wire = encode_version_negotiation(packet)
        parsed = parse_long_header(wire)
        assert parsed.packet_type is PacketType.VERSION_NEGOTIATION
        assert parsed.supported_versions == (0x00000001, 0xFF00001D)
        assert parsed.dcid == b"\x01" * 8
        assert parsed.scid == b"\x02" * 8

    def test_vn_terminates_datagram_scan(self):
        packet = VersionNegotiationPacket(
            dcid=b"", scid=b"\x02" * 8, supported_versions=(1,)
        )
        wire = encode_version_negotiation(packet) + b"\xc0trailing"
        packets = decode_datagram(wire)
        assert len(packets) == 1


class TestRetry:
    def test_roundtrip(self):
        packet = RetryPacket(
            version=1, dcid=b"\x01" * 4, scid=b"\x02" * 8, retry_token=b"token123"
        )
        wire = encode_retry(packet)
        parsed = parse_long_header(wire)
        assert parsed.packet_type is PacketType.RETRY
        assert parsed.retry_token == b"token123"

    def test_retry_too_short(self):
        packet = RetryPacket(version=1, dcid=b"", scid=b"", retry_token=b"")
        wire = encode_retry(packet)
        # Strip the integrity tag below 16 bytes.
        with pytest.raises(PacketParseError):
            parse_long_header(wire[:-10])


class TestValidation:
    def test_long_header_packet_rejects_retry_type(self):
        with pytest.raises(PacketParseError):
            LongHeaderPacket(
                packet_type=PacketType.RETRY, version=1, dcid=b"", scid=b""
            )

    def test_pn_length_bounds(self):
        with pytest.raises(PacketParseError):
            LongHeaderPacket(
                packet_type=PacketType.INITIAL,
                version=1,
                dcid=b"",
                scid=b"",
                pn_length=5,
            )

    def test_cid_length_bound_on_encode(self):
        packet = LongHeaderPacket(
            packet_type=PacketType.INITIAL, version=1, dcid=b"\x00" * 21, scid=b""
        )
        with pytest.raises(PacketParseError):
            encode_packet(packet, suite(), is_server=False)


@settings(max_examples=40, deadline=None)
@given(
    dcid=st.binary(min_size=0, max_size=20),
    scid=st.binary(min_size=0, max_size=20),
    payload=st.binary(min_size=24, max_size=300),
    token=st.binary(min_size=0, max_size=32),
    version=st.sampled_from([0x00000001, 0xFF00001D, 0xFACEB002]),
)
def test_header_roundtrip_property(dcid, scid, payload, token, version):
    s = FastProtection(version, dcid)
    packet = LongHeaderPacket(
        packet_type=PacketType.INITIAL,
        version=version,
        dcid=dcid,
        scid=scid,
        payload=payload,
        token=token,
    )
    wire = encode_packet(packet, s, is_server=False)
    parsed = parse_long_header(wire)
    assert parsed.dcid == dcid
    assert parsed.scid == scid
    assert parsed.token == token
    assert parsed.version == version
    plain = unprotect_packet(parsed, wire, s, from_server=False)
    assert plain.payload == payload
