"""QUIC variable-length integers (RFC 9000 §16)."""

import pytest
from hypothesis import given, strategies as st

from repro.buffer import Reader
from repro.quic.varint import (
    VARINT_MAX,
    decode_varint,
    encode_varint,
    read_varint,
    varint_length,
)


class TestRfcExamples:
    """The worked examples from RFC 9000 Appendix A.1."""

    def test_eight_byte_example(self):
        value, consumed = decode_varint(bytes.fromhex("c2197c5eff14e88c"))
        assert value == 151_288_809_941_952_652
        assert consumed == 8

    def test_four_byte_example(self):
        value, consumed = decode_varint(bytes.fromhex("9d7f3e7d"))
        assert value == 494_878_333
        assert consumed == 4

    def test_two_byte_example(self):
        value, consumed = decode_varint(bytes.fromhex("7bbd"))
        assert value == 15_293
        assert consumed == 2

    def test_one_byte_example(self):
        value, consumed = decode_varint(bytes.fromhex("25"))
        assert value == 37
        assert consumed == 1

    def test_two_byte_encoding_of_small_value(self):
        """RFC 9000: 0x4025 also decodes to 37 (non-minimal encoding)."""
        value, consumed = decode_varint(bytes.fromhex("4025"))
        assert value == 37
        assert consumed == 2


class TestEncoding:
    def test_minimal_lengths(self):
        assert varint_length(0) == 1
        assert varint_length(63) == 1
        assert varint_length(64) == 2
        assert varint_length(16383) == 2
        assert varint_length(16384) == 4
        assert varint_length((1 << 30) - 1) == 4
        assert varint_length(1 << 30) == 8
        assert varint_length(VARINT_MAX) == 8

    def test_forced_width(self):
        assert encode_varint(37, width=2) == bytes.fromhex("4025")
        assert encode_varint(37, width=4) == bytes.fromhex("80000025")
        assert encode_varint(37, width=8) == bytes.fromhex("c000000000000025")

    def test_forced_width_too_small(self):
        with pytest.raises(ValueError):
            encode_varint(70000, width=2)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            encode_varint(1, width=3)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_varint(-1)
        with pytest.raises(ValueError):
            encode_varint(VARINT_MAX + 1)


class TestReader:
    def test_read_advances_cursor(self):
        reader = Reader(bytes.fromhex("25" "7bbd"))
        assert read_varint(reader) == 37
        assert read_varint(reader) == 15293
        assert reader.at_end()


@given(st.integers(min_value=0, max_value=VARINT_MAX))
def test_roundtrip(value):
    decoded, consumed = decode_varint(encode_varint(value))
    assert decoded == value
    assert consumed == varint_length(value)


@given(
    st.integers(min_value=0, max_value=VARINT_MAX),
    st.sampled_from([1, 2, 4, 8]),
)
def test_roundtrip_forced_width(value, width):
    if varint_length(value) > width:
        return
    encoded = encode_varint(value, width=width)
    assert len(encoded) == width
    decoded, consumed = decode_varint(encoded)
    assert (decoded, consumed) == (value, width)
