"""Cryptographic primitives against published test vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.crypto.aes import AES128, SBOX
from repro.quic.crypto.gcm import AesGcm, AuthenticationError, _gf_mult
from repro.quic.crypto.hkdf import hkdf_expand, hkdf_expand_label, hkdf_extract
from repro.quic.crypto.initial import derive_initial_keys, initial_salt


class TestAes:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_fips197_appendix_b(self):
        aes = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_fips197_appendix_c(self):
        aes = AES128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = aes.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            AES128(b"\x00" * 15)

    def test_rejects_bad_block_length(self):
        with pytest.raises(ValueError):
            AES128(b"\x00" * 16).encrypt_block(b"\x00" * 15)

    def test_ctr_keystream_deterministic(self):
        aes = AES128(b"\x01" * 16)
        a = aes.ctr_keystream(b"\x02" * 12, 100)
        b = aes.ctr_keystream(b"\x02" * 12, 100)
        assert a == b
        assert len(a) == 100

    def test_ctr_keystream_counter_progression(self):
        aes = AES128(b"\x01" * 16)
        long = aes.ctr_keystream(b"\x02" * 12, 48)
        assert long[:16] == aes.encrypt_block(b"\x02" * 12 + b"\x00\x00\x00\x01")
        assert long[16:32] == aes.encrypt_block(b"\x02" * 12 + b"\x00\x00\x00\x02")


class TestGcm:
    # NIST GCM spec test case 3 (AES-128).
    KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    IV = bytes.fromhex("cafebabefacedbaddecaf888")
    PT = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
    )

    def test_nist_case_3_no_aad(self):
        sealed = AesGcm(self.KEY).seal(self.IV, self.PT, b"")
        assert sealed[-16:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"
        assert sealed[:16].hex() == "42831ec2217774244b7221b784d0d49c"

    def test_nist_case_4_with_aad(self):
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        sealed = AesGcm(self.KEY).seal(self.IV, self.PT[:60], aad)
        assert sealed[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_empty_everything(self):
        # NIST test case 1: empty plaintext and AAD.
        gcm = AesGcm(b"\x00" * 16)
        sealed = gcm.seal(b"\x00" * 12, b"", b"")
        assert sealed.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_roundtrip(self):
        gcm = AesGcm(self.KEY)
        sealed = gcm.seal(self.IV, b"hello quic", b"aad")
        assert gcm.open(self.IV, sealed, b"aad") == b"hello quic"

    def test_tamper_detection_ciphertext(self):
        gcm = AesGcm(self.KEY)
        sealed = bytearray(gcm.seal(self.IV, b"hello quic", b"aad"))
        sealed[0] ^= 1
        with pytest.raises(AuthenticationError):
            gcm.open(self.IV, bytes(sealed), b"aad")

    def test_tamper_detection_aad(self):
        gcm = AesGcm(self.KEY)
        sealed = gcm.seal(self.IV, b"hello quic", b"aad")
        with pytest.raises(AuthenticationError):
            gcm.open(self.IV, sealed, b"bad")

    def test_too_short_ciphertext(self):
        with pytest.raises(AuthenticationError):
            AesGcm(self.KEY).open(self.IV, b"\x00" * 10, b"")

    def test_gf_mult_identity(self):
        # x^0 (the GCM "1") is 0x80 followed by zeros in this representation.
        one = 0x80 << 120
        x = 0x123456789ABCDEF0 << 64
        assert _gf_mult(x, one) == x

    @settings(max_examples=25, deadline=None)
    @given(
        st.binary(min_size=0, max_size=80),
        st.binary(min_size=0, max_size=40),
    )
    def test_roundtrip_property(self, plaintext, aad):
        gcm = AesGcm(b"\x37" * 16)
        sealed = gcm.seal(b"\x11" * 12, plaintext, aad)
        assert gcm.open(b"\x11" * 12, sealed, aad) == plaintext


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_expand_rejects_excessive_length(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 256 * 32)

    def test_expand_label_structure(self):
        # Same secret/label/length must be deterministic and label-sensitive.
        secret = b"\x42" * 32
        a = hkdf_expand_label(secret, "quic key", b"", 16)
        b = hkdf_expand_label(secret, "quic iv", b"", 16)
        assert a != b
        assert len(a) == 16


class TestInitialKeys:
    DCID = bytes.fromhex("8394c8f03e515708")

    def test_rfc9001_appendix_a1_client(self):
        keys = derive_initial_keys(0x00000001, self.DCID)
        assert keys.client.key.hex() == "1f369613dd76d5467730efcbe3b1a22d"
        assert keys.client.iv.hex() == "fa044b2f42a3fd3b46fb255c"
        assert keys.client.hp.hex() == "9f50449e04a0e810283a1e9933adedd2"

    def test_rfc9001_appendix_a1_server(self):
        keys = derive_initial_keys(0x00000001, self.DCID)
        assert keys.server.key.hex() == "cf3a5331653c364c88f0f379b6067e37"
        assert keys.server.iv.hex() == "0ac1493ca1905853b0bba03e"
        assert keys.server.hp.hex() == "c206b8d9b9f0f37644430b490eeaa314"

    def test_nonce_xor(self):
        keys = derive_initial_keys(1, self.DCID)
        nonce0 = keys.client.nonce(0)
        nonce1 = keys.client.nonce(1)
        assert nonce0 == keys.client.iv
        assert nonce1[-1] == keys.client.iv[-1] ^ 1

    def test_salt_selection(self):
        assert initial_salt(0x00000001) != initial_salt(0xFF00001D)
        # mvfst falls back to the draft-29 salt.
        assert initial_salt(0xFACEB002) == initial_salt(0xFF00001D)
        # Unknown versions fall back to the v1 salt.
        assert initial_salt(0x12345678) == initial_salt(0x00000001)

    def test_different_dcid_different_keys(self):
        a = derive_initial_keys(1, b"\x01" * 8)
        b = derive_initial_keys(1, b"\x02" * 8)
        assert a.client.key != b.client.key
