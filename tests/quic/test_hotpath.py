"""Write-side template/memo plane: byte parity against the rebuild paths.

Every fast path introduced by the hot-path refactor (crypto memoization,
packet templates, flow templates, the engine's flight layouts) keeps its
pre-refactor implementation alive as the reference; these tests pin the
contract that both produce identical bytes, so the speedup can never
drift the simulation's output.
"""

import random

import pytest

from repro import hotpath
from repro.quic.crypto.aes import AES128
from repro.quic.crypto.gcm import AesGcm
from repro.quic.crypto.initial import derive_initial_keys
from repro.quic.crypto.memo import (
    cached_aes,
    cached_gcm,
    cached_initial_keys,
    clear_crypto_memos,
    memo_stats,
)
from repro.quic.crypto.suites import FastProtection, NullProtection, Rfc9001Protection
from repro.quic.packet import (
    LongHeaderPacket,
    PacketType,
    ShortHeaderPacket,
    encode_datagram,
    encode_packet,
    encode_short_packet,
)


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_crypto_memos()
    hotpath.set_enabled(True)
    yield
    clear_crypto_memos()
    hotpath.set_enabled(True)


class TestLruCache:
    def test_get_or_build_caches(self):
        from repro.hotpath import LruCache

        cache = LruCache(4)
        built = []

        def factory():
            built.append(1)
            return len(built)

        assert cache.get_or_build("a", factory) == 1
        assert cache.get_or_build("a", factory) == 1
        assert built == [1]
        assert cache.hits == 1
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        from repro.hotpath import LruCache

        cache = LruCache(2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A")  # refresh a; b is now oldest
        cache.get_or_build("c", lambda: "C")  # evicts b
        rebuilt = []
        cache.get_or_build("b", lambda: rebuilt.append(1) or "B2")
        assert rebuilt == [1]

    def test_disabled_context_bypasses(self):
        assert hotpath.enabled
        with hotpath.disabled():
            assert not hotpath.enabled
        assert hotpath.enabled


class TestCryptoMemoParity:
    def test_initial_keys_identical_across_1000_dcids(self):
        rng = random.Random(20260807)
        dcids = [rng.getrandbits(64).to_bytes(8, "big") for _ in range(1000)]
        for dcid in dcids:
            cached = cached_initial_keys(1, dcid)
            fresh = derive_initial_keys(1, dcid)
            assert cached.client == fresh.client
            assert cached.server == fresh.server

    def test_initial_keys_cache_hit_returns_same_object(self):
        dcid = b"\x42" * 8
        assert cached_initial_keys(1, dcid) is cached_initial_keys(1, dcid)

    def test_initial_keys_keyed_by_version(self):
        dcid = b"\x42" * 8
        v1 = cached_initial_keys(1, dcid)
        draft = cached_initial_keys(0xFF00001D, dcid)
        assert v1 != draft

    def test_aes_schedule_identical_across_keys(self):
        rng = random.Random(7)
        block = b"\x5a" * 16
        for _ in range(50):
            key = rng.getrandbits(128).to_bytes(16, "big")
            assert cached_aes(key).encrypt_block(block) == AES128(
                key
            ).encrypt_block(block)

    def test_ghash_schedule_identical_across_keys(self):
        rng = random.Random(8)
        nonce = b"\x01" * 12
        for _ in range(25):
            key = rng.getrandbits(128).to_bytes(16, "big")
            sealed = cached_gcm(key).seal(nonce, b"payload", b"aad")
            assert sealed == AesGcm(key).seal(nonce, b"payload", b"aad")

    def test_disabled_hotpath_skips_cache(self):
        with hotpath.disabled():
            cached_initial_keys(1, b"\x01" * 8)
        stats = memo_stats()
        assert stats["initial_keys"] == {"hits": 0, "misses": 0}

    def test_memo_stats_counts(self):
        cached_initial_keys(1, b"\x02" * 8)
        cached_initial_keys(1, b"\x02" * 8)
        stats = memo_stats()
        assert stats["initial_keys"] == {"hits": 1, "misses": 1}


def _flight_packets(version=1, pn=3, token=b""):
    initial = LongHeaderPacket(
        packet_type=PacketType.INITIAL,
        version=version,
        dcid=b"\x11" * 8,
        scid=b"\x22" * 8,
        packet_number=pn,
        payload=b"\xaa" * 620,
        pn_length=1,
        token=token,
    )
    handshake = LongHeaderPacket(
        packet_type=PacketType.HANDSHAKE,
        version=version,
        dcid=b"\x11" * 8,
        scid=b"\x22" * 8,
        packet_number=pn + 1,
        payload=b"\xbb" * 660,
        pn_length=1,
    )
    return initial, handshake


SUITES = (FastProtection, NullProtection, Rfc9001Protection)


class TestTemplateParity:
    @pytest.mark.parametrize("suite", SUITES, ids=lambda s: s.name)
    def test_encode_packet_matches_rebuild(self, suite):
        protection = suite(1, b"\x11" * 8)
        initial, handshake = _flight_packets()
        for packet in (initial, handshake):
            fast = encode_packet(packet, protection, is_server=True)
            with hotpath.disabled():
                slow = encode_packet(packet, protection, is_server=True)
            assert fast == slow

    @pytest.mark.parametrize("suite", SUITES, ids=lambda s: s.name)
    @pytest.mark.parametrize("pad_to", (0, 1200, 1357))
    def test_encode_datagram_matches_rebuild(self, suite, pad_to):
        protection = suite(1, b"\x11" * 8)
        initial, handshake = _flight_packets()
        fast = encode_datagram(
            [initial, handshake], protection, is_server=True, pad_to=pad_to
        )
        with hotpath.disabled():
            slow = encode_datagram(
                [initial, handshake], protection, is_server=True, pad_to=pad_to
            )
        assert fast == slow

    def test_encode_datagram_with_token_matches_rebuild(self):
        protection = FastProtection(1, b"\x11" * 8)
        initial, _ = _flight_packets(token=b"\xf0\x0d" * 8)
        fast = encode_datagram([initial], protection, is_server=False, pad_to=1200)
        with hotpath.disabled():
            slow = encode_datagram(
                [initial], protection, is_server=False, pad_to=1200
            )
        assert fast == slow

    @pytest.mark.parametrize("pn_length", (1, 2, 3, 4))
    def test_short_packet_matches_rebuild(self, pn_length):
        protection = FastProtection(1, b"\x11" * 8)
        packet = ShortHeaderPacket(
            dcid=b"\x33" * 8,
            packet_number=0x1234,
            payload=b"\xcc" * 64,
            pn_length=pn_length,
            spin_bit=bool(pn_length % 2),
        )
        fast = encode_short_packet(packet, protection, is_server=True)
        with hotpath.disabled():
            slow = encode_short_packet(packet, protection, is_server=True)
        assert fast == slow

    def test_fused_fast_protect_matches_driver(self):
        protection = FastProtection(1, b"\x77" * 8)
        header = b"\xc0\x00\x00\x00\x01\x08" + b"\x11" * 8 + b"\x00\x41\x00\x07"
        fast = protection.protect(True, header, 7, b"\x55" * 200)
        with hotpath.disabled():
            slow = protection.protect(True, header, 7, b"\x55" * 200)
        assert fast == slow
