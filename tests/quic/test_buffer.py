"""Reader/Writer byte-cursor utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.buffer import BufferError_, Reader, Writer, hexdump


class TestReader:
    def test_sequential_reads(self):
        reader = Reader(b"\x01\x02\x03\x04\x05")
        assert reader.read_u8() == 1
        assert reader.read_u16() == 0x0203
        assert reader.remaining == 2
        assert reader.read_rest() == b"\x04\x05"
        assert reader.at_end()

    def test_peek_does_not_advance(self):
        reader = Reader(b"abc")
        assert reader.peek(2) == b"ab"
        assert reader.pos == 0

    def test_wide_integers(self):
        reader = Reader(b"\x00\x00\x00\x01" + b"\x00" * 7 + b"\x02")
        assert reader.read_u32() == 1
        assert reader.read_u64() == 2

    def test_overrun_raises(self):
        reader = Reader(b"ab")
        with pytest.raises(BufferError_):
            reader.read(3)

    def test_negative_read_raises(self):
        with pytest.raises(BufferError_):
            Reader(b"ab").read(-1)

    def test_skip(self):
        reader = Reader(b"abcd")
        reader.skip(2)
        assert reader.read_rest() == b"cd"
        with pytest.raises(BufferError_):
            reader.skip(5)


class TestWriter:
    def test_chained_writes(self):
        writer = Writer()
        writer.write_u8(1).write_u16(2).write(b"xy")
        assert writer.getvalue() == b"\x01\x00\x02xy"
        assert len(writer) == 5

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            Writer().write_u8(256)
        with pytest.raises(ValueError):
            Writer().write_u16(1 << 16)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Writer().write_u32(-1)


class TestHexdump:
    def test_shape(self):
        dump = hexdump(bytes(range(20)))
        lines = dump.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("00000000")
        assert lines[1].startswith("00000010")

    def test_printable_ascii_column(self):
        dump = hexdump(b"AB\x00")
        assert "AB." in dump

    def test_empty(self):
        assert hexdump(b"") == ""


@given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=20))
def test_writer_reader_roundtrip(values):
    writer = Writer()
    for value in values:
        writer.write_u16(value)
    reader = Reader(writer.getvalue())
    assert [reader.read_u16() for _ in values] == values
    assert reader.at_end()
