"""Connection-ID schemes: mvfst (Table 5), Cloudflare, Google, QUIC-LB."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.cid.base import CidContext, FixedPrefixScheme, RandomScheme
from repro.quic.cid.cloudflare import (
    CloudflareScheme,
    decode_colo_id,
    looks_like_cloudflare,
)
from repro.quic.cid.google import GoogleEchoScheme, echoes_client_dcid
from repro.quic.cid import mvfst
from repro.quic.cid.quic_lb import QuicLbConfig, QuicLbError, QuicLbScheme
from repro.quic.cid import quic_lb


class TestMvfstV1:
    """Table 5, SCID version 1: version 0-1, host 2-17, worker 18-25,
    process 26, random 27-63."""

    def test_encode_layout(self):
        cid = mvfst.MvfstCid(
            version=1, host_id=0xFFFF, worker_id=0, process_id=0, random_bits=0
        )
        value = int.from_bytes(cid.encode(), "big")
        assert value >> 62 == 1
        assert (value >> 46) & 0xFFFF == 0xFFFF
        assert (value >> 38) & 0xFF == 0
        assert (value >> 37) & 1 == 0

    def test_roundtrip(self):
        cid = mvfst.MvfstCid(
            version=1, host_id=7122, worker_id=13, process_id=1, random_bits=12345
        )
        assert mvfst.decode(cid.encode()) == cid

    def test_host_id_range_enforced(self):
        with pytest.raises(mvfst.MvfstCidError):
            mvfst.MvfstCid(
                version=1, host_id=1 << 16, worker_id=0, process_id=0, random_bits=0
            ).encode()

    def test_max_65536_host_ids(self):
        """Paper §4.2: SCID version 1 caps Facebook at 65,536 host IDs."""
        assert mvfst.MAX_HOST_ID_V1 + 1 == 65536


class TestMvfstV2:
    """Table 5, SCID version 2: host 8-31 (24 bits), worker 32-39,
    process 40, random 2-7 + 41-63."""

    def test_roundtrip(self):
        cid = mvfst.MvfstCid(
            version=2,
            host_id=0xABCDEF,
            worker_id=200,
            process_id=1,
            random_bits=(1 << 29) - 1,
        )
        assert mvfst.decode(cid.encode()) == cid

    def test_encode_layout(self):
        cid = mvfst.MvfstCid(
            version=2, host_id=0xFFFFFF, worker_id=0, process_id=0, random_bits=0
        )
        value = int.from_bytes(cid.encode(), "big")
        assert value >> 62 == 2
        assert (value >> 32) & 0xFFFFFF == 0xFFFFFF


class TestMvfstDecode:
    def test_wrong_length_rejected(self):
        with pytest.raises(mvfst.MvfstCidError):
            mvfst.decode(b"\x40" * 7)

    def test_version_0_and_3_rejected(self):
        with pytest.raises(mvfst.MvfstCidError):
            mvfst.decode(b"\x00" * 8)  # version bits 0
        with pytest.raises(mvfst.MvfstCidError):
            mvfst.decode(b"\xff" * 8)  # version bits 3

    def test_try_decode(self):
        assert mvfst.try_decode(b"\x00" * 8) is None
        assert mvfst.try_decode(b"\x40" + b"\x00" * 7) is not None

    def test_scheme_generates_context_fields(self):
        scheme = mvfst.MvfstScheme(cid_version=1)
        rng = random.Random(1)
        context = CidContext(host_id=4242, worker_id=7, process_id=1)
        decoded = mvfst.decode(scheme.generate(rng, context))
        assert decoded.host_id == 4242
        assert decoded.worker_id == 7
        assert decoded.process_id == 1


@settings(max_examples=100, deadline=None)
@given(
    version=st.sampled_from([1, 2]),
    host_id=st.integers(min_value=0, max_value=mvfst.MAX_HOST_ID_V1),
    worker_id=st.integers(min_value=0, max_value=255),
    process_id=st.integers(min_value=0, max_value=1),
    random_bits=st.integers(min_value=0, max_value=(1 << 29) - 1),
)
def test_mvfst_roundtrip_property(version, host_id, worker_id, process_id, random_bits):
    cid = mvfst.MvfstCid(
        version=version,
        host_id=host_id,
        worker_id=worker_id,
        process_id=process_id,
        random_bits=random_bits,
    )
    encoded = cid.encode()
    assert len(encoded) == 8
    assert mvfst.decode(encoded) == cid


class TestCloudflare:
    def test_shape(self):
        scheme = CloudflareScheme(colo_id=0x0123)
        cid = scheme.generate(random.Random(1), CidContext(host_id=42))
        assert len(cid) == 20
        assert cid[0] == 0x01
        assert looks_like_cloudflare(cid)
        assert decode_colo_id(cid) == 0x0123

    def test_fingerprint_rejects_other_lengths(self):
        assert not looks_like_cloudflare(b"\x01" * 8)
        assert not looks_like_cloudflare(b"\x02" + b"\x00" * 19)

    def test_decode_colo_rejects_non_cloudflare(self):
        with pytest.raises(ValueError):
            decode_colo_id(b"\x00" * 20)


class TestGoogleEcho:
    def test_echoes_first_8_bytes(self):
        scheme = GoogleEchoScheme()
        dcid = bytes(range(12))
        scid = scheme.generate(random.Random(1), CidContext(client_dcid=dcid))
        assert scid == dcid[:8]
        assert echoes_client_dcid(scid, dcid)

    def test_short_dcid_zero_padded(self):
        scheme = GoogleEchoScheme()
        scid = scheme.generate(random.Random(1), CidContext(client_dcid=b"\xaa\xbb"))
        assert scid == b"\xaa\xbb" + b"\x00" * 6
        assert echoes_client_dcid(scid, b"\xaa\xbb")

    def test_non_echo_detected(self):
        assert not echoes_client_dcid(b"\x00" * 8, bytes(range(8)))


class TestQuicLb:
    def test_roundtrip(self):
        config = QuicLbConfig(config_rotation=2, server_id_length=2, nonce_length=5)
        cid = quic_lb.encode(config, server_id=0x0BEE, nonce=0x12345)
        assert len(cid) == config.cid_length
        server_id, nonce = quic_lb.decode(config, cid)
        assert (server_id, nonce) == (0x0BEE, 0x12345)

    def test_first_octet_semantics(self):
        """The paper's argument: Cloudflare's 0x01 first byte cannot be a
        QUIC-LB CID for any but a trivial configuration."""
        config = QuicLbConfig(config_rotation=0, server_id_length=2, nonce_length=5)
        cid = quic_lb.encode(config, 1, 1)
        assert cid[0] >> 5 == 0
        assert cid[0] & 0x1F == 7  # length self-description

    def test_rotation_mismatch(self):
        a = QuicLbConfig(config_rotation=1)
        b = QuicLbConfig(config_rotation=2)
        cid = quic_lb.encode(a, 1, 1)
        with pytest.raises(QuicLbError):
            quic_lb.decode(b, cid)

    def test_bounds(self):
        config = QuicLbConfig(server_id_length=1)
        with pytest.raises(QuicLbError):
            quic_lb.encode(config, server_id=256, nonce=0)
        with pytest.raises(QuicLbError):
            QuicLbConfig(config_rotation=7)
        with pytest.raises(QuicLbError):
            QuicLbConfig(nonce_length=2)

    def test_scheme(self):
        scheme = QuicLbScheme(config=QuicLbConfig())
        cid = scheme.generate(random.Random(3), CidContext(host_id=99))
        server_id, _nonce = quic_lb.decode(scheme.config, cid)
        assert server_id == 99


class TestBaseSchemes:
    def test_random_scheme_length(self):
        for length in (8, 20):
            cid = RandomScheme(length=length).generate(random.Random(1), CidContext())
            assert len(cid) == length

    def test_random_scheme_varies(self):
        rng = random.Random(1)
        scheme = RandomScheme(length=8)
        assert scheme.generate(rng, CidContext()) != scheme.generate(rng, CidContext())

    def test_fixed_prefix(self):
        scheme = FixedPrefixScheme(length=8, prefix=b"\x40\x00\x07")
        cid = scheme.generate(random.Random(1), CidContext())
        assert cid[:3] == b"\x40\x00\x07"
        assert len(cid) == 8

    def test_fixed_prefix_too_long(self):
        scheme = FixedPrefixScheme(length=4, prefix=b"\x00" * 5)
        with pytest.raises(ValueError):
            scheme.generate(random.Random(1), CidContext())
