"""Transport parameter codec (RFC 9000 §18)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic import transport_params as tp


class TestRoundtrip:
    def test_varint_params(self):
        params = tp.TransportParameters()
        params.set(tp.MAX_IDLE_TIMEOUT, 30000)
        params.set(tp.MAX_UDP_PAYLOAD_SIZE, 1472)
        params.set(tp.ACTIVE_CONNECTION_ID_LIMIT, 4)
        decoded = tp.TransportParameters.decode(params.encode())
        assert decoded.get(tp.MAX_IDLE_TIMEOUT) == 30000
        assert decoded.get(tp.MAX_UDP_PAYLOAD_SIZE) == 1472
        assert decoded.get(tp.ACTIVE_CONNECTION_ID_LIMIT) == 4

    def test_bytes_params(self):
        params = tp.TransportParameters()
        params.set(tp.INITIAL_SOURCE_CONNECTION_ID, b"\xaa" * 8)
        params.set(tp.STATELESS_RESET_TOKEN, b"\x01" * 16)
        decoded = tp.TransportParameters.decode(params.encode())
        assert decoded.get(tp.INITIAL_SOURCE_CONNECTION_ID) == b"\xaa" * 8

    def test_flag_param(self):
        params = tp.TransportParameters().set(tp.DISABLE_ACTIVE_MIGRATION, True)
        decoded = tp.TransportParameters.decode(params.encode())
        assert decoded.get(tp.DISABLE_ACTIVE_MIGRATION) is True

    def test_unknown_param_preserved_as_bytes(self):
        raw = bytes([0x40, 0x99, 3]) + b"abc"  # id=0x99 (2-byte varint), len 3
        decoded = tp.TransportParameters.decode(raw)
        assert decoded.get(0x99) == b"abc"

    def test_named_view(self):
        params = tp.TransportParameters().set(tp.MAX_IDLE_TIMEOUT, 5)
        assert tp.TransportParameters.decode(params.encode()).named() == {
            "max_idle_timeout": 5
        }


class TestErrors:
    def test_varint_param_requires_int(self):
        params = tp.TransportParameters().set(tp.MAX_IDLE_TIMEOUT, b"oops")
        with pytest.raises(tp.TransportParamError):
            params.encode()

    def test_bytes_param_requires_bytes(self):
        params = tp.TransportParameters().set(tp.INITIAL_SOURCE_CONNECTION_ID, 7)
        with pytest.raises(tp.TransportParamError):
            params.encode()

    def test_trailing_bytes_in_varint_value(self):
        raw = bytes([tp.MAX_IDLE_TIMEOUT, 2, 0x05, 0xFF])
        with pytest.raises(tp.TransportParamError):
            tp.TransportParameters.decode(raw)

    def test_nonempty_migration_flag(self):
        raw = bytes([tp.DISABLE_ACTIVE_MIGRATION, 1, 0])
        with pytest.raises(tp.TransportParamError):
            tp.TransportParameters.decode(raw)

    def test_truncated(self):
        params = tp.TransportParameters().set(tp.MAX_IDLE_TIMEOUT, 300000)
        raw = params.encode()
        with pytest.raises(tp.TransportParamError):
            tp.TransportParameters.decode(raw[:-1])


@settings(max_examples=50, deadline=None)
@given(
    idle=st.integers(min_value=0, max_value=(1 << 62) - 1),
    scid=st.binary(min_size=0, max_size=20),
)
def test_roundtrip_property(idle, scid):
    params = tp.TransportParameters()
    params.set(tp.MAX_IDLE_TIMEOUT, idle)
    params.set(tp.INITIAL_SOURCE_CONNECTION_ID, scid)
    decoded = tp.TransportParameters.decode(params.encode())
    assert decoded.get(tp.MAX_IDLE_TIMEOUT) == idle
    assert decoded.get(tp.INITIAL_SOURCE_CONNECTION_ID) == scid
