"""QUIC frame encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.frames import (
    AckFrame,
    AckRange,
    ConnectionCloseFrame,
    CryptoFrame,
    FrameParseError,
    NewConnectionIdFrame,
    PaddingFrame,
    PingFrame,
    RetireConnectionIdFrame,
    crypto_payload,
    decode_frames,
    encode_frames,
)


class TestPaddingAndPing:
    def test_padding_run_collapsed(self):
        frames = decode_frames(b"\x00" * 100)
        assert frames == [PaddingFrame(length=100)]

    def test_padding_roundtrip(self):
        payload = encode_frames([PingFrame(), PaddingFrame(length=5), PingFrame()])
        frames = decode_frames(payload)
        assert frames == [PingFrame(), PaddingFrame(length=5), PingFrame()]


class TestAck:
    def test_single_range(self):
        frame = AckFrame(largest_acked=10, ack_delay=3, ranges=(AckRange(5, 10),))
        decoded = decode_frames(encode_frames([frame]))[0]
        assert decoded.largest_acked == 10
        assert decoded.ack_delay == 3
        assert decoded.ranges == (AckRange(5, 10),)

    def test_multiple_ranges(self):
        frame = AckFrame(
            largest_acked=100,
            ranges=(AckRange(90, 100), AckRange(50, 60), AckRange(10, 20)),
        )
        decoded = decode_frames(encode_frames([frame]))[0]
        assert set(decoded.ranges) == set(frame.ranges)

    def test_acknowledges(self):
        frame = AckFrame(largest_acked=10, ranges=(AckRange(5, 10), AckRange(0, 2)))
        assert frame.acknowledges(7)
        assert frame.acknowledges(0)
        assert not frame.acknowledges(3)

    def test_inverted_range_rejected(self):
        with pytest.raises(FrameParseError):
            AckRange(10, 5)

    def test_empty_ranges_rejected(self):
        with pytest.raises(FrameParseError):
            encode_frames([AckFrame(largest_acked=1, ranges=())])

    def test_mismatched_largest_rejected(self):
        with pytest.raises(FrameParseError):
            encode_frames(
                [AckFrame(largest_acked=99, ranges=(AckRange(5, 10),))]
            )

    def test_ecn_variant_parsed(self):
        # Type 0x03 carries three extra varints (ECN counts).
        payload = bytes([0x03, 10, 0, 0, 2]) + bytes([1, 2, 3])
        decoded = decode_frames(payload)[0]
        assert decoded.largest_acked == 10
        assert decoded.ranges == (AckRange(8, 10),)


class TestCrypto:
    def test_roundtrip(self):
        frame = CryptoFrame(offset=17, data=b"client hello bytes")
        decoded = decode_frames(encode_frames([frame]))[0]
        assert decoded == frame

    def test_crypto_payload_reassembly(self):
        frames = [
            CryptoFrame(offset=0, data=b"hello "),
            CryptoFrame(offset=6, data=b"world"),
        ]
        assert crypto_payload(frames) == b"hello world"

    def test_crypto_payload_gap_rejected(self):
        frames = [CryptoFrame(offset=0, data=b"a"), CryptoFrame(offset=5, data=b"b")]
        with pytest.raises(FrameParseError):
            crypto_payload(frames)


class TestConnectionIds:
    def test_new_connection_id_roundtrip(self):
        frame = NewConnectionIdFrame(
            sequence_number=2,
            retire_prior_to=1,
            connection_id=b"\x11" * 8,
            stateless_reset_token=b"\x22" * 16,
        )
        decoded = decode_frames(encode_frames([frame]))[0]
        assert decoded == frame

    def test_retire_roundtrip(self):
        frame = RetireConnectionIdFrame(sequence_number=9)
        assert decode_frames(encode_frames([frame]))[0] == frame


class TestConnectionClose:
    def test_roundtrip(self):
        frame = ConnectionCloseFrame(error_code=0x0A, frame_type=6, reason=b"bye")
        decoded = decode_frames(encode_frames([frame]))[0]
        assert decoded == frame

    def test_application_close_variant(self):
        payload = bytes([0x1D, 5, 3]) + b"err"
        decoded = decode_frames(payload)[0]
        assert decoded.error_code == 5
        assert decoded.reason == b"err"


class TestErrors:
    def test_unknown_frame_type(self):
        with pytest.raises(FrameParseError):
            decode_frames(b"\x30")

    def test_truncated_crypto(self):
        with pytest.raises(FrameParseError):
            decode_frames(bytes([0x06, 0, 50]) + b"short")

    def test_unencodable_object(self):
        with pytest.raises(FrameParseError):
            encode_frames(["not a frame"])


ack_ranges = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(0, 50)), min_size=1, max_size=5
)


@settings(max_examples=50, deadline=None)
@given(
    crypto_data=st.binary(min_size=0, max_size=100),
    offset=st.integers(min_value=0, max_value=1 << 20),
    padding=st.integers(min_value=1, max_value=64),
)
def test_mixed_frame_roundtrip(crypto_data, offset, padding):
    frames = [
        CryptoFrame(offset=offset, data=crypto_data),
        PaddingFrame(length=padding),
    ]
    decoded = decode_frames(encode_frames(frames))
    assert decoded == frames


@settings(max_examples=50, deadline=None)
@given(raw=ack_ranges)
def test_ack_roundtrip_property(raw):
    # Build non-overlapping descending ranges from raw (start, length) pairs.
    ranges = []
    floor = None
    for start, length in sorted(raw, key=lambda p: -(p[0] + p[1])):
        largest = start + length
        if floor is not None and largest >= floor - 1:
            largest = floor - 2
        if largest < 0:
            break
        smallest = max(0, largest - length)
        ranges.append(AckRange(smallest, largest))
        floor = smallest
    if not ranges:
        return
    frame = AckFrame(largest_acked=ranges[0].largest, ranges=tuple(ranges))
    decoded = decode_frames(encode_frames([frame]))[0]
    assert set(decoded.ranges) == set(ranges)
