"""Packet-protection suites: the RFC 9001 path, the fast path, and null."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.crypto.suites import (
    FastProtection,
    NullProtection,
    ProtectionError,
    Rfc9001Protection,
    decode_packet_number,
    suite_by_name,
)
from repro.quic.packet import (
    LongHeaderPacket,
    PacketType,
    encode_packet,
    parse_long_header,
    unprotect_packet,
)

DCID = bytes.fromhex("8394c8f03e515708")
ALL_SUITES = [Rfc9001Protection, FastProtection, NullProtection]


def make_packet(payload=b"\x01" * 40, pn=7, pn_length=2):
    return LongHeaderPacket(
        packet_type=PacketType.INITIAL,
        version=1,
        dcid=DCID,
        scid=b"\xaa" * 8,
        packet_number=pn,
        payload=payload,
        pn_length=pn_length,
    )


class TestSuiteRegistry:
    def test_lookup_by_name(self):
        assert suite_by_name("rfc9001") is Rfc9001Protection
        assert suite_by_name("fast") is FastProtection
        assert suite_by_name("null") is NullProtection

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            suite_by_name("rot13")


@pytest.mark.parametrize("suite_cls", ALL_SUITES)
class TestRoundtrip:
    def test_client_roundtrip(self, suite_cls):
        suite = suite_cls(1, DCID)
        wire = encode_packet(make_packet(), suite, is_server=False)
        parsed = parse_long_header(wire)
        plain = unprotect_packet(parsed, wire, suite, from_server=False)
        assert plain.payload == b"\x01" * 40
        assert plain.packet_number == 7

    def test_server_roundtrip(self, suite_cls):
        suite = suite_cls(1, DCID)
        wire = encode_packet(make_packet(pn=3, pn_length=1), suite, is_server=True)
        parsed = parse_long_header(wire)
        plain = unprotect_packet(parsed, wire, suite, from_server=True)
        assert plain.packet_number == 3

    def test_directions_use_distinct_keys(self, suite_cls):
        suite = suite_cls(1, DCID)
        wire = encode_packet(make_packet(), suite, is_server=False)
        parsed = parse_long_header(wire)
        if suite_cls is NullProtection:
            pytest.skip("null suite is direction-agnostic by design")
        with pytest.raises(ProtectionError):
            unprotect_packet(parsed, wire, suite, from_server=True)


@pytest.mark.parametrize("suite_cls", [Rfc9001Protection, FastProtection])
class TestTamper:
    def test_payload_tamper_detected(self, suite_cls):
        suite = suite_cls(1, DCID)
        wire = bytearray(encode_packet(make_packet(), suite, is_server=False))
        wire[-1] ^= 0xFF
        parsed = parse_long_header(bytes(wire))
        with pytest.raises(ProtectionError):
            unprotect_packet(parsed, bytes(wire), suite, from_server=False)

    def test_wrong_dcid_fails(self, suite_cls):
        suite = suite_cls(1, DCID)
        other = suite_cls(1, b"\xff" * 8)
        wire = encode_packet(make_packet(), suite, is_server=False)
        parsed = parse_long_header(wire)
        with pytest.raises(ProtectionError):
            unprotect_packet(parsed, wire, other, from_server=False)

    def test_truncated_sample(self, suite_cls):
        suite = suite_cls(1, DCID)
        with pytest.raises(ProtectionError):
            suite.unprotect(False, b"\xc0\x00\x00\x00\x01", pn_offset=5)


class TestHeaderProtectionBits:
    def test_reserved_and_pn_bits_masked(self):
        """The low nibble of the first byte must differ on the wire."""
        suite = FastProtection(1, DCID)
        packet = make_packet(pn_length=4)
        wire = encode_packet(packet, suite, is_server=False)
        unmasked_first = 0x80 | 0x40 | (0 << 4) | (4 - 1)
        # With overwhelming probability the mask flips at least one of the
        # protected bits across several packets.
        differs = wire[0] != unmasked_first
        for pn in range(1, 6):
            wire = encode_packet(make_packet(pn=pn, pn_length=4), suite, False)
            differs = differs or wire[0] != unmasked_first
        assert differs


class TestPacketNumberDecoding:
    """RFC 9000 Appendix A.3 example and edge cases."""

    def test_rfc_example(self):
        # largest 0xa82f30ea, truncated 0x9b32 in 16 bits -> 0xa82f9b32.
        assert decode_packet_number(0x9B32, 16, 0xA82F30EA) == 0xA82F9B32

    def test_no_wrap_small(self):
        assert decode_packet_number(5, 8, 3) == 5

    def test_forward_wrap(self):
        assert decode_packet_number(2, 8, 254) == 258

    @given(
        st.integers(min_value=0, max_value=(1 << 30)),
        st.sampled_from([8, 16, 24, 32]),
    )
    def test_roundtrip_next_packet(self, largest, bits):
        full = largest + 1
        truncated = full & ((1 << bits) - 1)
        assert decode_packet_number(truncated, bits, largest) == full


@settings(max_examples=30, deadline=None)
@given(
    payload=st.binary(min_size=24, max_size=200),
    pn=st.integers(min_value=0, max_value=0xFFFF),
    pn_length=st.sampled_from([1, 2, 3, 4]),
)
def test_fast_suite_roundtrip_property(payload, pn, pn_length):
    suite = FastProtection(1, DCID)
    packet = make_packet(payload=payload, pn=pn & ((1 << (8 * pn_length)) - 1), pn_length=pn_length)
    wire = encode_packet(packet, suite, is_server=True)
    parsed = parse_long_header(wire)
    plain = unprotect_packet(parsed, wire, suite, from_server=True)
    assert plain.payload == payload
