"""1-RTT (short header) packets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.crypto.suites import FastProtection, NullProtection, ProtectionError
from repro.quic.packet import (
    PacketParseError,
    ShortHeaderPacket,
    encode_short_packet,
    parse_short_header,
    unprotect_short_packet,
)

DCID = b"\xaa\xbb\xcc\xdd\xee\xff\x00\x11"


def suite():
    return FastProtection(1, b"\x01" * 8)


class TestEncodeParse:
    def test_roundtrip(self):
        packet = ShortHeaderPacket(
            dcid=DCID, packet_number=9, payload=b"\x01" + b"\x00" * 30
        )
        wire = encode_short_packet(packet, suite(), is_server=True)
        parsed = parse_short_header(wire, cid_length=8)
        assert parsed.dcid == DCID
        plain = unprotect_short_packet(parsed, wire, suite(), from_server=True)
        assert plain.packet_number == 9
        assert plain.payload == packet.payload

    def test_no_form_bit(self):
        wire = encode_short_packet(
            ShortHeaderPacket(dcid=DCID, payload=b"\x00" * 24), suite(), True
        )
        assert not wire[0] & 0x80
        assert wire[0] & 0x40

    def test_spin_bit_survives(self):
        packet = ShortHeaderPacket(dcid=DCID, payload=b"\x00" * 24, spin_bit=True)
        wire = encode_short_packet(packet, NullProtection(1, b""), True)
        assert parse_short_header(wire, 8).spin_bit

    def test_cid_length_is_receiver_knowledge(self):
        """Parsing with the wrong configured length yields the wrong DCID —
        the paper's §2.2 point about load balancers and CID lengths."""
        packet = ShortHeaderPacket(dcid=DCID, payload=b"\x00" * 24)
        wire = encode_short_packet(packet, NullProtection(1, b""), True)
        assert parse_short_header(wire, 8).dcid == DCID
        assert parse_short_header(wire, 4).dcid == DCID[:4]

    def test_rejects_long_header(self):
        with pytest.raises(PacketParseError):
            parse_short_header(b"\xc0\x00\x00\x00\x01" + b"\x00" * 20, 8)

    def test_rejects_zero_fixed_bit(self):
        with pytest.raises(PacketParseError):
            parse_short_header(b"\x00" + b"\x00" * 20, 8)

    def test_rejects_truncated(self):
        with pytest.raises(PacketParseError):
            parse_short_header(b"\x40\x01\x02", 8)
        with pytest.raises(PacketParseError):
            parse_short_header(b"", 8)

    def test_bad_pn_length(self):
        with pytest.raises(PacketParseError):
            encode_short_packet(
                ShortHeaderPacket(dcid=DCID, pn_length=5), suite(), True
            )

    def test_tamper_detected(self):
        packet = ShortHeaderPacket(dcid=DCID, payload=b"\x01" + b"\x00" * 30)
        wire = bytearray(encode_short_packet(packet, suite(), True))
        wire[-1] ^= 1
        parsed = parse_short_header(bytes(wire), 8)
        with pytest.raises(ProtectionError):
            unprotect_short_packet(parsed, bytes(wire), suite(), True)


@settings(max_examples=40, deadline=None)
@given(
    dcid=st.binary(min_size=0, max_size=20),
    payload=st.binary(min_size=24, max_size=200),
    pn=st.integers(min_value=0, max_value=0xFFFF),
)
def test_roundtrip_property(dcid, payload, pn):
    s = FastProtection(1, b"\x02" * 8)
    packet = ShortHeaderPacket(
        dcid=dcid, packet_number=pn & 0xFF, payload=payload, pn_length=1
    )
    wire = encode_short_packet(packet, s, is_server=False)
    parsed = parse_short_header(wire, cid_length=len(dcid))
    plain = unprotect_short_packet(parsed, wire, s, from_server=False)
    assert plain.dcid == dcid
    assert plain.payload == payload
