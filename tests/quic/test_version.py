"""QUIC version registry and the Table 2 bucketing."""

from repro.quic import version as v


class TestLookup:
    def test_known_versions(self):
        assert v.lookup(0x00000001).name == "QUICv1"
        assert v.lookup(0xFF00001D).name == "draft-29"
        assert v.lookup(0xFACEB002).name == "Facebook mvfst 2"
        assert v.lookup(0x51303530).family == "gquic"

    def test_unknown_draft(self):
        version = v.lookup(0xFF000020)
        assert version.family == "draft"
        assert version.name == "draft-32"

    def test_unknown_mvfst(self):
        assert v.lookup(0xFACEB00A).family == "mvfst"

    def test_reserved_greasing_pattern(self):
        assert v.is_reserved_version(0x1A2A3A4A)
        assert v.is_reserved_version(0xDADADADA)
        assert not v.is_reserved_version(0x00000001)
        assert v.lookup(0x0A0A0A0A).family == "reserved"

    def test_gquic_detection(self):
        assert v.is_gquic(0x51303433)  # Q043
        assert not v.is_gquic(0x52303433)  # R043
        assert not v.is_gquic(0x51414243)  # QABC

    def test_fully_unknown(self):
        assert v.lookup(0x12345678).family == "unknown"


class TestTable2Bucketing:
    def test_v1(self):
        assert v.table2_bucket(0x00000001) == "QUICv1"

    def test_mvfst2(self):
        assert v.table2_bucket(0xFACEB002) == "Facebook mvfst 2"

    def test_other_mvfst_goes_to_others(self):
        assert v.table2_bucket(0xFACEB001) == "others"
        assert v.table2_bucket(0xFACEB00E) == "others"

    def test_draft29(self):
        assert v.table2_bucket(0xFF00001D) == "draft-29"

    def test_everything_else(self):
        assert v.table2_bucket(0xFF00001B) == "others"
        assert v.table2_bucket(0x51303530) == "others"
        assert v.table2_bucket(0x6B3343CF) == "others"
