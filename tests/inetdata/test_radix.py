"""Radix trie longest-prefix matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.inetdata.radix import RadixTree
from repro.netstack.addr import Prefix, parse_ip


class TestLongestPrefixMatch:
    def test_basic(self):
        tree = RadixTree()
        tree.insert(Prefix.parse("10.0.0.0/8"), "eight")
        tree.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
        tree.insert(Prefix.parse("10.1.2.0/24"), "twentyfour")
        assert tree.lookup(parse_ip("10.9.9.9")) == "eight"
        assert tree.lookup(parse_ip("10.1.9.9")) == "sixteen"
        assert tree.lookup(parse_ip("10.1.2.3")) == "twentyfour"
        assert tree.lookup(parse_ip("11.0.0.1")) is None

    def test_lookup_with_prefix(self):
        tree = RadixTree()
        tree.insert(Prefix.parse("44.0.0.0/9"), "telescope")
        match = tree.lookup_with_prefix(parse_ip("44.5.6.7"))
        assert match is not None
        prefix, value = match
        assert str(prefix) == "44.0.0.0/9"
        assert value == "telescope"

    def test_default_route(self):
        tree = RadixTree()
        tree.insert(Prefix(0, 0), "default")
        tree.insert(Prefix.parse("1.0.0.0/8"), "one")
        assert tree.lookup(parse_ip("9.9.9.9")) == "default"
        assert tree.lookup(parse_ip("1.2.3.4")) == "one"

    def test_replace_value(self):
        tree = RadixTree()
        prefix = Prefix.parse("10.0.0.0/8")
        tree.insert(prefix, "a")
        tree.insert(prefix, "b")
        assert tree.lookup(parse_ip("10.0.0.1")) == "b"
        assert len(tree) == 1

    def test_host_route_wins_over_covering_prefix(self):
        tree = RadixTree()
        tree.insert(Prefix.parse("142.250.0.0/15"), "google")
        tree.insert(Prefix.parse("142.250.199.77/32"), "bot")
        assert tree.lookup(parse_ip("142.250.199.77")) == "bot"
        assert tree.lookup(parse_ip("142.250.199.78")) == "google"

    def test_items_enumeration(self):
        tree = RadixTree()
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24"]
        for i, text in enumerate(prefixes):
            tree.insert(Prefix.parse(text), i)
        found = {str(p) for p, _v in tree.items()}
        assert found == set(prefixes)


@settings(max_examples=40, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            st.integers(min_value=1, max_value=32),
        ),
        min_size=1,
        max_size=24,
    ),
    probes=st.lists(
        st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=24
    ),
)
def test_matches_brute_force(entries, probes):
    """The trie must agree with a naive longest-prefix scan."""
    tree = RadixTree()
    table = {}
    for address, length in entries:
        mask = ((1 << length) - 1) << (32 - length)
        prefix = Prefix(address & mask, length)
        value = "%s" % prefix
        tree.insert(prefix, value)
        table[(prefix.network, prefix.length)] = value

    def brute(addr):
        best = None
        for (network, length), value in table.items():
            mask = ((1 << length) - 1) << (32 - length) if length else 0
            if addr & mask == network and (best is None or length > best[0]):
                best = (length, value)
        return best[1] if best else None

    for addr in probes:
        assert tree.lookup(addr) == brute(addr)
