"""AS database, geo database, hypergiant registry, certificate store."""

import pytest

from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.inetdata.certs import CertificateStore
from repro.inetdata.geodb import GeoDatabase
from repro.inetdata.hypergiants import (
    CLOUDFLARE,
    FACEBOOK,
    GOOGLE,
    HYPERGIANTS,
    by_asn,
)
from repro.netstack.addr import parse_ip
from repro.tls.certs import Certificate


class TestHypergiants:
    def test_real_as_numbers(self):
        assert FACEBOOK.asn == 32934
        assert GOOGLE.asn == 15169
        assert CLOUDFLARE.asn == 13335

    def test_by_asn(self):
        assert by_asn(32934) is FACEBOOK
        assert by_asn(64512) is None

    def test_registry(self):
        assert set(HYPERGIANTS) == {"Facebook", "Google", "Cloudflare"}


class TestAsDatabase:
    def test_with_hypergiants(self):
        db = AsDatabase.with_hypergiants()
        assert db.origin_name(parse_ip("157.240.1.1")) == "Facebook"
        assert db.origin_name(parse_ip("142.250.0.1")) == "Google"
        assert db.origin_name(parse_ip("104.17.0.1")) == "Cloudflare"
        assert db.origin_name(parse_ip("8.8.8.8")) == "Remaining"

    def test_isp_is_remaining(self):
        db = AsDatabase.with_hypergiants()
        db.register("87.128.0.0/16", AsEntry(3320, "ISP-DE", category="isp"))
        assert db.origin_name(parse_ip("87.128.5.5")) == "Remaining"
        assert db.asn_of(parse_ip("87.128.5.5")) == 3320

    def test_longest_prefix_wins(self):
        db = AsDatabase.with_hypergiants()
        db.register(
            "157.240.9.0/24", AsEntry(65000, "MoreSpecific", category="other")
        )
        assert db.origin_name(parse_ip("157.240.9.1")) == "Remaining"
        assert db.origin_name(parse_ip("157.240.8.1")) == "Facebook"

    def test_describe(self):
        db = AsDatabase.with_hypergiants()
        assert "AS32934" in db.describe(parse_ip("157.240.1.1"))
        assert "unrouted" in db.describe(parse_ip("203.0.113.9"))

    def test_prefixes_of(self):
        db = AsDatabase.with_hypergiants()
        assert len(db.prefixes_of(FACEBOOK.asn)) == len(FACEBOOK.prefixes)


class TestGeoDatabase:
    def test_country_and_continent(self):
        db = GeoDatabase()
        db.register("157.240.1.0/24", "IN")
        db.register("157.240.2.0/24", "DE")
        assert db.country(parse_ip("157.240.1.5")) == "IN"
        assert db.continent(parse_ip("157.240.1.5")) == "Asia"
        assert db.continent(parse_ip("157.240.2.5")) == "Europe"
        assert db.country(parse_ip("8.8.8.8")) is None

    def test_unknown_country_rejected(self):
        db = GeoDatabase()
        with pytest.raises(ValueError):
            db.register("1.0.0.0/8", "XX")


class TestCertificateStore:
    def make_store(self):
        store = CertificateStore()
        store.register(
            parse_ip("87.128.1.1"),
            Certificate(
                subject="*.fbcdn.net", subject_alt_names=("*.facebook.com",)
            ),
            ptr="cache1.fbcdn.net",
        )
        store.register(
            parse_ip("87.128.2.2"),
            Certificate(subject="srv.example.net"),
        )
        return store

    def test_operated_by_san(self):
        store = self.make_store()
        assert store.operated_by(parse_ip("87.128.1.1"), FACEBOOK)
        assert not store.operated_by(parse_ip("87.128.2.2"), FACEBOOK)

    def test_operated_by_ptr_only(self):
        store = CertificateStore()
        store.register(
            parse_ip("10.0.0.1"),
            Certificate(subject="opaque.example"),
            ptr="edge7.whatsapp.com",
        )
        assert store.operated_by(parse_ip("10.0.0.1"), FACEBOOK)

    def test_unknown_address(self):
        store = self.make_store()
        assert not store.operated_by(parse_ip("1.1.1.1"), FACEBOOK)
        assert parse_ip("1.1.1.1") not in store
        assert store.certificate(parse_ip("1.1.1.1")) is None
        assert store.ptr(parse_ip("1.1.1.1")) == ""

    def test_contains_and_len(self):
        store = self.make_store()
        assert parse_ip("87.128.1.1") in store
        assert len(store) == 2
