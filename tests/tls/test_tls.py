"""TLS mini-stack: handshake codec and synthetic certificates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tls.certs import Certificate, CertificateError
from repro.tls.handshake import (
    ClientHello,
    ServerHello,
    TlsParseError,
    decode_handshake,
    encode_handshake,
)


class TestClientHello:
    def test_roundtrip(self):
        hello = ClientHello(
            random=b"\x07" * 32,
            server_name="www.facebook.com",
            alpn=("h3", "h3-29"),
            quic_transport_parameters=b"\x01\x02\x03",
        )
        decoded = decode_handshake(encode_handshake(hello))
        assert isinstance(decoded, ClientHello)
        assert decoded.server_name == "www.facebook.com"
        assert decoded.alpn == ("h3", "h3-29")
        assert decoded.quic_transport_parameters == b"\x01\x02\x03"
        assert decoded.random == b"\x07" * 32

    def test_no_optional_extensions(self):
        hello = ClientHello(random=b"\x00" * 32, server_name="", alpn=())
        decoded = decode_handshake(encode_handshake(hello))
        assert decoded.server_name == ""
        assert decoded.alpn == ()

    def test_random_must_be_32_bytes(self):
        with pytest.raises(TlsParseError):
            ClientHello(random=b"\x00" * 31)

    def test_idn_server_name(self):
        hello = ClientHello(random=b"\x00" * 32, server_name="example.com")
        assert decode_handshake(encode_handshake(hello)).server_name == "example.com"


class TestServerHello:
    def test_roundtrip(self):
        hello = ServerHello(
            random=b"\x09" * 32,
            cipher_suite=0x1302,
            quic_transport_parameters=b"\xaa\xbb",
        )
        decoded = decode_handshake(encode_handshake(hello))
        assert isinstance(decoded, ServerHello)
        assert decoded.cipher_suite == 0x1302
        assert decoded.quic_transport_parameters == b"\xaa\xbb"


class TestErrors:
    def test_unknown_handshake_type(self):
        raw = bytes([99, 0, 0, 2, 0, 0])
        with pytest.raises(TlsParseError):
            decode_handshake(raw)

    def test_truncated(self):
        raw = encode_handshake(ClientHello(random=b"\x00" * 32))
        with pytest.raises(TlsParseError):
            decode_handshake(raw[: len(raw) // 2])

    def test_bad_legacy_version(self):
        raw = bytearray(encode_handshake(ClientHello(random=b"\x00" * 32)))
        raw[4:6] = b"\x03\x01"
        with pytest.raises(TlsParseError):
            decode_handshake(bytes(raw))


class TestCertificate:
    def test_roundtrip(self):
        cert = Certificate(
            subject="*.facebook.com",
            issuer="DigiCert-ish",
            subject_alt_names=("*.facebook.com", "*.fbcdn.net"),
        )
        assert Certificate.decode(cert.encode()) == cert

    def test_covers_exact_and_wildcard(self):
        cert = Certificate(
            subject="example.com", subject_alt_names=("*.cdn.example.com",)
        )
        assert cert.covers("example.com")
        assert cert.covers("a.cdn.example.com")
        assert not cert.covers("example.org")

    def test_suffix_match_appendix_c(self):
        """The paper accepts any SAN under facebook.com/fbcdn.net/etc."""
        cert = Certificate(
            subject="star.c10r.facebook.com",
            subject_alt_names=("*.whatsapp.com",),
        )
        assert cert.matches_any_suffix(("facebook.com",))
        assert cert.matches_any_suffix(("whatsapp.com",))
        assert not cert.matches_any_suffix(("google.com",))
        # Suffix matching must respect label boundaries.
        other = Certificate(subject="notfacebook.com")
        assert not other.matches_any_suffix(("facebook.com",))

    def test_missing_subject_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.decode(b"")

    def test_garbage_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.decode(b"\x07\x00\x05abc")


@settings(max_examples=40, deadline=None)
@given(
    server_name=st.from_regex(r"[a-z]{1,10}(\.[a-z]{1,8}){1,3}", fullmatch=True),
    params=st.binary(min_size=0, max_size=64),
)
def test_client_hello_roundtrip_property(server_name, params):
    hello = ClientHello(
        random=b"\x31" * 32,
        server_name=server_name,
        quic_transport_parameters=params,
    )
    decoded = decode_handshake(encode_handshake(hello))
    assert decoded.server_name == server_name
    assert decoded.quic_transport_parameters == params
