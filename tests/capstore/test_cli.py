"""CLI surface of the analysis plane: analyze caching, workers, `repro index`."""

import json
import os

import pytest

from repro.capstore import sidecar_path
from repro.cli import main
from repro.obs import load_snapshot


class TestAnalyzeCaching:
    def test_second_run_hits_cache_with_identical_output(
        self, pcap_copy, tmp_path, capsys
    ):
        cold_metrics = str(tmp_path / "cold.json")
        warm_metrics = str(tmp_path / "warm.json")
        assert main(["analyze", pcap_copy, "--metrics", cold_metrics]) == 0
        cold_out = capsys.readouterr().out
        assert main(["analyze", pcap_copy, "--metrics", warm_metrics]) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out

        cold = load_snapshot(cold_metrics)
        warm = load_snapshot(warm_metrics)
        assert cold["counters"]["capstore.cache"]["values"] == {"miss": 1}
        assert "index.build" in cold["timers"]
        assert warm["counters"]["capstore.cache"]["values"] == {"hit": 1}
        assert "index.load" in warm["timers"]
        assert "index.build" not in warm["timers"]

    def test_workers_and_no_cache_output_identical(self, pcap_copy, capsys):
        assert main(["analyze", pcap_copy, "--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert not os.path.exists(sidecar_path(pcap_copy))
        assert main(["analyze", pcap_copy, "--workers", "4", "--no-cache"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert not os.path.exists(sidecar_path(pcap_copy))

    def test_cached_run_renders_same_tables_as_no_cache(self, pcap_copy, capsys):
        assert main(["analyze", pcap_copy, "--no-cache", "--tables", "rto"]) == 0
        uncached = capsys.readouterr().out
        assert main(["analyze", pcap_copy, "--tables", "rto"]) == 0
        capsys.readouterr()
        assert main(["analyze", pcap_copy, "--tables", "rto"]) == 0
        cached = capsys.readouterr().out
        assert cached == uncached


class TestTablesValidation:
    def test_unknown_table_aborts_before_pcap_read(self, tmp_path):
        missing = str(tmp_path / "never-written.pcap")
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", missing, "--tables", "5"])
        message = str(excinfo.value)
        assert "unknown table name 5" in message
        assert "valid names: 1, 2, 3, 4, rto, lengths" in message

    def test_multiple_unknown_names_all_reported(self, tmp_path):
        missing = str(tmp_path / "never-written.pcap")
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", missing, "--tables", "rt0", "2", "bogus"])
        message = str(excinfo.value)
        assert "unknown table names bogus, rt0" in message

    def test_valid_selection_passes_validation(self, month_pcap, capsys):
        assert main(["analyze", month_pcap, "--no-cache", "--tables", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" not in out


class TestClassifyCaching:
    def test_cached_classify_json_matches_cold(self, pcap_copy, capsys):
        assert main(["classify", pcap_copy, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["classify", pcap_copy, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["stats"] == cold["stats"]
        sanitize = "sanitize.packets"
        assert (
            warm["metrics"]["counters"][sanitize]["values"]
            == cold["metrics"]["counters"][sanitize]["values"]
        )
        assert "index.load" in warm["metrics"]["timers"]


class TestIndexCommand:
    def test_build_then_validate(self, pcap_copy, capsys):
        assert main(["index", pcap_copy, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Indexed" in out and "[workers=2]" in out
        assert os.path.exists(sidecar_path(pcap_copy))
        assert main(["index", pcap_copy]) == 0
        assert "Validated" in capsys.readouterr().out

    def test_info_reports_validity(self, pcap_copy, capsys):
        assert main(["index", pcap_copy, "--info"]) == 1  # no index yet
        assert "no index" in capsys.readouterr().out
        assert main(["index", pcap_copy]) == 0
        capsys.readouterr()
        assert main(["index", pcap_copy, "--info"]) == 0
        out = capsys.readouterr().out
        assert "valid for pcap" in out and "yes" in out
        assert main(["simulate", pcap_copy, "--scale", "0.05", "--seed", "7"]) == 0
        capsys.readouterr()
        assert main(["index", pcap_copy, "--info"]) == 1
        assert "STALE" in capsys.readouterr().out

    def test_force_rebuilds(self, pcap_copy, capsys):
        assert main(["index", pcap_copy]) == 0
        capsys.readouterr()
        assert main(["index", pcap_copy, "--force"]) == 0
        assert "Indexed" in capsys.readouterr().out
