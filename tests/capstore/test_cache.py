"""Sidecar cache lifecycle: hit, touch, rewrite, corruption, escape hatch."""

import os

import pytest

from repro.capstore import (
    fingerprint_matches,
    load_or_build,
    pcap_fingerprint,
    sidecar_path,
)
from repro.cli import main
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry


def _obs():
    return Observability(metrics=MetricsRegistry())


class TestLoadOrBuild:
    def test_miss_then_hit_round_trip(self, pcap_copy):
        view, hit = load_or_build(pcap_copy)
        assert not hit
        assert os.path.exists(sidecar_path(pcap_copy))
        again, hit = load_or_build(pcap_copy)
        assert hit
        assert again.table == view.table
        assert again.stats == view.stats

    def test_no_cache_never_writes_or_reads(self, pcap_copy):
        view, hit = load_or_build(pcap_copy, use_cache=False)
        assert not hit
        assert not os.path.exists(sidecar_path(pcap_copy))
        # even with a valid sidecar on disk, --no-cache rebuilds
        load_or_build(pcap_copy)
        _view, hit = load_or_build(pcap_copy, use_cache=False)
        assert not hit

    def test_touched_mtime_still_hits_via_content_hash(self, pcap_copy):
        load_or_build(pcap_copy)
        stat = os.stat(pcap_copy)
        os.utime(pcap_copy, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        _view, hit = load_or_build(pcap_copy)
        assert hit

    def test_rewritten_pcap_invalidates(self, pcap_copy):
        view, _ = load_or_build(pcap_copy)
        assert main(["simulate", pcap_copy, "--scale", "0.05", "--seed", "7"]) == 0
        rebuilt, hit = load_or_build(pcap_copy)
        assert not hit
        assert rebuilt.table != view.table
        # and the refreshed sidecar now validates against the new pcap
        _again, hit = load_or_build(pcap_copy)
        assert hit

    def test_corrupt_sidecar_treated_as_stale(self, pcap_copy):
        view, _ = load_or_build(pcap_copy)
        with open(sidecar_path(pcap_copy), "r+b") as fileobj:
            fileobj.seek(-1, os.SEEK_END)
            fileobj.write(b"\x00")
        rebuilt, hit = load_or_build(pcap_copy)
        assert not hit
        assert rebuilt.table == view.table

    def test_pipeline_mismatch_misses(self, pcap_copy):
        load_or_build(pcap_copy)
        _view, hit = load_or_build(pcap_copy, validate_crypto_scans=False)
        assert not hit

    def test_parallel_build_hits_same_cache(self, pcap_copy):
        serial_view, _ = load_or_build(pcap_copy, workers=1)
        _view, hit = load_or_build(pcap_copy, workers=4)
        assert hit  # workers only matter on a miss
        os.unlink(sidecar_path(pcap_copy))
        parallel_view, hit = load_or_build(pcap_copy, workers=4)
        assert not hit
        assert parallel_view.table == serial_view.table


class TestObservability:
    def test_cold_run_counts_miss_and_build_timer(self, pcap_copy):
        obs = _obs()
        load_or_build(pcap_copy, obs=obs)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["capstore.cache"]["values"] == {"miss": 1}
        assert "index.build" in snapshot["timers"]
        assert "index.load" not in snapshot["timers"]

    def test_warm_run_counts_hit_and_load_timer(self, pcap_copy):
        load_or_build(pcap_copy)
        obs = _obs()
        view, hit = load_or_build(pcap_copy, obs=obs)
        assert hit
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["capstore.cache"]["values"] == {"hit": 1}
        assert "index.load" in snapshot["timers"]
        rows = snapshot["counters"]["capstore.rows"]["values"]
        assert rows["backscatter"] == view.stats.backscatter
        assert rows["scan"] == view.stats.scans

    def test_stale_run_counts_stale_then_miss(self, pcap_copy):
        load_or_build(pcap_copy)
        assert main(["simulate", pcap_copy, "--scale", "0.05", "--seed", "7"]) == 0
        obs = _obs()
        _view, hit = load_or_build(pcap_copy, obs=obs)
        assert not hit
        values = obs.metrics.snapshot()["counters"]["capstore.cache"]["values"]
        assert values == {"stale": 1, "miss": 1}

    def test_cache_hit_reemits_sanitize_counters(self, pcap_copy):
        cold_obs = _obs()
        load_or_build(pcap_copy, obs=cold_obs)
        warm_obs = _obs()
        _view, hit = load_or_build(pcap_copy, obs=warm_obs)
        assert hit
        cold = cold_obs.metrics.snapshot()["counters"]["sanitize.packets"]["values"]
        warm = warm_obs.metrics.snapshot()["counters"]["sanitize.packets"]["values"]
        assert warm == cold


class TestFingerprint:
    def test_fingerprint_fields(self, month_pcap):
        fingerprint = pcap_fingerprint(month_pcap)
        assert fingerprint["size"] == os.path.getsize(month_pcap)
        assert set(fingerprint) == {"size", "mtime_ns", "blake2b"}
        assert fingerprint_matches(fingerprint, month_pcap)

    def test_size_change_is_cheapest_rejection(self, pcap_copy):
        stored = pcap_fingerprint(pcap_copy)
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(b"\x00")
        assert not fingerprint_matches(stored, pcap_copy)

    def test_empty_fingerprint_never_matches(self, month_pcap):
        assert not fingerprint_matches({}, month_pcap)
