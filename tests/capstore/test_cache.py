"""Sidecar cache lifecycle: hit, touch, rewrite, corruption, escape hatch."""

import os

import pytest

from repro.capstore import (
    fingerprint_matches,
    load_or_build,
    load_or_build_ex,
    pcap_fingerprint,
    prefix_fingerprint,
    prefix_matches,
    sidecar_path,
)
from repro.cli import main
from repro.netstack.pcap import scan_pcap_offsets
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry


def _obs():
    return Observability(metrics=MetricsRegistry())


def _truncate_at_record(path: str, fraction: float) -> bytes:
    """Cut ``path`` at a record boundary; returns the removed tail bytes."""
    offsets = scan_pcap_offsets(path)
    cut = offsets[int(len(offsets) * fraction)]
    data = open(path, "rb").read()
    with open(path, "wb") as fileobj:
        fileobj.write(data[:cut])
    return data[cut:]


class TestLoadOrBuild:
    def test_miss_then_hit_round_trip(self, pcap_copy):
        view, hit = load_or_build(pcap_copy)
        assert not hit
        assert os.path.exists(sidecar_path(pcap_copy))
        again, hit = load_or_build(pcap_copy)
        assert hit
        assert again.table == view.table
        assert again.stats == view.stats

    def test_no_cache_never_writes_or_reads(self, pcap_copy):
        view, hit = load_or_build(pcap_copy, use_cache=False)
        assert not hit
        assert not os.path.exists(sidecar_path(pcap_copy))
        # even with a valid sidecar on disk, --no-cache rebuilds
        load_or_build(pcap_copy)
        _view, hit = load_or_build(pcap_copy, use_cache=False)
        assert not hit

    def test_touched_mtime_still_hits_via_content_hash(self, pcap_copy):
        load_or_build(pcap_copy)
        stat = os.stat(pcap_copy)
        os.utime(pcap_copy, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        _view, hit = load_or_build(pcap_copy)
        assert hit

    def test_rewritten_pcap_invalidates(self, pcap_copy):
        view, _ = load_or_build(pcap_copy)
        assert main(["simulate", pcap_copy, "--scale", "0.05", "--seed", "7"]) == 0
        rebuilt, hit = load_or_build(pcap_copy)
        assert not hit
        assert rebuilt.table != view.table
        # and the refreshed sidecar now validates against the new pcap
        _again, hit = load_or_build(pcap_copy)
        assert hit

    def test_corrupt_sidecar_treated_as_stale(self, pcap_copy):
        view, _ = load_or_build(pcap_copy)
        with open(sidecar_path(pcap_copy), "r+b") as fileobj:
            fileobj.seek(-1, os.SEEK_END)
            fileobj.write(b"\x00")
        rebuilt, hit = load_or_build(pcap_copy)
        assert not hit
        assert rebuilt.table == view.table

    def test_pipeline_mismatch_misses(self, pcap_copy):
        load_or_build(pcap_copy)
        _view, hit = load_or_build(pcap_copy, validate_crypto_scans=False)
        assert not hit

    def test_parallel_build_hits_same_cache(self, pcap_copy):
        serial_view, _ = load_or_build(pcap_copy, workers=1)
        _view, hit = load_or_build(pcap_copy, workers=4)
        assert hit  # workers only matter on a miss
        os.unlink(sidecar_path(pcap_copy))
        parallel_view, hit = load_or_build(pcap_copy, workers=4)
        assert not hit
        assert parallel_view.table == serial_view.table


class TestObservability:
    def test_cold_run_counts_miss_and_build_timer(self, pcap_copy):
        obs = _obs()
        load_or_build(pcap_copy, obs=obs)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["capstore.cache"]["values"] == {"miss": 1}
        assert "index.build" in snapshot["timers"]
        assert "index.load" not in snapshot["timers"]

    def test_warm_run_counts_hit_and_load_timer(self, pcap_copy):
        load_or_build(pcap_copy)
        obs = _obs()
        view, hit = load_or_build(pcap_copy, obs=obs)
        assert hit
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["capstore.cache"]["values"] == {"hit": 1}
        assert "index.load" in snapshot["timers"]
        rows = snapshot["counters"]["capstore.rows"]["values"]
        assert rows["backscatter"] == view.stats.backscatter
        assert rows["scan"] == view.stats.scans

    def test_stale_run_counts_stale_then_miss(self, pcap_copy):
        load_or_build(pcap_copy)
        assert main(["simulate", pcap_copy, "--scale", "0.05", "--seed", "7"]) == 0
        obs = _obs()
        _view, hit = load_or_build(pcap_copy, obs=obs)
        assert not hit
        values = obs.metrics.snapshot()["counters"]["capstore.cache"]["values"]
        assert values == {"stale": 1, "miss": 1}

    def test_cache_hit_reemits_sanitize_counters(self, pcap_copy):
        cold_obs = _obs()
        load_or_build(pcap_copy, obs=cold_obs)
        warm_obs = _obs()
        _view, hit = load_or_build(pcap_copy, obs=warm_obs)
        assert hit
        cold = cold_obs.metrics.snapshot()["counters"]["sanitize.packets"]["values"]
        warm = warm_obs.metrics.snapshot()["counters"]["sanitize.packets"]["values"]
        assert warm == cold


class TestIncrementalIndex:
    """A grown pcap extends its index; anything else rebuilds cleanly."""

    def test_grown_pcap_extends_and_matches_full_build(self, pcap_copy):
        tail = _truncate_at_record(pcap_copy, 0.8)
        first = load_or_build_ex(pcap_copy)
        assert first.status == "miss"
        prefix_rows = first.view.table.num_rows
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(tail)
        obs = _obs()
        extended = load_or_build_ex(pcap_copy, obs=obs)
        assert extended.status == "extended"
        assert extended.view.table.num_rows > prefix_rows
        values = obs.metrics.snapshot()["counters"]["capstore.cache"]["values"]
        assert values == {"extended": 1}
        assert "index.extend" in obs.metrics.snapshot()["timers"]
        # the extended table is exactly what a cold full build produces
        full = load_or_build_ex(pcap_copy, use_cache=False)
        assert extended.view.table == full.view.table
        assert extended.view.stats == full.view.stats
        # and the rewritten sidecar is a plain hit afterwards
        third = load_or_build_ex(pcap_copy)
        assert third.status == "hit"
        assert third.indexed_bytes == os.path.getsize(pcap_copy)

    def test_extension_emits_full_run_counters(self, pcap_copy):
        tail = _truncate_at_record(pcap_copy, 0.7)
        load_or_build_ex(pcap_copy)
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(tail)
        warm_obs = _obs()
        load_or_build_ex(pcap_copy, obs=warm_obs)
        cold_obs = _obs()
        load_or_build_ex(pcap_copy, obs=cold_obs, use_cache=False)
        warm = warm_obs.metrics.snapshot()["counters"]["sanitize.packets"]["values"]
        cold = cold_obs.metrics.snapshot()["counters"]["sanitize.packets"]["values"]
        assert warm == cold

    def test_torn_tail_is_still_a_hit(self, pcap_copy):
        result = load_or_build_ex(pcap_copy)
        size = os.path.getsize(pcap_copy)
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(b"\x01\x02\x03\x04\x05\x06\x07\x08\x09")
        again = load_or_build_ex(pcap_copy)
        assert again.status == "hit"
        assert again.indexed_bytes == size
        assert again.view.table == result.view.table

    def test_truncated_below_prefix_rebuilds(self, pcap_copy):
        load_or_build_ex(pcap_copy)
        _truncate_at_record(pcap_copy, 0.5)
        obs = _obs()
        rebuilt = load_or_build_ex(pcap_copy, obs=obs)
        assert rebuilt.status == "miss"
        values = obs.metrics.snapshot()["counters"]["capstore.cache"]["values"]
        assert values == {"stale": 1, "miss": 1}
        full = load_or_build_ex(pcap_copy, use_cache=False)
        assert rebuilt.view.table == full.view.table

    def test_rewritten_prefix_rebuilds(self, pcap_copy):
        load_or_build_ex(pcap_copy)
        # flip bytes inside the indexed prefix without changing the size
        with open(pcap_copy, "r+b") as fileobj:
            fileobj.seek(64)
            chunk = fileobj.read(32)
            fileobj.seek(64)
            fileobj.write(bytes(byte ^ 0xFF for byte in chunk))
        # force the mtime past the stored stamp so the (size, mtime) fast
        # path cannot mask the content change on coarse-clock filesystems
        stat = os.stat(pcap_copy)
        os.utime(pcap_copy, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        result = load_or_build_ex(pcap_copy)
        assert result.status == "miss"

    def test_concurrent_writer_extension_reads_no_torn_record(self, pcap_copy):
        """A tail cut mid-record is absorbed only once completed."""
        tail = _truncate_at_record(pcap_copy, 0.8)
        load_or_build_ex(pcap_copy)
        # the writer lands half a record: grown, but nothing complete
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(tail[:7])
        partial = load_or_build_ex(pcap_copy)
        assert partial.status == "hit"
        assert partial.indexed_bytes == os.path.getsize(pcap_copy) - 7
        # the writer finishes: exactly the remaining records are absorbed
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(tail[7:])
        extended = load_or_build_ex(pcap_copy)
        assert extended.status == "extended"
        full = load_or_build_ex(pcap_copy, use_cache=False)
        assert extended.view.table == full.view.table

    def test_no_cache_ignores_extension_path(self, pcap_copy):
        tail = _truncate_at_record(pcap_copy, 0.8)
        load_or_build_ex(pcap_copy)
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(tail)
        result = load_or_build_ex(pcap_copy, use_cache=False)
        assert result.status == "miss"


class TestPrefixFingerprint:
    def test_prefix_fields_extend_the_base_fingerprint(self, pcap_copy):
        size = os.path.getsize(pcap_copy)
        fingerprint = prefix_fingerprint(pcap_copy, size, records=10)
        assert fingerprint["size"] == size
        assert fingerprint["indexed_bytes"] == size
        assert fingerprint["records"] == 10
        # covering the whole file, prefix and full hash agree
        assert fingerprint["prefix_blake2b"] == fingerprint["blake2b"]
        assert fingerprint["blake2b"] == pcap_fingerprint(pcap_copy)["blake2b"]

    def test_prefix_matches_after_growth(self, pcap_copy):
        size = os.path.getsize(pcap_copy)
        stored = prefix_fingerprint(pcap_copy, size)
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(b"\x00" * 40)
        assert prefix_matches(stored, pcap_copy)
        assert not fingerprint_matches(stored, pcap_copy)

    def test_prefix_rejects_truncation(self, pcap_copy):
        stored = prefix_fingerprint(pcap_copy, os.path.getsize(pcap_copy))
        _truncate_at_record(pcap_copy, 0.5)
        assert not prefix_matches(stored, pcap_copy)

    def test_legacy_fingerprint_acts_as_whole_file_prefix(self, pcap_copy):
        cut = scan_pcap_offsets(pcap_copy)[-1]
        stored = pcap_fingerprint(pcap_copy)  # no prefix fields
        assert prefix_matches(stored, pcap_copy)
        data = open(pcap_copy, "rb").read()
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(b"\x00" * 12)
        assert prefix_matches(stored, pcap_copy)
        with open(pcap_copy, "wb") as fileobj:
            fileobj.write(data[:cut])
        assert not prefix_matches(stored, pcap_copy)

    def test_empty_fingerprint_never_prefix_matches(self, month_pcap):
        assert not prefix_matches({}, month_pcap)


class TestFingerprint:
    def test_fingerprint_fields(self, month_pcap):
        fingerprint = pcap_fingerprint(month_pcap)
        assert fingerprint["size"] == os.path.getsize(month_pcap)
        assert set(fingerprint) == {"size", "mtime_ns", "blake2b"}
        assert fingerprint_matches(fingerprint, month_pcap)

    def test_size_change_is_cheapest_rejection(self, pcap_copy):
        stored = pcap_fingerprint(pcap_copy)
        with open(pcap_copy, "ab") as fileobj:
            fileobj.write(b"\x00")
        assert not fingerprint_matches(stored, pcap_copy)

    def test_empty_fingerprint_never_matches(self, month_pcap):
        assert not fingerprint_matches({}, month_pcap)
