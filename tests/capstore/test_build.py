"""Build parity: serial == row-group parallel == shard-merge builds.

Classification is stateless per record, so every build strategy must
yield the *same* columnar table — these tests pin that invariant, plus
agreement with the legacy object pipeline it replaced.
"""

import pytest

from repro.capstore import (
    build_capture_table,
    build_from_shards,
    default_acknowledged,
    default_asdb,
)
from repro.capstore.build import _row_groups, build_from_records
from repro.netstack.pcap import (
    iter_pcap,
    merge_pcap_files,
    read_pcap,
    scan_pcap_offsets,
    write_pcap,
)
from repro.simnet.shard import plan_shards, run_shard
from repro.telescope.classify import PacketClass, classify_capture
from repro.workloads.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def serial_build(month_pcap):
    return build_capture_table(month_pcap, workers=1)


class TestSerialBuild:
    def test_matches_legacy_object_pipeline(self, month_pcap, serial_build):
        table, stats = serial_build
        legacy = classify_capture(
            read_pcap(month_pcap),
            asdb=default_asdb(),
            acknowledged=default_acknowledged(),
        )
        assert stats == legacy.stats
        rows = [table.materialize(i) for i in range(table.num_rows)]
        assert [p for p in rows if p.klass is PacketClass.BACKSCATTER] == (
            legacy.backscatter
        )
        assert [p for p in rows if p.klass is PacketClass.SCAN] == legacy.scans

    def test_streaming_equals_materialized_input(self, month_pcap):
        streamed, _ = build_from_records(
            iter_pcap(month_pcap), asdb=default_asdb(), acknowledged=default_acknowledged()
        )
        materialized, _ = build_from_records(
            read_pcap(month_pcap), asdb=default_asdb(), acknowledged=default_acknowledged()
        )
        assert streamed == materialized

    def test_offset_scan_counts_records(self, month_pcap):
        offsets = scan_pcap_offsets(month_pcap)
        assert len(offsets) == len(read_pcap(month_pcap))
        assert offsets == sorted(offsets)


class TestParallelBuild:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_row_group_parallel_equals_serial(self, month_pcap, serial_build, workers):
        serial_table, serial_stats = serial_build
        table, stats = build_capture_table(month_pcap, workers=workers)
        assert table == serial_table
        assert stats == serial_stats

    def test_more_workers_than_records_degrades_gracefully(self, tmp_path, month_pcap):
        records = read_pcap(month_pcap)[:3]
        tiny = str(tmp_path / "tiny.pcap")
        write_pcap(tiny, records)
        serial = build_capture_table(tiny, workers=1)
        wide = build_capture_table(tiny, workers=16)
        assert wide == serial

    def test_row_groups_cover_all_offsets_contiguously(self):
        offsets = list(range(0, 1000, 10))
        groups = _row_groups(offsets, 7)
        assert sum(count for _off, count in groups) == len(offsets)
        cursor = 0
        for offset, count in groups:
            assert offset == offsets[cursor]
            cursor += count


class TestShardBuild:
    def test_shard_build_equals_merged_pcap_build(self, tmp_path):
        config = ScenarioConfig(seed=9).scaled(0.02)
        shards = plan_shards(config, 3)
        assert len(shards) > 1
        shard_paths = []
        for shard in shards:
            records = run_shard(config, [unit.name for unit in shard.units])
            path = str(tmp_path / ("shard%d.pcap" % shard.index))
            write_pcap(path, records)
            shard_paths.append(path)
        merged = str(tmp_path / "merged.pcap")
        merge_pcap_files(shard_paths, merged)

        from_shards = build_from_shards(shard_paths)
        from_merged = build_capture_table(merged, workers=1)
        assert from_shards[0] == from_merged[0]
        assert from_shards[1] == from_merged[1]

    def test_single_shard_runs_in_process(self, tmp_path, month_pcap):
        single = build_from_shards([month_pcap])
        serial = build_capture_table(month_pcap, workers=1)
        assert single[0] == serial[0]
        assert single[1] == serial[1]
