"""Fixtures for the columnar capture store tests.

One small simulated month is built once per session and shared
read-only; tests that write a sidecar next to the pcap (or rewrite the
pcap itself) take a private copy first so cache state never leaks
between tests.
"""

import shutil

import pytest

from repro.cli import main


@pytest.fixture(scope="session")
def month_pcap(tmp_path_factory):
    """A small simulated telescope month (no sidecar next to it)."""
    root = tmp_path_factory.mktemp("capstore")
    path = str(root / "month.pcap")
    assert main(["simulate", path, "--scale", "0.05", "--seed", "42"]) == 0
    return path


@pytest.fixture
def pcap_copy(month_pcap, tmp_path):
    """A private copy of the month pcap, safe to cache against or rewrite."""
    dest = tmp_path / "month.pcap"
    shutil.copy(month_pcap, dest)
    return str(dest)
