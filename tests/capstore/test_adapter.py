"""Adapter-view equivalence: every analyze table renders byte-identically
whether it consumes the legacy object pipeline or the columnar store."""

import pytest

from repro.capstore import (
    CapturedRowView,
    default_acknowledged,
    default_asdb,
    load_or_build,
)
from repro.cli import VALID_TABLES, render_analysis
from repro.netstack.pcap import read_pcap
from repro.telescope.classify import classify_capture

ALL_TABLES = set(VALID_TABLES)


@pytest.fixture(scope="module")
def legacy(month_pcap):
    return classify_capture(
        read_pcap(month_pcap),
        asdb=default_asdb(),
        acknowledged=default_acknowledged(),
    )


@pytest.fixture(scope="module")
def columnar(month_pcap):
    view, _hit = load_or_build(month_pcap, use_cache=False)
    return view


class TestRenderEquivalence:
    @pytest.mark.parametrize("table", sorted(ALL_TABLES))
    def test_each_table_renders_identically(self, legacy, columnar, table):
        assert render_analysis(columnar, {table}) == render_analysis(
            legacy, {table}
        )

    def test_all_tables_at_once(self, legacy, columnar):
        assert render_analysis(columnar, ALL_TABLES) == render_analysis(
            legacy, ALL_TABLES
        )

    def test_parallel_build_renders_identically(self, month_pcap, legacy):
        view, _hit = load_or_build(month_pcap, workers=4, use_cache=False)
        assert render_analysis(view, ALL_TABLES) == render_analysis(
            legacy, ALL_TABLES
        )


class TestRowView:
    def test_views_mirror_captured_packets(self, legacy, columnar):
        views = columnar.backscatter + columnar.scans
        packets = legacy.backscatter + legacy.scans
        assert len(views) == len(packets)
        by_key = {
            (p.timestamp, p.src_ip, p.dst_ip, p.src_port): p for p in packets
        }
        sample = views[:: max(1, len(views) // 40)]
        for view in sample:
            assert isinstance(view, CapturedRowView)
            packet = by_key[
                (view.timestamp, view.src_ip, view.dst_ip, view.src_port)
            ]
            assert view.to_packet() == packet
            assert view.klass is packet.klass
            assert view.origin == packet.origin
            assert view.coalesced == packet.coalesced
            assert view.remote_ip == packet.remote_ip
            assert list(view.packets) == list(packet.packets)

    def test_packets_property_is_cached(self, columnar):
        view = (columnar.backscatter + columnar.scans)[0]
        assert view.packets is view.packets

    def test_to_classified_capture_materializes_everything(self, legacy, columnar):
        capture = columnar.to_classified_capture()
        assert capture.backscatter == legacy.backscatter
        assert capture.scans == legacy.scans
        assert capture.stats == legacy.stats

    def test_len_matches_legacy(self, legacy, columnar):
        assert len(columnar) == len(legacy.backscatter) + len(legacy.scans)
