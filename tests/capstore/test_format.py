""".capidx sidecar format: round-trip fidelity and corruption handling."""

import pytest

from repro.capstore import (
    MAGIC,
    SCHEMA_VERSION,
    CapIndexError,
    CaptureTable,
    build_capture_table,
    dump_index,
    dumps_index,
    load_index,
    read_header,
)
from repro.telescope.classify import SanitizationStats


@pytest.fixture(scope="module")
def built(month_pcap):
    return build_capture_table(month_pcap)


@pytest.fixture
def sidecar(built, tmp_path):
    table, stats = built
    path = str(tmp_path / "month.capidx")
    dump_index(
        path, table, stats, source={"size": 123}, pipeline={"asdb": "default"}
    )
    return path


class TestRoundTrip:
    def test_write_read_identical_table(self, built, sidecar):
        table, stats = built
        payload = load_index(sidecar)
        assert payload.table == table
        assert payload.stats == stats
        assert payload.source == {"size": 123}
        assert payload.pipeline == {"asdb": "default"}
        assert payload.schema_version == SCHEMA_VERSION

    def test_rows_materialize_identically(self, built, sidecar):
        table, _stats = built
        loaded = load_index(sidecar).table
        assert loaded.num_rows == table.num_rows > 0
        for row in range(0, table.num_rows, max(1, table.num_rows // 25)):
            assert loaded.materialize(row) == table.materialize(row)

    def test_empty_table_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.capidx")
        dump_index(path, CaptureTable(), SanitizationStats())
        payload = load_index(path)
        assert payload.table.num_rows == 0
        assert payload.table == CaptureTable()

    def test_serialization_starts_with_magic(self, built):
        table, stats = built
        blob = dumps_index(table, stats)
        assert blob[:8] == MAGIC
        assert int.from_bytes(blob[8:12], "little") == SCHEMA_VERSION

    def test_read_header_is_cheap_inspection(self, built, sidecar):
        table, stats = built
        header = read_header(sidecar)
        assert header["rows"] == table.num_rows
        assert header["packets"] == table.num_packets
        assert header["stats"]["total_records"] == stats.total_records
        assert header["_schema_version"] == SCHEMA_VERSION


class TestCorruption:
    def test_bad_magic_rejected(self, sidecar, tmp_path):
        with open(sidecar, "rb") as fileobj:
            blob = fileobj.read()
        bad = str(tmp_path / "bad.capidx")
        with open(bad, "wb") as fileobj:
            fileobj.write(b"NOTCAPDX" + blob[8:])
        with pytest.raises(CapIndexError, match="magic"):
            load_index(bad)
        with pytest.raises(CapIndexError, match="magic"):
            read_header(bad)

    def test_future_schema_rejected(self, sidecar, tmp_path):
        with open(sidecar, "rb") as fileobj:
            blob = fileobj.read()
        bad = str(tmp_path / "future.capidx")
        with open(bad, "wb") as fileobj:
            fileobj.write(blob[:8] + (99).to_bytes(4, "little") + blob[12:])
        with pytest.raises(CapIndexError, match="schema version 99"):
            load_index(bad)

    def test_flipped_payload_byte_fails_checksum(self, sidecar, tmp_path):
        with open(sidecar, "rb") as fileobj:
            blob = bytearray(fileobj.read())
        blob[-1] ^= 0xFF
        bad = str(tmp_path / "flipped.capidx")
        with open(bad, "wb") as fileobj:
            fileobj.write(bytes(blob))
        with pytest.raises(CapIndexError, match="checksum"):
            load_index(bad)

    def test_truncated_file_rejected(self, sidecar, tmp_path):
        with open(sidecar, "rb") as fileobj:
            blob = fileobj.read()
        for cut in (4, 20, len(blob) - 100):
            bad = str(tmp_path / ("cut%d.capidx" % cut))
            with open(bad, "wb") as fileobj:
                fileobj.write(blob[:cut])
            with pytest.raises(CapIndexError):
                load_index(bad)

    def test_no_temp_file_left_behind(self, built, tmp_path):
        table, stats = built
        path = tmp_path / "atomic.capidx"
        dump_index(str(path), table, stats)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []
