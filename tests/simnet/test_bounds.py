"""Scale-derived histogram bounds for queue depth and datagram sizes.

Bounds must be a pure function of the *full* scenario config so every
shard worker registers identical buckets — the parent's snapshot merge
rejects mismatched bounds.
"""

from repro.server.engine import DATAGRAM_LENGTH_BOUNDS, datagram_length_bounds
from repro.simnet.eventloop import _QUEUE_DEPTH_BOUNDS, EventLoop, queue_depth_bounds
from repro.workloads.scenario import (
    ScenarioConfig,
    build_scenario,
    plan_traffic_units,
)


class TestQueueDepthBounds:
    def test_no_hint_keeps_static_ladder(self):
        assert queue_depth_bounds(None) == _QUEUE_DEPTH_BOUNDS
        assert queue_depth_bounds(0) == _QUEUE_DEPTH_BOUNDS

    def test_small_scale_densifies_with_half_decades(self):
        bounds = queue_depth_bounds(1000)
        assert 3 in bounds and 30 in bounds
        assert bounds == tuple(sorted(bounds))
        assert len(bounds) == len(set(bounds))

    def test_top_bucket_grows_past_expected_volume(self):
        bounds = queue_depth_bounds(50_000_000)
        assert bounds[-1] >= 50_000_000
        assert queue_depth_bounds(10**7)[-1] >= 10**7

    def test_static_ladder_tops_out_at_a_million(self):
        assert _QUEUE_DEPTH_BOUNDS[-1] == 1_000_000
        assert queue_depth_bounds(500)[-1] <= 1_000_000

    def test_bounds_are_deterministic(self):
        assert queue_depth_bounds(12345) == queue_depth_bounds(12345)


class TestDatagramLengthBounds:
    def test_below_threshold_keeps_characteristic_sizes(self):
        assert datagram_length_bounds(None) == DATAGRAM_LENGTH_BOUNDS
        assert datagram_length_bounds(999_999) == DATAGRAM_LENGTH_BOUNDS

    def test_million_events_adds_hundred_byte_grid(self):
        bounds = datagram_length_bounds(1_000_000)
        assert set(DATAGRAM_LENGTH_BOUNDS) <= set(bounds)
        assert {100, 700, 1400} <= set(bounds)
        assert 50 not in bounds
        assert bounds == tuple(sorted(bounds))

    def test_hundred_million_events_halves_the_grid(self):
        bounds = datagram_length_bounds(100_000_000)
        assert {50, 150, 1550} <= set(bounds)
        assert set(datagram_length_bounds(1_000_000)) <= set(bounds)


class TestScenarioWiring:
    def test_loop_hint_derives_from_full_config(self):
        config = ScenarioConfig(seed=1).scaled(0.02)
        scenario = build_scenario(config)
        expected = sum(unit.weight for unit in plan_traffic_units(config))
        assert scenario.loop.expected_events == expected
        assert expected > 0

    def test_hint_identical_across_shard_slices(self):
        """Shard workers get unit slices but must share one bounds hint."""
        config = ScenarioConfig(seed=1).scaled(0.02)
        full_hint = build_scenario(config).loop.expected_events
        units = plan_traffic_units(config)
        sliced = build_scenario(config, units=units[: len(units) // 2])
        assert sliced.loop.expected_events == full_hint

    def test_default_loop_has_no_hint(self):
        assert EventLoop().expected_events is None
