"""Routing, latency, loss, and spoofed-reply semantics."""

import random

from repro.netstack.addr import Prefix, parse_ip
from repro.netstack.udp import UdpDatagram
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device, Network, PathModel


class Sink(Device):
    """Records everything delivered to its prefix."""

    def __init__(self, name, prefix):
        super().__init__(name)
        self._prefix = Prefix.parse(prefix)
        self.received = []

    def prefixes(self):
        return [self._prefix]

    def handle_datagram(self, datagram, now):
        self.received.append((now, datagram))


class Echo(Sink):
    """Replies to every datagram (like a server replying to spoofed src)."""

    def handle_datagram(self, datagram, now):
        super().handle_datagram(datagram, now)
        self.send(datagram.reply(b"reply"))


def make_net(loss=0.0, jitter=0.0):
    loop = EventLoop()
    net = Network(loop, random.Random(1), PathModel(jitter=jitter, loss_rate=loss))
    return loop, net


def dgram(src, dst, payload=b"x", sport=1000, dport=443):
    return UdpDatagram(
        src_ip=parse_ip(src),
        dst_ip=parse_ip(dst),
        src_port=sport,
        dst_port=dport,
        payload=payload,
    )


class TestRouting:
    def test_longest_prefix_delivery(self):
        loop, net = make_net()
        wide = Sink("wide", "10.0.0.0/8")
        narrow = Sink("narrow", "10.1.0.0/16")
        sender = Sink("sender", "192.0.2.0/24")
        for device in (wide, narrow, sender):
            net.add_device(device)
        sender.send(dgram("192.0.2.1", "10.1.2.3"))
        sender.send(dgram("192.0.2.1", "10.2.0.1"))
        loop.run()
        assert len(narrow.received) == 1
        assert len(wide.received) == 1

    def test_unrouted_dropped_and_counted(self):
        loop, net = make_net()
        sender = Sink("sender", "192.0.2.0/24")
        net.add_device(sender)
        sender.send(dgram("192.0.2.1", "203.0.113.9"))
        loop.run()
        assert net.stats.dropped_unrouted == 1
        assert net.stats.delivered == 0

    def test_latency_is_positive_and_orderly(self):
        loop, net = make_net()
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        sender.send(dgram("192.0.2.1", "10.0.0.1"))
        loop.run()
        arrival, _ = receiver.received[0]
        assert arrival >= 0.002  # base propagation delay

    def test_add_route_extra_prefix(self):
        loop, net = make_net()
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        net.add_route("172.16.0.0/12", receiver)
        sender.send(dgram("192.0.2.1", "172.16.1.1"))
        loop.run()
        assert len(receiver.received) == 1

    def test_route_lookup(self):
        _loop, net = make_net()
        receiver = Sink("r", "10.0.0.0/8")
        net.add_device(receiver)
        assert net.route(parse_ip("10.1.1.1")) is receiver
        assert net.route(parse_ip("11.1.1.1")) is None


class TestSpoofedBackscatter:
    def test_reply_to_spoofed_source_reaches_telescope_prefix(self):
        """The paper's core mechanism: spoofed request, reply lands in the
        darknet."""
        loop, net = make_net()
        server = Echo("server", "157.240.0.0/16")
        telescope = Sink("telescope", "44.0.0.0/9")
        attacker = Sink("attacker", "198.18.0.0/15")
        for device in (server, telescope, attacker):
            net.add_device(device)
        # Attacker spoofs a telescope address as source.
        attacker.send(dgram("44.1.2.3", "157.240.1.1"))
        loop.run()
        assert len(server.received) == 1
        assert len(telescope.received) == 1
        _, backscatter = telescope.received[0]
        assert backscatter.payload == b"reply"
        assert backscatter.src_ip == parse_ip("157.240.1.1")


class TestLoss:
    def test_all_lost_at_rate_one(self):
        loop, net = make_net(loss=1.0)
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        for _ in range(10):
            sender.send(dgram("192.0.2.1", "10.0.0.1"))
        loop.run()
        assert receiver.received == []
        assert net.stats.dropped_loss == 10

    def test_partial_loss(self):
        # Loss is a keyed hash of the packet, so the sample needs distinct
        # packets (identical packets at the same instant share one fate).
        loop, net = make_net(loss=0.5)
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        for i in range(200):
            sender.send(dgram("192.0.2.1", "10.0.0.1", payload=b"pkt-%d" % i))
        loop.run()
        assert 50 < len(receiver.received) < 150

    def test_identical_packets_share_fate(self):
        """Packet fate is a pure function of the packet — the property that
        lets sharded runs reproduce a serial capture exactly."""
        loop, net = make_net(loss=0.5)
        receiver = Sink("r", "10.0.0.0/8")
        sender = Sink("s", "192.0.2.0/24")
        net.add_device(receiver)
        net.add_device(sender)
        for _ in range(20):
            sender.send(dgram("192.0.2.1", "10.0.0.1"))
        loop.run()
        assert len(receiver.received) in (0, 20)


class TestDeviceErrors:
    def test_unattached_send_raises(self):
        import pytest

        device = Sink("lonely", "10.0.0.0/8")
        with pytest.raises(RuntimeError):
            device.send(dgram("10.0.0.1", "10.0.0.2"))
