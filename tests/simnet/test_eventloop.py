"""Discrete-event loop semantics."""

import pytest

from repro.simnet.eventloop import EventLoop


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(3.0, lambda: fired.append("c"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_ties_broken_by_insertion_order(self):
        loop = EventLoop()
        fired = []
        for name in "abc":
            loop.schedule(1.0, lambda n=name: fired.append(n))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-0.1, lambda: None)

    def test_schedule_at_past_clamps_to_now(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        fired = []
        loop.schedule_at(0.5, lambda: fired.append(True))
        loop.run()
        assert fired == [True]
        assert loop.now == 1.0

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired = []

        def outer():
            fired.append("outer")
            loop.schedule(0.5, lambda: fired.append("inner"))

        loop.schedule(1.0, outer)
        loop.run()
        assert fired == ["outer", "inner"]
        assert loop.now == 1.5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        loop.run()
        assert fired == []

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        event.cancel()
        assert loop.peek_time() == 2.0


class TestRunUntil:
    def test_partial_run(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(2.0, lambda: fired.append(2))
        loop.run_until(1.5)
        assert fired == [1]
        assert loop.now == 1.5
        loop.run_until(3.0)
        assert fired == [1, 2]
        assert loop.now == 3.0

    def test_run_until_exact_boundary_inclusive(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.run_until(1.0)
        assert fired == [1]


class TestBudget:
    def test_event_budget_guard(self):
        loop = EventLoop()

        def rearm():
            loop.schedule(0.001, rearm)

        loop.schedule(0.001, rearm)
        with pytest.raises(RuntimeError):
            loop.run(max_events=100)

    def test_budget_not_exhausted_when_queue_drains_exactly(self):
        """Regression: draining on exactly the budget-th event is success."""
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
        loop.run(max_events=10)  # queue empties on the 10th event: no error
        assert len(fired) == 10

    def test_budget_raises_only_with_pending_events(self):
        loop = EventLoop()
        for i in range(11):
            loop.schedule(0.1 * (i + 1), lambda: None)
        with pytest.raises(RuntimeError):
            loop.run(max_events=10)

    def test_budget_ignores_trailing_cancelled_events(self):
        """A cancelled tail does not count as pending work."""
        loop = EventLoop()
        for i in range(5):
            loop.schedule(0.1 * (i + 1), lambda: None)
        tail = loop.schedule(1.0, lambda: None)
        tail.cancel()
        loop.run(max_events=5)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for _ in range(5):
            loop.schedule(0.1, lambda: None)
        loop.run()
        assert loop.events_processed == 5


class TestPeriodic:
    def test_periodic_fires_while_work_remains_then_drains(self):
        loop = EventLoop()
        ticks = []
        loop.schedule(3.5, lambda: None)  # real work until t=3.5
        loop.schedule_periodic(1.0, lambda: ticks.append(loop.now))
        loop.run()  # must terminate: the tick stops re-arming once idle
        assert ticks == [1.0, 2.0, 3.0, 4.0]
        assert loop.peek_time() is None

    def test_periodic_alone_fires_once(self):
        """With no real work pending, a periodic tick does not re-arm."""
        loop = EventLoop()
        ticks = []
        loop.schedule_periodic(0.5, lambda: ticks.append(loop.now))
        loop.run()
        assert ticks == [0.5]

    def test_periodic_sees_work_scheduled_by_events(self):
        loop = EventLoop()
        ticks = []

        def rearm(depth):
            if depth:
                loop.schedule(1.0, lambda: rearm(depth - 1))

        loop.schedule(1.0, lambda: rearm(2))
        loop.schedule_periodic(0.7, lambda: ticks.append(round(loop.now, 1)))
        loop.run()
        assert ticks  # fired during the chain
        assert loop.peek_time() is None  # and still drained

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_periodic(0.0, lambda: None)


class TestQueueDepthSampling:
    def test_shift_is_configurable(self):
        from repro.obs import MetricsRegistry, Observability

        metrics = MetricsRegistry()
        loop = EventLoop(
            Observability(metrics=metrics), queue_depth_sample_shift=0
        )
        for i in range(8):
            loop.schedule(0.1 * (i + 1), lambda: None)
        loop.run()
        hist = metrics.histogram("sim.queue_depth", (1,))
        # shift=0 samples depth on every processed event.
        assert sum(s.count for s in hist.series.values()) == 8

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            EventLoop(queue_depth_sample_shift=-1)
