"""Sharded simulation: partitioning, determinism, and the merge step."""

import pytest

from repro.netstack.pcap import read_pcap, record_sort_key
from repro.obs import MetricsRegistry, Observability
from repro.simnet.shard import (
    Shard,
    partition_units,
    plan_shards,
    run_shard,
    simulate_sharded,
)
from repro.telescope.classify import classify_capture
from repro.workloads.scenario import (
    ScenarioConfig,
    derive_seed,
    plan_traffic_units,
)

#: Small but non-trivial: every unit kind is populated, runs in seconds.
CONFIG = ScenarioConfig(seed=4242).scaled(0.02)


def keys(records):
    return [record_sort_key(r) for r in records]


@pytest.fixture(scope="module")
def serial_records():
    """One serial reference run, shared by the equivalence tests."""
    return run_shard(CONFIG)


class TestPartitioning:
    def test_partition_is_deterministic_and_complete(self):
        units = plan_traffic_units(CONFIG)
        buckets = partition_units(units, 4)
        again = partition_units(units, 4)
        assert buckets == again
        flattened = [unit for bucket in buckets for unit in bucket]
        assert sorted(u.name for u in flattened) == sorted(u.name for u in units)

    def test_lpt_balances_weights(self):
        units = plan_traffic_units(CONFIG)
        buckets = partition_units(units, 4)
        loads = [sum(u.weight for u in bucket) for bucket in buckets]
        heaviest_unit = max(u.weight for u in units)
        # Classic LPT bound: spread stays within one heaviest item.
        assert max(loads) - min(loads) <= heaviest_unit

    def test_more_shards_than_units_drops_empties(self):
        shards = plan_shards(CONFIG, 1000)
        assert 0 < len(shards) <= len(plan_traffic_units(CONFIG))
        assert all(shard.units for shard in shards)

    def test_shard_seed_derivation(self):
        shards = plan_shards(CONFIG, 3)
        for shard in shards:
            assert shard.seed == derive_seed(CONFIG.seed, "shard", shard.index)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_units(plan_traffic_units(CONFIG), 0)


class TestScaledCommutesWithSharding:
    """Scaling then sharding == sharding then scaling (satellite 5)."""

    def test_unit_seeds_are_volume_independent(self):
        # Scale the full-size config: halving CONFIG's already-tiny
        # volumes would drive zero_rtt to 0 and (correctly) drop its
        # units — scaling only commutes while volumes stay non-zero.
        base_cfg = ScenarioConfig(seed=4242)
        base = {u.name: u.seed for u in plan_traffic_units(base_cfg)}
        scaled = {u.name: u.seed for u in plan_traffic_units(base_cfg.scaled(0.5))}
        assert base == scaled

    def test_shard_seeds_are_volume_independent(self):
        scaled = CONFIG.scaled(0.5)
        for index in range(8):
            assert derive_seed(scaled.seed, "shard", index) == derive_seed(
                CONFIG.seed, "shard", index
            )

    def test_shard_plans_agree_on_unit_names(self):
        # Counts differ after scaling, but LPT sees proportional weights,
        # and unit identities are scale-invariant.
        base_units = {
            shard.index: shard.unit_names for shard in plan_shards(CONFIG, 3)
        }
        scaled_units = {
            shard.index: shard.unit_names
            for shard in plan_shards(CONFIG.scaled(1.0), 3)
        }
        assert base_units == scaled_units

    def test_derive_seed_distinct_across_identities(self):
        seeds = {derive_seed(1, "attack", g, b) for g in "abc" for b in range(4)}
        assert len(seeds) == 12


class TestUnitIndependence:
    """The core determinism property: serial == union of any partition."""

    def test_serial_equals_merged_partition(self, serial_records):
        shards = plan_shards(CONFIG, 3)
        merged = []
        for shard in shards:
            merged.extend(run_shard(CONFIG, shard.unit_names))
        merged.sort(key=record_sort_key)
        assert keys(merged) == keys(serial_records)

    def test_partition_choice_is_invisible(self, serial_records):
        shards = plan_shards(CONFIG, 2)
        merged = []
        for shard in shards:
            merged.extend(run_shard(CONFIG, shard.unit_names))
        merged.sort(key=record_sort_key)
        assert keys(merged) == keys(serial_records)

    def test_single_unit_subset_is_a_subset(self, serial_records):
        serial = set(keys(serial_records))
        one_unit = run_shard(CONFIG, ["noise"])
        assert one_unit  # noise lands on the telescope
        assert set(keys(one_unit)) <= serial

    def test_unknown_unit_name_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic units"):
            run_shard(CONFIG, ["attack:nonexistent:0"])


class TestSimulateSharded:
    @pytest.fixture(scope="class")
    def sharded(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("shard") / "merged.pcap")
        obs = Observability(metrics=MetricsRegistry())
        result = simulate_sharded(CONFIG, workers=2, output=out, obs=obs)
        return out, obs, result

    def test_merged_capture_matches_serial(self, sharded, serial_records):
        out, _obs, result = sharded
        merged = read_pcap(out)
        assert result.total_records == len(merged) == len(serial_records)
        assert keys(merged) == keys(serial_records)

    def test_classify_stats_identical_to_serial(self, sharded, serial_records):
        out, _obs, _result = sharded
        merged_stats = classify_capture(read_pcap(out)).stats
        serial_stats = classify_capture(serial_records).stats
        assert merged_stats == serial_stats

    def test_worker_counts_sum_to_total(self, sharded):
        _out, _obs, result = sharded
        assert sum(result.worker_records) == result.total_records
        assert len(result.worker_records) == len(result.shards) == 2

    def test_merged_metrics_cover_whole_run(self, sharded):
        _out, obs, result = sharded
        delivered = obs.metrics.counter("net.delivered", ("device",))
        assert sum(delivered.values.values()) >= result.total_records
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["engine.events"]["values"]

    def test_shard_temp_files_removed(self, sharded):
        out, _obs, result = sharded
        import os

        for shard in result.shards:
            assert not os.path.exists("%s.shard%d" % (out, shard.index))

    def test_workers_below_two_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            simulate_sharded(CONFIG, workers=1, output=str(tmp_path / "x.pcap"))


class TestShardDataclass:
    def test_weight_and_names(self):
        units = plan_traffic_units(CONFIG)[:3]
        shard = Shard(index=0, seed=1, units=tuple(units))
        assert shard.weight == sum(u.weight for u in units)
        assert shard.unit_names == tuple(u.name for u in units)


class TestResolveWorkers:
    """`--workers auto` heuristic: min(cpu_count, planned shards), serial on 1 CPU."""

    def test_explicit_counts_pass_through(self):
        from repro.simnet.shard import resolve_workers

        assert resolve_workers(1, CONFIG) == 1
        assert resolve_workers(4, CONFIG) == 4
        assert resolve_workers("8", CONFIG) == 8

    def test_auto_serial_on_single_cpu(self, monkeypatch):
        import os

        from repro.simnet import shard

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert shard.resolve_workers("auto", CONFIG) == 1

    def test_auto_serial_when_cpu_count_unknown(self, monkeypatch):
        import os

        from repro.simnet import shard

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert shard.resolve_workers("auto", CONFIG) == 1

    def test_auto_caps_at_cpu_count(self, monkeypatch):
        import os

        from repro.simnet import shard

        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        resolved = shard.resolve_workers("auto", CONFIG)
        assert resolved == min(3, len(plan_shards(CONFIG, 3)))

    def test_auto_caps_at_planned_shards(self, monkeypatch):
        import os

        from repro.simnet import shard

        monkeypatch.setattr(os, "cpu_count", lambda: 4096)
        resolved = shard.resolve_workers("auto", CONFIG)
        assert resolved == len(plan_shards(CONFIG, 4096))
        assert resolved >= 1
