"""Flight-template parity: template-spliced vs. freshly-built server flights.

The engine's ``_send_flight_inner`` has two arms — the shape-keyed flight
layout (fast) and the per-flight frame/packet rebuild (reference).  For
every server profile, driving identical client Initials through both arms
must yield byte-identical datagrams; the rng draw order is part of the
contract (one 256-bit draw per flight, before the packet numbers advance).
"""

import random

import pytest

from repro import hotpath
from repro.netstack.addr import parse_ip
from repro.quic.crypto.memo import clear_crypto_memos
from repro.server.engine import QuicServerEngine
from repro.server.profiles import (
    cloudflare_profile,
    facebook_profile,
    generic_profile,
    google_profile,
    quic_lb_profile,
)
from repro.simnet.eventloop import EventLoop
from repro.tls.certs import Certificate
from repro.workloads.clients import ClientConnection

VIP = parse_ip("157.240.1.10")
CLIENT = parse_ip("44.1.2.3")

CERT = Certificate(
    subject="*.example.com", subject_alt_names=("*.example.com", "*.example.net")
)

PROFILES = {
    "cloudflare": lambda: cloudflare_profile(colo_id=3),
    "facebook": lambda: facebook_profile(),
    "google": lambda: google_profile(),
    "quic_lb": lambda: quic_lb_profile(),
    "generic": lambda: generic_profile("generic-1234", random.Random(1234)),
}


@pytest.fixture(autouse=True)
def _hotpath_reset():
    clear_crypto_memos()
    hotpath.set_enabled(True)
    yield
    clear_crypto_memos()
    hotpath.set_enabled(True)


def _run_flights(profile_factory, certificate, enabled, clients=12):
    """Drive ``clients`` fresh handshakes through one engine arm."""
    hotpath.set_enabled(enabled)
    sent = []
    engine = QuicServerEngine(
        profile=profile_factory(),
        loop=EventLoop(),
        rng=random.Random(5),
        send=sent.append,
        host_id=7,
        worker_id=3,
        certificate=certificate,
    )
    version = engine.profile.supported_versions[0]
    client_rng = random.Random(77)
    for port in range(4242, 4242 + clients):
        connection = ClientConnection(
            rng=client_rng,
            src_ip=CLIENT,
            src_port=port,
            dst_ip=VIP,
            version=version,
        )
        engine.on_datagram(connection.initial_datagram(), 0.0)
    return [d.payload for d in sent]


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_flights_byte_identical_per_profile(name):
    factory = PROFILES[name]
    fast = _run_flights(factory, None, enabled=True)
    slow = _run_flights(factory, None, enabled=False)
    assert fast, "no flights were emitted"
    assert fast == slow


@pytest.mark.parametrize("name", ("cloudflare", "google"))
def test_flights_byte_identical_with_certificate(name):
    factory = PROFILES[name]
    fast = _run_flights(factory, CERT, enabled=True)
    slow = _run_flights(factory, CERT, enabled=False)
    assert fast == slow
    # The certificate actually changes the flight (it rides in the
    # Handshake CRYPTO stream), so parity above is not vacuous.
    assert fast != _run_flights(factory, None, enabled=True)


def test_retransmitted_flights_stay_identical():
    """The second flight of a connection reuses its bound layout."""

    def run(enabled):
        hotpath.set_enabled(enabled)
        sent = []
        engine = QuicServerEngine(
            profile=facebook_profile(),
            loop=EventLoop(),
            rng=random.Random(5),
            send=sent.append,
            host_id=7,
            worker_id=3,
        )
        connection = ClientConnection(
            rng=random.Random(77),
            src_ip=CLIENT,
            src_port=4242,
            dst_ip=VIP,
            version=engine.profile.supported_versions[0],
        )
        datagram = connection.initial_datagram()
        engine.on_datagram(datagram, 0.0)
        engine.on_datagram(datagram, 0.5)  # duplicate triggers a re-flight
        return [d.payload for d in sent]

    assert run(True) == run(False)


def test_layouts_shared_across_connections():
    """Same flight shape → one `_FlightLayout`, per-connection binds."""
    hotpath.set_enabled(True)
    sent = []
    engine = QuicServerEngine(
        profile=facebook_profile(),
        loop=EventLoop(),
        rng=random.Random(5),
        send=sent.append,
        host_id=7,
        worker_id=3,
    )
    version = engine.profile.supported_versions[0]
    client_rng = random.Random(77)
    for port in (4242, 4243, 4244):
        connection = ClientConnection(
            rng=client_rng,
            src_ip=CLIENT,
            src_port=port,
            dst_ip=VIP,
            version=version,
        )
        engine.on_datagram(connection.initial_datagram(), 0.0)
    assert len(engine._flight_layouts) == 1
    assert sent
