"""Maglev consistent hashing properties (Eisenbud et al. §3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.server.lb.maglev import MaglevTable, flow_key


def names(n):
    return [b"backend-%d" % i for i in range(n)]


class TestConstruction:
    def test_table_fully_populated(self):
        table = MaglevTable(names(7), table_size=101)
        distribution = table.load_distribution()
        assert sum(distribution) == 101
        assert all(count > 0 for count in distribution)

    def test_requires_prime_size(self):
        with pytest.raises(ValueError):
            MaglevTable(names(3), table_size=100)

    def test_requires_backends(self):
        with pytest.raises(ValueError):
            MaglevTable([])

    def test_more_backends_than_slots(self):
        with pytest.raises(ValueError):
            MaglevTable(names(200), table_size=101)

    def test_single_backend(self):
        table = MaglevTable(names(1), table_size=13)
        assert all(table.lookup(b"key%d" % i) == 0 for i in range(50))


class TestLoadBalance:
    def test_near_uniform_load(self):
        """The NSDI paper's property: slot counts within ~1% of each other
        for a well-sized table."""
        table = MaglevTable(names(10), table_size=1021)
        distribution = table.load_distribution()
        assert max(distribution) - min(distribution) <= max(distribution) * 0.25

    def test_keys_spread_over_backends(self):
        table = MaglevTable(names(8), table_size=1021)
        hits = set()
        for port in range(2000):
            hits.add(table.lookup(flow_key(0x0A000001, port, 0x0A000002, 443)))
        assert hits == set(range(8))


class TestConsistency:
    def test_deterministic(self):
        a = MaglevTable(names(6), table_size=251)
        b = MaglevTable(names(6), table_size=251)
        assert a.disruption(b) == 0.0

    def test_removal_disrupts_minimally(self):
        """Removing one backend must only remap ~1/N of the keyspace."""
        full = MaglevTable(names(10), table_size=1021)
        reduced = MaglevTable(names(9), table_size=1021)  # drop backend-9
        moved = 0
        total = 2000
        for port in range(total):
            key = flow_key(0x0A000001, port, 0x0A000002, 443)
            before = full.lookup(key)
            after = reduced.lookup(key)
            if before != 9 and before != after:
                moved += 1
        # An optimal consistent hash moves none of the surviving keys;
        # Maglev trades a small amount of disruption for balance.
        assert moved / total < 0.25

    def test_disruption_size_mismatch(self):
        with pytest.raises(ValueError):
            MaglevTable(names(3), table_size=101).disruption(
                MaglevTable(names(3), table_size=251)
            )


class TestFlowKey:
    def test_distinct_tuples_distinct_keys(self):
        a = flow_key(1, 2, 3, 4)
        b = flow_key(1, 2, 3, 5)
        assert a != b

    def test_key_is_stable(self):
        assert flow_key(1, 2, 3, 4) == flow_key(1, 2, 3, 4)


@settings(max_examples=20, deadline=None)
@given(
    backends=st.integers(min_value=1, max_value=24),
    key=st.binary(min_size=1, max_size=40),
)
def test_lookup_in_range(backends, key):
    table = MaglevTable(names(backends), table_size=251)
    assert 0 <= table.lookup(key) < backends
