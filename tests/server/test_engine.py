"""QUIC server engine: flights, retransmission, state discard, expiry."""

import random

import pytest

from repro.netstack.addr import parse_ip
from repro.netstack.udp import UdpDatagram
from repro.quic.cid import mvfst
from repro.quic.packet import PacketType, decode_datagram, parse_long_header
from repro.server.engine import ConnState, QuicServerEngine
from repro.server.profiles import (
    ServerProfile,
    cloudflare_profile,
    facebook_profile,
    google_profile,
)
from repro.simnet.eventloop import EventLoop
from repro.workloads.clients import ClientConnection

VIP = parse_ip("157.240.1.10")
CLIENT = parse_ip("44.1.2.3")


def make_engine(profile=None, host_id=7, worker_id=3, seed=1):
    loop = EventLoop()
    sent = []
    engine = QuicServerEngine(
        profile=profile or facebook_profile(),
        loop=loop,
        rng=random.Random(seed),
        send=sent.append,
        host_id=host_id,
        worker_id=worker_id,
    )
    return engine, loop, sent


def client_initial(rng=None, src_port=4242, version=None, dcid=None, scid=None):
    rng = rng or random.Random(99)
    profile_version = version or facebook_profile().supported_versions[0]
    connection = ClientConnection(
        rng=rng,
        src_ip=CLIENT,
        src_port=src_port,
        dst_ip=VIP,
        version=profile_version,
        dcid=dcid,
        scid=scid,
    )
    return connection, connection.initial_datagram()


class TestFlight:
    def test_initial_produces_two_datagrams_when_not_coalescing(self):
        engine, loop, sent = make_engine(facebook_profile())
        _conn, datagram = client_initial()
        engine.on_datagram(datagram, 0.0)
        assert len(sent) == 2
        first_types = [p.packet_type for p, _ in decode_datagram(sent[0].payload)]
        second_types = [p.packet_type for p, _ in decode_datagram(sent[1].payload)]
        assert first_types == [PacketType.INITIAL]
        assert second_types == [PacketType.HANDSHAKE]

    def test_flight_sizes_match_profile(self):
        profile = facebook_profile()
        engine, loop, sent = make_engine(profile)
        engine.on_datagram(client_initial()[1], 0.0)
        assert len(sent[0].payload) == profile.initial_datagram_size
        assert len(sent[1].payload) == profile.handshake_datagram_size

    def test_reply_source_is_vip(self):
        engine, loop, sent = make_engine()
        engine.on_datagram(client_initial()[1], 0.0)
        assert sent[0].src_ip == VIP
        assert sent[0].dst_ip == CLIENT
        assert sent[0].src_port == 443

    def test_scid_encodes_host_and_worker(self):
        engine, loop, sent = make_engine(host_id=4242, worker_id=9)
        engine.on_datagram(client_initial()[1], 0.0)
        parsed = parse_long_header(sent[0].payload)
        decoded = mvfst.decode(parsed.scid)
        assert decoded.host_id == 4242
        assert decoded.worker_id == 9

    def test_google_echoes_client_dcid(self):
        engine, loop, sent = make_engine(google_profile())
        conn, datagram = client_initial(version=1)
        engine.on_datagram(datagram, 0.0)
        parsed = parse_long_header(sent[0].payload)
        assert parsed.scid == conn.dcid[:8]

    def test_duplicate_initial_ignored(self):
        engine, loop, sent = make_engine()
        _conn, datagram = client_initial()
        engine.on_datagram(datagram, 0.0)
        engine.on_datagram(datagram, 0.1)
        assert engine.stats.connections_created == 1
        assert len(sent) == 2

    def test_non_quic_ignored(self):
        engine, loop, sent = make_engine()
        junk = UdpDatagram(
            src_ip=CLIENT, dst_ip=VIP, src_port=1, dst_port=443, payload=b"\x16\x03"
        )
        engine.on_datagram(junk, 0.0)
        assert sent == []
        assert engine.stats.non_quic_ignored == 1


class TestCoalescence:
    def test_google_mostly_coalesces(self):
        engine, loop, sent = make_engine(google_profile(), seed=5)
        rng = random.Random(0)
        for port in range(200):
            engine.on_datagram(
                client_initial(rng=rng, src_port=port + 1024, version=1)[1], 0.0
            )
        coalesced = sum(
            1 for d in sent if len(decode_datagram(d.payload)) == 2
        )
        single = len(sent) - coalesced
        # ~69% of flights coalesce -> coalesced datagrams outnumber pairs.
        assert coalesced > 100
        assert single < 200

    def test_facebook_never_coalesces(self):
        engine, loop, sent = make_engine(facebook_profile())
        rng = random.Random(0)
        for port in range(50):
            engine.on_datagram(client_initial(rng=rng, src_port=port + 1024)[1], 0.0)
        assert all(len(decode_datagram(d.payload)) == 1 for d in sent)


class TestRetransmission:
    def test_rto_schedule_exponential(self):
        profile = facebook_profile()
        engine, loop, sent = make_engine(profile)
        engine.on_datagram(client_initial()[1], 0.0)
        flights_before = len(sent)
        loop.run()
        # Flights: initial + max_retransmits, two datagrams each.
        max_retrans = list(engine._by_origin.values())[0].max_retransmits if engine._by_origin else None
        assert len(sent) % 2 == 0
        total_flights = len(sent) // 2
        assert 7 + 1 <= total_flights <= 9 + 1  # profile range 7-9 resends
        assert flights_before == 2

    def test_retransmission_timing(self):
        engine, loop, sent = make_engine(facebook_profile())
        engine.on_datagram(client_initial()[1], 0.0)
        times = []
        original_send = engine._send

        loop.run_until(0.4)
        assert len(sent) == 4  # first retransmission at 0.4 s
        loop.run_until(1.19)
        assert len(sent) == 4
        loop.run_until(1.3)
        assert len(sent) == 6  # second at 0.4 + 0.8 = 1.2 s

    def test_ack_cancels_retransmissions(self):
        engine, loop, sent = make_engine()
        conn, datagram = client_initial()
        engine.on_datagram(datagram, 0.0)
        # Client answers: same 5-tuple, same client CID, DCID = server SCID.
        server_scid = parse_long_header(sent[0].payload).scid
        _c2, confirm = client_initial(
            src_port=4242, dcid=server_scid, scid=conn.scid
        )
        engine.on_datagram(confirm, 0.05)
        loop.run()
        # Flight (2 datagrams) + the NEW_CONNECTION_ID 1-RTT packet; no
        # retransmissions.
        assert len(sent) == 3
        assert engine.stats.established == 1
        assert engine.stats.new_cids_issued == 1

    def test_max_retransmits_drawn_from_profile_range(self):
        lows = set()
        for seed in range(8):
            engine, _loop, _sent = make_engine(cloudflare_profile(), seed=seed)
            lows.add(engine._max_retransmits)
        assert lows <= set(range(3, 7))
        assert len(lows) > 1  # instances differ


class TestStateDiscard:
    """RFC 9000 §5.2 silent discard — the Appendix-D lever."""

    def setup_established(self):
        engine, loop, sent = make_engine()
        conn, datagram = client_initial(src_port=5000)
        engine.on_datagram(datagram, 0.0)
        server_scid = parse_long_header(sent[0].payload).scid
        _c, confirm = client_initial(src_port=5000, dcid=server_scid, scid=conn.scid)
        engine.on_datagram(confirm, 0.01)
        return engine, loop, sent, server_scid

    def test_inconsistent_initial_silently_discarded(self):
        engine, loop, sent, server_scid = self.setup_established()
        flights = len(sent)
        # Follow-up: different port, new client CID, same server CID.
        _c, followup = client_initial(src_port=6001, dcid=server_scid)
        engine.on_datagram(followup, 1.0)
        assert len(sent) == flights  # nothing sent back
        assert engine.stats.discarded_inconsistent == 1

    def test_state_expires_after_idle_timeout(self):
        engine, loop, sent, server_scid = self.setup_established()
        idle = engine.profile.idle_timeout
        _c, followup = client_initial(src_port=6001, dcid=server_scid)
        engine.on_datagram(followup, idle + 1.5)
        # Expired state: the follow-up starts a fresh connection.
        assert engine.stats.expired == 1
        assert engine.stats.connections_created == 2

    def test_awaiting_connection_also_discards(self):
        engine, loop, sent = make_engine()
        _conn, datagram = client_initial(src_port=5000)
        engine.on_datagram(datagram, 0.0)
        server_scid = parse_long_header(sent[0].payload).scid
        _c, followup = client_initial(src_port=6001, dcid=server_scid)
        engine.on_datagram(followup, 0.1)
        assert engine.stats.discarded_inconsistent == 1


class TestVersionNegotiation:
    def test_unsupported_version_triggers_vn(self):
        engine, loop, sent = make_engine()
        _conn, datagram = client_initial(version=0xFF00007F)
        engine.on_datagram(datagram, 0.0)
        assert len(sent) == 1
        parsed = parse_long_header(sent[0].payload)
        assert parsed.packet_type is PacketType.VERSION_NEGOTIATION
        assert set(parsed.supported_versions) == set(
            engine.profile.supported_versions
        )
        assert engine.stats.version_negotiations == 1


class TestRetry:
    def test_retry_probability_one_always_retries(self):
        profile = facebook_profile()
        profile.retry_probability = 1.0
        engine, loop, sent = make_engine(profile)
        engine.on_datagram(client_initial()[1], 0.0)
        parsed = parse_long_header(sent[0].payload)
        assert parsed.packet_type is PacketType.RETRY
        assert engine.stats.retries_sent == 1
        assert engine.stats.connections_created == 0


class TestProfiles:
    def test_rto_schedule_helper(self):
        profile = google_profile()
        schedule = profile.rto_schedule(3)
        assert schedule == pytest.approx([0.3, 0.9, 2.1])

    def test_paper_table1_values(self):
        assert cloudflare_profile().initial_rto == 1.0
        assert facebook_profile().initial_rto == 0.4
        assert google_profile().initial_rto == 0.3
        assert cloudflare_profile().max_retransmits == (3, 6)
        assert facebook_profile().max_retransmits == (7, 9)
        assert google_profile().max_retransmits == (3, 6)
        assert facebook_profile().coalesce_probability == 0.0
        assert google_profile().coalesce_probability > 0.5
