"""Engine 1-RTT paths: continuation, migration, rotation, resets."""

import random

import pytest

from repro.netstack.addr import parse_ip
from repro.netstack.udp import UdpDatagram
from repro.quic.packet import parse_long_header
from repro.server.engine import ConnState, QuicServerEngine
from repro.server.profiles import facebook_profile, google_profile, quic_lb_profile
from repro.simnet.eventloop import EventLoop
from repro.workloads.clients import ClientConnection

VIP = parse_ip("157.240.1.10")
CLIENT = parse_ip("198.51.100.7")


def establish(profile=None, seed=1):
    """Engine with one fully established connection; returns the pieces."""
    loop = EventLoop()
    sent = []
    engine = QuicServerEngine(
        profile=profile or facebook_profile(),
        loop=loop,
        rng=random.Random(seed),
        send=sent.append,
        host_id=9,
        worker_id=2,
    )
    connection = ClientConnection(
        rng=random.Random(99),
        src_ip=CLIENT,
        src_port=5000,
        dst_ip=VIP,
        version=engine.profile.supported_versions[0],
    )
    engine.on_datagram(connection.initial_datagram(), 0.0)
    for datagram in list(sent):
        reply = connection.on_datagram(datagram, 0.01)
        if reply is not None:
            engine.on_datagram(reply, 0.02)
    # Deliver everything sent since (incl. the NEW_CONNECTION_ID packet);
    # already-seen flight datagrams are ignored by the client.
    for datagram in list(sent):
        connection.on_datagram(datagram, 0.03)
    return engine, loop, sent, connection


class TestContinuation:
    def test_ping_from_same_path_ponged(self):
        engine, loop, sent, connection = establish()
        before = len(sent)
        probe = connection.migration_datagram(5000)  # same port: no migration
        engine.on_datagram(probe, 1.0)
        assert len(sent) == before + 1
        assert engine.stats.short_packets_received == 1
        assert engine.stats.migrations_accepted == 0

    def test_client_counts_pong(self):
        engine, loop, sent, connection = establish()
        probe = connection.migration_datagram(5000)
        engine.on_datagram(probe, 1.0)
        connection.on_datagram(sent[-1], 1.01)
        assert connection.result.pongs == 1


class TestMigration:
    def test_new_path_accepted_and_address_updated(self):
        engine, loop, sent, connection = establish()
        probe = connection.migration_datagram(6111)
        engine.on_datagram(probe, 1.0)
        assert engine.stats.migrations_accepted == 1
        conn = engine._by_scid[connection.result.server_scid]
        assert conn.client_port == 6111

    def test_rotated_cid_reaches_same_connection(self):
        engine, loop, sent, connection = establish()
        rotated = connection.result.new_connection_ids[0]
        probe = connection.migration_datagram(6222, dcid=rotated)
        engine.on_datagram(probe, 1.0)
        assert engine.stats.migrations_accepted == 1
        assert engine.stats.stateless_resets_sent == 0

    def test_quic_lb_rotated_cid_decodes_host(self):
        from repro.quic.cid import quic_lb

        engine, loop, sent, connection = establish(profile=quic_lb_profile())
        config = engine.profile.cid_scheme.config
        rotated = connection.result.new_connection_ids[0]
        server_id, _ = quic_lb.decode(config, rotated)
        assert server_id == engine.host_id


class TestResets:
    def test_unknown_cid_gets_stateless_reset(self):
        engine, loop, sent, connection = establish()
        before = len(sent)
        probe = connection.migration_datagram(6333, dcid=b"\x13" * 8)
        engine.on_datagram(probe, 1.0)
        assert engine.stats.stateless_resets_sent == 1
        reset = sent[before]
        # Looks like a short-header packet and ends with a 16-byte token.
        assert not reset.payload[0] & 0x80
        assert reset.payload[0] & 0x40
        assert len(reset.payload) >= 21

    def test_expired_connection_resets(self):
        engine, loop, sent, connection = establish()
        idle = engine.profile.idle_timeout
        probe = connection.migration_datagram(5000)
        engine.on_datagram(probe, idle + 5.0)
        assert engine.stats.expired == 1
        assert engine.stats.stateless_resets_sent == 1

    def test_garbled_short_packet_discarded_silently(self):
        engine, loop, sent, connection = establish()
        probe = connection.migration_datagram(5000)
        data = bytearray(probe.payload)
        data[-1] ^= 0xFF  # break the AEAD tag
        before = len(sent)
        engine.on_datagram(probe.with_payload(bytes(data)), 1.0)
        assert len(sent) == before
        assert engine.stats.discarded_inconsistent == 1


class TestRotationBookkeeping:
    def test_rotated_cid_removed_with_connection(self):
        engine, loop, sent, connection = establish()
        rotated = connection.result.new_connection_ids[0]
        assert rotated in engine._by_scid
        conn = engine._by_scid[connection.result.server_scid]
        engine._drop_connection(conn)
        assert rotated not in engine._by_scid
        assert connection.result.server_scid not in engine._by_scid

    def test_google_rotation_is_random_not_echo(self):
        engine, loop, sent, connection = establish(profile=google_profile())
        rotated = connection.result.new_connection_ids[0]
        assert rotated != connection.result.server_scid
        # Echoed SCID equals the client's original DCID prefix; the rotated
        # one must not (it cannot be derived from anything the LB sees).
        assert rotated != connection.dcid[:8]
