"""Frontend clusters: VIPs, ECMP, routing modes, direct server return."""

import random

import pytest

from repro.netstack.addr import Prefix, parse_ip
from repro.netstack.udp import UdpDatagram
from repro.quic.packet import parse_long_header
from repro.server.lb.cluster import FrontendCluster
from repro.server.lb.l4lb import L4LoadBalancer
from repro.server.lb.l7lb import L7LbHost
from repro.server.profiles import facebook_profile, google_profile
from repro.server.simple import SimpleQuicServer
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Network, PathModel
from repro.workloads.clients import ClientConnection

CLIENT = parse_ip("198.51.100.7")


def make_cluster(profile=None, hosts=8, vips=4):
    loop = EventLoop()
    net = Network(loop, random.Random(2), PathModel(jitter=0.0))
    cluster = FrontendCluster(
        name="test-pop",
        prefix="157.240.1.0/24",
        profile=profile or facebook_profile(),
        loop=loop,
        rng=random.Random(1),
        vip_count=vips,
        l7_host_count=hosts,
        host_id_base=100,
    )
    net.add_device(cluster)
    return cluster, loop, net


def initial_to(vip, src_port, version=1, dcid=None):
    connection = ClientConnection(
        rng=random.Random(src_port),
        src_ip=CLIENT,
        src_port=src_port,
        dst_ip=vip,
        version=version,
        dcid=dcid,
    )
    return connection.initial_datagram()


class TestClusterBasics:
    def test_vip_layout(self):
        cluster, _loop, _net = make_cluster(vips=4)
        assert [v & 0xFF for v in cluster.vips] == [1, 2, 3, 4]
        assert cluster.host_ids == list(range(100, 108))

    def test_non_vip_addresses_dropped(self):
        cluster, loop, _net = make_cluster(vips=2)
        datagram = initial_to(cluster.prefix.host(200), 4000)
        cluster.handle_datagram(datagram, 0.0)
        assert cluster.dropped_non_vip == 1
        assert cluster.total_connections() == 0

    def test_vip_accepts_and_creates_connection(self):
        cluster, loop, _net = make_cluster()
        cluster.handle_datagram(initial_to(cluster.vips[0], 4000), 0.0)
        assert cluster.total_connections() == 1

    def test_prefix_too_small_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            FrontendCluster(
                name="x",
                prefix="10.0.0.0/30",
                profile=facebook_profile(),
                loop=loop,
                rng=random.Random(1),
                vip_count=8,
                l7_host_count=2,
            )


class TestRouting:
    def test_5tuple_routing_spreads_over_hosts(self):
        cluster, loop, _net = make_cluster(hosts=8)
        vip = cluster.vips[0]
        for port in range(2000, 2400):
            cluster.handle_datagram(initial_to(vip, port), 0.0)
        hosts_hit = sum(1 for h in cluster.hosts if h.workers)
        assert hosts_hit == 8

    def test_5tuple_routing_is_stable_per_flow(self):
        cluster, loop, _net = make_cluster(hosts=8)
        vip = cluster.vips[0]
        datagram = initial_to(vip, 3333)
        l4 = cluster.l4lbs[0]
        dcid = l4.extract_dcid(datagram)
        key_a = l4.routing_key(datagram, dcid)
        key_b = l4.routing_key(datagram, dcid)
        assert key_a == key_b
        assert l4.maglev.lookup(key_a) == l4.maglev.lookup(key_b)

    def test_cid_routing_follows_dcid_not_port(self):
        cluster, loop, _net = make_cluster(google_profile(), hosts=8)
        vip = cluster.vips[0]
        dcid = bytes(range(8))
        a = initial_to(vip, 1111, dcid=dcid)
        b = initial_to(vip, 9999, dcid=dcid)
        l4 = cluster.l4lbs[0]
        assert l4.maglev.lookup(l4.routing_key(a, dcid)) == l4.maglev.lookup(
            l4.routing_key(b, dcid)
        )

    def test_all_l4lbs_share_the_maglev_view(self):
        cluster, _loop, _net = make_cluster(hosts=8)
        key = b"some-flow"
        picks = {l4.maglev.lookup(key) for l4 in cluster.l4lbs}
        assert len(picks) == 1

    def test_tunnel_stats_updated(self):
        cluster, loop, _net = make_cluster()
        cluster.handle_datagram(initial_to(cluster.vips[0], 4000), 0.0)
        assert sum(l4.stats.forwarded for l4 in cluster.l4lbs) == 1
        assert sum(l4.stats.tunnel_bytes for l4 in cluster.l4lbs) > 1200


class TestDirectServerReturn:
    def test_reply_comes_from_vip(self):
        cluster, loop, net = make_cluster()

        received = []

        class Client:
            pass

        from repro.simnet.network import Device

        class ClientDev(Device):
            def prefixes(self):
                return [Prefix(CLIENT, 32)]

            def handle_datagram(self, datagram, now):
                received.append(datagram)

        net.add_device(ClientDev("client"))
        vip = cluster.vips[1]
        cluster.handle_datagram(initial_to(vip, 7777), 0.0)
        loop.run_until(0.1)
        assert received
        assert all(d.src_ip == vip for d in received)


class TestWorkerState:
    """The paper: Facebook tracks connection state per host *and* worker."""

    def test_workers_materialized_lazily(self):
        cluster, _loop, _net = make_cluster(hosts=8)
        assert all(not h.workers for h in cluster.hosts)
        cluster.handle_datagram(initial_to(cluster.vips[0], 4000), 0.0)
        materialized = [len(h.workers) for h in cluster.hosts if h.workers]
        assert materialized == [1]

    def test_worker_selection_stable(self):
        host = L7LbHost(
            host_id=1,
            profile=facebook_profile(),
            loop=EventLoop(),
            rng=random.Random(1),
            send=lambda d: None,
        )
        datagram = initial_to(parse_ip("157.240.1.1"), 4000)
        a = host.select_worker_id(datagram, b"")
        b = host.select_worker_id(datagram, b"")
        assert a == b

    def test_engine_stats_aggregation(self):
        cluster, _loop, _net = make_cluster()
        cluster.handle_datagram(initial_to(cluster.vips[0], 4000), 0.0)
        stats = cluster.engine_stats()
        assert stats["connections_created"] == 1
        assert stats["flights_sent"] == 1


class TestSimpleServer:
    def test_answers_on_its_address(self):
        loop = EventLoop()
        net = Network(loop, random.Random(3), PathModel(jitter=0.0))
        address = parse_ip("87.128.1.99")
        server = SimpleQuicServer(
            name="cache",
            address=address,
            profile=facebook_profile(),
            loop=loop,
            rng=random.Random(1),
            host_id=5,
        )
        net.add_device(server)
        server.handle_datagram(initial_to(address, 4000), 0.0)
        assert server.host.total_connections() == 1

    def test_host_id_in_scids(self):
        loop = EventLoop()
        sent = []
        address = parse_ip("87.128.1.99")
        server = SimpleQuicServer(
            name="cache",
            address=address,
            profile=facebook_profile(),
            loop=loop,
            rng=random.Random(1),
            host_id=5,
        )
        server.host._send = sent.append  # bypass network
        server.handle_datagram(initial_to(address, 4001), 0.0)
        from repro.quic.cid import mvfst

        parsed = parse_long_header(sent[0].payload)
        assert mvfst.decode(parsed.scid).host_id == 5
