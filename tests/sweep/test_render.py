"""Pivoting and terminal rendering, on synthetic results documents."""

import json

import pytest

from repro.sweep.render import (
    SHADES,
    RenderError,
    _shade,
    heatmap_csv,
    load_manifest,
    load_results,
    pivot,
    render_heatmap,
    render_status,
)


def toy_results():
    cells = []
    for a in (1, 2):
        for b in (0.1, 0.2):
            for c in ("x", "y"):
                cells.append(
                    {
                        "coords": [["a", a], ["b", b], ["c", c]],
                        "cell_id": "%d%s%s" % (a, b, c),
                        "values": {"m": float(a * 10 + (b * 100) + (1 if c == "y" else 0))},
                    }
                )
    return {
        "spec": "toy",
        "axes": {"a": [1, 2], "b": [0.1, 0.2], "c": ["x", "y"]},
        "metrics": ["m"],
        "cells": cells,
    }


class TestPivot:
    def test_fixed_third_axis(self):
        x_values, y_values, grid, averaged = pivot(
            toy_results(), "m", "b", "a", fixed={"c": "x"}
        )
        assert x_values == ["0.1", "0.2"]
        assert y_values == ["1", "2"]
        assert averaged == []
        assert grid[("1", "0.1")] == 20.0
        assert grid[("2", "0.2")] == 40.0

    def test_unfixed_axis_is_mean_aggregated(self):
        _x, _y, grid, averaged = pivot(toy_results(), "m", "b", "a")
        assert averaged == ["c"]
        assert grid[("1", "0.1")] == 20.5  # mean of c=x (20) and c=y (21)

    def test_unknown_axis(self):
        with pytest.raises(RenderError, match="unknown axis 'z'"):
            pivot(toy_results(), "m", "z", "a")

    def test_same_axis_twice(self):
        with pytest.raises(RenderError, match="different axes"):
            pivot(toy_results(), "m", "a", "a")

    def test_unknown_metric(self):
        with pytest.raises(RenderError, match="was not recorded"):
            pivot(toy_results(), "nope", "b", "a")

    def test_fix_unknown_axis(self):
        with pytest.raises(RenderError, match="cannot fix unknown axis"):
            pivot(toy_results(), "m", "b", "a", fixed={"z": "1"})

    def test_fix_unknown_value(self):
        with pytest.raises(RenderError, match="has no value"):
            pivot(toy_results(), "m", "b", "a", fixed={"c": "zz"})


class TestShade:
    def test_extremes(self):
        assert _shade(0.0, 0.0, 1.0) == SHADES[0]
        assert _shade(1.0, 0.0, 1.0) == SHADES[-1]

    def test_flat_grid(self):
        assert _shade(5.0, 5.0, 5.0) == SHADES[-1]


class TestRenderHeatmap:
    def test_contains_axes_and_values(self):
        out = render_heatmap(toy_results(), "m", "b", "a", fixed={"c": "x"})
        assert "a \\ b" in out
        assert "toy — m by a (y) x b (x), c=x" in out
        assert "20" in out and "40" in out
        assert SHADES[0] in out and SHADES[-1] in out

    def test_averaged_note(self):
        out = render_heatmap(toy_results(), "m", "b", "a")
        assert "mean over unfixed axes: c" in out
        assert "--fix" in out

    def test_no_note_when_fixed(self):
        out = render_heatmap(toy_results(), "m", "b", "a", fixed={"c": "y"})
        assert "mean over" not in out


class TestHeatmapCsv:
    def test_pivoted_csv(self):
        out = heatmap_csv(toy_results(), "m", "b", "a", fixed={"c": "x"})
        lines = out.splitlines()
        assert lines[0] == "a\\b,0.1,0.2"
        assert lines[1] == "1,20.0,30.0"
        assert lines[2] == "2,30.0,40.0"


class TestLoaders:
    def test_missing_results(self, tmp_path):
        with pytest.raises(RenderError, match="no results.json"):
            load_results(str(tmp_path))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(RenderError, match="no manifest.json"):
            load_manifest(str(tmp_path))

    def test_invalid_results(self, tmp_path):
        (tmp_path / "results.json").write_text("{bad")
        with pytest.raises(RenderError, match="invalid results.json"):
            load_results(str(tmp_path))


class TestRenderStatus:
    def test_manifest_table(self, tmp_path):
        manifest = {
            "spec": {"name": "toy"},
            "workers": 1,
            "cells": [
                {
                    "index": 0,
                    "label": "loss_rate=0.0",
                    "status": "simulated",
                    "records": 120,
                    "wall_seconds": 0.5,
                    "error": "",
                },
                {
                    "index": 1,
                    "label": "loss_rate=0.2",
                    "status": "failed",
                    "records": 0,
                    "wall_seconds": 0.1,
                    "error": "ValueError: boom",
                },
            ],
            "totals": {
                "cells": 2,
                "simulated": 1,
                "cached": 0,
                "failed": 1,
                "pending": 0,
            },
        }
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        out = render_status(str(tmp_path))
        assert "Sweep toy: 2 cells (1 simulated, 0 cached, 1 failed, 0 pending)" in out
        assert "loss_rate=0.2" in out
        assert "ValueError: boom" in out
