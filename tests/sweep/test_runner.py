"""The sweep determinism contract: caching, byte-identical results, pools.

The micro 2x2 grid from ``conftest.MICRO`` simulates in well under a
second total, so every test here runs the real pipeline — simulate,
capture, ``.capidx`` index, evaluate — rather than mocks.
"""

import copy
import json
import os
import shutil
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.obs import MetricsRegistry, Observability
from repro.obs.progress import read_heartbeats, resolve_progress_dir
from repro.sweep import SweepRunError, run_sweep, spec_from_dict
from tests.sweep.conftest import MICRO

DOC = {
    "name": "micro",
    "base": dict(MICRO),
    "axes": {
        "loss_rate": [0.0, 0.2],
        "attack_scale": [0.5, 1.0],
    },
    "metrics": ["rows.total", "removed_share", "counter:net.dropped"],
}


def make_spec(doc=None):
    return spec_from_dict(copy.deepcopy(doc or DOC))


def run(outdir, doc=None, **kwargs):
    registry = MetricsRegistry()
    result = run_sweep(
        make_spec(doc), str(outdir), obs=Observability(metrics=registry), **kwargs
    )
    return result, registry


def cache_counts(registry):
    """The ``capstore.cache`` counter as {result: count} ints."""
    body = registry.snapshot()["counters"].get("capstore.cache", {})
    return {key: int(value) for key, value in body.get("values", {}).items()}


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    outdir = str(tmp_path_factory.mktemp("runner") / "grid")
    result, registry = run(outdir)
    return SimpleNamespace(
        outdir=outdir,
        result=result,
        registry=registry,
        csv_bytes=Path(result.csv_path).read_bytes(),
    )


class TestColdRun:
    def test_all_cells_simulated(self, cold):
        assert len(cold.result.outcomes) == 4
        assert cold.result.simulated == 4
        assert cold.result.cached == 0
        assert all(o.records > 0 for o in cold.result.outcomes)

    def test_layout_on_disk(self, cold):
        out = Path(cold.outdir)
        assert (out / "manifest.json").exists()
        assert (out / "results.csv").exists()
        assert (out / "results.json").exists()
        for cell in cold.result.cells:
            celldir = out / "cells" / cell.cell_id
            assert (celldir / "capture.pcap").exists()
            assert (celldir / "capture.pcap.capidx").exists()
            assert (celldir / "cell.json").exists()
            assert (celldir / "sim_metrics.json").exists()

    def test_manifest_totals(self, cold):
        manifest = json.loads(Path(cold.outdir, "manifest.json").read_text())
        assert manifest["totals"] == {
            "cells": 4,
            "simulated": 4,
            "cached": 0,
            "failed": 0,
            "pending": 0,
        }
        assert manifest["spec"]["name"] == "micro"

    def test_csv_shape(self, cold):
        lines = cold.csv_bytes.decode().splitlines()
        assert lines[0] == "loss_rate,attack_scale,metric,value"
        assert len(lines) == 1 + 4 * 3  # header + cells x metrics

    def test_loss_axis_changes_behaviour(self, cold):
        """The swept knob must actually reach the simulation."""
        results = json.loads(Path(cold.outdir, "results.json").read_text())
        captured = {
            dict(map(tuple, c["coords"]))["loss_rate"]: c["values"]["rows.total"]
            for c in results["cells"]
            if dict(map(tuple, c["coords"]))["attack_scale"] == 1.0
        }
        # 20% random loss starves the telescope of a visible chunk of rows.
        assert captured[0.2] < captured[0.0]

    def test_observability_merged_into_parent(self, cold):
        snapshot = cold.registry.snapshot()
        assert "sweep.simulate" in snapshot["timers"]
        states = snapshot["gauges"]["sweep.cells"]["values"]
        assert states["total"] == 4.0
        assert states["done"] == 4.0
        assert states["simulated"] == 4.0
        assert snapshot["gauges"]["sweep.wall_seconds"]["values"][""] > 0.0

    def test_final_heartbeats_written(self, cold):
        progress = os.path.join(cold.outdir, "progress")
        assert len(read_heartbeats(progress)) == 4
        # `repro progress <outdir>` descends into the progress/ subdir.
        assert resolve_progress_dir(cold.outdir) == progress


class TestDeterminism:
    def test_warm_rerun_is_cached_and_byte_identical(self, cold):
        json_before = Path(cold.outdir, "results.json").read_bytes()
        result, registry = run(cold.outdir)
        assert result.cached == 4
        assert result.simulated == 0
        assert Path(result.csv_path).read_bytes() == cold.csv_bytes
        assert Path(cold.outdir, "results.json").read_bytes() == json_before
        # Every cell's evaluation came off the .capidx sidecar.
        assert cache_counts(registry) == {"hit": 4}

    def test_workers_commute_with_serial(self, cold, tmp_path):
        result, _registry = run(tmp_path / "pooled", workers=2)
        assert result.simulated == 4
        assert Path(result.csv_path).read_bytes() == cold.csv_bytes

    def test_one_axis_extension_simulates_only_new_cells(self, cold, tmp_path):
        outdir = tmp_path / "extended"
        shutil.copytree(cold.outdir, outdir)
        doc = copy.deepcopy(DOC)
        doc["axes"]["loss_rate"] = [0.0, 0.2, 0.5]  # one new value
        result, registry = run(outdir, doc=doc)
        assert len(result.outcomes) == 6
        assert result.cached == 4  # the original grid, untouched
        assert result.simulated == 2  # only loss_rate=0.5 cells
        counts = cache_counts(registry)
        assert counts["hit"] == 4
        assert counts.get("miss", 0) == 2
        simulated_labels = {
            cell.label
            for cell, outcome in zip(result.cells, result.outcomes)
            if outcome.status == "simulated"
        }
        assert simulated_labels == {
            "loss_rate=0.5,attack_scale=0.5",
            "loss_rate=0.5,attack_scale=1.0",
        }

    def test_force_resimulates(self, cold, tmp_path):
        outdir = tmp_path / "forced"
        shutil.copytree(cold.outdir, outdir)
        result, _registry = run(outdir, force=True)
        assert result.simulated == 4
        assert result.cached == 0
        assert Path(result.csv_path).read_bytes() == cold.csv_bytes


class TestFailure:
    SINGLE = {
        "name": "one",
        "base": dict(MICRO),
        "axes": {"loss_rate": [0.0]},
        "metrics": ["rows.total"],
    }

    def test_failed_cell_lands_in_manifest(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_mod

        def boom(*_args, **_kwargs):
            raise ValueError("scenario exploded")

        monkeypatch.setattr(runner_mod, "run_to_pcap", boom)
        with pytest.raises(SweepRunError, match="1 of 1 cells failed"):
            run(tmp_path / "broken", doc=self.SINGLE)
        manifest = json.loads((tmp_path / "broken" / "manifest.json").read_text())
        assert manifest["cells"][0]["status"] == "failed"
        assert "scenario exploded" in manifest["cells"][0]["error"]
        # No deterministic results may exist for a partial sweep.
        assert not (tmp_path / "broken" / "results.csv").exists()

    def test_sibling_cells_still_run(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_mod

        real = runner_mod.run_to_pcap

        def flaky(config, *args, **kwargs):
            if config.loss_rate > 0.1:
                raise ValueError("boom")
            return real(config, *args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_to_pcap", flaky)
        with pytest.raises(SweepRunError):
            run(tmp_path / "half", doc=DOC)
        manifest = json.loads((tmp_path / "half" / "manifest.json").read_text())
        statuses = [c["status"] for c in manifest["cells"]]
        assert statuses.count("failed") == 2
        assert statuses.count("simulated") == 2
