"""Metric-name grammar and registry-snapshot resolution."""

import pytest

from repro.sweep.metrics import _from_snapshot, validate_metric


class TestValidateMetric:
    @pytest.mark.parametrize(
        "name",
        [
            "rows.total",
            "rows.backscatter",
            "rows.scans",
            "records.total",
            "removed_share",
            "offnet.servers",
            "offnet.low_host_id",
            "version_share.clients.QUICv1",
            "version_share.servers.others",
            "packet_share.Facebook.Initial",
            "scid_unique.Cloudflare",
            "counter:net.dropped",
            "counter:capstore.cache|hit",
            "gauge:sim.anything",
            "timer:simulate.run",
        ],
    )
    def test_accepts(self, name):
        validate_metric(name)

    @pytest.mark.parametrize(
        ("name", "match"),
        [
            ("", "non-empty"),
            (None, "non-empty"),
            ("counter:", "names no registry metric"),
            ("version_share.QUICv1", "version_share"),
            ("version_share.clients.bogus", "bucket one of"),
            ("packet_share.Akamai.Initial", "origin one of"),
            ("scid_unique.everything", "scid_unique"),
            ("rows.bogus", "unknown metric"),
        ],
    )
    def test_rejects(self, name, match):
        with pytest.raises(ValueError, match=match):
            validate_metric(name)


class TestFromSnapshot:
    SNAPSHOT = {
        "counters": {
            "net.dropped": {
                "label_names": ["reason"],
                "values": {"loss": 3.0, "queue": 2.0},
            },
            "sim.events": {"label_names": [], "values": {"": 10.0}},
        },
        "gauges": {"depth": {"label_names": [], "values": {"": 7.0}}},
        "timers": {"simulate.run": {"seconds": 1.5, "calls": 1}},
    }

    def test_counter_sums_labels(self):
        assert _from_snapshot("counter:net.dropped", self.SNAPSHOT) == 5.0

    def test_counter_single_label_key(self):
        assert _from_snapshot("counter:net.dropped|loss", self.SNAPSHOT) == 3.0

    def test_unlabelled_counter(self):
        assert _from_snapshot("counter:sim.events", self.SNAPSHOT) == 10.0

    def test_gauge(self):
        assert _from_snapshot("gauge:depth", self.SNAPSHOT) == 7.0

    def test_timer(self):
        assert _from_snapshot("timer:simulate.run", self.SNAPSHOT) == 1.5

    def test_missing_is_zero(self):
        assert _from_snapshot("counter:never.seen", self.SNAPSHOT) == 0.0
        assert _from_snapshot("timer:never.seen", self.SNAPSHOT) == 0.0
        assert _from_snapshot("counter:never.seen", {}) == 0.0
