"""Spec parsing, grid expansion, and cell-identity guarantees."""

import json
import sys

import pytest

from repro.sweep.spec import (
    SweepSpec,
    SweepSpecError,
    cell_fingerprint,
    format_value,
    load_spec,
    spec_from_dict,
)
from repro.workloads.scenario import ScenarioConfig


class TestValidation:
    def test_unknown_axis_knob(self):
        with pytest.raises(SweepSpecError, match="unknown knob 'bogus'"):
            SweepSpec(name="x", axes={"bogus": [1, 2]})

    def test_unknown_base_knob(self):
        with pytest.raises(SweepSpecError, match="in base"):
            SweepSpec(name="x", axes={"seed": [1]}, base={"nope": 3})

    def test_empty_axis(self):
        with pytest.raises(SweepSpecError, match="non-empty list"):
            SweepSpec(name="x", axes={"loss_rate": []})

    def test_duplicate_axis_values(self):
        with pytest.raises(SweepSpecError, match="duplicate values"):
            SweepSpec(name="x", axes={"loss_rate": [0.1, 0.1]})

    def test_bad_seed_mode(self):
        with pytest.raises(SweepSpecError, match="seed_mode"):
            SweepSpec(name="x", axes={"seed": [1]}, seed_mode="random")

    def test_bad_metric(self):
        with pytest.raises(SweepSpecError, match="unknown metric"):
            SweepSpec(name="x", axes={"seed": [1]}, metrics=("no.such",))

    def test_empty_metrics(self):
        with pytest.raises(SweepSpecError, match="at least one metric"):
            SweepSpec(name="x", axes={"seed": [1]}, metrics=())

    def test_unknown_spec_keys(self):
        with pytest.raises(SweepSpecError, match="unknown spec keys: extra"):
            spec_from_dict({"axes": {"seed": [1]}, "extra": 1})

    def test_missing_axes(self):
        with pytest.raises(SweepSpecError, match="'axes'"):
            spec_from_dict({"name": "x"})


class TestExpansion:
    def test_last_axis_fastest(self):
        spec = SweepSpec(
            name="x", axes={"loss_rate": [0.0, 0.1], "seed": [1, 2, 3]}
        )
        cells = spec.cells()
        assert len(cells) == 6
        assert [c.coords for c in cells[:3]] == [
            (("loss_rate", 0.0), ("seed", 1)),
            (("loss_rate", 0.0), ("seed", 2)),
            (("loss_rate", 0.0), ("seed", 3)),
        ]
        assert cells[3].coords[0] == ("loss_rate", 0.1)
        assert [c.index for c in cells] == list(range(6))

    def test_label(self):
        spec = SweepSpec(name="x", axes={"loss_rate": [0.05]})
        assert spec.cells()[0].label == "loss_rate=0.05"

    def test_base_applies_to_every_cell(self):
        spec = SweepSpec(
            name="x", axes={"loss_rate": [0.0, 0.1]}, base={"noise_packets": 7}
        )
        assert all(c.config.noise_packets == 7 for c in spec.cells())

    def test_axis_overrides_base(self):
        spec = SweepSpec(
            name="x", axes={"loss_rate": [0.3]}, base={"loss_rate": 0.1}
        )
        assert spec.cells()[0].config.loss_rate == 0.3


class TestVirtualKnobs:
    def test_scale_matches_scaled(self):
        spec = SweepSpec(name="x", axes={"scale": [0.25]}, seed_mode="shared")
        expected = ScenarioConfig().scaled(0.25)
        assert spec.cells()[0].config == expected

    def test_attack_scale_only_touches_attacks(self):
        spec = SweepSpec(name="x", axes={"attack_scale": [2.0]}, seed_mode="shared")
        config = spec.cells()[0].config
        default = ScenarioConfig()
        assert config.attacks_facebook == default.attacks_facebook * 2
        assert config.attacks_google == default.attacks_google * 2
        assert config.research_scan_packets == default.research_scan_packets

    def test_attack_scale_keeps_cloudflare_alive(self):
        spec = SweepSpec(
            name="x",
            axes={"attack_scale": [0.001]},
            base={"attacks_cloudflare": 2},
        )
        assert spec.cells()[0].config.attacks_cloudflare == 1


class TestSeeds:
    def test_derived_seeds_differ_per_cell(self):
        spec = SweepSpec(name="x", axes={"loss_rate": [0.0, 0.1, 0.2]})
        seeds = {c.config.seed for c in spec.cells()}
        assert len(seeds) == 3

    def test_derived_seed_ignores_axis_order(self):
        a = SweepSpec(name="x", axes={"loss_rate": [0.1], "jitter": [0.02]})
        b = SweepSpec(name="x", axes={"jitter": [0.02], "loss_rate": [0.1]})
        assert a.cells()[0].config.seed == b.cells()[0].config.seed
        assert a.cells()[0].cell_id == b.cells()[0].cell_id

    def test_shared_seed_mode(self):
        spec = SweepSpec(
            name="x",
            axes={"loss_rate": [0.0, 0.1]},
            base={"seed": 99},
            seed_mode="shared",
        )
        assert [c.config.seed for c in spec.cells()] == [99, 99]


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert cell_fingerprint(ScenarioConfig()) == cell_fingerprint(
            ScenarioConfig()
        )

    def test_sensitive_to_any_field(self):
        assert cell_fingerprint(ScenarioConfig()) != cell_fingerprint(
            ScenarioConfig(seed=123456)
        )

    def test_survives_spec_rename_and_metric_change(self):
        a = SweepSpec(name="a", axes={"loss_rate": [0.1]})
        b = SweepSpec(
            name="b", axes={"loss_rate": [0.1]}, metrics=("rows.total",)
        )
        assert a.cells()[0].cell_id == b.cells()[0].cell_id


class TestFormatValue:
    def test_float_repr(self):
        assert format_value(0.1) == "0.1"
        assert format_value(1.0) == "1.0"

    def test_non_floats(self):
        assert format_value(3) == "3"
        assert format_value("abc") == "abc"


class TestLoadSpec:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"axes": {"loss_rate": [0.0, 0.1]}}))
        spec = load_spec(str(path))
        assert spec.name == "grid"  # default from the filename
        assert len(spec.cells()) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(SweepSpecError, match="cannot read spec"):
            load_spec(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SweepSpecError, match="invalid JSON"):
            load_spec(str(path))

    def test_toml(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text('[axes]\nloss_rate = [0.0, 0.1]\n')
        if sys.version_info >= (3, 11):
            assert len(load_spec(str(path)).cells()) == 2
        else:
            with pytest.raises(SweepSpecError, match="TOML specs need"):
                load_spec(str(path))
