"""``repro sweep run/status/render``, exercised through main()."""

import copy
import json
import os

import pytest

from repro.cli import main
from tests.sweep.conftest import MICRO

DOC = {
    "name": "cli-grid",
    "base": dict(MICRO),
    "axes": {"loss_rate": [0.0, 0.2], "attack_scale": [0.5, 1.0]},
    "metrics": ["rows.total", "removed_share"],
}


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("sweep_cli")
    spec_path = root / "grid.json"
    spec_path.write_text(json.dumps(DOC))
    outdir = str(root / "grid.sweep")
    assert main(["sweep", "run", str(spec_path), "--out", outdir]) == 0
    return outdir


class TestRun:
    def test_reports_plan_and_cells(self, sweep_dir, capsys, tmp_path):
        spec_path = tmp_path / "again.json"
        spec_path.write_text(json.dumps(DOC))
        assert (
            main(["sweep", "run", str(spec_path), "--out", sweep_dir]) == 0
        )
        out = capsys.readouterr().out
        assert "Sweep cli-grid: 4 cells (loss_rate[2] x attack_scale[2])" in out
        assert out.count("cached") >= 4  # warm second run, per-cell lines
        assert "Swept 4 cells (0 simulated, 4 cached)" in out

    def test_quiet_suppresses_cell_lines(self, sweep_dir, capsys, tmp_path):
        spec_path = tmp_path / "q.json"
        spec_path.write_text(json.dumps(DOC))
        assert (
            main(["sweep", "run", str(spec_path), "--out", sweep_dir, "--quiet"])
            == 0
        )
        out = capsys.readouterr().out
        assert not [line for line in out.splitlines() if line.startswith("  [")]

    def test_default_outdir_next_to_spec(self, tmp_path, capsys):
        doc = copy.deepcopy(DOC)
        doc["axes"] = {"loss_rate": [0.0], "attack_scale": [1.0]}
        spec_path = tmp_path / "solo.json"
        spec_path.write_text(json.dumps(doc))
        assert main(["sweep", "run", str(spec_path)]) == 0
        assert (tmp_path / "solo.sweep" / "results.csv").exists()

    def test_bad_spec_exits(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"axes": {"bogus": [1]}}))
        with pytest.raises(SystemExit, match="unknown knob"):
            main(["sweep", "run", str(spec_path)])


class TestStatus:
    def test_table(self, sweep_dir, capsys):
        assert main(["sweep", "status", sweep_dir]) == 0
        out = capsys.readouterr().out
        assert "Sweep cli-grid: 4 cells" in out
        assert "loss_rate=0.2,attack_scale=1.0" in out

    def test_missing_dir_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no manifest.json"):
            main(["sweep", "status", str(tmp_path)])

    def test_progress_resolves_into_sweep_dir(self, sweep_dir, capsys):
        assert main(["progress", sweep_dir]) == 0
        out = capsys.readouterr().out
        assert "worker" in out.lower()


class TestRender:
    def test_default_axes_and_metric(self, sweep_dir, capsys):
        assert main(["sweep", "render", sweep_dir]) == 0
        out = capsys.readouterr().out
        # Defaults: first metric, last axis on x, first other axis on y.
        assert "rows.total by loss_rate (y) x attack_scale (x)" in out
        assert "loss_rate \\ attack_scale" in out

    def test_explicit_axes_and_csv(self, sweep_dir, capsys, tmp_path):
        csv_path = str(tmp_path / "pivot.csv")
        assert (
            main(
                [
                    "sweep",
                    "render",
                    sweep_dir,
                    "--metric",
                    "removed_share",
                    "--x",
                    "loss_rate",
                    "--y",
                    "attack_scale",
                    "--csv",
                    csv_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "removed_share by attack_scale (y) x loss_rate (x)" in out
        with open(csv_path) as fileobj:
            assert fileobj.readline().strip() == "attack_scale\\loss_rate,0.0,0.2"

    def test_fix_pin(self, sweep_dir, capsys):
        assert (
            main(
                ["sweep", "render", sweep_dir, "--fix", "loss_rate=0.0", "--x",
                 "attack_scale", "--y", "loss_rate"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "loss_rate=0.0" in out

    def test_bad_fix_exits(self, sweep_dir):
        with pytest.raises(SystemExit, match="--fix wants axis=value"):
            main(["sweep", "render", sweep_dir, "--fix", "loss_rate"])

    def test_unknown_metric_exits(self, sweep_dir):
        with pytest.raises(SystemExit, match="was not recorded"):
            main(["sweep", "render", sweep_dir, "--metric", "rows.scans"])
