"""Shared fixtures for the sweep plane tests.

``MICRO`` shrinks every traffic volume far below the default scenario so
one cell simulates in ~0.1 s; grid tests stay interactive while still
exercising the full simulate → capture → index → evaluate pipeline.
"""

import pytest

#: ScenarioConfig overrides for sub-second cells (used as a spec ``base``).
MICRO = {
    "research_scan_packets": 60,
    "unknown_scan_packets": 30,
    "noise_packets": 20,
    "zero_rtt_scan_packets": 6,
    "attacks_facebook": 16,
    "attacks_google": 20,
    "attacks_cloudflare": 2,
    "attacks_offnet": 6,
    "attacks_remaining": 6,
    "remaining_servers": 12,
    "facebook_offnets": 4,
}


@pytest.fixture
def micro_base():
    return dict(MICRO)


@pytest.fixture
def micro_spec_doc(micro_base):
    """A 2x2 grid document, ready for ``spec_from_dict`` or JSON dumping."""
    return {
        "name": "micro",
        "base": micro_base,
        "axes": {
            "loss_rate": [0.0, 0.2],
            "attack_scale": [0.5, 1.0],
        },
        "metrics": ["rows.total", "removed_share", "counter:net.dropped"],
    }
