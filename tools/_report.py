"""Shared finding/exit-code helper for the ``tools/`` checkers.

Every checker in this directory (``check_md_links.py``,
``check_doc_commands.py``, ``check_speedscope.py``) reports the same
way: problems to stderr, a one-line all-clear to stdout, exit status =
problem count.  This module centralizes that contract and adds a
``--json`` mode whose document shape matches the ``repro lint``
reporter (:mod:`repro.lint.report`), so CI and editors can consume
every correctness gate with one parser::

    {
      "tool": "check-md-links",
      "checked": 6,                 # units examined (documents, files…)
      "findings": [ {"path", "line", "message"}, ... ],
      "ok": false
    }

Checkers keep their existing ``"path:line: message"`` strings — the
:meth:`Report.add_text` parser lifts the location back out for the JSON
document — so their importable ``check_file`` APIs are unchanged.
"""

from __future__ import annotations

import json
import re
import sys
from typing import List, Optional

#: ``path:line: message`` — the location prefix the checkers emit.
_LOCATED = re.compile(r"^(?P<path>[^:\n]+):(?P<line>\d+): (?P<message>.*)$", re.S)


class Report:
    """Findings accumulator with text and JSON rendering."""

    def __init__(self, tool: str) -> None:
        self.tool = tool
        self.findings: List[dict] = []
        self.checked = 0

    def add(
        self,
        message: str,
        path: Optional[str] = None,
        line: Optional[int] = None,
    ) -> None:
        finding = {"message": message}
        if path is not None:
            finding["path"] = path
        if line is not None:
            finding["line"] = line
        self.findings.append(finding)

    def add_text(self, error: str) -> None:
        """Add a preformatted ``path:line: message`` (or bare) string."""
        match = _LOCATED.match(error)
        if match:
            self.add(
                match.group("message"),
                path=match.group("path"),
                line=int(match.group("line")),
            )
        else:
            self.add(error)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render_finding(self, finding: dict) -> str:
        if "path" in finding and "line" in finding:
            return "%s:%d: %s" % (
                finding["path"],
                finding["line"],
                finding["message"],
            )
        if "path" in finding:
            return "%s: %s" % (finding["path"], finding["message"])
        return finding["message"]

    def emit(self, ok_text: str, json_mode: bool = False) -> int:
        """Print the report; returns the finding count (the exit code)."""
        if json_mode:
            doc = {
                "tool": self.tool,
                "checked": self.checked,
                "findings": self.findings,
                "ok": self.ok,
            }
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            for finding in self.findings:
                print(self.render_finding(finding), file=sys.stderr)
            if self.ok:
                print(ok_text)
        return len(self.findings)


def split_json_flag(argv: List[str]) -> tuple:
    """Pop ``--json`` out of an argv list: ``(json_mode, rest)``."""
    rest = [arg for arg in argv if arg != "--json"]
    return len(rest) != len(argv), rest
