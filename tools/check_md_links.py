#!/usr/bin/env python
"""Fail on broken intra-repo links in the top-level markdown docs.

The docs layer (README.md, ARCHITECTURE.md, EXPERIMENTS.md, ROADMAP.md,
DESIGN.md) cross-references files and anchors; a rename silently rots
them.  This checker walks every markdown link and validates the ones we
can validate offline:

* relative file links (``[text](DESIGN.md)``, ``(src/repro/cli.py)``)
  must point at an existing file or directory inside the repo;
* intra-document and cross-document anchors (``(#layer-diagram)``,
  ``(ARCHITECTURE.md#module-index)``) must match a heading in the
  target file, using GitHub's anchor-slug rules (lowercase, spaces to
  hyphens, punctuation stripped);
* external links (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must not depend on the network.

Exit status is the number of broken links (0 = docs are clean), so the
CI lint job can simply run ``python tools/check_md_links.py``.  Used by
``tests/docs/test_md_links.py`` as a tier-1 gate too.  ``--json`` emits
the shared machine-readable report (see ``tools/_report.py``; same
document shape as ``repro lint --json``).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

from _report import Report, split_json_flag

#: The documents whose links we guarantee.  Anchor *targets* may live in
#: any file these link to, not just this list.
DOCS = (
    "README.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "DESIGN.md",
    "CHANGES.md",
)

#: ``[text](target)`` — good enough for our docs; fenced code blocks are
#: stripped before matching so shell snippets cannot false-positive.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
#: GitHub's slugger drops everything but word characters, spaces, and
#: hyphens before lowercasing and hyphenating.
_SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a markdown heading."""
    # Inline markup contributes its text only: strip code ticks and
    # link targets before slugging.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.replace("`", "").replace("*", "").strip()
    heading = _SLUG_STRIP.sub("", heading)
    return heading.lower().replace(" ", "-")


def _strip_fences(lines: Iterable[str]) -> List[str]:
    kept: List[str] = []
    in_fence = False
    for line in lines:
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return kept


def anchors_in(path: str) -> set:
    with open(path, encoding="utf-8") as fileobj:
        lines = _strip_fences(fileobj.read().splitlines())
    found = set()
    for line in lines:
        match = _HEADING.match(line)
        if match:
            found.add(github_slug(match.group(1)))
    return found


def links_in(path: str) -> List[Tuple[int, str]]:
    with open(path, encoding="utf-8") as fileobj:
        raw = fileobj.read().splitlines()
    links: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(raw, start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: str, repo_root: str) -> List[str]:
    errors: List[str] = []
    base_dir = os.path.dirname(path) or "."
    for lineno, target in links_in(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base_dir, file_part))
            if not resolved.startswith(repo_root):
                errors.append(
                    "%s:%d: link escapes the repo: %s" % (path, lineno, target)
                )
                continue
            if not os.path.exists(resolved):
                errors.append(
                    "%s:%d: missing target: %s" % (path, lineno, target)
                )
                continue
        else:
            resolved = path  # pure '#anchor' refers to this document
        if anchor:
            if not resolved.endswith((".md", ".markdown")):
                continue  # anchors into code files: nothing to validate
            if github_slug(anchor) not in anchors_in(resolved):
                errors.append(
                    "%s:%d: missing anchor: %s" % (path, lineno, target)
                )
    return errors


def main(argv: List[str]) -> int:
    json_mode, args = split_json_flag(argv[1:])
    repo_root = os.path.abspath(
        args[0] if args else os.path.join(os.path.dirname(__file__), "..")
    )
    report = Report("check-md-links")
    for name in DOCS:
        doc = os.path.join(repo_root, name)
        if os.path.exists(doc):
            report.checked += 1
            for error in check_file(doc, repo_root):
                report.add_text(error)
    return report.emit(
        "markdown links ok (%d documents)" % len(DOCS), json_mode=json_mode
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
