#!/usr/bin/env python
"""Validate the ``BENCH_*.json`` result files at the repo root.

Every benchmark under ``benchmarks/`` persists its measurements as a
``BENCH_<name>.json`` next to the README; dashboards and the docs quote
those numbers, so a truncated write or a NaN smuggled through
``json.dump`` would silently poison them.  This checker asserts the
shared contract: each file parses as a non-empty JSON object and every
number reachable in it is finite.  For ``BENCH_hotpath.json`` it also
requires the keys the hot-path CI gate quotes (the three speedup arms
and the pcap-parity flag), so the gate cannot pass against a stale or
hand-edited document:

    python tools/check_bench_json.py BENCH_*.json

With no arguments it checks every ``BENCH_*.json`` in the repo root.
Exit status is the number of invalid files (0 = all valid).  ``--json``
emits the shared machine-readable report (see ``tools/_report.py``;
same document shape as ``repro lint --json``).
"""

from __future__ import annotations

import glob
import json
import math
import os
import sys
from typing import List

from _report import Report, split_json_flag  # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)

#: Keys the hot-path CI gate reads; their absence means the bench never
#: ran (or the file was edited by hand).
HOTPATH_REQUIRED = (
    ("arms", "flight_emission", "speedup"),
    ("arms", "initial_keys_memo", "speedup"),
    ("arms", "schedule_memo", "speedup"),
    ("parity", "pcap_identical"),
)


def _non_finite_paths(value, prefix="$") -> List[str]:
    """JSONPath-ish locations of every non-finite number in ``value``."""
    bad = []
    if isinstance(value, float) and not math.isfinite(value):
        bad.append(prefix)
    elif isinstance(value, dict):
        for key in value:
            bad.extend(_non_finite_paths(value[key], "%s.%s" % (prefix, key)))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            bad.extend(_non_finite_paths(item, "%s[%d]" % (prefix, index)))
    return bad


def check_file(path: str) -> List[str]:
    """Problems with one bench result file (empty = valid)."""
    try:
        with open(path, encoding="utf-8") as fileobj:
            doc = json.load(fileobj)
    except OSError as exc:
        return ["unreadable: %s" % exc.strerror]
    except ValueError as exc:
        return ["not valid JSON: %s" % exc]
    if not isinstance(doc, dict):
        return ["top-level value is %s, expected an object" % type(doc).__name__]
    if not doc:
        return ["top-level object is empty"]
    problems = [
        "non-finite number at %s" % location
        for location in _non_finite_paths(doc)
    ]
    if os.path.basename(path) == "BENCH_hotpath.json":
        for key_path in HOTPATH_REQUIRED:
            node = doc
            for key in key_path:
                if not isinstance(node, dict) or key not in node:
                    problems.append(
                        "missing required key %s" % ".".join(key_path)
                    )
                    break
                node = node[key]
    return problems


def main(argv: List[str]) -> int:
    json_mode, args = split_json_flag(argv[1:])
    if not args:
        args = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
        if not args:
            print("no BENCH_*.json files found", file=sys.stderr)
            return 2
    report = Report("check-bench-json")
    bad = 0
    for path in args:
        report.checked += 1
        problems = check_file(path)
        if problems:
            bad += 1
            for problem in problems:
                report.add(problem, path=path)
        elif not json_mode:
            print("%s: valid bench results" % path)
    report.emit("bench result files ok (%d)" % report.checked, json_mode=json_mode)
    return bad


if __name__ == "__main__":
    sys.exit(main(sys.argv))
