#!/usr/bin/env python
"""Validate speedscope-format profile JSON files.

The profiler (``repro simulate --profile`` / ``benchmarks/bench_prof.py``)
exports flamegraph documents meant to open cleanly at
https://www.speedscope.app/; a malformed export would only be noticed
when a human loads one.  This checker runs the same schema validation the
library ships (:func:`repro.obs.prof.validate_speedscope`) from the
command line, so CI can gate every exported profile:

    python tools/check_speedscope.py benchmarks/out/prof.speedscope.json

Exit status is the number of invalid files (0 = all valid).  Unreadable
or non-JSON files count as invalid rather than crashing the run.
``--json`` emits the shared machine-readable report (see
``tools/_report.py``; same document shape as ``repro lint --json``).
"""

from __future__ import annotations

import json
import os
import sys
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)  # runnable from a bare checkout, no install step needed

from _report import Report, split_json_flag  # noqa: E402
from repro.obs.prof import validate_speedscope  # noqa: E402


def check_file(path: str) -> List[str]:
    """Problems with one speedscope file (empty = valid)."""
    try:
        with open(path, encoding="utf-8") as fileobj:
            doc = json.load(fileobj)
    except OSError as exc:
        return ["unreadable: %s" % exc.strerror]
    except ValueError as exc:
        return ["not valid JSON: %s" % exc]
    return validate_speedscope(doc)


def main(argv: List[str]) -> int:
    json_mode, args = split_json_flag(argv[1:])
    if not args:
        print("usage: check_speedscope.py [--json] FILE [FILE...]", file=sys.stderr)
        return 2
    report = Report("check-speedscope")
    bad = 0
    for path in args:
        report.checked += 1
        problems = check_file(path)
        if problems:
            bad += 1
            for problem in problems:
                report.add(problem, path=path)
        elif not json_mode:
            print("%s: valid speedscope profile" % path)
    report.emit("speedscope files ok (%d)" % report.checked, json_mode=json_mode)
    return bad


if __name__ == "__main__":
    sys.exit(main(sys.argv))
