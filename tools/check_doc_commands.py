#!/usr/bin/env python
"""Fail on documented ``repro`` commands the real CLI would reject.

The experiment book (EXPERIMENTS.md), README and ARCHITECTURE quote
``repro ...`` invocations inside fenced code blocks.  A renamed flag or
subcommand silently rots every one of them — the worst kind of docs bug,
because readers copy-paste exactly those lines.  This checker extracts
each fenced command and drives it through the *actual*
:func:`repro.cli.build_parser` grammar (``parse_args`` up to, but not
including, command execution):

* lines are commands when their first token is ``repro``, after an
  optional ``$``/``%`` prompt and any leading ``VAR=value`` environment
  assignments;
* trailing-backslash continuations are joined first; everything from
  the first shell operator (``|``, ``&&``, ``;``, redirections) on is
  ignored, as are comment lines;
* a command parses cleanly when argparse accepts it (``--help`` counts:
  argparse exits 0).  Anything that would print a usage error fails.

Placeholder arguments are deliberately *not* allowed — ``repro analyze
<pcap>`` fails the numeric/choice checks that real paths pass, which
keeps the book runnable by copy-paste.

Exit status is the number of broken commands (0 = docs are clean), so
the CI lint job can simply run ``PYTHONPATH=src python
tools/check_doc_commands.py``.  Used by
``tests/docs/test_doc_commands.py`` as a tier-1 gate too.  ``--json``
emits the shared machine-readable report (see ``tools/_report.py``;
same document shape as ``repro lint --json``).
"""

from __future__ import annotations

import contextlib
import io
import os
import re
import shlex
import sys
from typing import List, Tuple

from _report import Report, split_json_flag

#: The documents whose fenced ``repro`` commands we guarantee.
DOCS = (
    "README.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "DESIGN.md",
    "CHANGES.md",
)

_FENCE = re.compile(r"^(```|~~~)")
_ENV_ASSIGNMENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")
_SHELL_OPERATORS = {"|", "||", "&&", "&", ";", ">", ">>", "<", "2>", "2>&1"}


def fenced_commands(path: str) -> List[Tuple[int, str]]:
    """Every ``repro ...`` command line inside fenced blocks of ``path``.

    Returns ``(lineno, command)`` pairs with continuations joined and
    prompts kept (stripped later by :func:`repro_argv`).
    """
    with open(path, encoding="utf-8") as fileobj:
        raw = fileobj.read().splitlines()
    commands: List[Tuple[int, str]] = []
    in_fence = False
    pending: List[str] = []
    pending_line = 0
    for lineno, line in enumerate(raw, start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            pending = []
            continue
        if not in_fence:
            continue
        text = line.strip()
        if pending:
            pending.append(text.rstrip("\\").strip())
            if not text.endswith("\\"):
                commands.append((pending_line, " ".join(pending)))
                pending = []
            continue
        if text.startswith("#") or not text:
            continue
        stripped = text.lstrip("$% ").strip()
        first_real = next(
            (
                token
                for token in stripped.split()
                if not _ENV_ASSIGNMENT.match(token)
            ),
            "",
        )
        if first_real != "repro":
            continue
        if text.endswith("\\"):
            pending = [text.rstrip("\\").strip()]
            pending_line = lineno
        else:
            commands.append((lineno, text))
    return commands


def repro_argv(command: str) -> List[str]:
    """The argv (after ``repro``) a shell would hand the CLI."""
    # comments=True drops trailing `# explanation` annotations; a real
    # shell would treat them the same way.
    tokens = shlex.split(command.lstrip("$% "), comments=True)
    while tokens and _ENV_ASSIGNMENT.match(tokens[0]):
        tokens.pop(0)
    argv: List[str] = []
    for token in tokens:
        if token in _SHELL_OPERATORS:
            break
        argv.append(token)
    assert argv and argv[0] == "repro", command
    return argv[1:]


def parses(argv: List[str]) -> Tuple[bool, str]:
    """Does the real CLI grammar accept ``argv``?  (ok, error text)."""
    from repro.cli import build_parser

    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr), contextlib.redirect_stdout(
            io.StringIO()
        ):
            build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse reports errors by exiting
        if exc.code not in (0, None):
            message = stderr.getvalue().strip().splitlines()
            return False, message[-1] if message else "usage error"
    return True, ""


def check_file(path: str) -> Tuple[int, List[str]]:
    """(commands seen, errors) for one document."""
    errors: List[str] = []
    commands = fenced_commands(path)
    for lineno, command in commands:
        try:
            argv = repro_argv(command)
        except ValueError as exc:  # unbalanced quotes etc.
            errors.append("%s:%d: unparsable shell: %s" % (path, lineno, exc))
            continue
        ok, why = parses(argv)
        if not ok:
            errors.append("%s:%d: %r — %s" % (path, lineno, command, why))
    return len(commands), errors


def main(argv: List[str]) -> int:
    json_mode, args = split_json_flag(argv[1:])
    repo_root = os.path.abspath(
        args[0] if args else os.path.join(os.path.dirname(__file__), "..")
    )
    sys.path.insert(0, os.path.join(repo_root, "src"))
    total = 0
    report = Report("check-doc-commands")
    for name in DOCS:
        doc = os.path.join(repo_root, name)
        if os.path.exists(doc):
            seen, bad = check_file(doc)
            total += seen
            for error in bad:
                report.add_text(error)
    report.checked = total
    return report.emit(
        "doc commands ok (%d commands, %d documents)" % (total, len(DOCS)),
        json_mode=json_mode,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
