#!/usr/bin/env python3
"""Quickstart: simulate a telescope month and fingerprint hypergiants.

Builds a scaled-down January-2022 scenario (spoofing attackers, scanners,
hypergiant deployments, a /9 telescope), runs the sanitization pipeline,
and prints the paper's Table-1-style configuration matrix re-derived
purely from backscatter.

Run:  python examples/quickstart.py
"""

from repro.core.report import render_table
from repro.core.summary import HYPERGIANT_COLUMNS, summarize
from repro.core.timing import timing_profiles
from repro.workloads.scenario import ScenarioConfig, build_scenario


def main() -> None:
    print("Building the simulated Internet (hypergiants, attackers, telescope)…")
    config = ScenarioConfig().scaled(0.25)
    scenario = build_scenario(config)

    print("Running one month of traffic…")
    scenario.run()
    print(
        "Telescope captured %d raw packets." % len(scenario.telescope.records)
    )

    print("Sanitizing (dissector + acknowledged-scanner removal)…")
    capture = scenario.classify()
    stats = capture.stats
    print(
        "  kept %d backscatter + %d scans, removed %d (%.0f%%)"
        % (stats.backscatter, stats.scans, stats.removed, 100 * stats.removed_share)
    )

    summary = summarize(capture.backscatter)
    rows = [
        ["Coalescence"] + [summary[h].coalescence for h in HYPERGIANT_COLUMNS],
        ["Server-chosen IDs"]
        + [summary[h].server_chosen_ids for h in HYPERGIANT_COLUMNS],
        ["Structured SCIDs"]
        + [summary[h].structured_scids for h in HYPERGIANT_COLUMNS],
        ["L7LBs quantifiable"]
        + [summary[h].l7_load_balancers for h in HYPERGIANT_COLUMNS],
        ["Initial RTO"] + [summary[h].rto_label() for h in HYPERGIANT_COLUMNS],
        ["# re-transmissions"]
        + [summary[h].resend_label() for h in HYPERGIANT_COLUMNS],
    ]
    print()
    print(
        render_table(
            ["Feature"] + list(HYPERGIANT_COLUMNS),
            rows,
            title="Deployment configurations recovered from backscatter",
        )
    )

    print()
    profiles = timing_profiles(capture.backscatter)
    for origin in HYPERGIANT_COLUMNS:
        profile = profiles.get(origin)
        if profile and profile.initial_rto is not None:
            print(
                "%-11s %4d sessions, RTO %.2f s, backoff x%.1f"
                % (
                    origin,
                    profile.sessions,
                    profile.initial_rto,
                    profile.backoff_factor or 0,
                )
            )


if __name__ == "__main__":
    main()
