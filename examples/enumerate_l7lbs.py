#!/usr/bin/env python3
"""Enumerate the L7 load balancers behind Facebook-style VIPs (§4.3).

Deploys three frontend clusters, then — exactly like the paper's active
campaign — completes handshakes with successively decreasing client ports,
decodes the mvfst host IDs from the returned SCIDs, and shows:

* the convergence curve (most host IDs appear within the first handshakes);
* that every VIP of a cluster exposes the same host-ID set (Jaccard 1.0);
* the Appendix-D follow-up trick classifying the load balancer type.

Run:  python examples/enumerate_l7lbs.py
"""

from repro.active.lb_inference import classify_lb, follow_up_delay
from repro.active.prober import Prober
from repro.core.l7lb import cluster_vips, convergence_curve
from repro.core.report import render_table
from repro.netstack.addr import format_ip
from repro.workloads.scenario import build_facebook_lab, build_lb_lab


def main() -> None:
    print("Deploying 3 Facebook frontend clusters (24/32/40 L7LBs)…")
    lab = build_facebook_lab(
        [(6, 24, "US"), (6, 32, "DE"), (6, 40, "IN")], seed=11
    )
    prober = Prober(lab.loop, lab.network)

    # Convergence on a single VIP.
    cluster = lab.clusters["Facebook"][2]
    ids = prober.enumerate_host_ids(cluster.vips[0], 800)
    curve = convergence_curve([h for h in ids if h is not None])
    print(
        "VIP %s: %d L7LBs found; %.0f%% within the first 200 handshakes"
        % (
            format_ip(cluster.vips[0]),
            curve.total,
            100 * curve.coverage_at(200),
        )
    )

    # All VIPs per cluster share one host-ID set.
    print("\nScanning every VIP of every cluster…")
    per_vip = prober.scan_vips(
        lab.vips("Facebook"), handshakes_per_vip=400, stop_after_stable=120
    )
    clustering = cluster_vips(per_vip)
    rows = [
        [i, len(vips), len(per_vip[vips[0]])]
        for i, vips in enumerate(clustering.clusters)
    ]
    print(
        render_table(
            ["cluster", "VIPs", "L7LBs (host IDs)"],
            rows,
            title="Recovered frontend clusters",
        )
    )
    print(
        "min intra-cluster Jaccard: %.3f   max inter-cluster: %.3f"
        % (clustering.min_intra_jaccard, clustering.max_inter_jaccard)
    )

    # Appendix-D: which LB type routes these VIPs?
    print("\nAppendix-D follow-up handshake probe (Google vs Facebook)…")
    lb_lab = build_lb_lab(google_hosts=12, facebook_hosts=12)
    lb_prober = Prober(lb_lab.loop, lb_lab.network)
    for hypergiant in ("Facebook", "Google"):
        outcome = follow_up_delay(
            lb_prober, lb_lab.vips(hypergiant)[0], max_wait=400.0
        )
        print(
            "%-9s follow-up succeeded after %6.1f s  ->  %s load balancing"
            % (hypergiant, outcome.delay, classify_lb(outcome))
        )


if __name__ == "__main__":
    main()
