#!/usr/bin/env python3
"""A full telescope workflow, the way the paper runs it.

1. simulate a measurement month and write the capture to a standard pcap;
2. read the pcap back (the analysis never touches simulator internals);
3. classify and sanitize;
4. print version adoption (Table 2 style), the packet-type mix (Table 3
   style), and SCID length statistics (Table 4 style).

Run:  python examples/telescope_month.py [output.pcap]
"""

import io
import sys

from repro.core.packet_mix import TABLE3_ROWS, packet_mix, top_length_signatures
from repro.core.report import render_histogram, render_table
from repro.core.scid_stats import table4
from repro.core.versions import TABLE2_ROWS, table2
from repro.netstack.pcap import PcapReader
from repro.telescope.classify import classify_capture
from repro.workloads.scenario import ScenarioConfig, build_scenario

ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")


def main() -> None:
    scenario = build_scenario(ScenarioConfig().scaled(0.25))
    scenario.run()

    # --- persist and reload: the pipeline consumes plain pcap ------------
    if len(sys.argv) > 1:
        with open(sys.argv[1], "wb") as fileobj:
            scenario.telescope.write_pcap(fileobj)
        with open(sys.argv[1], "rb") as fileobj:
            records = list(PcapReader(fileobj))
        print("Wrote and re-read %s (%d records)" % (sys.argv[1], len(records)))
    else:
        buf = io.BytesIO()
        scenario.telescope.write_pcap(buf)
        buf.seek(0)
        records = list(PcapReader(buf))

    capture = classify_capture(
        records, asdb=scenario.asdb, acknowledged=scenario.acknowledged
    )
    print(
        "%d backscatter, %d scans after sanitization (removed %.0f%%)\n"
        % (
            capture.stats.backscatter,
            capture.stats.scans,
            100 * capture.stats.removed_share,
        )
    )

    # --- Table 2 ----------------------------------------------------------
    shares = table2(capture)
    print(
        render_table(
            ["QUIC version", "Clients [%]", "Servers [%]"],
            [
                [
                    bucket,
                    "%.1f" % shares["clients"].share(bucket),
                    "%.1f" % shares["servers"].share(bucket),
                ]
                for bucket in TABLE2_ROWS
            ],
            title="Version adoption (sessions counted once)",
        )
    )
    print()

    # --- Table 3 ----------------------------------------------------------
    mix = packet_mix(capture.backscatter + capture.scans)
    print(
        render_table(
            ["Packet type"] + list(ORIGINS),
            [
                [cat] + ["%.2f" % mix.share(o, cat) for o in ORIGINS]
                for cat in TABLE3_ROWS
            ],
            title="Long-header packet types per source network [%]",
        )
    )
    print()

    # --- Table 4 ----------------------------------------------------------
    stats = table4(capture.backscatter)
    print(
        render_table(
            ["Origin AS", "SCID length", "Unique SCIDs"],
            [
                [o, stats[o].length_summary(), stats[o].unique_count]
                for o in ORIGINS
                if o in stats
            ],
            title="SCID statistics",
        )
    )
    print()

    # --- Figure 7 flavour ---------------------------------------------------
    tops = top_length_signatures(capture.backscatter, top=5)
    for origin in ("Facebook", "Google"):
        print(
            render_histogram(
                tops.get(origin, []),
                width=30,
                title="%s packet-length combinations" % origin,
            )
        )
        print()


if __name__ == "__main__":
    main()
