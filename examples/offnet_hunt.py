#!/usr/bin/env python3
"""Hunt hidden Facebook off-net caches in backscatter (§4.2, Table 6).

Simulates a month in which Facebook off-net caches — deployed inside ISP
networks, invisible to AS-based mapping — answer spoofed floods alongside
a hundred unrelated QUIC servers.  The hunt:

1. builds per-server feature vectors from backscatter (SCID structure,
   retransmission inter-arrival time, coalescence, packet lengths);
2. scores all nine Table-6 classifier combinations against certificate
   ground truth;
3. shows how the low-host-ID refinement slashes false positives.

Run:  python examples/offnet_hunt.py
"""

from repro.core.offnet import evaluate_classifiers, extract_features
from repro.core.report import render_table
from repro.inetdata.hypergiants import FACEBOOK
from repro.netstack.addr import format_ip
from repro.workloads.scenario import ScenarioConfig, build_scenario


def main() -> None:
    config = ScenarioConfig().scaled(0.35)
    scenario = build_scenario(config)
    scenario.run()
    capture = scenario.classify()

    features = extract_features(capture.backscatter)
    print(
        "Observed %d backscatter-emitting servers outside hypergiant ASes."
        % len(features)
    )

    # The candidates the paper's best predictor surfaces.
    candidates = sorted(
        addr for addr, f in features.items() if f.low_host_id()
    )
    print("\nLow-host-ID mvfst candidates (verified via certificates):")
    for addr in candidates[:12]:
        verified = scenario.certstore.operated_by(addr, FACEBOOK)
        print(
            "  %-16s %s"
            % (format_ip(addr), "CONFIRMED Facebook" if verified else "false positive")
        )
    if len(candidates) > 12:
        print("  … and %d more" % (len(candidates) - 12))

    metrics = evaluate_classifiers(features, scenario.certstore)
    print()
    print(
        render_table(
            ["Classifier", "TPR", "FPR", "Precision"],
            [
                [m.name, "%.3f" % m.tpr, "%.3f" % m.fpr, "%.3f" % m.precision]
                for m in metrics
            ],
            title="Off-net classification performance (paper Table 6)",
        )
    )


if __name__ == "__main__":
    main()
