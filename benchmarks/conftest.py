"""Shared state for the benchmark/reproduction harness.

Every bench regenerates one table or figure of the paper.  Simulation is
done once per session in these fixtures; the ``benchmark`` fixture then
times the *analysis kernel* for that experiment, and each bench writes its
reproduced rows/series to ``benchmarks/out/<name>.txt`` (also printed; run
pytest with ``-s`` to see them inline).
"""

from __future__ import annotations

import math
import os
import random

import pytest

from repro.active.lb_inference import follow_up_delay
from repro.active.prober import Prober
from repro.workloads.scenario import (
    ScenarioConfig,
    april_2021_config,
    build_facebook_lab,
    build_lb_lab,
    build_scenario,
)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Set REPRO_BENCH_SCALE below 1.0 for a quicker, coarser pass.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def report(name: str, text: str) -> str:
    """Persist one experiment's reproduced output and echo it."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name + ".txt")
    with open(path, "w") as fileobj:
        fileobj.write(text + "\n")
    print("\n" + text)
    return path


@pytest.fixture(scope="session")
def scenario_2022():
    """The full January-2022 telescope month (DESIGN.md §5 scale)."""
    scenario = build_scenario(ScenarioConfig().scaled(SCALE))
    scenario.run()
    return scenario


@pytest.fixture(scope="session")
def capture_2022(scenario_2022):
    return scenario_2022.classify()


@pytest.fixture(scope="session")
def scenario_2021():
    scenario = build_scenario(april_2021_config().scaled(SCALE))
    scenario.run()
    return scenario


@pytest.fixture(scope="session")
def capture_2021(scenario_2021):
    return scenario_2021.classify()


# ---------------------------------------------------------------------------
# Active-measurement campaigns
# ---------------------------------------------------------------------------

#: Figure 6 deployment: 10 clusters per continent; L7LB counts drawn around
#: the paper's medians (Asia 453, EU 339.5, NA 292).
GEO_REGIONS = {
    "Asia": (("IN", "SG", "JP", "KR", "TH"), 453, 80),
    "Europe": (("DE", "GB", "FR", "NL", "ES"), 340, 60),
    "North America": (("US", "US", "CA", "US", "MX"), 292, 50),
}


@pytest.fixture(scope="session")
def geo_lab_results():
    """Scan one VIP per Facebook cluster worldwide; returns
    (cluster host-ID counts per representative VIP, geodb, deployed sizes)."""
    specs = []
    for _region, (countries, median, spread) in GEO_REGIONS.items():
        per_country = max(1, round(2 * SCALE))
        # Stratified sizes symmetric around the region median, so the
        # recovered median matches the paper's regardless of sample count.
        offsets = (-spread, -spread // 2, 0, spread // 2, spread)
        index = 0
        for country in countries:
            for _ in range(per_country):
                size = max(40, median + offsets[index % len(offsets)])
                specs.append((4, size, country))
                index += 1
    lab = build_facebook_lab(specs, seed=64, maglev_table_size=2039)
    prober = Prober(lab.loop, lab.network, timeout=2.0)
    sizes: dict[int, int] = {}
    for cluster in lab.clusters["Facebook"]:
        vip = cluster.vips[0]
        budget = int(3.2 * len(cluster.hosts) * math.log(len(cluster.hosts)))
        ids = prober.enumerate_host_ids(vip, budget, stop_after_stable=150)
        sizes[vip] = len({h for h in ids if h is not None})
    deployed = {
        cluster.vips[0]: len(cluster.hosts) for cluster in lab.clusters["Facebook"]
    }
    return sizes, lab.geodb, deployed


@pytest.fixture(scope="session")
def jaccard_lab_results():
    """The §4.3 VIP-clustering campaign: scan every VIP of every cluster.

    Structure matches the paper (112 clusters × 22 VIPs, plus 21/20/44);
    hosts per cluster are scaled down (14 vs ~300-450) to keep the scan
    tractable, which only shrinks the sets being intersected.
    """
    cluster_count = max(8, int(112 * SCALE))
    specs = [(22, 10, "US")] * cluster_count + [
        (21, 10, "DE"),
        (20, 10, "IN"),
        (44, 10, "GB"),
    ]
    lab = build_facebook_lab(specs, seed=43)
    prober = Prober(lab.loop, lab.network, timeout=2.0)
    per_vip = prober.scan_vips(
        lab.vips("Facebook"), handshakes_per_vip=320, stop_after_stable=90
    )
    return per_vip, [len(c.vips) for c in lab.clusters["Facebook"]]


@pytest.fixture(scope="session")
def convergence_results():
    """§4.3-a: 20k handshakes against one VIP of a large cluster."""
    host_count = 520  # calibrated so ~85% of IDs appear within 1k handshakes
    lab = build_facebook_lab([(4, host_count, "US")], seed=7, maglev_table_size=2039)
    prober = Prober(lab.loop, lab.network, timeout=2.0)
    handshakes = int(20000 * max(SCALE, 0.25))
    ids = prober.enumerate_host_ids(lab.vips("Facebook")[0], handshakes)
    return ids, host_count


@pytest.fixture(scope="session")
def lb_outcomes():
    """Appendix-D campaign against Google and Facebook VIPs."""
    outcomes = {"Google": [], "Facebook": []}
    per_hg = max(4, int(12 * SCALE))
    for i in range(per_hg):
        lab = build_lb_lab(google_hosts=10, facebook_hosts=10, seed=100 + i)
        prober = Prober(lab.loop, lab.network)
        outcomes["Google"].append(
            follow_up_delay(prober, lab.vips("Google")[i % 8], max_wait=400.0)
        )
        outcomes["Facebook"].append(
            follow_up_delay(prober, lab.vips("Facebook")[i % 8], max_wait=60.0)
        )
    return outcomes
