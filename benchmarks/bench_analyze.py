"""Analysis-plane scaling — cold build vs warm sidecar load, serial vs parallel.

Times the ``repro analyze`` read side over one simulated month, recording
the results in ``BENCH_analyze.json`` at the repo root:

* **cold** — streaming dissection into the columnar table (workers=1),
  writing the ``.capidx`` sidecar;
* **warm** — deserializing the sidecar instead of dissecting (the state
  every ``analyze`` after the first runs in);
* **parallel** — a cold row-group build across 4 worker processes.

Two classes of assertion, deliberately separated (mirroring
``bench_shard_scaling``):

* **Parity** — always checked, on any machine: every arm must render the
  complete set of analysis tables byte-identically, and the warm load
  must be faster than the cold build (it skips UDP decode, QUIC
  dissection, and AEAD validation entirely).
* **Speedup** — the parallel arm must beat serial only where the machine
  can physically deliver it (``cpus >= 2`` and scale >= 0.5); on a
  single-core container the honest ~1x number is recorded, not asserted.

Run under pytest (``pytest benchmarks/bench_analyze.py``) or as a script —
``python benchmarks/bench_analyze.py --check`` re-measures and exits
non-zero on violations.  ``--scale`` overrides the default bench scale
(0.5; the REPRO_BENCH_SCALE env var is honoured too).
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.capstore import load_or_build, sidecar_path
from repro.cli import VALID_TABLES, main as cli_main, render_analysis

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_analyze.json")
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SEED = 20220101
PARALLEL_WORKERS = 4
MIN_PARALLEL_SPEEDUP = 1.3
#: Parallel speedup is only asserted at or above this scale on multi-core.
MIN_SCALE_FOR_SPEEDUP = 0.5
ALL_TABLES = set(VALID_TABLES)


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_bench(scale=DEFAULT_SCALE):
    """Measure cold/warm/parallel analyze arms, persist ``BENCH_analyze.json``."""
    cpus = _cpus()
    results = {
        "scale": scale,
        "seed": SEED,
        "cpus": cpus,
        "parallel_workers": PARALLEL_WORKERS,
        "arms": {},
        "parity": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        pcap = os.path.join(tmp, "month.pcap")
        code = cli_main(
            ["simulate", pcap, "--scale", str(scale), "--seed", str(SEED)]
        )
        assert code == 0, "simulate failed"

        start = time.perf_counter()
        cold_view, cold_hit = load_or_build(pcap, workers=1)
        cold_seconds = time.perf_counter() - start
        cold_render = render_analysis(cold_view, ALL_TABLES)

        start = time.perf_counter()
        warm_view, warm_hit = load_or_build(pcap, workers=1)
        warm_seconds = time.perf_counter() - start

        os.unlink(sidecar_path(pcap))
        start = time.perf_counter()
        parallel_view, parallel_hit = load_or_build(
            pcap, workers=PARALLEL_WORKERS, use_cache=False
        )
        parallel_seconds = time.perf_counter() - start

        rows = cold_view.table.num_rows
        results["arms"] = {
            "cold": {"seconds": round(cold_seconds, 3), "cache_hit": cold_hit},
            "warm": {
                "seconds": round(warm_seconds, 3),
                "cache_hit": warm_hit,
                "speedup_vs_cold": round(cold_seconds / max(warm_seconds, 1e-9), 3),
            },
            "parallel": {
                "seconds": round(parallel_seconds, 3),
                "cache_hit": parallel_hit,
                "speedup_vs_cold": round(
                    cold_seconds / max(parallel_seconds, 1e-9), 3
                ),
            },
        }
        results["rows"] = rows
        results["parity"] = {
            "cold_cache_was_miss": not cold_hit,
            "warm_cache_was_hit": warm_hit,
            "parallel_cache_was_miss": not parallel_hit,
            "warm_tables_identical": render_analysis(warm_view, ALL_TABLES)
            == cold_render,
            "parallel_tables_identical": render_analysis(parallel_view, ALL_TABLES)
            == cold_render,
            "warm_faster_than_cold": warm_seconds < cold_seconds,
        }

    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    arms = results["arms"]
    lines = [
        "Analysis plane (scale %.2f, %d rows, %d cpu%s):"
        % (
            results["scale"],
            results["rows"],
            results["cpus"],
            "" if results["cpus"] == 1 else "s",
        ),
        "  %-22s %8.3fs" % ("cold build (1w)", arms["cold"]["seconds"]),
        "  %-22s %8.3fs  (%.1fx)"
        % (
            "warm .capidx load",
            arms["warm"]["seconds"],
            arms["warm"]["speedup_vs_cold"],
        ),
        "  %-22s %8.3fs  (%.2fx)"
        % (
            "cold build (%dw)" % results["parallel_workers"],
            arms["parallel"]["seconds"],
            arms["parallel"]["speedup_vs_cold"],
        ),
    ]
    if results["cpus"] < 2:
        lines.append("  (single CPU: parallel speedup not asserted, parity only)")
    return "\n".join(lines)


def _check(results):
    """Violations as human-readable strings (empty = pass)."""
    failures = []
    for name, held in results["parity"].items():
        if not held:
            failures.append("parity violated: %s" % name)
    speedup_applies = (
        results["cpus"] >= 2 and results["scale"] >= MIN_SCALE_FOR_SPEEDUP
    )
    parallel = results["arms"]["parallel"]
    if speedup_applies and parallel["speedup_vs_cold"] < MIN_PARALLEL_SPEEDUP:
        failures.append(
            "%d-worker build reached %.2fx (< %.1fx) on %d cpus"
            % (
                results["parallel_workers"],
                parallel["speedup_vs_cold"],
                MIN_PARALLEL_SPEEDUP,
                results["cpus"],
            )
        )
    return failures


def test_analyze_scaling(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("analyze_scaling", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on parity/speedup violations (CI gate)",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="scenario scale"
    )
    args = parser.parse_args(argv)
    results = run_bench(scale=args.scale)
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
