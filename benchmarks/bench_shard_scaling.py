"""Shard scaling — wall-clock vs workers, with the determinism invariant.

Times a telescope month serially and under ``simulate_sharded`` at several
worker counts, recording the results in ``BENCH_shard.json`` at the repo
root (wall seconds, records, speedup ratios, and the CPU count of the
measuring machine).

Two classes of assertion, deliberately separated:

* **Determinism** — always checked, on any machine: the merged capture
  must contain exactly the serial run's records in the canonical
  ``(ts_sec, ts_usec, data)`` order, and the merged pcap must be
  byte-identical across worker counts.
* **Speedup** — checked only when the machine can physically deliver it
  (``cpus >= 2``): 4 workers must reach >=2x over serial at scale >= 0.5.
  On a single-core container the workers time-slice one CPU, so the
  bench still runs and records the honest (~1x or worse) numbers, but a
  speedup assertion there would only measure the scheduler.

Run under pytest (``pytest benchmarks/bench_shard_scaling.py``) or as a
script — ``python benchmarks/bench_shard_scaling.py --check`` re-measures
and exits non-zero on violations.  ``--scale`` overrides the default
bench scale (0.5; the REPRO_BENCH_SCALE env var is honoured too).
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.netstack.pcap import read_pcap, record_sort_key
from repro.simnet.shard import run_shard, simulate_sharded
from repro.workloads.scenario import ScenarioConfig

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_shard.json")
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
WORKER_COUNTS = (2, 4)
SEED = 20220101
MIN_SPEEDUP_4W = 2.0
#: Speedup is only asserted at or above this scale on multi-core machines.
MIN_SCALE_FOR_SPEEDUP = 0.5


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_bench(scale=DEFAULT_SCALE):
    """Measure serial + sharded runs, persist ``BENCH_shard.json``."""
    config = ScenarioConfig(seed=SEED).scaled(scale)
    cpus = _cpus()

    start = time.perf_counter()
    serial_records = run_shard(config)
    serial_seconds = time.perf_counter() - start
    serial_keys = [record_sort_key(r) for r in serial_records]

    results = {
        "scale": scale,
        "seed": SEED,
        "cpus": cpus,
        "serial": {
            "seconds": round(serial_seconds, 3),
            "records": len(serial_records),
        },
        "workers": {},
        "determinism": {},
    }

    merged_bytes = None
    with tempfile.TemporaryDirectory() as tmp:
        for workers in WORKER_COUNTS:
            out = os.path.join(tmp, "w%d.pcap" % workers)
            start = time.perf_counter()
            run = simulate_sharded(config, workers=workers, output=out)
            elapsed = time.perf_counter() - start
            merged = read_pcap(out)
            with open(out, "rb") as fileobj:
                raw = fileobj.read()
            if merged_bytes is None:
                merged_bytes = raw
            results["workers"][str(workers)] = {
                "seconds": round(elapsed, 3),
                "records": run.total_records,
                "shards": len(run.shards),
                "speedup": round(serial_seconds / elapsed, 3),
            }
            results["determinism"]["records_match_serial_%dw" % workers] = (
                [record_sort_key(r) for r in merged] == serial_keys
            )
            results["determinism"]["pcap_identical_across_workers_%dw" % workers] = (
                raw == merged_bytes
            )

    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    lines = [
        "Shard scaling (scale %.2f, %d records, %d cpu%s):"
        % (
            results["scale"],
            results["serial"]["records"],
            results["cpus"],
            "" if results["cpus"] == 1 else "s",
        ),
        "  %-10s %8.3fs" % ("serial", results["serial"]["seconds"]),
    ]
    for workers, arm in sorted(results["workers"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            "  %-10s %8.3fs  (%.2fx)"
            % ("%s workers" % workers, arm["seconds"], arm["speedup"])
        )
    if results["cpus"] < 2:
        lines.append("  (single CPU: speedup not asserted, determinism only)")
    return "\n".join(lines)


def _check(results):
    """Violations as human-readable strings (empty = pass)."""
    failures = []
    for name, held in results["determinism"].items():
        if not held:
            failures.append("determinism violated: %s" % name)
    for workers, arm in results["workers"].items():
        if arm["records"] != results["serial"]["records"]:
            failures.append(
                "%s workers captured %d records vs %d serial"
                % (workers, arm["records"], results["serial"]["records"])
            )
    speedup_applies = (
        results["cpus"] >= 2 and results["scale"] >= MIN_SCALE_FOR_SPEEDUP
    )
    if speedup_applies and results["workers"]["4"]["speedup"] < MIN_SPEEDUP_4W:
        failures.append(
            "4 workers reached %.2fx (< %.1fx) on %d cpus"
            % (results["workers"]["4"]["speedup"], MIN_SPEEDUP_4W, results["cpus"])
        )
    return failures


def test_shard_scaling(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("shard_scaling", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on determinism/speedup violations (CI gate)",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="scenario scale"
    )
    args = parser.parse_args(argv)
    results = run_bench(scale=args.scale)
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
