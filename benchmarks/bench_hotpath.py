"""Write-side template/memo plane — flight emission and crypto memo speedups.

Three arms over the packet-build hot path, recorded in
``BENCH_hotpath.json`` at the repo root:

* **flight_emission** — a cloudflare-profile engine (certificate
  attached) emits repeated handshake flights to established connections
  through both arms of ``_send_flight_inner``: the shape-keyed flight
  layout (header splice + fused seal) vs. the frame-by-frame rebuild
  that reproduces the pre-template code path.  Reported as packets/sec.
* **initial_keys_memo** / **schedule_memo** — Initial secrets per
  ``(version, DCID)`` and AES/GHASH schedules per key, cached vs. cold,
  at a reuse factor of 20 uses per key (BENCH_prof.json measured ~26
  AEAD invocations per distinct key in a simulated month).
* **parity** — the same scenario simulated with the fast paths on and
  off must write byte-identical pcaps.

The flight-emission floor is 2.5x, not 5x: the fast arm is ~78% native
AEAD work (two seals per flight, ~38us on the reference box), which
bounds the achievable ratio near 5.5x even if header assembly were
free; the measured 3-4x is the honest number and the floor leaves
headroom for machine noise.  The memo arms, where the cached work
really does vanish, carry the 5x floor.  Floors are asserted at bench
scale >= 0.5; parity is asserted on any machine.

Run under pytest (``pytest benchmarks/bench_hotpath.py``) or as a
script — ``python benchmarks/bench_hotpath.py --check`` re-measures and
exits non-zero on violations.  ``--scale`` overrides the default bench
scale (0.5; the REPRO_BENCH_SCALE env var is honoured too).
"""

import argparse
import filecmp
import json
import os
import random
import sys
import tempfile
import time

from repro import hotpath
from repro.cli import main as cli_main
from repro.netstack.addr import parse_ip
from repro.quic.crypto.gcm import AesGcm
from repro.quic.crypto.initial import derive_initial_keys
from repro.quic.crypto.memo import (
    cached_gcm,
    cached_initial_keys,
    clear_crypto_memos,
)
from repro.server.engine import QuicServerEngine
from repro.server.profiles import cloudflare_profile
from repro.simnet.eventloop import EventLoop
from repro.tls.certs import Certificate
from repro.workloads.clients import ClientConnection

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_hotpath.json")
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SEED = 20220101
#: AEAD invocations per distinct key in a simulated month is ~26
#: (BENCH_prof.json: ~15k seals over ~579 keys); 20 is a conservative
#: stand-in for how often each memoized schedule is reused.
REUSE_ROUNDS = 20
MIN_FLIGHT_SPEEDUP = 2.5
MIN_MEMO_SPEEDUP = 5.0
#: Speedup floors are only asserted at or above this scale.
MIN_SCALE_FOR_SPEEDUP = 0.5
#: Arms are measured this many times; the best run is recorded (the
#: reference box shows +-25% scheduler noise between runs).
REPEATS = 3

VIP = parse_ip("157.240.1.10")
CLIENT = parse_ip("44.1.2.3")
CERT = Certificate(
    subject="*.cloudflare.com",
    subject_alt_names=("*.cloudflare.com", "*.cloudflaressl.com"),
)


def _established_engine(connections):
    """An engine holding ``connections`` handshaken clients, plus the
    request datagram used to address re-flights."""
    sent = []
    engine = QuicServerEngine(
        profile=cloudflare_profile(colo_id=1),
        loop=EventLoop(),
        rng=random.Random(SEED),
        send=sent.append,
        host_id=7,
        worker_id=3,
        certificate=CERT,
    )
    client_rng = random.Random(77)
    request = None
    for port in range(10000, 10000 + connections):
        client = ClientConnection(
            rng=client_rng,
            src_ip=CLIENT,
            src_port=port,
            dst_ip=VIP,
            version=engine.profile.supported_versions[0],
        )
        datagram = client.initial_datagram()
        request = request or datagram
        engine.on_datagram(datagram, 0.0)
    sent.clear()
    return engine, request, sent


def _measure_emission(enabled, connections, rounds):
    """Seconds for ``rounds`` full re-flight sweeps; returns (pps, packets)."""
    hotpath.set_enabled(enabled)
    clear_crypto_memos()
    engine, request, sent = _established_engine(connections)
    conns = list(engine._by_origin.values())
    # Warm pass: binds layouts (fast arm) and touches every conn once.
    for conn in conns:
        engine._send_flight_inner(conn, request)
    sent.clear()
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(rounds):
            for conn in conns:
                engine._send_flight_inner(conn, request)
        best = min(best, time.perf_counter() - start)
        sent.clear()
    packets = 2 * rounds * len(conns)  # every flight is Initial + Handshake
    return packets / best, packets


def _measure_initial_keys(cached, dcids):
    """Key derivations/sec at REUSE_ROUNDS uses per DCID."""
    hotpath.set_enabled(cached)  # cached_* fall through when disabled
    clear_crypto_memos()
    best = float("inf")
    for _ in range(REPEATS):
        clear_crypto_memos()
        start = time.perf_counter()
        for _ in range(REUSE_ROUNDS):
            for dcid in dcids:
                if cached:
                    cached_initial_keys(1, dcid)
                else:
                    derive_initial_keys(1, dcid)
        best = min(best, time.perf_counter() - start)
    return REUSE_ROUNDS * len(dcids) / best


def _measure_schedules(cached, keys):
    """Small-payload seals/sec at REUSE_ROUNDS uses per AES/GHASH key."""
    nonce = b"\x24" * 12
    payload = b"\x5a" * 64
    hotpath.set_enabled(cached)  # cached_* fall through when disabled
    clear_crypto_memos()
    best = float("inf")
    for _ in range(REPEATS):
        clear_crypto_memos()
        start = time.perf_counter()
        for _ in range(REUSE_ROUNDS):
            for key in keys:
                gcm = cached_gcm(key) if cached else AesGcm(key)
                gcm.seal(nonce, payload, b"")
        best = min(best, time.perf_counter() - start)
    return REUSE_ROUNDS * len(keys) / best


def run_bench(scale=DEFAULT_SCALE):
    """Measure every hot-path arm, persist ``BENCH_hotpath.json``."""
    connections = max(25, int(400 * scale))
    rounds = 10
    rng = random.Random(SEED)
    dcids = [rng.getrandbits(64).to_bytes(8, "big") for _ in range(64)]
    keys = [rng.getrandbits(128).to_bytes(16, "big") for _ in range(32)]

    results = {
        "scale": scale,
        "seed": SEED,
        "connections": connections,
        "reuse_rounds": REUSE_ROUNDS,
        "arms": {},
        "parity": {},
    }

    template_pps, packets = _measure_emission(True, connections, rounds)
    rebuild_pps, _ = _measure_emission(False, connections, rounds)
    results["packets_per_sweep"] = packets
    results["arms"]["flight_emission"] = {
        "template_pps": round(template_pps, 1),
        "rebuild_pps": round(rebuild_pps, 1),
        "speedup": round(template_pps / max(rebuild_pps, 1e-9), 3),
    }

    cached_kps = _measure_initial_keys(True, dcids)
    cold_kps = _measure_initial_keys(False, dcids)
    results["arms"]["initial_keys_memo"] = {
        "cached_keys_per_sec": round(cached_kps, 1),
        "cold_keys_per_sec": round(cold_kps, 1),
        "speedup": round(cached_kps / max(cold_kps, 1e-9), 3),
    }

    cached_ops = _measure_schedules(True, keys)
    cold_ops = _measure_schedules(False, keys)
    results["arms"]["schedule_memo"] = {
        "cached_seals_per_sec": round(cached_ops, 1),
        "cold_seals_per_sec": round(cold_ops, 1),
        "speedup": round(cached_ops / max(cold_ops, 1e-9), 3),
    }

    parity_scale = min(scale, 0.02)
    results["parity_scale"] = parity_scale
    with tempfile.TemporaryDirectory() as tmp:
        fast = os.path.join(tmp, "fast.pcap")
        slow = os.path.join(tmp, "slow.pcap")
        hotpath.set_enabled(True)
        clear_crypto_memos()
        code = cli_main(
            ["simulate", fast, "--scale", str(parity_scale), "--seed", str(SEED)]
        )
        assert code == 0, "simulate (hotpath on) failed"
        hotpath.set_enabled(False)
        clear_crypto_memos()
        code = cli_main(
            ["simulate", slow, "--scale", str(parity_scale), "--seed", str(SEED)]
        )
        assert code == 0, "simulate (hotpath off) failed"
        hotpath.set_enabled(True)
        results["parity"]["pcap_identical"] = filecmp.cmp(
            fast, slow, shallow=False
        )

    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    arms = results["arms"]
    lines = [
        "Hot-path plane (scale %.2f, %d conns, reuse %d):"
        % (results["scale"], results["connections"], results["reuse_rounds"]),
        "  %-24s %10.0f pps  vs %10.0f pps  (%.2fx)"
        % (
            "flight emission",
            arms["flight_emission"]["template_pps"],
            arms["flight_emission"]["rebuild_pps"],
            arms["flight_emission"]["speedup"],
        ),
        "  %-24s %10.0f k/s  vs %10.0f k/s  (%.1fx)"
        % (
            "initial keys memo",
            arms["initial_keys_memo"]["cached_keys_per_sec"],
            arms["initial_keys_memo"]["cold_keys_per_sec"],
            arms["initial_keys_memo"]["speedup"],
        ),
        "  %-24s %10.0f s/s  vs %10.0f s/s  (%.1fx)"
        % (
            "AES/GHASH schedule memo",
            arms["schedule_memo"]["cached_seals_per_sec"],
            arms["schedule_memo"]["cold_seals_per_sec"],
            arms["schedule_memo"]["speedup"],
        ),
        "  %-24s %s"
        % (
            "pcap parity (on vs off)",
            "identical" if results["parity"]["pcap_identical"] else "DIFFERS",
        ),
    ]
    if results["scale"] < MIN_SCALE_FOR_SPEEDUP:
        lines.append(
            "  (scale < %.1f: speedup floors not asserted, parity only)"
            % MIN_SCALE_FOR_SPEEDUP
        )
    return "\n".join(lines)


def _check(results):
    """Violations as human-readable strings (empty = pass)."""
    failures = []
    if not results["parity"]["pcap_identical"]:
        failures.append("parity violated: hotpath on/off pcaps differ")
    if results["scale"] < MIN_SCALE_FOR_SPEEDUP:
        return failures
    arms = results["arms"]
    flight = arms["flight_emission"]["speedup"]
    if flight < MIN_FLIGHT_SPEEDUP:
        failures.append(
            "flight emission reached %.2fx (< %.1fx) over the rebuild arm"
            % (flight, MIN_FLIGHT_SPEEDUP)
        )
    for arm in ("initial_keys_memo", "schedule_memo"):
        speedup = arms[arm]["speedup"]
        if speedup < MIN_MEMO_SPEEDUP:
            failures.append(
                "%s reached %.2fx (< %.1fx) over the cold arm"
                % (arm, speedup, MIN_MEMO_SPEEDUP)
            )
    return failures


def test_hotpath_speedups_and_parity(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("hotpath", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on parity/speedup violations (CI gate)",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="scenario scale"
    )
    args = parser.parse_args(argv)
    results = run_bench(scale=args.scale)
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
