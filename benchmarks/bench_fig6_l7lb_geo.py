"""Figure 6 — Facebook L7LBs per frontend cluster, by country/continent.

Paper: ~30 clusters per continent; the median number of L7LBs per cluster
is markedly higher in Asia (453) than in Europe (339.5) or North America
(292).  Our lab deploys clusters drawn around those medians (DESIGN.md §5)
and re-derives them purely from active host-ID enumeration.
"""

from conftest import GEO_REGIONS, report

from repro.core.geo import aggregate_clusters
from repro.core.report import render_table


def test_fig6_l7lb_geo(benchmark, geo_lab_results):
    sizes, geodb, deployed = geo_lab_results
    aggregation = benchmark.pedantic(
        aggregate_clusters, args=(sizes, geodb), rounds=1, iterations=1
    )
    boxes = aggregation.country_boxes()
    rows = [
        [b.country, b.count, b.minimum, "%.0f" % b.q1, "%.0f" % b.median, "%.0f" % b.q3, b.maximum]
        for b in boxes
    ]
    medians = aggregation.continent_medians()
    summary = render_table(
        ["Continent", "clusters", "median L7LBs"],
        [
            [continent, aggregation.clusters_per_continent()[continent], "%.1f" % m]
            for continent, m in sorted(medians.items())
        ],
        title="Figure 6: L7LBs per cluster (paper medians: Asia 453,"
        " EU 339.5, NA 292)",
    )
    report(
        "fig6_l7lb_geo",
        summary
        + "\n\n"
        + render_table(
            ["Country", "clusters", "min", "q1", "median", "q3", "max"], rows
        ),
    )

    # Ordering and rough magnitudes must match the paper.
    assert medians["Asia"] > medians["Europe"] > medians["North America"]
    assert medians["Asia"] > 380
    assert 250 < medians["North America"] < 360
    # Enumeration recovered (nearly) every deployed L7LB per cluster.
    for vip, observed in sizes.items():
        assert observed >= 0.95 * deployed[vip]
