"""Ablation — client-migration survival across LB designs (paper §2.2, §5).

The paper's problem statement: efficient load balancing under client
migration *requires* information encoding in connection IDs.  This bench
measures migration survival for the three fabrics the paper discusses:

* Facebook-style 5-tuple hashing        → any path change breaks;
* Google-style CID-aware hashing        → survives until the CID rotates;
* IETF QUIC-LB routable CIDs (draft)    → survives both.
"""

from conftest import report

from repro.active.migration import migration_matrix
from repro.active.prober import Prober
from repro.core.report import render_table
from repro.workloads.scenario import build_lb_lab


def test_ablation_migration(benchmark):
    lab = build_lb_lab(
        google_hosts=12, facebook_hosts=12, quic_lb_hosts=12, seed=909
    )
    deployments = {
        "Facebook (5-tuple)": (Prober(lab.loop, lab.network), lab.vips("Facebook")),
        "Google (CID-aware)": (
            Prober(lab.loop, lab.network, address="198.51.100.11"),
            lab.vips("Google"),
        ),
        "QUIC-LB (routable CIDs)": (
            Prober(lab.loop, lab.network, address="198.51.100.12"),
            lab.vips("QuicLB"),
        ),
    }
    matrix = benchmark.pedantic(
        migration_matrix,
        args=(deployments,),
        kwargs={"probes_per_cell": 10},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            deployment,
            "%.0f%%" % (100 * cells["same_cid"]),
            "%.0f%%" % (100 * cells["rotated_cid"]),
        ]
        for deployment, cells in matrix.items()
    ]
    report(
        "ablation_migration",
        render_table(
            ["Deployment", "migrate (same CID)", "migrate (rotated CID)"],
            rows,
            title="Ablation: migration survival (§2.2 — CID encoding is"
            " required for migration-safe load balancing)",
        ),
    )

    assert matrix["Facebook (5-tuple)"]["same_cid"] <= 0.25
    assert matrix["Google (CID-aware)"]["same_cid"] == 1.0
    assert matrix["Google (CID-aware)"]["rotated_cid"] == 0.0
    assert matrix["QUIC-LB (routable CIDs)"]["same_cid"] == 1.0
    assert matrix["QUIC-LB (routable CIDs)"]["rotated_cid"] == 1.0
