"""Table 5 — the Facebook mvfst SCID bit layout.

Paper values (bit positions inside the 8-byte connection ID):

    Version  Version  Host ID  Worker ID  Process ID  Random
    1        0-1      2-17     18-25      26          27-63
    2        0-1      8-31     32-39      40          2-7, 41-63

This bench verifies the layout field-by-field and times the decoder — the
kernel the passive pipeline runs on every Facebook SCID it observes.
"""

import random

from conftest import report

from repro.core.report import render_table
from repro.quic.cid import mvfst


def test_table5_mvfst_layout(benchmark):
    rng = random.Random(5)
    cids = [
        mvfst.MvfstCid(
            version=1,
            host_id=rng.randrange(1 << 16),
            worker_id=rng.randrange(256),
            process_id=rng.randrange(2),
            random_bits=rng.getrandbits(37),
        ).encode()
        for _ in range(5000)
    ]

    def decode_all():
        return [mvfst.decode(cid) for cid in cids]

    decoded = benchmark(decode_all)
    assert len(decoded) == 5000

    # Verify the bit layout exactly as printed in Table 5.
    rows = []
    for version, host_bits, worker_bits, process_bit, random_bits in (
        (1, "2-17", "18-25", "26", "27-63"),
        (2, "8-31", "32-39", "40", "2-7, 41-63"),
    ):
        rows.append([version, "0-1", host_bits, worker_bits, process_bit, random_bits])
    report(
        "table5_mvfst_cid",
        render_table(
            ["SCID Version", "Version", "Host ID", "Worker ID", "Process ID", "Random"],
            rows,
            title="Table 5: mvfst SCID structure (verified by codec round-trip)",
        ),
    )

    # Field placement checks for both versions.
    v1 = mvfst.MvfstCid(1, host_id=0xFFFF, worker_id=0, process_id=0, random_bits=0)
    assert int.from_bytes(v1.encode(), "big") == (1 << 62) | (0xFFFF << 46)
    v2 = mvfst.MvfstCid(2, host_id=0xFFFFFF, worker_id=0, process_id=0, random_bits=0)
    assert int.from_bytes(v2.encode(), "big") == (2 << 62) | (0xFFFFFF << 32)
    # Decoder inverts the encoder on every sample.
    for cid_bytes, fields in zip(cids, decoded):
        assert fields.encode() == cid_bytes
