"""§4.3-c — distinct host IDs are distinct L7LB instances (Appendix D).

Paper: Facebook servers track QUIC connection state per host and worker;
a follow-up handshake that reaches a *different* host ID completes
immediately and its SCID encodes new host/worker IDs.
"""

from conftest import report

from repro.active.lb_inference import same_instance_probe
from repro.active.prober import Prober
from repro.core.report import render_table
from repro.workloads.scenario import build_lb_lab


def test_same_instance(benchmark):
    lab = build_lb_lab(google_hosts=8, facebook_hosts=8, seed=777)
    prober = Prober(lab.loop, lab.network)
    vips = lab.vips("Facebook")[:6]

    def run():
        return [same_instance_probe(prober, vip) for vip in vips]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            i,
            r.first_host_id,
            r.first_worker_id,
            r.followup_host_id,
            r.followup_worker_id,
            r.reached_new_instance,
        ]
        for i, r in enumerate(results)
    ]
    report(
        "s43_same_instance",
        render_table(
            ["probe", "host", "worker", "follow-up host", "follow-up worker", "new instance"],
            rows,
            title="§4.3 same-instance detection (paper: different host IDs"
            " are individual L7LBs; state is per host+worker)",
        ),
    )
    # Every follow-up that changed host (or worker) completed immediately.
    assert all(not r.followup_delayed for r in results)
    assert any(r.followup_host_id != r.first_host_id for r in results)
    new_instances = [r for r in results if r.reached_new_instance]
    assert len(new_instances) >= len(results) - 1
