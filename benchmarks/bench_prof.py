"""Profiled pipeline baseline — where does simulate wall time go?

The ROADMAP's "vectorize the per-packet hot path" item needs a recorded
baseline of per-stage time shares before any optimization PR can claim a
win.  This bench runs the scale-0.1 telescope month exactly the way
``repro simulate --profile`` does — a :class:`~repro.obs.prof.Profiler`
threaded through the scenario with ``simulate.build``/``simulate.run``
spans around the phases — then checks the profiler's own accounting:

* **attribution** — the stage tree's estimated wall seconds must cover
  >= 95% of the measured wall time of the profiled run (nothing
  significant happens outside a named stage);
* **coverage** — the hot stages the vectorization work will target
  (``engine.flight``, ``engine.keys``, ``engine.aead``, ``net.transmit``)
  must all be present with nonzero attributed time;
* **export** — the speedscope document passes
  :func:`~repro.obs.prof.validate_speedscope`.

Results land in ``BENCH_prof.json`` at the repo root (per-stage self-time
shares, attribution ratio) and the flamegraph JSON in
``benchmarks/out/prof.speedscope.json``.  Run under pytest or as a script
— ``python benchmarks/bench_prof.py --check`` exits non-zero on any
violation (the CI gate).
"""

import argparse
import json
import os
import sys
import time

from repro.obs import MetricsRegistry, Observability, Profiler, validate_speedscope
from repro.workloads.scenario import ScenarioConfig, build_scenario

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_prof.json")
SPEEDSCOPE_PATH = os.path.join(
    os.path.dirname(__file__), "out", "prof.speedscope.json"
)
SIM_SCALE = 0.1
PROF_EVERY = 64
MIN_ATTRIBUTION = 0.95
#: Stages the vectorization roadmap item targets; all must be attributed.
REQUIRED_STAGES = ("engine.flight", "engine.keys", "engine.aead", "net.transmit")


def run_bench():
    """One profiled serial run; persists BENCH_prof.json + speedscope."""
    metrics = MetricsRegistry()
    prof = Profiler(PROF_EVERY, metrics=metrics)
    obs = Observability(metrics=metrics, prof=prof)
    config = ScenarioConfig(seed=11).scaled(SIM_SCALE)
    start = time.perf_counter()
    with obs.span("simulate.build", local=True):
        scenario = build_scenario(config, obs=obs)
    with obs.span("simulate.run", local=True):
        scenario.run()
    wall = time.perf_counter() - start

    attributed = prof.total_estimate()
    doc = prof.to_speedscope("repro simulate (scale %.2f)" % SIM_SCALE)
    os.makedirs(os.path.dirname(SPEEDSCOPE_PATH), exist_ok=True)
    with open(SPEEDSCOPE_PATH, "w") as fileobj:
        json.dump(doc, fileobj, indent=1, sort_keys=True)
        fileobj.write("\n")

    totals = prof.stage_totals()
    shares = prof.stage_shares()
    results = {
        "scale": SIM_SCALE,
        "prof_every": PROF_EVERY,
        "wall_seconds": round(wall, 4),
        "attributed_seconds": round(attributed, 4),
        "attribution": round(attributed / wall, 4) if wall else 0.0,
        "min_attribution": MIN_ATTRIBUTION,
        "events": scenario.loop.events_processed,
        "packets_delivered": scenario.network.stats.delivered,
        "speedscope": os.path.relpath(
            SPEEDSCOPE_PATH, os.path.join(os.path.dirname(__file__), os.pardir)
        ),
        "speedscope_problems": validate_speedscope(doc),
        "stages": {
            name: {
                "self_seconds": round(entry["self_seconds"], 6),
                "share": round(shares.get(name, 0.0), 4),
                "calls": entry["calls"],
                "packets": entry["packets"],
            }
            for name, entry in sorted(totals.items())
        },
    }
    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    lines = [
        "Pipeline profile (scale %.2f, sampled every %d): %.3fs wall, "
        "%.3fs attributed (%.1f%%)"
        % (
            results["scale"],
            results["prof_every"],
            results["wall_seconds"],
            results["attributed_seconds"],
            100 * results["attribution"],
        )
    ]
    ranked = sorted(
        results["stages"].items(), key=lambda kv: -kv[1]["self_seconds"]
    )
    for name, entry in ranked:
        lines.append(
            "  %-18s %8.4fs  %5.1f%%  %8d calls  %8d pkts"
            % (
                name,
                entry["self_seconds"],
                100 * entry["share"],
                entry["calls"],
                entry["packets"],
            )
        )
    return "\n".join(lines)


def _check(results):
    """Violations as human-readable strings (empty = pass)."""
    failures = []
    if results["attribution"] < MIN_ATTRIBUTION:
        failures.append(
            "profiler attributes only %.1f%% of wall time (need >= %.0f%%)"
            % (100 * results["attribution"], 100 * MIN_ATTRIBUTION)
        )
    for stage in REQUIRED_STAGES:
        entry = results["stages"].get(stage)
        if entry is None or entry["calls"] == 0:
            failures.append("required stage %r missing from the profile" % stage)
    for problem in results["speedscope_problems"]:
        failures.append("speedscope export invalid: %s" % problem)
    return failures


def test_prof_baseline(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("prof_baseline", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on attribution/coverage/schema violations (CI gate)",
    )
    args = parser.parse_args(argv)
    results = run_bench()
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
