"""Ablation — the FastProtection substitute does not change any result.

DESIGN.md §2 replaces RFC 9001 AES-GCM Initial protection with a
hash-based stand-in for bulk simulation.  This bench runs the *same*
(small) measurement month under both suites and verifies every passive
measurement is identical: RTOs, coalescence shares, SCID statistics, and
sanitization counts.  It also quantifies the speed gap that motivates the
substitution.
"""

import time

from conftest import report
from dataclasses import replace

from repro.core.packet_mix import packet_mix
from repro.core.report import render_table
from repro.core.scid_stats import table4
from repro.core.timing import timing_profiles
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _mini_config(suite: str) -> ScenarioConfig:
    return replace(
        ScenarioConfig(seed=777, suite=suite),
        facebook_clusters=2,
        google_clusters=2,
        cloudflare_clusters=1,
        facebook_offnets=3,
        cloudflare_offnets=0,
        remaining_servers=15,
        attacks_facebook=70,
        attacks_google=110,
        attacks_cloudflare=15,
        attacks_offnet=25,
        attacks_remaining=30,
        telescope_bias=1.0,
        research_scan_packets=150,
        unknown_scan_packets=80,
        zero_rtt_scan_packets=4,
        noise_packets=40,
    )


def _measure(suite: str):
    started = time.perf_counter()
    scenario = build_scenario(_mini_config(suite))
    scenario.run()
    elapsed = time.perf_counter() - started
    capture = scenario.classify()
    timing = timing_profiles(capture.backscatter)
    mix = packet_mix(capture.backscatter)
    scids = table4(capture.backscatter)
    return {
        "seconds": elapsed,
        "backscatter": capture.stats.backscatter,
        "removed": capture.stats.removed,
        "fb_rto": round(timing["Facebook"].initial_rto, 2),
        "gg_rto": round(timing["Google"].initial_rto, 2),
        "gg_coalesced": round(mix.coalescence_share("Google"), 1),
        "cf_scid_len": scids["Cloudflare"].dominant_length,
        "fb_unique_scids": scids["Facebook"].unique_count,
    }


def test_ablation_crypto_suite(benchmark):
    def run_both():
        return {suite: _measure(suite) for suite in ("fast", "rfc9001")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    fast, real = results["fast"], results["rfc9001"]
    rows = [
        [key, fast[key], real[key]]
        for key in (
            "backscatter",
            "removed",
            "fb_rto",
            "gg_rto",
            "gg_coalesced",
            "cf_scid_len",
            "fb_unique_scids",
        )
    ]
    rows.append(["simulation seconds", "%.1f" % fast["seconds"], "%.1f" % real["seconds"]])
    report(
        "ablation_crypto",
        render_table(
            ["measurement", "FastProtection", "RFC 9001 AES-GCM"],
            rows,
            title="Ablation: protection suite (identical measurements,"
            " ~%.0fx speedup)" % (real["seconds"] / max(fast["seconds"], 1e-9)),
        ),
    )

    # Every measured property is identical under both suites.
    for key in ("backscatter", "fb_rto", "gg_rto", "cf_scid_len", "fb_unique_scids"):
        assert fast[key] == real[key], key
    assert abs(fast["gg_coalesced"] - real["gg_coalesced"]) < 0.01
    # And the real crypto is (much) slower — the reason the substitute exists.
    assert real["seconds"] > fast["seconds"]
