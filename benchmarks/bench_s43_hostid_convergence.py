"""§4.3-a — host-ID discovery converges: one VIP reveals the cluster.

Paper: 20k handshakes per VIP with decreasing client port; on average 85%
of all host IDs appear within the first 1k handshakes.
"""

from conftest import report

from repro.core.l7lb import convergence_curve
from repro.core.report import render_table


def test_hostid_convergence(benchmark, convergence_results):
    ids, deployed = convergence_results
    curve = benchmark.pedantic(
        convergence_curve,
        args=([h for h in ids if h is not None],),
        rounds=1,
        iterations=1,
    )
    checkpoints = [100, 250, 500, 1000, 2000, 5000, len(curve.counts)]
    rows = [
        [k, curve.counts[min(k, len(curve.counts)) - 1], "%.1f%%" % (100 * curve.coverage_at(k))]
        for k in checkpoints
        if k <= len(curve.counts)
    ]
    report(
        "s43_hostid_convergence",
        render_table(
            ["handshakes", "unique host IDs", "coverage"],
            rows,
            title="§4.3 convergence (paper: ~85%% after 1k handshakes;"
            " cluster has %d L7LBs)" % deployed,
        ),
    )
    # The paper's headline: ~85% after 1k handshakes, near-complete at 20k.
    assert 0.75 <= curve.coverage_at(1000) <= 0.95
    assert curve.coverage_at(len(curve.counts)) == 1.0
    assert curve.total >= 0.97 * deployed
