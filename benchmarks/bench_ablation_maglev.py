"""Ablation — Maglev table size vs. load balance and disruption.

DESIGN.md sizes the Maglev lookup table at 1021 (vs. the production 65537).
This bench quantifies the trade-off the NSDI paper describes: larger tables
buy tighter load balance and less disruption when a backend fails, at
higher build cost — and validates that our default is adequate for the
backend counts the reproduction simulates.
"""

from conftest import report

from repro.core.report import render_table
from repro.server.lb.maglev import MaglevTable, flow_key

BACKENDS = 24
TABLE_SIZES = (251, 1021, 4099, 16381)


def _imbalance(table: MaglevTable) -> float:
    loads = table.load_distribution()
    mean = sum(loads) / len(loads)
    return (max(loads) - min(loads)) / mean


def _removal_disruption(size: int) -> float:
    names = [b"b%d" % i for i in range(BACKENDS)]
    full = MaglevTable(names, table_size=size)
    reduced = MaglevTable(names[:-1], table_size=size)
    moved = 0
    total = 3000
    for port in range(total):
        key = flow_key(0x0A000001, port, 0x0A000002, 443)
        before = full.lookup(key)
        if before != BACKENDS - 1 and before != reduced.lookup(key):
            moved += 1
    return moved / total


def test_ablation_maglev(benchmark):
    def build_all():
        return {
            size: MaglevTable([b"b%d" % i for i in range(BACKENDS)], table_size=size)
            for size in TABLE_SIZES
        }

    tables = benchmark(build_all)
    rows = []
    results = {}
    for size in TABLE_SIZES:
        imbalance = _imbalance(tables[size])
        disruption = _removal_disruption(size)
        results[size] = (imbalance, disruption)
        rows.append([size, "%.3f" % imbalance, "%.3f" % disruption])
    report(
        "ablation_maglev",
        render_table(
            ["table size", "load imbalance (max-min)/mean", "removal disruption"],
            rows,
            title="Ablation: Maglev table size (%d backends; NSDI'16 §5.3"
            " shape: bigger tables -> tighter balance)" % BACKENDS,
        ),
    )

    # Bigger tables balance better...
    assert results[16381][0] < results[251][0]
    # ...and our 1021 default keeps imbalance and disruption modest.
    assert results[1021][0] < 0.5
    assert results[1021][1] < 0.20
