"""§4.3-d — CID-aware load balancing only at Google (Appendix D method).

Paper: follow-up handshakes towards the same VIP with a different 5-tuple
but the same server CID fail for ~240 s at Google (same instance keeps the
state) and complete immediately at Facebook (a new 5-tuple reaches a new
L7LB).
"""

import statistics

from conftest import report

from repro.active.lb_inference import classify_lb
from repro.core.report import render_table


def test_cid_aware_lb(benchmark, lb_outcomes):
    def classify_all():
        return {
            hypergiant: [classify_lb(outcome) for outcome in outcomes]
            for hypergiant, outcomes in lb_outcomes.items()
        }

    verdicts = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    rows = []
    for hypergiant, outcomes in lb_outcomes.items():
        delays = [o.delay for o in outcomes if o.delay is not None]
        rows.append(
            [
                hypergiant,
                len(outcomes),
                "%.1f" % statistics.median(delays),
                "%.1f" % max(delays),
                verdicts[hypergiant][0],
            ]
        )
    report(
        "s43_cid_aware_lb",
        render_table(
            ["Provider", "VIPs probed", "median delay [s]", "max [s]", "LB type"],
            rows,
            title="§4.3 LB inference (paper: Google fails ~240 s -> CID-aware;"
            " Facebook immediate -> 5-tuple)",
        ),
    )

    google_delays = [o.delay for o in lb_outcomes["Google"]]
    facebook_delays = [o.delay for o in lb_outcomes["Facebook"]]
    assert all(200 < d < 280 for d in google_delays)
    assert all(d < 10 for d in facebook_delays)
    assert set(verdicts["Google"]) == {"cid-aware"}
    assert set(verdicts["Facebook"]) == {"5-tuple"}
