"""Table 2 — QUIC versions used by clients and servers, 2021 vs 2022.

Paper values (sessions, percent):

                      Clients          Servers
    Version           2021   2022      2021   2022
    QUICv1             0.1   77.7       -     48.1
    Facebook mvfst 2  17.5   21.2      18.8   33.2
    draft-29          30.2    0.5      51.9    0.9
    others             4.1    0.1       8.8   11.4
"""

from conftest import report

from repro.core.report import render_table
from repro.core.versions import TABLE2_ROWS, table2, table2_rows


def test_table2_versions(benchmark, capture_2021, capture_2022):
    rows = benchmark.pedantic(
        table2_rows,
        args=({2021: capture_2021, 2022: capture_2022},),
        rounds=1,
        iterations=1,
    )
    table = [
        [
            bucket,
            "%.1f" % clients[2021],
            "%.1f" % clients[2022],
            "%.1f" % servers[2021],
            "%.1f" % servers[2022],
        ]
        for bucket, clients, servers in rows
    ]
    report(
        "table2_versions",
        render_table(
            ["QUIC version", "Clients'21", "Clients'22", "Servers'21", "Servers'22"],
            table,
            title="Table 2: version adoption by sessions"
            " (paper '22: clients v1 77.7/mvfst2 21.2; servers v1 48.1/mvfst2 33.2)",
        ),
    )
    new = table2(capture_2022)
    old = table2(capture_2021)
    # Rapid v1 adoption: dominant in 2022, absent in 2021.
    assert new["clients"].share("QUICv1") > 60
    assert old["clients"].share("QUICv1") < 5
    assert old["servers"].share("draft-29") > new["servers"].share("draft-29")
