"""Figure 5 — relative frequency of SCID nybble values per position.

Paper: Google's SCIDs are uniform (every cell ≈ 1/16 = 0.063); Facebook's
first bytes show strong structure (the mvfst version/host/worker fields).
"""

from conftest import report

from repro.core.scid_entropy import is_structured, nybble_matrix
from repro.core.scid_stats import scids_by_origin


def _render_matrix(name: str, matrix) -> str:
    lines = [
        "%s (n=%d): nybble frequency by position (paper: uniform=0.063)"
        % (name, matrix.sample_size),
        "pos  " + " ".join("%4x" % v for v in range(16)),
    ]
    for position, row in enumerate(matrix.freq[:16]):
        lines.append(
            "%3d  " % position + " ".join("%4.2f" % value for value in row)
        )
    entropy = matrix.entropy_per_position()[:16]
    lines.append("entropy/position: " + " ".join("%.1f" % h for h in entropy))
    return "\n".join(lines)


def test_fig5_scid_entropy(benchmark, capture_2022):
    scids = scids_by_origin(capture_2022.backscatter)

    def build():
        return {
            origin: nybble_matrix(scids[origin])
            for origin in ("Google", "Facebook")
        }

    matrices = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "fig5_scid_entropy",
        "Figure 5\n\n"
        + _render_matrix("Google", matrices["Google"])
        + "\n\n"
        + _render_matrix("Facebook", matrices["Facebook"]),
    )

    google, facebook = matrices["Google"], matrices["Facebook"]
    assert not is_structured(google)
    assert is_structured(facebook)
    # Facebook's structure lives in the leading (host/worker) positions;
    # its random tail is as flat as Google's everywhere.
    assert max(facebook.freq[0]) > 0.2
    assert facebook.entropy_per_position()[0] < 3.0
    assert facebook.entropy_per_position()[-1] > 3.5
    assert all(h > 3.5 for h in google.entropy_per_position())
