"""Figure 4 — number of resent Initial/Handshake messages per connection.

Paper: Facebook attempts the most reconnects (7-9), Google and Cloudflare
3-6 — making Facebook more vulnerable to state-building INITIAL floods but
also a richer backscatter source.
"""

from conftest import report

from repro.core.report import render_histogram
from repro.core.timing import resend_count_distribution, timing_profiles


def test_fig4_resend_counts(benchmark, capture_2022):
    distribution = benchmark.pedantic(
        resend_count_distribution,
        args=(capture_2022.backscatter,),
        rounds=1,
        iterations=1,
    )
    sections = []
    for origin in ("Cloudflare", "Facebook", "Google", "Remaining"):
        counts = distribution.get(origin)
        if not counts:
            continue
        series = sorted(counts.items())
        sections.append(
            render_histogram(
                series,
                width=36,
                title="%s: resent flights per connection" % origin,
            )
        )
        sections.append("")
    report(
        "fig4_resend_counts",
        "Figure 4 (paper: FB 7-9 resends, GG/CF 3-6)\n\n" + "\n".join(sections),
    )

    profiles = timing_profiles(capture_2022.backscatter)
    fb = profiles["Facebook"].resend_range
    gg = profiles["Google"].resend_range
    cf = profiles["Cloudflare"].resend_range
    assert 7 <= fb[0] <= fb[1] <= 9
    assert 3 <= gg[0] <= gg[1] <= 6
    assert 3 <= cf[0] <= cf[1] <= 6
    # Facebook is the most persistent — the paper's vulnerability claim.
    assert fb[1] > max(gg[1], cf[1])
