"""Table 6 — off-net Facebook classification from backscatter features.

Paper values (selected rows):

    Classifier                     TPR     FPR     Precision
    Inter arrival time             0.772   0.268   0.645
    SCID                           1.000   0.193   0.765
    SCID & coalescence             1.000   0.179   0.779
    Coalescence                    1.000   0.931   0.403
    SCID off-net (low host ID)     1.000   0.027   0.959

Reproduction targets: SCID-based rows at TPR 1.0, coalescence-only nearly
useless (huge FPR), and the low-host-ID predictor slashing the FPR.
"""

from conftest import report

from repro.core.offnet import evaluate_classifiers, extract_features
from repro.core.report import render_table


def test_table6_offnet_classifier(benchmark, scenario_2022, capture_2022):
    def run():
        features = extract_features(capture_2022.backscatter)
        return evaluate_classifiers(features, scenario_2022.certstore)

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            m.name,
            "%.4f" % m.tpr,
            "%.4f" % m.fpr,
            "%.4f" % m.tnr,
            "%.4f" % m.fnr,
            "%.4f" % m.precision,
            "%.4f" % m.recall,
        ]
        for m in metrics
    ]
    report(
        "table6_offnet_classifier",
        render_table(
            ["Classifier", "TPR", "FPR", "TNR", "FNR", "Precision", "Recall"],
            rows,
            title="Table 6: off-net Facebook classification"
            " (paper: SCID TPR 1.0/FPR 0.19; low-host-ID TPR 1.0/FPR 0.027)",
        ),
    )
    by_name = {m.name: m for m in metrics}
    assert by_name["SCID"].tpr == 1.0
    assert by_name["SCID off-net (low host ID)"].tpr == 1.0
    assert by_name["SCID off-net (low host ID)"].fpr < by_name["SCID"].fpr
    assert by_name["Coalescence"].fpr > by_name["SCID"].fpr
    assert (
        by_name["SCID off-net (low host ID)"].precision
        > by_name["SCID"].precision
    )
