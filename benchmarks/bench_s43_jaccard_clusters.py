"""§4.3-b — Jaccard clustering of VIPs by shared host IDs.

Paper: the minimum pairwise Jaccard index between VIPs sharing any host ID
is 0.996 — VIPs either share (essentially) all host IDs or none — yielding
112 clusters with 22 VIPs each plus three clusters of 21, 20 and 44 VIPs.

We reproduce the cluster structure exactly; per-cluster host counts are
scaled down (14 vs ~300-450), which makes a single missed host cost more
Jaccard, so the minimum is asserted at a correspondingly looser bound.
"""

from collections import Counter

from conftest import report

from repro.core.l7lb import cluster_vips
from repro.core.report import render_table


def test_jaccard_clusters(benchmark, jaccard_lab_results):
    per_vip, deployed_sizes = jaccard_lab_results
    clustering = benchmark.pedantic(
        cluster_vips, args=(per_vip,), rounds=1, iterations=1
    )
    histogram = clustering.size_histogram()
    rows = [
        [size, count] for size, count in sorted(histogram.items(), reverse=True)
    ]
    report(
        "s43_jaccard_clusters",
        render_table(
            ["VIPs per cluster", "# clusters"],
            rows,
            title="§4.3 VIP clustering (paper: 112 clusters x 22 VIPs,"
            " plus 21/20/44; min intra-Jaccard 0.996, inter 0)",
        )
        + "\nmin intra-cluster Jaccard: %.3f" % clustering.min_intra_jaccard
        + "\nmax inter-cluster Jaccard: %.3f" % clustering.max_inter_jaccard,
    )

    # The recovered partition must match the deployed one exactly.
    assert sorted(len(c) for c in clustering.clusters) == sorted(deployed_sizes)
    expected = Counter(deployed_sizes)
    assert histogram == dict(expected)
    # Same-cluster VIPs share (nearly) everything; others share nothing.
    assert clustering.min_intra_jaccard > 0.85
    assert clustering.max_inter_jaccard == 0.0
