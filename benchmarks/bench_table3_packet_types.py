"""Table 3 — long-header packet types per source network.

Paper values (percent of packets from each source network):

    Type        Cloudflare  Facebook  Google  Remaining
    Initial         56.0      47.7     23.2     47.0
    Handshake       40.7      52.3     23.7     43.8
    0-RTT            0.0       0.0      0.3      0.2
    Retry            0.0       0.0      0.0      0.003
    Coalesced        3.3       0.0     52.7      9.1
"""

from conftest import report

from repro.core.packet_mix import TABLE3_ROWS, packet_mix
from repro.core.report import render_table

ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")


def test_table3_packet_types(benchmark, capture_2022):
    packets = capture_2022.backscatter + capture_2022.scans
    mix = benchmark.pedantic(packet_mix, args=(packets,), rounds=1, iterations=1)
    rows = [
        [category] + ["%.3f" % mix.share(origin, category) for origin in ORIGINS]
        for category in TABLE3_ROWS
    ]
    report(
        "table3_packet_types",
        render_table(
            ["QUIC packet type"] + list(ORIGINS),
            rows,
            title="Table 3: packet types per source network"
            " (paper: only Google predominantly coalesces, 52.7%)",
        ),
    )
    assert mix.coalescence_share("Google") > 30
    assert mix.coalescence_share("Facebook") == 0.0
    assert 0 < mix.coalescence_share("Cloudflare") < 15
    assert mix.share("Google", "0-RTT") > 0
    assert mix.share("Facebook", "0-RTT") == 0.0
