"""Ablation — the telescope-bias substitution does not distort results.

DESIGN.md §2 biases attackers' spoofed addresses toward the telescope
prefix to cut simulation cost, arguing the bias only scales the *volume*
of captured backscatter, never its per-flow properties.  This bench runs
the same month at three bias levels and verifies the measured RTOs,
coalescence shares, and version mix are invariant.
"""

import pytest
from conftest import report
from dataclasses import replace

from repro.core.packet_mix import packet_mix
from repro.core.report import render_table
from repro.core.timing import timing_profiles
from repro.core.versions import table2
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _measure(bias: float):
    config = replace(
        ScenarioConfig(seed=31337).scaled(0.22),
        telescope_bias=bias,
        research_scan_packets=500,
        noise_packets=200,
    )
    scenario = build_scenario(config)
    scenario.run()
    capture = scenario.classify()
    timing = timing_profiles(capture.backscatter)
    mix = packet_mix(capture.backscatter)
    versions = table2(capture)
    return {
        "backscatter": capture.stats.backscatter,
        "fb_rto": timing["Facebook"].initial_rto,
        "gg_rto": timing["Google"].initial_rto,
        "gg_coalesced": mix.coalescence_share("Google"),
        "server_v1": versions["servers"].share("QUICv1"),
    }


def test_ablation_telescope_bias(benchmark):
    def run_all():
        return {bias: _measure(bias) for bias in (0.25, 0.55, 0.9)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            bias,
            r["backscatter"],
            "%.2f" % r["fb_rto"],
            "%.2f" % r["gg_rto"],
            "%.1f" % r["gg_coalesced"],
            "%.1f" % r["server_v1"],
        ]
        for bias, r in results.items()
    ]
    report(
        "ablation_bias",
        render_table(
            ["spoof bias", "backscatter", "FB RTO", "GG RTO", "GG coalesced %", "v1 %"],
            rows,
            title="Ablation: telescope spoof bias scales volume only"
            " (validates the DESIGN.md substitution)",
        ),
    )

    low, mid, high = results[0.25], results[0.55], results[0.9]
    # Volume scales with the bias...
    assert low["backscatter"] < mid["backscatter"] < high["backscatter"]
    # ...while every measured property stays put.
    for r in (low, mid, high):
        assert r["fb_rto"] == pytest.approx(0.4, abs=0.05)
        assert r["gg_rto"] == pytest.approx(0.3, abs=0.05)
        assert r["gg_coalesced"] == pytest.approx(mid["gg_coalesced"], abs=8)
        assert r["server_v1"] == pytest.approx(mid["server_v1"], abs=8)
