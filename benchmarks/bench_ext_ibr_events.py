"""Extension — attack-event recovery from backscatter (§3 grounding).

The paper's premise is that QUIC backscatter stems from INITIAL floods
(QUICsand).  This extension bench inverts the telescope data back into
*events*: per-victim bursts with duration, rate, and spoofed-address
spread — and checks the recovered landscape matches the simulated one
(every hypergiant attacked; Facebook floods produce the most backscatter
per connection, as §4.1 predicts).
"""

from conftest import report

from repro.core.ibr_activity import summarize_ibr
from repro.core.report import render_table
from repro.core.session import SessionStore


def test_ext_ibr_events(benchmark, capture_2022):
    summary = benchmark.pedantic(
        summarize_ibr,
        args=(capture_2022.backscatter,),
        kwargs={"quiet_gap": 180.0, "min_packets": 8},
        rounds=1,
        iterations=1,
    )
    per_origin = summary.events_per_origin()
    rows = [
        [origin, count]
        for origin, count in sorted(per_origin.items(), key=lambda kv: -kv[1])
    ]
    busiest = summary.busiest(5)
    detail = render_table(
        ["victim origin", "flood events"],
        rows,
        title="Extension: attack events recovered from backscatter",
    )
    detail += "\n\nbusiest victims:\n" + render_table(
        ["origin", "packets", "duration [s]", "rate [pkt/s]", "spoofed addrs"],
        [
            [e.origin, e.packets, "%.0f" % e.duration, "%.2f" % e.rate, e.spoofed_targets]
            for e in busiest
        ],
    )
    report("ext_ibr_events", detail)

    # Every simulated attack campaign is visible as events.
    assert {"Facebook", "Google", "Cloudflare", "Remaining"} <= set(per_origin)
    assert summary.victims > 100

    # §4.1: Facebook's deeper retransmission ladder means more backscatter
    # per connection than Google's.
    store = SessionStore.from_packets(capture_2022.backscatter)
    fb = store.by_origin("Facebook")
    gg = store.by_origin("Google")
    fb_per_session = sum(s.datagram_count for s in fb) / len(fb)
    gg_per_session = sum(s.datagram_count for s in gg) / len(gg)
    assert fb_per_session > 1.5 * gg_per_session
