"""Figure 3 — time since first reception of an SCID (retransmission timing).

Paper: peaks at each deployment's RTO ladder; initial RTOs are 1 s
(Cloudflare), 0.4 s (Facebook), 0.3 s (Google); all use exponential
backoff.
"""

import pytest
from conftest import report

from repro.core.report import render_histogram, render_table
from repro.core.timing import gap_histogram, timing_profiles


def test_fig3_rto(benchmark, capture_2022):
    profiles = benchmark.pedantic(
        timing_profiles, args=(capture_2022.backscatter,), rounds=1, iterations=1
    )
    histogram = gap_histogram(capture_2022.backscatter, bin_width=0.1, max_seconds=8.0)

    sections = [
        render_table(
            ["Origin", "sessions", "initial RTO [s]", "backoff"],
            [
                [
                    origin,
                    profiles[origin].sessions,
                    "%.2f" % profiles[origin].initial_rto,
                    "%.2f" % profiles[origin].backoff_factor,
                ]
                for origin in ("Cloudflare", "Facebook", "Google", "Remaining")
                if origin in profiles and profiles[origin].initial_rto is not None
            ],
            title="Figure 3: retransmission timing (paper: CF 1 s, FB 0.4 s,"
            " GG 0.3 s, exponential backoff)",
        )
    ]
    for origin in ("Facebook", "Google", "Cloudflare"):
        series = sorted(histogram.get(origin, {}).items())[:30]
        sections.append(
            render_histogram(
                [("%.1f" % t, n) for t, n in series],
                width=36,
                title="\n%s: datagrams since first SCID sighting (s)" % origin,
            )
        )
    report("fig3_rto", "\n".join(sections))

    assert profiles["Cloudflare"].initial_rto == pytest.approx(1.0, abs=0.07)
    assert profiles["Facebook"].initial_rto == pytest.approx(0.4, abs=0.05)
    assert profiles["Google"].initial_rto == pytest.approx(0.3, abs=0.05)
    for origin in ("Cloudflare", "Facebook", "Google"):
        assert profiles[origin].backoff_factor == pytest.approx(2.0, abs=0.25)
