"""Figure 7 — top-7 QUIC packet lengths per content provider.

Paper: each hypergiant shows a distinct pattern of packet lengths;
comma-separated values are packets coalesced into one UDP datagram;
"Remaining" traffic shares Facebook's and Google's signatures (their
off-nets live there).
"""

from conftest import report

from repro.core.packet_mix import top_length_signatures
from repro.core.report import render_histogram


def test_fig7_packet_lengths(benchmark, capture_2022):
    tops = benchmark.pedantic(
        top_length_signatures,
        args=(capture_2022.backscatter,),
        kwargs={"top": 7},
        rounds=1,
        iterations=1,
    )
    sections = ["Figure 7 (paper: distinct per-provider length patterns)"]
    for origin in ("Cloudflare", "Facebook", "Google", "Remaining"):
        sections.append(
            render_histogram(
                tops.get(origin, []),
                width=36,
                title="\n%s: top QUIC packet-length combinations" % origin,
            )
        )
    report("fig7_packet_lengths", "\n".join(sections))

    facebook = [sig for sig, _ in tops["Facebook"]]
    google = [sig for sig, _ in tops["Google"]]
    remaining = [sig for sig, _ in tops["Remaining"]]
    # Facebook never coalesces; Google's top signature is a coalesced pair.
    assert all("," not in sig for sig in facebook)
    assert any("," in sig for sig in google)
    assert google[0].count(",") == 1
    # Remaining shares Facebook's signatures via off-nets (paper's note).
    assert set(facebook) & set(remaining)
