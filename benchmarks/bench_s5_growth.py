"""§5 — QUIC backscatter and scan growth, April 2021 → January 2022.

Paper: sanitized backscatter grew 4.4x and scans 8.1x year over year; the
sanitization step removes ~92% of raw packets (dominated by documented
research scans of the whole /9).  Our scenarios encode those ratios in
their traffic volumes; this bench re-measures them through the full
pipeline.
"""

from conftest import report

from repro.core.report import render_table


def test_growth(benchmark, capture_2021, capture_2022):
    def ratios():
        return (
            capture_2022.stats.backscatter / max(capture_2021.stats.backscatter, 1),
            capture_2022.stats.scans / max(capture_2021.stats.scans, 1),
        )

    backscatter_growth, scan_growth = benchmark.pedantic(
        ratios, rounds=1, iterations=1
    )
    rows = [
        ["raw records", capture_2021.stats.total_records, capture_2022.stats.total_records],
        ["backscatter", capture_2021.stats.backscatter, capture_2022.stats.backscatter],
        ["scans", capture_2021.stats.scans, capture_2022.stats.scans],
        [
            "removed by sanitization",
            "%.0f%%" % (100 * capture_2021.stats.removed_share),
            "%.0f%%" % (100 * capture_2022.stats.removed_share),
        ],
    ]
    report(
        "s5_growth",
        render_table(
            ["metric", "Apr 2021", "Jan 2022"],
            rows,
            title="§5 growth (paper: backscatter x4.4, scans x8.1;"
            " sanitization removes 92%)",
        )
        + "\nbackscatter growth: %.1fx   scan growth: %.1fx"
        % (backscatter_growth, scan_growth),
    )

    assert backscatter_growth > 2.5
    assert scan_growth > 4.0
    # Research scans dominate removals in both years.
    for capture in (capture_2021, capture_2022):
        assert capture.stats.acknowledged_scanner > capture.stats.failed_dissection
