"""Ablation — what each sanitization stage removes (paper §3.2).

The paper removes false positives "based on the packet payload using
Wireshark dissectors" and subtracts acknowledged scanners.  This bench
re-runs classification with stages disabled to show what each contributes:

* no dissector crypto-validation → corrupted/forged Initials survive;
* no acknowledged-scanner list   → research sweeps pollute client stats.
"""

import random

from conftest import report

from repro.core.report import render_table
from repro.core.versions import table2
from repro.netstack.pcap import PcapRecord
from repro.telescope.classify import classify_capture


def _with_corruption(records, rng, share=0.05):
    """Flip one byte in a share of records (bit-rot / forged traffic)."""
    out = []
    for record in records:
        if rng.random() < share and len(record.data) > 40:
            data = bytearray(record.data)
            data[-1 - rng.randrange(16)] ^= 0xFF
            out.append(PcapRecord(record.timestamp, bytes(data)))
        else:
            out.append(record)
    return out


def test_ablation_sanitizer(benchmark, scenario_2022):
    rng = random.Random(99)
    records = _with_corruption(scenario_2022.telescope.records, rng)

    def run_all():
        full = classify_capture(
            records,
            asdb=scenario_2022.asdb,
            acknowledged=scenario_2022.acknowledged,
            validate_crypto_scans=True,
        )
        no_crypto = classify_capture(
            records,
            asdb=scenario_2022.asdb,
            acknowledged=scenario_2022.acknowledged,
            validate_crypto_scans=False,
        )
        no_acknowledged = classify_capture(
            records,
            asdb=scenario_2022.asdb,
            acknowledged=None,
            validate_crypto_scans=True,
        )
        return full, no_crypto, no_acknowledged

    full, no_crypto, no_acknowledged = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    rows = [
        [
            "full pipeline",
            full.stats.scans,
            full.stats.failed_dissection,
            "%.1f" % table2(full)["clients"].share("QUICv1"),
        ],
        [
            "no AEAD validation",
            no_crypto.stats.scans,
            no_crypto.stats.failed_dissection,
            "%.1f" % table2(no_crypto)["clients"].share("QUICv1"),
        ],
        [
            "no acknowledged list",
            no_acknowledged.stats.scans,
            no_acknowledged.stats.failed_dissection,
            "%.1f" % table2(no_acknowledged)["clients"].share("QUICv1"),
        ],
    ]
    report(
        "ablation_sanitizer",
        render_table(
            ["pipeline", "scan pkts kept", "dissector drops", "client v1 share"],
            rows,
            title="Ablation: sanitization stages (paper §3.2 — scanners"
            " with reserved versions would otherwise bias version stats)",
        ),
    )

    # Crypto validation catches corrupted Initials structural checks miss.
    assert no_crypto.stats.failed_dissection < full.stats.failed_dissection
    assert no_crypto.stats.scans > full.stats.scans
    # Without the acknowledged list, greased research probes flood the
    # client-version statistics ("others"), diluting the v1 share.
    assert no_acknowledged.stats.scans > full.stats.scans * 2
    assert (
        table2(no_acknowledged)["clients"].share("QUICv1")
        < table2(full)["clients"].share("QUICv1") * 0.6
    )
