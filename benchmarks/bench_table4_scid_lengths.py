"""Table 4 — SCID lengths and unique-SCID counts per origin AS.

Paper values:

    Origin AS   SCID length [bytes]   Unique SCIDs
    Cloudflare  20                    170
    Facebook    8                     63,615
    Google      8                     111,825
    Remaining   8 (4, 12, 14, 20)     29,294 (162)

We run at ~1/20 traffic scale; the *ordering* and the length fingerprints
are the reproduction targets.
"""

from conftest import report

from repro.core.report import render_table
from repro.core.scid_stats import table4

ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")


def test_table4_scid_lengths(benchmark, capture_2022):
    stats = benchmark.pedantic(
        table4, args=(capture_2022.backscatter,), rounds=1, iterations=1
    )
    rows = [
        [origin, stats[origin].length_summary(), stats[origin].unique_count]
        for origin in ORIGINS
    ]
    report(
        "table4_scid_lengths",
        render_table(
            ["Origin AS", "SCID length [Bytes]", "Unique SCIDs [#]"],
            rows,
            title="Table 4: SCIDs per origin AS (paper: CF 20 B/170;"
            " FB 8 B/63615; GG 8 B/111825; Remaining 8 B/29294)",
        ),
    )
    assert stats["Cloudflare"].dominant_length == 20
    assert stats["Facebook"].dominant_length == 8
    assert stats["Google"].dominant_length == 8
    # Ordering: Google > Facebook > Remaining > Cloudflare.
    assert (
        stats["Google"].unique_count
        > stats["Facebook"].unique_count
        > stats["Cloudflare"].unique_count
    )
    assert stats["Remaining"].unique_count > stats["Cloudflare"].unique_count
