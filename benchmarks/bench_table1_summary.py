"""Table 1 — measured QUIC deployment configurations of hypergiants.

Paper values:

    Feature             Cloudflare  Facebook  Google
    Coalescence         yes         no        yes
    Server-chosen IDs   yes         yes       no
    Structured SCIDs    yes         yes       no
    L7 load balancers   n/a         yes       n/a
    Initial RTO         1 s         0.4 s     0.3 s
    # re-transmissions  3-6         7-9       3-6
"""

from conftest import report

from repro.core.report import render_table
from repro.core.summary import HYPERGIANT_COLUMNS, summarize


def test_table1_summary(benchmark, capture_2022):
    summary = benchmark.pedantic(
        summarize, args=(capture_2022.backscatter,), rounds=1, iterations=1
    )
    rows = [
        ["Coalescence"] + [summary[h].coalescence for h in HYPERGIANT_COLUMNS],
        ["Server-chosen IDs"]
        + [summary[h].server_chosen_ids for h in HYPERGIANT_COLUMNS],
        ["Structured SCIDs"]
        + [summary[h].structured_scids for h in HYPERGIANT_COLUMNS],
        ["L7 load balancers"]
        + [
            "yes" if summary[h].l7_load_balancers else "n/a"
            for h in HYPERGIANT_COLUMNS
        ],
        ["Initial RTO"] + [summary[h].rto_label() for h in HYPERGIANT_COLUMNS],
        ["# re-transmissions"]
        + [summary[h].resend_label() for h in HYPERGIANT_COLUMNS],
    ]
    report(
        "table1_summary",
        render_table(
            ["Feature"] + list(HYPERGIANT_COLUMNS),
            rows,
            title="Table 1: deployment configurations (paper: CF y/y/y/na/1s/3-6,"
            " FB n/y/y/yes/0.4s/7-9, GG y/n/n/na/0.3s/3-6)",
        ),
    )
    # The paper's qualitative matrix must hold exactly.
    assert summary["Facebook"].l7_load_balancers
    assert not summary["Google"].server_chosen_ids
    assert summary["Cloudflare"].coalescence
