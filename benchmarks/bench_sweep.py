"""Sweep plane — per-cell cache effectiveness on the demo grid.

Three arms over ``examples/sweep_demo.json`` (a 2x2x3 grid, 12 cells),
recorded in ``BENCH_sweep.json`` at the repo root:

* **cold** — every cell simulated, captured, ``.capidx``-indexed and
  evaluated from scratch;
* **warm** — the same sweep re-run against the populated output
  directory: no cell simulates, every evaluation comes off the sidecar.
  Must be at least ``MIN_WARM_SPEEDUP`` (5x) faster than cold, and must
  reproduce ``results.csv`` byte for byte;
* **extend** — one axis grows by one value (``loss_rate`` gains a third
  point, 6 new cells): only the new cells may simulate, the original 12
  must come back cached.

The parity entries are asserted on any machine; the warm-speedup floor
holds comfortably because a warm cell is two JSON reads plus a column
load while a cold cell is a full discrete-event month.

Run under pytest (``pytest benchmarks/bench_sweep.py``) or as a script —
``python benchmarks/bench_sweep.py --check`` re-measures and exits
non-zero on violations (the CI gate).
"""

import argparse
import copy
import json
import os
import sys
import tempfile
import time

from repro.obs import MetricsRegistry, Observability
from repro.sweep import run_sweep, spec_from_dict

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sweep.json")
SPEC_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "sweep_demo.json"
)
MIN_WARM_SPEEDUP = 5.0
#: The axis the extend arm grows, and the value it appends.
EXTEND_AXIS = "loss_rate"
EXTEND_VALUE = 0.3


def _run(doc, outdir):
    """One sweep pass; returns (result, capstore.cache counts, seconds)."""
    registry = MetricsRegistry()
    start = time.perf_counter()
    result = run_sweep(
        spec_from_dict(doc), outdir, obs=Observability(metrics=registry)
    )
    seconds = time.perf_counter() - start
    body = registry.snapshot()["counters"].get("capstore.cache", {})
    counts = {key: int(value) for key, value in body.get("values", {}).items()}
    return result, counts, seconds


def run_bench(spec_path=SPEC_PATH):
    """Measure all three arms, persist ``BENCH_sweep.json``."""
    with open(spec_path) as fileobj:
        doc = json.load(fileobj)
    results = {"spec": os.path.basename(spec_path), "arms": {}, "parity": {}}
    with tempfile.TemporaryDirectory() as tmp:
        outdir = os.path.join(tmp, "demo.sweep")

        cold, _counts, cold_seconds = _run(doc, outdir)
        cold_csv = open(cold.csv_path, "rb").read()
        results["cells"] = len(cold.cells)
        results["parity"]["cold_all_simulated"] = cold.simulated == len(cold.cells)

        warm, warm_counts, warm_seconds = _run(doc, outdir)
        results["parity"]["warm_all_cached"] = warm.cached == len(cold.cells)
        results["parity"]["warm_csv_identical"] = (
            open(warm.csv_path, "rb").read() == cold_csv
        )
        results["parity"]["warm_all_sidecar_hits"] = warm_counts == {
            "hit": len(cold.cells)
        }

        extended_doc = copy.deepcopy(doc)
        extended_doc["axes"][EXTEND_AXIS] = doc["axes"][EXTEND_AXIS] + [
            EXTEND_VALUE
        ]
        new_cells = len(cold.cells) // len(doc["axes"][EXTEND_AXIS])
        extend, extend_counts, extend_seconds = _run(extended_doc, outdir)
        results["parity"]["extend_reuses_old_cells"] = (
            extend.cached == len(cold.cells)
        )
        results["parity"]["extend_simulates_only_new"] = (
            extend.simulated == new_cells
        )
        results["parity"]["extend_sidecar_hits"] = (
            extend_counts.get("hit", 0) == len(cold.cells)
        )

        results["arms"] = {
            "cold": {"seconds": round(cold_seconds, 3)},
            "warm": {
                "seconds": round(warm_seconds, 3),
                "speedup_vs_cold": round(
                    cold_seconds / max(warm_seconds, 1e-9), 2
                ),
            },
            "extend": {
                "seconds": round(extend_seconds, 3),
                "new_cells": new_cells,
            },
        }

    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    arms = results["arms"]
    return "\n".join(
        [
            "Sweep plane (%s, %d cells):"
            % (results["spec"], results["cells"]),
            "  %-24s %8.3fs" % ("cold sweep", arms["cold"]["seconds"]),
            "  %-24s %8.3fs  (%.1fx)"
            % (
                "warm re-run",
                arms["warm"]["seconds"],
                arms["warm"]["speedup_vs_cold"],
            ),
            "  %-24s %8.3fs  (%d new cells)"
            % (
                "one-axis extension",
                arms["extend"]["seconds"],
                arms["extend"]["new_cells"],
            ),
        ]
    )


def _check(results):
    """Violations as human-readable strings (empty = pass)."""
    failures = []
    for name, held in results["parity"].items():
        if not held:
            failures.append("parity violated: %s" % name)
    speedup = results["arms"]["warm"]["speedup_vs_cold"]
    if speedup < MIN_WARM_SPEEDUP:
        failures.append(
            "warm sweep reached %.2fx (< %.1fx) over cold"
            % (speedup, MIN_WARM_SPEEDUP)
        )
    return failures


def test_sweep_cache(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("sweep_cache", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on parity/speedup violations (CI gate)",
    )
    parser.add_argument("--spec", default=SPEC_PATH, help="grid spec to sweep")
    args = parser.parse_args(argv)
    results = run_bench(spec_path=args.spec)
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
