"""Streaming plane — live-vs-batch parity and incremental re-index speedup.

Two arms over one simulated month, recorded in ``BENCH_stream.json`` at
the repo root:

* **parity** — a :class:`~repro.stream.PcapFollower` fed the capture in
  growth steps must end holding the *same* table a batch build produces
  (so the ``repro live`` final render is byte-identical to ``repro
  analyze``), and the online :class:`~repro.stream.StreamAnalyses`
  reducers must land on exactly the batch values for the version mix,
  packet mix and off-net counts — for a single pcap and for a
  ``--no-merge`` shard set fed through per-shard followers.
* **incremental** — after a capture grows by ~10%, revalidating the
  ``.capidx`` sidecar against the stored prefix fingerprint and
  dissecting only the appended tail must beat a full no-cache rebuild.

Parity is asserted on any machine.  The incremental speedup floor
(``MIN_EXTEND_SPEEDUP``, 5x) is asserted at bench scale >= 0.5 — below
that the tail is a few hundred records and constant costs dominate; the
honest number is still recorded.

Run under pytest (``pytest benchmarks/bench_stream.py``) or as a script —
``python benchmarks/bench_stream.py --check`` re-measures and exits
non-zero on violations.  ``--scale`` overrides the default bench scale
(0.5; the REPRO_BENCH_SCALE env var is honoured too).
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.capstore import ClassifiedView, build_from_shards, load_or_build
from repro.capstore.cache import load_or_build_ex
from repro.cli import VALID_TABLES, main as cli_main, render_analysis
from repro.core.offnet import extract_features
from repro.core.versions import table2
from repro.netstack.pcap import scan_pcap_offsets, write_pcap
from repro.simnet.shard import plan_shards, run_shard
from repro.stream import PcapFollower, StreamAnalyses
from repro.workloads.scenario import ScenarioConfig

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_stream.json")
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
SEED = 20220101
GROWTH_STEPS = 8
#: Fraction of the capture treated as already indexed before the growth.
PREFIX_FRACTION = 0.9
MIN_EXTEND_SPEEDUP = 5.0
#: The speedup floor is only asserted at or above this scale.
MIN_SCALE_FOR_SPEEDUP = 0.5
ALL_TABLES = set(VALID_TABLES)


def _follow_in_steps(source, dest, steps=GROWTH_STEPS):
    """Stream ``source`` into ``dest`` in record-aligned growth steps.

    Returns ``(follower, analyses, seconds)`` — the accumulated live
    state and the wall time spent polling/dissecting/reducing (the file
    copies simulating the writer are excluded).
    """
    data = open(source, "rb").read()
    offsets = scan_pcap_offsets(source)
    boundaries = [
        offsets[(len(offsets) * (i + 1)) // steps - 1] for i in range(steps - 1)
    ] + [len(data)]
    follower = PcapFollower(dest, use_cache=False)
    analyses = StreamAnalyses()
    seconds = 0.0
    fed = 0
    for boundary in boundaries:
        with open(dest, "wb") as fileobj:
            fileobj.write(data[:boundary])
        start = time.perf_counter()
        follower.poll()
        analyses.feed(follower.table, fed, follower.num_rows)
        fed = follower.num_rows
        seconds += time.perf_counter() - start
    return follower, analyses, seconds


def _reducers_match_batch(analyses, view):
    """Do the online reducers agree with the batch analyses of ``view``?"""
    shares = table2(view)
    features = extract_features(view.backscatter)
    servers, low = analyses.offnet_counts()
    return (
        analyses.rows["backscatter"] == len(view.backscatter)
        and analyses.rows["scan"] == len(view.scans)
        and analyses.session_buckets[1] == shares["clients"].counts
        and analyses.session_buckets[0] == shares["servers"].counts
        and servers == len(features)
        and low == sum(1 for f in features.values() if f.low_host_id())
    )


def run_bench(scale=DEFAULT_SCALE):
    """Measure both streaming arms, persist ``BENCH_stream.json``."""
    results = {
        "scale": scale,
        "seed": SEED,
        "growth_steps": GROWTH_STEPS,
        "prefix_fraction": PREFIX_FRACTION,
        "arms": {},
        "parity": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        pcap = os.path.join(tmp, "month.pcap")
        code = cli_main(
            ["simulate", pcap, "--scale", str(scale), "--seed", str(SEED)]
        )
        assert code == 0, "simulate failed"

        # -- parity arm: single pcap ------------------------------------
        start = time.perf_counter()
        batch_view, _hit = load_or_build(pcap, workers=1, use_cache=False)
        batch_seconds = time.perf_counter() - start
        batch_render = render_analysis(batch_view, ALL_TABLES)

        grown = os.path.join(tmp, "grow.pcap")
        follower, analyses, live_seconds = _follow_in_steps(pcap, grown)
        live_render = render_analysis(follower.view(), ALL_TABLES)

        results["parity"]["live_render_identical"] = live_render == batch_render
        results["parity"]["live_table_equal"] = follower.table == batch_view.table
        results["parity"]["reducers_match_batch"] = _reducers_match_batch(
            analyses, batch_view
        )

        # -- parity arm: --no-merge shard set ---------------------------
        config = ScenarioConfig(seed=SEED).scaled(min(scale, 0.05))
        shard_paths = []
        for shard in plan_shards(config, 3):
            records = run_shard(config, [unit.name for unit in shard.units])
            path = os.path.join(tmp, "out.pcap.shard%d" % shard.index)
            write_pcap(path, records)
            shard_paths.append(path)
        shard_analyses = StreamAnalyses()
        for path in shard_paths:
            shard_follower = PcapFollower(path, use_cache=False)
            shard_follower.poll()
            shard_analyses.feed(
                shard_follower.table, 0, shard_follower.num_rows
            )
        shard_view = ClassifiedView(*build_from_shards(shard_paths))
        results["parity"]["shard_reducers_match_batch"] = _reducers_match_batch(
            shard_analyses, shard_view
        )

        # -- incremental arm: 10% growth vs full rebuild ----------------
        data = open(pcap, "rb").read()
        offsets = scan_pcap_offsets(pcap)
        cut = offsets[int(len(offsets) * PREFIX_FRACTION)]
        inc = os.path.join(tmp, "inc.pcap")
        with open(inc, "wb") as fileobj:
            fileobj.write(data[:cut])
        start = time.perf_counter()
        load_or_build(inc, workers=1)  # leaves the prefix sidecar behind
        prefix_seconds = time.perf_counter() - start
        with open(inc, "ab") as fileobj:
            fileobj.write(data[cut:])

        start = time.perf_counter()
        extended = load_or_build_ex(inc)
        extend_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rebuilt, _hit = load_or_build(inc, workers=1, use_cache=False)
        rebuild_seconds = time.perf_counter() - start

        results["parity"]["extension_was_incremental"] = (
            extended.status == "extended"
        )
        results["parity"]["extended_table_equal"] = (
            extended.view.table == rebuilt.table
        )
        results["rows"] = batch_view.table.num_rows
        results["tail_records"] = len(offsets) - int(
            len(offsets) * PREFIX_FRACTION
        )
        results["arms"] = {
            "batch_build": {"seconds": round(batch_seconds, 3)},
            "live_follow": {
                "seconds": round(live_seconds, 3),
                "overhead_vs_batch": round(
                    live_seconds / max(batch_seconds, 1e-9), 3
                ),
            },
            "prefix_build": {"seconds": round(prefix_seconds, 3)},
            "incremental_extend": {
                "seconds": round(extend_seconds, 3),
                "speedup_vs_rebuild": round(
                    rebuild_seconds / max(extend_seconds, 1e-9), 3
                ),
            },
            "full_rebuild": {"seconds": round(rebuild_seconds, 3)},
        }

    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    arms = results["arms"]
    lines = [
        "Streaming plane (scale %.2f, %d rows, %d records appended):"
        % (results["scale"], results["rows"], results["tail_records"]),
        "  %-24s %8.3fs" % ("batch build", arms["batch_build"]["seconds"]),
        "  %-24s %8.3fs  (%.2fx of batch)"
        % (
            "live follow (%d polls)" % results["growth_steps"],
            arms["live_follow"]["seconds"],
            arms["live_follow"]["overhead_vs_batch"],
        ),
        "  %-24s %8.3fs" % ("full rebuild", arms["full_rebuild"]["seconds"]),
        "  %-24s %8.3fs  (%.1fx)"
        % (
            "incremental extend",
            arms["incremental_extend"]["seconds"],
            arms["incremental_extend"]["speedup_vs_rebuild"],
        ),
    ]
    if results["scale"] < MIN_SCALE_FOR_SPEEDUP:
        lines.append(
            "  (scale < %.1f: extend speedup not asserted, parity only)"
            % MIN_SCALE_FOR_SPEEDUP
        )
    return "\n".join(lines)


def _check(results):
    """Violations as human-readable strings (empty = pass)."""
    failures = []
    for name, held in results["parity"].items():
        if not held:
            failures.append("parity violated: %s" % name)
    speedup = results["arms"]["incremental_extend"]["speedup_vs_rebuild"]
    if results["scale"] >= MIN_SCALE_FOR_SPEEDUP and speedup < MIN_EXTEND_SPEEDUP:
        failures.append(
            "incremental extend reached %.2fx (< %.1fx) over a full rebuild"
            % (speedup, MIN_EXTEND_SPEEDUP)
        )
    return failures


def test_stream_parity_and_extend(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("stream_parity", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on parity/speedup violations (CI gate)",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="scenario scale"
    )
    args = parser.parse_args(argv)
    results = run_bench(scale=args.scale)
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
