"""Observability overhead — the NullTracer path must stay within 5% of seed.

The seed event pump was a bare ``while loop.step(): pass``; the instrumented
``EventLoop.run`` adds one ``obs.enabled`` dispatch per run plus a per-event
budget check.  This bench drives the same scale-0.1 telescope month through
both pumps and asserts the disabled-observability path costs <5%.  A third
arm with a live JSONL tracer + metrics registry quantifies the cost of
turning everything on.  Results land in ``BENCH_obs.json`` at the repo root
(pkts/sec simulated, overhead ratios) as the perf baseline for later PRs.
"""

import io
import json
import os
import time

from conftest import report

from repro.obs import JsonlTracer, MetricsRegistry, Observability
from repro.workloads.scenario import ScenarioConfig, build_scenario

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_obs.json")
SIM_SCALE = 0.1
ROUNDS = 3
MAX_OVERHEAD = 0.05


def _build(obs=None):
    return build_scenario(ScenarioConfig(seed=11).scaled(SIM_SCALE), obs=obs)


def _seed_pump(loop):
    """Replica of the seed's ``run()`` hot loop (no obs dispatch)."""
    while loop.step():
        pass


def _time_arm(pump_via_run, obs_factory=None):
    """Best-of-ROUNDS wall time and packet throughput for one configuration."""
    best = None
    for _ in range(ROUNDS):
        obs = obs_factory() if obs_factory is not None else None
        scenario = _build(obs)
        start = time.perf_counter()
        if pump_via_run:
            scenario.run()
        else:
            _seed_pump(scenario.loop)
        elapsed = time.perf_counter() - start
        events = scenario.loop.events_processed
        delivered = scenario.network.stats.delivered
        if best is None or elapsed < best[0]:
            best = (elapsed, events, delivered)
        if obs is not None:
            obs.close()
    return {
        "seconds": round(best[0], 4),
        "events": best[1],
        "packets_delivered": best[2],
        "events_per_sec": round(best[1] / best[0], 1),
        "pkts_per_sec": round(best[2] / best[0], 1),
    }


def _traced_obs():
    return Observability(
        tracer=JsonlTracer(io.StringIO()), metrics=MetricsRegistry()
    )


def test_nulltracer_overhead_under_5pct(benchmark):
    seed = benchmark.pedantic(
        lambda: _time_arm(pump_via_run=False), rounds=1, iterations=1
    )
    disabled = _time_arm(pump_via_run=True)
    traced = _time_arm(pump_via_run=True, obs_factory=_traced_obs)

    overhead_disabled = disabled["seconds"] / seed["seconds"] - 1.0
    overhead_traced = traced["seconds"] / seed["seconds"] - 1.0
    results = {
        "scale": SIM_SCALE,
        "rounds": ROUNDS,
        "seed_pump": seed,
        "obs_disabled": disabled,
        "obs_traced": traced,
        "overhead_disabled": round(overhead_disabled, 4),
        "overhead_traced": round(overhead_traced, 4),
        "threshold": MAX_OVERHEAD,
    }
    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    report(
        "obs_overhead",
        "Observability overhead (scale %.2f, best of %d):\n"
        "  seed pump     %7.3fs  %10.0f ev/s\n"
        "  obs disabled  %7.3fs  %10.0f ev/s  (%+.1f%%)\n"
        "  obs traced    %7.3fs  %10.0f ev/s  (%+.1f%%)"
        % (
            SIM_SCALE,
            ROUNDS,
            seed["seconds"],
            seed["events_per_sec"],
            disabled["seconds"],
            disabled["events_per_sec"],
            100 * overhead_disabled,
            traced["seconds"],
            traced["events_per_sec"],
            100 * overhead_traced,
        ),
    )

    assert disabled["events"] == seed["events"], "obs must not change the sim"
    assert overhead_disabled < MAX_OVERHEAD, (
        "NullTracer path costs %.1f%% vs seed (budget 5%%)"
        % (100 * overhead_disabled)
    )
