"""Observability overhead — disabled path <5% of seed, sampled path <10%.

The seed event pump was a bare ``while loop.step(): pass``; the instrumented
``EventLoop.run`` adds one ``obs.enabled`` dispatch per run plus a per-event
budget check.  This bench drives the same scale-0.1 telescope month through
both pumps and asserts:

* the disabled-observability path costs <5% vs the seed pump;
* the *always-on* configurations — ``SamplingTracer`` (every 64th event
  per type) and ``RingBufferTracer`` (last 64k events, no serialization) —
  cost <10%, cheap enough to leave on at scale 1.0.

A live-``JsonlTracer`` arm quantifies what full tracing still costs, and
an ``obs_prof`` arm measures the opt-in sampling profiler (``--profile``;
recorded, not gated — it is never on by default).  Every arm must process
the exact seed event count: observability may cost time but can never
change the simulation.  Results land in ``BENCH_obs.json`` at the repo
root (pkts/sec simulated, overhead ratios) as the perf baseline for
later PRs.

Run under pytest (``pytest benchmarks/bench_obs_overhead.py``) or as a
script — ``python benchmarks/bench_obs_overhead.py --check`` re-measures
and exits non-zero on threshold violations (the CI gate).
"""

import argparse
import io
import json
import os
import sys
import time

from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    Observability,
    Profiler,
    RingBufferTracer,
    SamplingTracer,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_obs.json")
SIM_SCALE = 0.1
ROUNDS = 3
MAX_OVERHEAD = 0.05
#: Budget for the always-on sinks (sampled / ring buffer) vs the seed pump.
MAX_OVERHEAD_SAMPLED = 0.10
SAMPLE_EVERY = 64
RING_CAPACITY = 65536


def _build(obs=None):
    return build_scenario(ScenarioConfig(seed=11).scaled(SIM_SCALE), obs=obs)


def _seed_pump(loop):
    """Replica of the seed's ``run()`` hot loop (no obs dispatch)."""
    while loop.step():
        pass


def _measure(pump_via_run, obs_factory=None):
    """One timed run: (elapsed seconds, events processed, pkts delivered)."""
    obs = obs_factory() if obs_factory is not None else None
    scenario = _build(obs)
    start = time.perf_counter()
    if pump_via_run:
        scenario.run()
    else:
        _seed_pump(scenario.loop)
    elapsed = time.perf_counter() - start
    events = scenario.loop.events_processed
    delivered = scenario.network.stats.delivered
    if obs is not None:
        obs.close()
    return elapsed, events, delivered


def _arm_summary(samples):
    """Best-round wall time and throughput for one configuration."""
    elapsed, events, delivered = min(samples)
    return {
        "seconds": round(elapsed, 4),
        "events": events,
        "packets_delivered": delivered,
        "events_per_sec": round(events / elapsed, 1),
        "pkts_per_sec": round(delivered / elapsed, 1),
    }


def _traced_obs():
    return Observability(
        tracer=JsonlTracer(io.StringIO()), metrics=MetricsRegistry()
    )


def _sampled_obs():
    return Observability(
        tracer=SamplingTracer(JsonlTracer(io.StringIO()), every=SAMPLE_EVERY),
        metrics=MetricsRegistry(),
    )


def _ring_obs():
    return Observability(
        tracer=RingBufferTracer(capacity=RING_CAPACITY), metrics=MetricsRegistry()
    )


def _prof_obs():
    metrics = MetricsRegistry()
    return Observability(
        metrics=metrics, prof=Profiler(SAMPLE_EVERY, metrics=metrics)
    )


#: Bench arms in measurement order: key -> (pump_via_run, obs factory).
ARMS = {
    "seed_pump": (False, None),
    "obs_disabled": (True, None),
    "obs_traced": (True, _traced_obs),
    "obs_sampled": (True, _sampled_obs),
    "obs_ring": (True, _ring_obs),
    "obs_prof": (True, _prof_obs),
}


def run_bench():
    """Measure every arm, persist ``BENCH_obs.json``, return the results.

    Rounds are *interleaved* (seed, disabled, traced, … per round) and each
    overhead is the best seed-paired ratio across rounds, so slow drift in
    machine load (CPU bursting, noisy neighbours) cancels out instead of
    penalizing whichever arm happened to run last.
    """
    samples = {key: [] for key in ARMS}
    for _ in range(ROUNDS):
        for key, (pump_via_run, obs_factory) in ARMS.items():
            samples[key].append(_measure(pump_via_run, obs_factory))

    def overhead(arm_key):
        ratios = [
            arm[0] / seed[0]
            for arm, seed in zip(samples[arm_key], samples["seed_pump"])
        ]
        return round(min(ratios) - 1.0, 4)

    results = {
        "scale": SIM_SCALE,
        "rounds": ROUNDS,
        "overhead_disabled": overhead("obs_disabled"),
        "overhead_traced": overhead("obs_traced"),
        "overhead_sampled": overhead("obs_sampled"),
        "overhead_ring": overhead("obs_ring"),
        "overhead_prof": overhead("obs_prof"),
        "sample_every": SAMPLE_EVERY,
        "ring_capacity": RING_CAPACITY,
        "threshold": MAX_OVERHEAD,
        "threshold_sampled": MAX_OVERHEAD_SAMPLED,
    }
    for key in ARMS:
        results[key] = _arm_summary(samples[key])
    with open(BENCH_PATH, "w") as fileobj:
        json.dump(results, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return results


def _render(results):
    lines = [
        "Observability overhead (scale %.2f, best of %d):"
        % (results["scale"], results["rounds"])
    ]
    for label, arm_key, overhead_key in (
        ("seed pump", "seed_pump", None),
        ("obs disabled", "obs_disabled", "overhead_disabled"),
        ("obs traced", "obs_traced", "overhead_traced"),
        ("obs sampled", "obs_sampled", "overhead_sampled"),
        ("obs ring", "obs_ring", "overhead_ring"),
        ("obs prof", "obs_prof", "overhead_prof"),
    ):
        arm = results[arm_key]
        suffix = (
            "  (%+.1f%%)" % (100 * results[overhead_key]) if overhead_key else ""
        )
        lines.append(
            "  %-13s %7.3fs  %10.0f ev/s%s"
            % (label, arm["seconds"], arm["events_per_sec"], suffix)
        )
    return "\n".join(lines)


def _check(results):
    """Threshold violations as human-readable strings (empty = pass)."""
    failures = []
    for arm_key in (
        "obs_disabled",
        "obs_traced",
        "obs_sampled",
        "obs_ring",
        "obs_prof",
    ):
        if results[arm_key]["events"] != results["seed_pump"]["events"]:
            failures.append("%s changed the simulation (event count)" % arm_key)
    if results["overhead_disabled"] >= MAX_OVERHEAD:
        failures.append(
            "NullTracer path costs %.1f%% vs seed (budget %.0f%%)"
            % (100 * results["overhead_disabled"], 100 * MAX_OVERHEAD)
        )
    for key, label in (("overhead_sampled", "sampled"), ("overhead_ring", "ring")):
        if results[key] >= MAX_OVERHEAD_SAMPLED:
            failures.append(
                "%s tracing costs %.1f%% vs seed (always-on budget %.0f%%)"
                % (label, 100 * results[key], 100 * MAX_OVERHEAD_SAMPLED)
            )
    return failures


def test_obs_overhead_within_budgets(benchmark):
    from conftest import report

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("obs_overhead", _render(results))
    failures = _check(results)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any overhead budget is exceeded (CI gate)",
    )
    args = parser.parse_args(argv)
    results = run_bench()
    print(_render(results))
    failures = _check(results)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
