"""§4.2 — passive backscatter already reveals a sizable host-ID share.

Paper: active probing of Facebook on-net servers shows 37,684 host IDs in
use; backscatter alone already revealed 7,122 (19%).

Passive coverage is a function of deployment size vs. attack volume, so
this bench uses a dedicated scenario with large clusters (4 × 260 L7LBs)
and a realistic attack volume — the regime where the telescope sees only a
fraction of the fleet, as in the paper.
"""

from conftest import report

from repro.active.prober import Prober
from repro.core.l7lb import passive_coverage, passive_host_ids
from repro.core.report import render_table
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _large_deployment_scenario():
    config = ScenarioConfig(
        seed=4242,
        facebook_clusters=4,
        facebook_hosts_per_cluster=260,
        google_clusters=1,
        cloudflare_clusters=1,
        facebook_offnets=0,
        cloudflare_offnets=0,
        remaining_servers=5,
        attacks_facebook=400,
        attacks_google=50,
        attacks_cloudflare=10,
        attacks_offnet=0,
        attacks_remaining=20,
        research_scan_packets=200,
        unknown_scan_packets=100,
        zero_rtt_scan_packets=0,
        noise_packets=50,
    )
    scenario = build_scenario(config)
    scenario.run()
    return scenario


def test_hostid_coverage(benchmark):
    scenario = _large_deployment_scenario()
    capture = scenario.classify()

    per_vip = benchmark.pedantic(
        passive_host_ids,
        args=(capture.backscatter,),
        kwargs={"origin": "Facebook"},
        rounds=1,
        iterations=1,
    )
    passive = set().union(*per_vip.values()) if per_vip else set()

    # Active census: exhaustively enumerate one VIP per on-net cluster.
    prober = Prober(scenario.loop, scenario.network, suite="fast", timeout=2.0)
    active: set[int] = set()
    for cluster in scenario.clusters["Facebook"]:
        ids = prober.enumerate_host_ids(
            cluster.vips[0], 4000, stop_after_stable=250
        )
        active |= {h for h in ids if h is not None}

    coverage = passive_coverage(passive, active)
    report(
        "s42_hostid_coverage",
        render_table(
            ["source", "host IDs"],
            [
                ["deployed", len(scenario.all_onnet_host_ids("Facebook"))],
                ["active census", len(active)],
                ["passive backscatter", len(passive)],
                ["passive & active", len(passive & active)],
                ["coverage", "%.1f%%" % (100 * coverage)],
            ],
            title="§4.2 host-ID coverage (paper: passive saw 7122 of 37684"
            " = 19%)",
        ),
    )
    # Passive reveals a meaningful minority of the fleet, never all of it.
    assert 0.08 < coverage < 0.6
    # Everything passive saw is real (a subset of the active census).
    assert passive <= active
    # The active census itself is essentially complete.
    assert len(active) >= 0.97 * len(scenario.all_onnet_host_ids("Facebook"))
