"""The rule pack: the repo's determinism contract, as AST checks.

Each rule encodes an invariant the runtime parity gates (byte-identical
shard merges, warm-cache analyze parity, sweep cache hits) only catch
*after* a full simulation.  Statically:

==========  =============================================================
rule id     invariant
==========  =============================================================
``DET001``  all randomness flows from a seeded ``random.Random(seed)``
            instance — module-level ``random.*`` calls use the global,
            unseeded generator and break run-to-run reproducibility
``DET002``  no wall-clock reads (``time.time``/``perf_counter``/
            ``monotonic``, ``datetime.now`` …) outside the observability
            layer (``obs``/``tools``/``benchmarks``), whose wall numbers
            are declared nondeterministic facts
``DET003``  no OS entropy (``os.urandom``, ``uuid.uuid1/uuid4``,
            ``secrets.*``, ``random.SystemRandom``) anywhere
``DET004``  no builtin ``hash()`` — it is salted per process
            (PYTHONHASHSEED), so anything derived from it differs across
            runs and workers; use ``hashlib.blake2b`` / ``derive_seed``
``DET005``  no direct iteration over unordered collections (``set`` /
            ``frozenset`` expressions) or unordered filesystem listings
            (``os.listdir``, ``glob.glob``) — wrap in ``sorted()`` before
            the order can leak into output
``OBS001``  sweep metric-name string literals (``counter:…``,
            ``gauge:…``, ``timer:…``, ``version_share.…``, …) must pass
            the grammar :func:`repro.sweep.metrics.validate_metric`
            enforces at spec-parse time — a typo fails lint, not a sweep
``MP001``   multiprocessing pool/process targets must be top-level
            (picklable) callables — lambdas and nested functions fail at
            runtime under the spawn start method only, i.e. on someone
            else's machine
``PERF001`` hot write-side modules (``quic/``, ``netstack/``,
            ``server/engine.py``) must not accumulate packets with
            ``bytes +=`` or construct AES/GHASH schedules
            (``AesGcm``/``AES128``/``derive_initial_keys``) inside loop
            bodies — both are quadratic/per-packet costs the template
            and memo planes exist to amortize
==========  =============================================================

Rules are small classes with an ``interests`` tuple of AST node types
and a ``visit(node, ctx)`` generator of findings; the engine dispatches
them over a single ``ast.walk``.  Suppress a deliberate violation with
``# repro: allow(RULE-ID) -- justification`` on the offending line (or
alone on the line above).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Tuple

from repro.lint.engine import FileContext, Finding

#: DET002 does not apply under these path components: the observability
#: layer reports real wall time by design (its outputs are declared
#: nondeterministic facts), and the checker/bench scripts never run
#: inside a simulation.
WALL_CLOCK_ALLOWED_PARTS = ("obs", "tools", "benchmarks")

#: Wall-clock reading callables, by resolved dotted name.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: OS entropy sources, by resolved dotted name.
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: Pool/executor methods whose first argument must be picklable.
_POOL_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

#: Sweep metric-name shapes OBS001 validates (see repro.sweep.metrics).
#: A literal must carry content *after* the family prefix to count as a
#: metric name — bare prefixes ("counter:", "version_share.") are the
#: grammar machinery itself (prefix tables, startswith() tests), and a
#: name with whitespace is prose, not a metric.
_METRIC_LITERAL = re.compile(
    r"\A(?:(?:counter|gauge|timer):|(?:version_share|packet_share|scid_unique)\.)\S+\Z"
)


class Rule:
    """Base class: subclasses set ``id``/``title`` and yield findings."""

    id = "RULE000"
    title = "abstract rule"
    interests: Tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, ctx: FileContext, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class UnseededRandomRule(Rule):
    """DET001: randomness must come from a seeded ``random.Random``."""

    id = "DET001"
    title = "module-level / unseeded random"
    interests = (ast.Call, ast.ImportFrom)

    #: ``random`` module attributes that are fine to touch: the seeded
    #: generator class itself.  ``SystemRandom`` is DET003's business.
    _ALLOWED = frozenset({"random.Random", "random.SystemRandom"})

    def visit(self, node, ctx):
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" and not node.level:
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in ("Random", "SystemRandom")
                ]
                if bad:
                    yield self.finding(
                        node,
                        ctx,
                        "importing %s from random binds the global unseeded "
                        "generator; seed a random.Random(seed) instance and "
                        "call its methods instead" % ", ".join(sorted(bad)),
                    )
            return
        name = ctx.resolve(node.func)
        if name == "random.Random" and not node.args and not node.keywords:
            yield self.finding(
                node,
                ctx,
                "random.Random() without a seed draws from OS entropy; pass "
                "an explicit seed (see derive_seed in repro.workloads.scenario)",
            )
            return
        if (
            name.startswith("random.")
            and name not in self._ALLOWED
            and name.count(".") == 1
        ):
            yield self.finding(
                node,
                ctx,
                "%s() uses the process-global unseeded generator; call the "
                "method on a seeded random.Random(seed) instance instead" % name,
            )


class WallClockRule(Rule):
    """DET002: wall-clock reads stay inside the observability layer."""

    id = "DET002"
    title = "wall-clock read outside obs/tools"
    interests = (ast.Call,)

    def visit(self, node, ctx):
        if any(part in WALL_CLOCK_ALLOWED_PARTS for part in ctx.parts):
            return
        name = ctx.resolve(node.func)
        if name in WALL_CLOCK_CALLS:
            yield self.finding(
                node,
                ctx,
                "%s() reads the wall clock; simulation paths must use the "
                "event loop's simulated time (loop.now) — wall time belongs "
                "to repro.obs" % name,
            )


class EntropyRule(Rule):
    """DET003: no OS entropy sources, ever."""

    id = "DET003"
    title = "OS entropy source"
    interests = (ast.Call,)

    def visit(self, node, ctx):
        name = ctx.resolve(node.func)
        if name in ENTROPY_CALLS or name.startswith("secrets."):
            yield self.finding(
                node,
                ctx,
                "%s() draws OS entropy and can never reproduce; derive "
                "bytes from the scenario seed (derive_seed / blake2b)" % name,
            )


class BuiltinHashRule(Rule):
    """DET004: builtin ``hash()`` is salted per process."""

    id = "DET004"
    title = "builtin hash()"
    interests = (ast.Call,)

    def visit(self, node, ctx):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and node.func.id not in ctx.from_imports
            and node.func.id not in ctx.module_aliases
        ):
            yield self.finding(
                node,
                ctx,
                "builtin hash() is salted per process (PYTHONHASHSEED): any "
                "persisted or derived value differs across runs and workers; "
                "use hashlib.blake2b or derive_seed",
            )


class UnorderedIterationRule(Rule):
    """DET005: sorted() before unordered iteration can reach output."""

    id = "DET005"
    title = "iteration over unordered collection"
    interests = (ast.For, ast.comprehension)

    _FS_LISTINGS = frozenset(
        {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    )

    def _unordered(self, expr: ast.AST, ctx: FileContext) -> str:
        """Why ``expr`` iterates in nondeterministic order ("" = it doesn't)."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set expression iterates in hash order"
        if isinstance(expr, ast.Call):
            name = ctx.resolve(expr.func)
            if name in ("set", "frozenset"):
                return "%s() iterates in hash order" % name
            if name in self._FS_LISTINGS:
                return "%s() returns entries in filesystem order" % name
        return ""

    def visit(self, node, ctx):
        expr = node.iter
        why = self._unordered(expr, ctx)
        if why:
            yield self.finding(
                # ast.comprehension has no lineno of its own; anchor on
                # the iterable expression for both node kinds.
                expr,
                ctx,
                "%s, which varies across runs and machines; wrap it in "
                "sorted() before the order can leak into serialized or "
                "printed output" % why,
            )


class MetricNameRule(Rule):
    """OBS001: metric-name literals must pass the sweep grammar."""

    id = "OBS001"
    title = "invalid sweep metric name literal"
    interests = (ast.Constant,)

    def __init__(self) -> None:
        self._validate = None

    def _validator(self):
        if self._validate is None:
            try:
                from repro.sweep.metrics import validate_metric
            except Exception:  # pragma: no cover - broken partial checkouts
                def validate_metric(name: str) -> None:
                    kind, _, rest = name.partition(":")
                    if kind in ("counter", "gauge", "timer") and not rest:
                        raise ValueError("metric %r names no registry metric" % name)

            self._validate = validate_metric
        return self._validate

    def visit(self, node, ctx):
        value = node.value
        if not isinstance(value, str) or not _METRIC_LITERAL.match(value):
            return
        try:
            self._validator()(value)
        except ValueError as exc:
            yield self.finding(node, ctx, str(exc))


class MultiprocessingTargetRule(Rule):
    """MP001: pool/process targets must be top-level picklable callables."""

    id = "MP001"
    title = "unpicklable multiprocessing target"
    interests = (ast.Call,)

    def _check_target(self, target: ast.AST, ctx: FileContext, via: str):
        if isinstance(target, ast.Lambda):
            return (
                "a lambda passed to %s cannot be pickled under the spawn "
                "start method; hoist it to a module-level function" % via
            )
        if isinstance(target, ast.Name):
            name = target.id
            if name in ctx.nested_defs and name not in ctx.toplevel_defs:
                return (
                    "%s() is defined inside another function, so %s cannot "
                    "pickle it under the spawn start method; hoist it to "
                    "module level" % (name, via)
                )
        return ""

    def visit(self, node, ctx):
        func = node.func
        target = None
        via = ""
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            if node.args:
                target = node.args[0]
                via = "pool.%s" % func.attr
        elif ctx.resolve(func) == "multiprocessing.Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = keyword.value
                    via = "multiprocessing.Process(target=…)"
        if target is None:
            return
        why = self._check_target(target, ctx, via)
        if why:
            yield self.finding(target, ctx, why)


class PacketHotLoopRule(Rule):
    """PERF001: no per-packet rebuild work inside hot write-side loops."""

    id = "PERF001"
    title = "per-packet rebuild inside hot-path loop"
    interests = (ast.For, ast.While, ast.AsyncFor)

    #: Constructors whose work the memo plane (repro.quic.crypto.memo)
    #: amortizes; building one per loop iteration re-expands the key
    #: schedule / GHASH tables the cache already holds.
    _SCHEDULE_BUILDERS = frozenset({"AesGcm", "AES128", "derive_initial_keys"})

    def __init__(self) -> None:
        self._accumulator_cache: Tuple[str, frozenset] = ("", frozenset())

    @staticmethod
    def _hot(ctx: FileContext) -> bool:
        parts = ctx.parts
        return (
            "quic" in parts
            or "netstack" in parts
            or parts[-2:] == ("server", "engine.py")
        )

    def _bytes_accumulators(self, ctx: FileContext) -> frozenset:
        """Names assigned a ``bytes`` constant or ``bytes()`` call anywhere
        in the module — the candidates whose ``+=`` builds an O(n²) copy
        chain.  ``bytearray`` targets amortize and are exempt.
        """
        if self._accumulator_cache[0] == ctx.path:
            return self._accumulator_cache[1]
        names = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            is_bytes = isinstance(value, ast.Constant) and isinstance(
                value.value, bytes
            )
            if isinstance(value, ast.Call) and ctx.resolve(value.func) == "bytes":
                is_bytes = True
            if not is_bytes:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        result = frozenset(names)
        self._accumulator_cache = (ctx.path, result)
        return result

    def _loop_body(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk the loop body, skipping nested loops (visited separately)."""
        stack = list(node.body)
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.For, ast.While, ast.AsyncFor)):
                continue
            yield child
            stack.extend(ast.iter_child_nodes(child))

    def visit(self, node, ctx):
        if not self._hot(ctx):
            return
        accumulators = self._bytes_accumulators(ctx)
        for child in self._loop_body(node):
            if (
                isinstance(child, ast.AugAssign)
                and isinstance(child.op, ast.Add)
                and isinstance(child.target, ast.Name)
                and child.target.id in accumulators
            ):
                yield self.finding(
                    child,
                    ctx,
                    "%s += … accumulates immutable bytes per iteration (an "
                    "O(n²) copy chain on a per-packet path); append to a "
                    "bytearray or collect parts and b''.join them"
                    % child.target.id,
                )
            elif isinstance(child, ast.Call):
                name = ctx.resolve(child.func)
                if name.rpartition(".")[2] in self._SCHEDULE_BUILDERS and name:
                    yield self.finding(
                        child,
                        ctx,
                        "%s() inside a loop re-expands a key schedule the "
                        "memo plane already caches; hoist it out of the loop "
                        "or go through repro.quic.crypto.memo" % name,
                    )


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in id order."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        EntropyRule(),
        BuiltinHashRule(),
        UnorderedIterationRule(),
        MetricNameRule(),
        MultiprocessingTargetRule(),
        PacketHotLoopRule(),
    ]


def rule_table() -> List[Tuple[str, str, str]]:
    """(id, title, first docstring line) per rule — for ``--rules``."""
    rows = []
    for rule in default_rules():
        doc = (rule.__class__.__doc__ or "").strip().splitlines()[0]
        rows.append((rule.id, rule.title, doc))
    return rows
