"""Text and JSON reporters for lint results.

Both render the same facts; the JSON shape is shared with the
``tools/``-side checkers (see ``tools/_report.py``) so CI and editors
can consume every correctness gate with one parser::

    {
      "tool": "repro-lint",
      "checked": 123,              # files examined
      "findings": [ {"path", "line", "col", "rule", "message"}, ... ],
      "baselined": [ ... ],        # grandfathered, do not fail the run
      "suppressed": 4,             # pragma-silenced count
      "ok": false                  # len(findings) == 0
    }

The process exit code is the number of *new* findings, matching the
other checkers' count-of-problems convention.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.rules import rule_table


def render_text(result: LintResult, verbose_baseline: bool = False) -> str:
    """Human-facing report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if verbose_baseline and result.baselined:
        lines.extend(
            "%s [baselined]" % finding.render() for finding in result.baselined
        )
    summary = "%d file%s checked: " % (
        result.files,
        "" if result.files == 1 else "s",
    )
    if result.ok:
        summary += "clean"
    else:
        summary += "%d finding%s" % (
            len(result.findings),
            "" if len(result.findings) == 1 else "s",
        )
    extras = []
    if result.baselined:
        extras.append("%d baselined" % len(result.baselined))
    if result.suppressed:
        extras.append("%d pragma-suppressed" % result.suppressed)
    if extras:
        summary += " (%s)" % ", ".join(extras)
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    doc = {
        "tool": "repro-lint",
        "checked": result.files,
        "findings": [finding.to_json() for finding in result.findings],
        "baselined": [finding.to_json() for finding in result.baselined],
        "suppressed": result.suppressed,
        "ok": result.ok,
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rules() -> str:
    """The ``--rules`` listing: id, title, one-line description."""
    from repro.core.report import render_table

    return render_table(
        ["rule", "title", "invariant"],
        [list(row) for row in rule_table()],
        title="repro lint rule pack",
    )
