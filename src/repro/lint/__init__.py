"""Static determinism & invariant linting (``repro lint``).

The shard-merge, capstore-cache, streaming, and sweep planes all stake
their correctness on byte-identical determinism.  This package checks
the underlying source-level contract *statically* — stdlib ``ast``, no
dependencies — so a violation fails at diff time instead of costing a
bisect through a million-packet campaign:

* :mod:`repro.lint.engine` — file walker, pragma suppression
  (``# repro: allow(RULE-ID) -- justification``), committed-baseline
  support, single-pass rule dispatch;
* :mod:`repro.lint.rules` — the rule pack (DET001–DET005, OBS001,
  MP001) encoding the repo's real invariants;
* :mod:`repro.lint.report` — text and JSON reporters sharing the
  ``tools/_report.py`` JSON shape.

Entry points: ``repro lint [--json] [--rules] [--baseline FILE]
[--update-baseline] [paths…]`` from the CLI, or
:func:`repro.lint.lint_paths` from Python.
"""

from repro.lint.engine import (
    Baseline,
    BaselineError,
    Finding,
    LintResult,
    collect_pragmas,
    iter_python_files,
    lint_file,
    lint_paths,
)
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.rules import default_rules, rule_table

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "LintResult",
    "collect_pragmas",
    "default_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_rules",
    "render_text",
    "rule_table",
]
