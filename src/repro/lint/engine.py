"""The lint engine: file walking, pragma suppression, baselines.

The determinism contract every other plane stakes its correctness on —
seeded-RNG-only randomness, no wall clock in simulation paths, keyed
hashing instead of ``hash()``, sorted iteration before serialization —
used to live in reviewers' heads and in slow end-to-end parity gates.
This package checks it *statically*, at diff time, with nothing but the
stdlib ``ast`` module:

* :class:`Finding` — one rule violation (rule id, path, line, column,
  message);
* :func:`collect_pragmas` — inline suppressions of the form
  ``# repro: allow(RULE-ID) -- justification`` (the justification is
  mandatory: a pragma without one does not suppress anything);
* :class:`Baseline` — a committed JSON file of grandfathered findings,
  so the linter can be adopted on a dirty tree and ratchet to clean;
* :func:`lint_paths` — walk files/directories (deterministic sorted
  order), parse each module once, dispatch every registered rule over
  one AST pass, and return the surviving findings.

Rules themselves live in :mod:`repro.lint.rules`; reporters in
:mod:`repro.lint.report`; the CLI front end is ``repro lint``.
"""

from __future__ import annotations

import ast
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``# repro: allow(DET001) -- why this is fine`` — one or more comma
#: separated rule ids, then a mandatory ``--`` justification.  The
#: justification requirement is deliberate: an unexplained suppression
#: is exactly the tribal knowledge this plane exists to eliminate.
_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Z][A-Z0-9]*\d(?:\s*,\s*[A-Z][A-Z0-9]*\d)*)\s*\)"
    r"\s*--\s*(\S.*)$"
)

#: A pragma-shaped comment that did not parse (missing justification,
#: malformed id list).  Reported as a finding so typos cannot silently
#: leave a violation unsuppressed *and* unexplained.
_PRAGMA_LIKE = re.compile(r"#\s*repro:\s*allow")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> str:
        """The baseline identity: stable across unrelated edits above."""
        return "%s:%s:%s" % (self.rule, self.path, self.message)

    def render(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path,
            self.line,
            self.col,
            self.rule,
            self.message,
        )

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule may ask about the module being linted."""

    path: str
    tree: ast.Module
    source: str
    #: line number -> set of rule ids allowed on that line
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: local name -> imported module ("import time as _wall" => _wall -> time)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> "module.attr" ("from time import perf_counter")
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: names of module-level functions (picklable multiprocessing targets)
    toplevel_defs: Set[str] = field(default_factory=set)
    #: names of functions defined inside another function (not picklable)
    nested_defs: Set[str] = field(default_factory=set)

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.path.replace(os.sep, "/").split("/"))

    def resolve(self, node: ast.AST) -> str:
        """Dotted name of an expression, with import aliases expanded.

        ``_wall.perf_counter`` resolves to ``time.perf_counter`` under
        ``import time as _wall``; a bare ``perf_counter`` resolves the
        same way under ``from time import perf_counter``.  Unresolvable
        expressions (calls, subscripts) resolve to ``""``.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        root = node.id
        if root in self.module_aliases:
            chain.append(self.module_aliases[root])
        elif root in self.from_imports:
            chain.append(self.from_imports[root])
        else:
            chain.append(root)
        return ".".join(reversed(chain))


def collect_pragmas(source: str, path: str) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Per-line suppression map plus findings for malformed pragmas.

    Comments are found with :mod:`tokenize` (not a substring scan), so a
    pragma-shaped *string literal* in test fixtures does not suppress
    anything.  A well-formed pragma on line N suppresses matching
    findings on line N; a pragma on a comment-only line also covers the
    statement that starts on the next line.
    """
    pragmas: Dict[int, Set[str]] = {}
    malformed: List[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(iter(source.splitlines(True)).__next__))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas, malformed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        line = token.start[0]
        match = _PRAGMA.search(comment)
        if match:
            rules = {rule.strip() for rule in match.group(1).split(",")}
            pragmas.setdefault(line, set()).update(rules)
            # A standalone comment line shields the next *code* line, so a
            # pragma may continue its justification across further comment
            # lines before the statement it covers.
            prefix = lines[line - 1][: token.start[1]]
            if not prefix.strip():
                target = line + 1
                while target <= len(lines) and (
                    not lines[target - 1].strip()
                    or lines[target - 1].lstrip().startswith("#")
                ):
                    target += 1
                pragmas.setdefault(target, set()).update(rules)
        elif _PRAGMA_LIKE.search(comment):
            malformed.append(
                Finding(
                    path=path,
                    line=line,
                    col=token.start[1] + 1,
                    rule="LNT001",
                    message=(
                        "malformed suppression pragma %r — expected "
                        "'# repro: allow(RULE-ID) -- justification' "
                        "(the justification is mandatory)" % comment.strip()
                    ),
                )
            )
    return pragmas, malformed


class Baseline:
    """Grandfathered findings, committed as JSON next to the repo root.

    A finding matches the baseline on ``(rule, path, message)`` — line
    numbers are deliberately *not* part of the identity, so edits above
    a grandfathered violation do not resurrect it.  The repo's own
    baseline is empty (see ``lint_baseline.json``); the mechanism exists
    so downstream forks can adopt the linter before paying down debt.
    """

    VERSION = 1

    def __init__(self, keys: Optional[Set[str]] = None) -> None:
        self.keys: Set[str] = keys or set()

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, encoding="utf-8") as fileobj:
                doc = json.load(fileobj)
        except FileNotFoundError:
            return cls()
        except ValueError as exc:
            raise BaselineError("%s: not valid baseline JSON: %s" % (path, exc))
        if not isinstance(doc, dict) or doc.get("version") != cls.VERSION:
            raise BaselineError(
                "%s: unsupported baseline format (want {'version': %d, "
                "'findings': [...]})" % (path, cls.VERSION)
            )
        keys = set()
        for entry in doc.get("findings", ()):
            keys.add("%s:%s:%s" % (entry["rule"], entry["path"], entry["message"]))
        return cls(keys)

    @staticmethod
    def write(path: str, findings: Sequence[Finding]) -> None:
        """Persist ``findings`` as the new baseline (sorted, stable)."""
        doc = {
            "version": Baseline.VERSION,
            "findings": [
                {"rule": f.rule, "path": f.path, "message": f.message}
                for f in sorted(findings)
            ],
        }
        with open(path, "w", encoding="utf-8") as fileobj:
            json.dump(doc, fileobj, indent=2, sort_keys=True)
            fileobj.write("\n")

    def contains(self, finding: Finding) -> bool:
        return finding.key() in self.keys


class BaselineError(Exception):
    """An unreadable or wrong-format baseline file."""


@dataclass
class LintResult:
    """What one ``lint_paths`` run produced."""

    findings: List[Finding]
    baselined: List[Finding]
    suppressed: int
    files: int

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``.py`` file under ``paths``, in deterministic sorted order.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  A named file is yielded even without a
    ``.py`` suffix, so scratch files can be linted directly.
    """
    for target in paths:
        if os.path.isfile(target):
            yield target
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def _collect_scopes(ctx: FileContext) -> None:
    """Fill the context's alias and function-scope tables in one pass."""
    class Prepass(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def visit_Import(self, node: ast.Import) -> None:
            for alias in node.names:
                ctx.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )

        def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
            if node.module is None or node.level:
                return  # relative imports never shadow the stdlib
            for alias in node.names:
                ctx.from_imports[alias.asname or alias.name] = "%s.%s" % (
                    node.module,
                    alias.name,
                )

        def _visit_def(self, node) -> None:
            (ctx.nested_defs if self.depth else ctx.toplevel_defs).add(node.name)
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_FunctionDef = _visit_def
        visit_AsyncFunctionDef = _visit_def

    Prepass().visit(ctx.tree)


def lint_file(path: str, rules: Sequence, source: Optional[str] = None) -> List[Finding]:
    """Run every rule over one module, returning unsuppressed findings."""
    findings, _suppressed = lint_file_ex(path, rules, source)
    return findings


def lint_file_ex(
    path: str, rules: Sequence, source: Optional[str] = None
) -> Tuple[List[Finding], int]:
    if source is None:
        with open(path, encoding="utf-8") as fileobj:
            source = fileobj.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule="LNT000",
                    message="file does not parse: %s" % exc.msg,
                )
            ],
            0,
        )
    pragmas, malformed = collect_pragmas(source, path)
    ctx = FileContext(path=path, tree=tree, source=source, pragmas=pragmas)
    _collect_scopes(ctx)
    raw: List[Finding] = list(malformed)
    dispatch: Dict[type, list] = {}
    for rule in rules:
        for node_type in rule.interests:
            dispatch.setdefault(node_type, []).append(rule)
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            raw.extend(rule.visit(node, ctx))
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw):
        if finding.rule in pragmas.get(finding.line, ()):  # inline / line above
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with ``rules``.

    Findings present in ``baseline`` are split out rather than dropped,
    so reporters can show the grandfathered debt without failing on it.
    """
    if rules is None:
        from repro.lint.rules import default_rules

        rules = default_rules()
    baseline = baseline or Baseline()
    new: List[Finding] = []
    old: List[Finding] = []
    suppressed = 0
    files = 0
    for path in iter_python_files(paths):
        files += 1
        findings, skipped = lint_file_ex(path, rules)
        suppressed += skipped
        for finding in findings:
            (old if baseline.contains(finding) else new).append(finding)
    return LintResult(
        findings=sorted(new), baselined=sorted(old), suppressed=suppressed, files=files
    )
