"""Write-side hot-path switch and the deterministic LRU behind it.

The template-and-memo refactor (crypto memoization, packet/header
templates, flow-encapsulation templates, the engine's per-connection
flight layouts) is byte-identical to the rebuild-everything path it
replaced — every cached object is a pure function of its key.  The
rebuild paths are kept permanently as the *reference implementation*:
``benchmarks/bench_hotpath.py`` flips this switch to measure the
speedup and to re-assert pcap byte-parity against the non-template
path, and the parity tests under ``tests/`` do the same per packet.

``enabled`` is a module-level bool read once per packet; flipping it is
process-local (worker processes inherit the default, which is fine —
both paths produce identical bytes).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

#: Fast paths are on by default; the rebuild reference paths exist for
#: parity benching, not as a supported production mode.
enabled = True

_T = TypeVar("_T")
_MISSING = object()


def set_enabled(flag: bool) -> None:
    """Switch every template/memo fast path on or off process-wide."""
    global enabled
    enabled = bool(flag)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the rebuild reference paths (bench/parity use)."""
    global enabled
    previous = enabled
    enabled = False
    try:
        yield
    finally:
        enabled = previous


class LruCache:
    """Small deterministic LRU: insertion-ordered dict, oldest-out.

    Eviction order is a pure function of the get/put sequence (no
    clocks, no hashing randomness — keys are bytes/int tuples), so two
    processes replaying the same packet stream hold identical caches.
    Hit/miss counters feed the hot-path bench.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("LruCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: dict = {}

    def __len__(self) -> int:
        return len(self._data)

    def get_or_build(self, key, factory: Callable[[], _T]) -> _T:
        """Return the cached value for ``key``, building it on a miss."""
        data = self._data
        value = data.pop(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            data[key] = value  # re-insert: most recently used sits last
            return value
        self.misses += 1
        value = factory()
        data[key] = value
        if len(data) > self.maxsize:
            del data[next(iter(data))]
        return value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
