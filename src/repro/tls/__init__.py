"""Minimal TLS 1.3 handshake codec and synthetic certificates.

QUIC Initial packets carry TLS ClientHello/ServerHello messages inside
CRYPTO frames.  The library encodes just enough TLS to (i) give Initial
flights realistic sizes and contents, (ii) let active probes read SNI/ALPN
and certificate subjectAltNames, and (iii) transport QUIC transport
parameters.
"""

from repro.tls.handshake import (
    ClientHello,
    ServerHello,
    decode_handshake,
    encode_handshake,
)
from repro.tls.certs import Certificate

__all__ = [
    "ClientHello",
    "ServerHello",
    "encode_handshake",
    "decode_handshake",
    "Certificate",
]
