"""TLS 1.3 ClientHello / ServerHello encoding (RFC 8446 §4.1), trimmed.

The wire format is faithful (handshake header, legacy version, random,
cipher suites, extension framing) so packet sizes are realistic, but only
the extensions the measurement pipeline reads are implemented: server_name,
ALPN, supported_versions, and quic_transport_parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buffer import BufferError_, Reader, Writer

CLIENT_HELLO = 1
SERVER_HELLO = 2

TLS13 = 0x0304
LEGACY_VERSION = 0x0303

EXT_SERVER_NAME = 0
EXT_ALPN = 16
EXT_SUPPORTED_VERSIONS = 43
EXT_QUIC_TRANSPORT_PARAMETERS = 57

TLS_AES_128_GCM_SHA256 = 0x1301
TLS_AES_256_GCM_SHA384 = 0x1302
TLS_CHACHA20_POLY1305_SHA256 = 0x1303


class TlsParseError(ValueError):
    """Raised when bytes cannot be parsed as a TLS handshake message."""


@dataclass
class ClientHello:
    random: bytes = b"\x00" * 32
    server_name: str = ""
    alpn: tuple[str, ...] = ("h3",)
    cipher_suites: tuple[int, ...] = (TLS_AES_128_GCM_SHA256,)
    quic_transport_parameters: bytes = b""

    def __post_init__(self) -> None:
        if len(self.random) != 32:
            raise TlsParseError("ClientHello random must be 32 bytes")


@dataclass
class ServerHello:
    random: bytes = b"\x00" * 32
    cipher_suite: int = TLS_AES_128_GCM_SHA256
    quic_transport_parameters: bytes = b""

    def __post_init__(self) -> None:
        if len(self.random) != 32:
            raise TlsParseError("ServerHello random must be 32 bytes")


def encode_handshake(message) -> bytes:
    """Serialize a ClientHello or ServerHello with the 4-byte TLS header."""
    if isinstance(message, ClientHello):
        body = _encode_client_hello(message)
        msg_type = CLIENT_HELLO
    elif isinstance(message, ServerHello):
        body = _encode_server_hello(message)
        msg_type = SERVER_HELLO
    else:
        raise TlsParseError("cannot encode %r" % type(message))
    writer = Writer()
    writer.write_u8(msg_type)
    writer.write_uint(len(body), 3)
    writer.write(body)
    return writer.getvalue()


def _encode_extensions(extensions: list[tuple[int, bytes]]) -> bytes:
    inner = Writer()
    for ext_type, data in extensions:
        inner.write_u16(ext_type)
        inner.write_u16(len(data))
        inner.write(data)
    out = Writer()
    out.write_u16(len(inner))
    out.write(inner.getvalue())
    return out.getvalue()


def _sni_extension(server_name: str) -> bytes:
    name = server_name.encode("idna") if server_name else b""
    entry = Writer()
    entry.write_u8(0)  # name_type host_name
    entry.write_u16(len(name))
    entry.write(name)
    out = Writer()
    out.write_u16(len(entry))
    out.write(entry.getvalue())
    return out.getvalue()


def _alpn_extension(protocols: tuple[str, ...]) -> bytes:
    entries = Writer()
    for proto in protocols:
        raw = proto.encode("ascii")
        entries.write_u8(len(raw))
        entries.write(raw)
    out = Writer()
    out.write_u16(len(entries))
    out.write(entries.getvalue())
    return out.getvalue()


def _encode_client_hello(hello: ClientHello) -> bytes:
    writer = Writer()
    writer.write_u16(LEGACY_VERSION)
    writer.write(hello.random)
    writer.write_u8(0)  # empty legacy session id
    writer.write_u16(2 * len(hello.cipher_suites))
    for suite in hello.cipher_suites:
        writer.write_u16(suite)
    writer.write_u8(1)  # legacy compression methods
    writer.write_u8(0)
    extensions: list[tuple[int, bytes]] = [
        (EXT_SUPPORTED_VERSIONS, bytes([2]) + TLS13.to_bytes(2, "big")),
    ]
    if hello.server_name:
        extensions.append((EXT_SERVER_NAME, _sni_extension(hello.server_name)))
    if hello.alpn:
        extensions.append((EXT_ALPN, _alpn_extension(hello.alpn)))
    if hello.quic_transport_parameters:
        extensions.append(
            (EXT_QUIC_TRANSPORT_PARAMETERS, hello.quic_transport_parameters)
        )
    writer.write(_encode_extensions(extensions))
    return writer.getvalue()


def _encode_server_hello(hello: ServerHello) -> bytes:
    writer = Writer()
    writer.write_u16(LEGACY_VERSION)
    writer.write(hello.random)
    writer.write_u8(0)  # echo of empty session id
    writer.write_u16(hello.cipher_suite)
    writer.write_u8(0)  # compression null
    extensions: list[tuple[int, bytes]] = [
        (EXT_SUPPORTED_VERSIONS, TLS13.to_bytes(2, "big")),
    ]
    if hello.quic_transport_parameters:
        extensions.append(
            (EXT_QUIC_TRANSPORT_PARAMETERS, hello.quic_transport_parameters)
        )
    writer.write(_encode_extensions(extensions))
    return writer.getvalue()


def decode_handshake(data: bytes):
    """Parse one handshake message; returns ClientHello or ServerHello."""
    reader = Reader(data)
    try:
        msg_type = reader.read_u8()
        length = reader.read_uint(3)
        body = Reader(reader.read(length))
        if msg_type == CLIENT_HELLO:
            return _decode_client_hello(body)
        if msg_type == SERVER_HELLO:
            return _decode_server_hello(body)
    except BufferError_ as exc:
        raise TlsParseError(str(exc)) from exc
    raise TlsParseError("unsupported handshake type %d" % msg_type)


def _decode_extensions(reader: Reader) -> dict[int, bytes]:
    out: dict[int, bytes] = {}
    if reader.at_end():
        return out
    total = reader.read_u16()
    block = Reader(reader.read(total))
    while not block.at_end():
        ext_type = block.read_u16()
        length = block.read_u16()
        out[ext_type] = block.read(length)
    return out


def _decode_client_hello(reader: Reader) -> ClientHello:
    version = reader.read_u16()
    if version != LEGACY_VERSION:
        raise TlsParseError("unexpected legacy version 0x%04x" % version)
    random = reader.read(32)
    session_len = reader.read_u8()
    reader.skip(session_len)
    suites_len = reader.read_u16()
    if suites_len % 2:
        raise TlsParseError("odd cipher-suite block length")
    suites = tuple(
        int.from_bytes(reader.read(2), "big") for _ in range(suites_len // 2)
    )
    compression_len = reader.read_u8()
    reader.skip(compression_len)
    extensions = _decode_extensions(reader)
    server_name = ""
    if EXT_SERVER_NAME in extensions:
        sni = Reader(extensions[EXT_SERVER_NAME])
        sni.read_u16()  # list length
        sni.read_u8()  # name type
        name_len = sni.read_u16()
        server_name = sni.read(name_len).decode("ascii")
    alpn: tuple[str, ...] = ()
    if EXT_ALPN in extensions:
        alpn_reader = Reader(extensions[EXT_ALPN])
        alpn_reader.read_u16()
        protocols = []
        while not alpn_reader.at_end():
            plen = alpn_reader.read_u8()
            protocols.append(alpn_reader.read(plen).decode("ascii"))
        alpn = tuple(protocols)
    return ClientHello(
        random=random,
        server_name=server_name,
        alpn=alpn,
        cipher_suites=suites,
        quic_transport_parameters=extensions.get(EXT_QUIC_TRANSPORT_PARAMETERS, b""),
    )


def _decode_server_hello(reader: Reader) -> ServerHello:
    version = reader.read_u16()
    if version != LEGACY_VERSION:
        raise TlsParseError("unexpected legacy version 0x%04x" % version)
    random = reader.read(32)
    session_len = reader.read_u8()
    reader.skip(session_len)
    suite = reader.read_u16()
    reader.read_u8()  # compression
    extensions = _decode_extensions(reader)
    return ServerHello(
        random=random,
        cipher_suite=suite,
        quic_transport_parameters=extensions.get(EXT_QUIC_TRANSPORT_PARAMETERS, b""),
    )
