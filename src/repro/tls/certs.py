"""Synthetic X.509-like certificates.

Real certificates are DER-encoded ASN.1; the off-net verification step of
the paper only reads the subjectAltName list, so we model a certificate as
a small TLV structure carrying subject, issuer, and SANs.  The substitution
is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buffer import BufferError_, Reader, Writer

_FIELD_SUBJECT = 1
_FIELD_ISSUER = 2
_FIELD_SAN = 3


class CertificateError(ValueError):
    """Raised when certificate bytes cannot be parsed."""


@dataclass(frozen=True)
class Certificate:
    """A leaf certificate with the fields the pipeline inspects."""

    subject: str
    issuer: str = "Synthetic Root CA"
    subject_alt_names: tuple[str, ...] = ()

    def covers(self, domain: str) -> bool:
        """True if ``domain`` matches the subject or any SAN (incl. wildcards)."""
        names = (self.subject,) + self.subject_alt_names
        for name in names:
            if name == domain:
                return True
            if name.startswith("*.") and domain.endswith(name[1:]):
                return True
        return False

    def matches_any_suffix(self, suffixes: tuple[str, ...]) -> bool:
        """Paper Appendix C: does any SAN end with one of ``suffixes``?

        (e.g. ``("facebook.com", "fbcdn.net", ...)``).
        """
        names = (self.subject,) + self.subject_alt_names
        for name in names:
            bare = name[2:] if name.startswith("*.") else name
            for suffix in suffixes:
                if bare == suffix or bare.endswith("." + suffix):
                    return True
        return False

    def encode(self) -> bytes:
        writer = Writer()
        for field_id, value in [
            (_FIELD_SUBJECT, self.subject),
            (_FIELD_ISSUER, self.issuer),
        ]:
            raw = value.encode("utf-8")
            writer.write_u8(field_id)
            writer.write_u16(len(raw))
            writer.write(raw)
        for san in self.subject_alt_names:
            raw = san.encode("utf-8")
            writer.write_u8(_FIELD_SAN)
            writer.write_u16(len(raw))
            writer.write(raw)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        reader = Reader(data)
        subject = ""
        issuer = ""
        sans: list[str] = []
        try:
            while not reader.at_end():
                field_id = reader.read_u8()
                length = reader.read_u16()
                value = reader.read(length).decode("utf-8")
                if field_id == _FIELD_SUBJECT:
                    subject = value
                elif field_id == _FIELD_ISSUER:
                    issuer = value
                elif field_id == _FIELD_SAN:
                    sans.append(value)
                else:
                    raise CertificateError("unknown field %d" % field_id)
        except (BufferError_, UnicodeDecodeError) as exc:
            raise CertificateError(str(exc)) from exc
        if not subject:
            raise CertificateError("certificate missing subject")
        return cls(subject=subject, issuer=issuer, subject_alt_names=tuple(sans))
