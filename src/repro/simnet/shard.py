"""Sharded multiprocess simulation with a deterministic merge.

The paper's telescope dataset is 87.4M packets over a month; a single
Python process simulating that volume is wall-clock-bound on the CPU.
This module partitions a :class:`~repro.workloads.scenario.ScenarioConfig`
into independent sub-scenarios and runs them in ``multiprocessing``
workers (``repro simulate --workers N``), then reassembles one capture:

1. **Partition** — :func:`plan_shards` groups the scenario's
   :class:`~repro.workloads.scenario.TrafficUnit`\\ s (per-hypergiant
   attack blocks, per-scanner sweeps, bots, noise) into balanced shards
   by greedy LPT on the units' cost weights.
2. **Run** — each worker builds the *full* deployment (cheap; identical
   construction-time random draws in every process) but installs only
   its shard's units, runs the event loop, and writes its telescope
   records — sorted by the canonical
   :func:`~repro.netstack.pcap.record_sort_key` — to a temporary pcap.
3. **Merge** — the parent k-way-merges the per-worker pcaps into one
   time-ordered file (:func:`~repro.netstack.pcap.merge_pcap_files`) and
   folds the workers' metrics snapshots into its registry
   (:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`),
   pushgateway-style, so the existing Prometheus exporters publish
   whole-run numbers.

Determinism contract: all runtime randomness in the pipeline is *keyed*
— per-unit seeds (:func:`~repro.workloads.scenario.derive_seed`),
per-connection engine rngs, per-packet path hashes — never drawn from a
stream shared across units.  A packet's fate therefore does not depend
on which process simulated it or on event interleaving, and for a fixed
``(seed, scale)`` the merged capture is identical for any worker count
``N >= 2`` and record-identical to the serial run (same multiset of
records; the serial file orders same-microsecond ties by arrival
instead of the canonical key).  ``--workers 1`` bypasses this module
entirely and is byte-identical to the serial path by construction.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.netstack.pcap import merge_pcap_files, write_pcap
from repro.obs import NULL_OBS, Observability
from repro.obs.progress import HeartbeatWriter, clean_progress_dir, expected_events
from repro.obs.trace import CAT_SIM
from repro.workloads.scenario import (
    ScenarioConfig,
    TrafficUnit,
    build_scenario,
    derive_seed,
    plan_traffic_units,
)


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a scenario: a subset of its traffic units."""

    index: int
    seed: int  # derived from (config.seed, "shard", index); survives scaled()
    units: tuple[TrafficUnit, ...]

    @property
    def weight(self) -> int:
        return sum(unit.weight for unit in self.units)

    @property
    def unit_names(self) -> tuple[str, ...]:
        return tuple(unit.name for unit in self.units)


@dataclass
class ShardRunResult:
    """What :func:`simulate_sharded` hands back to the caller."""

    total_records: int
    shards: list[Shard]
    worker_records: list[int]  # records captured per shard, by shard order
    #: Per-shard pcap paths still on disk (empty unless the caller asked
    #: to keep them via ``keep_shards``/``merge=False``).
    shard_paths: list[str] = field(default_factory=list)


def partition_units(
    units: Sequence[TrafficUnit], shards: int
) -> list[tuple[TrafficUnit, ...]]:
    """Greedy LPT partition of units into ``shards`` balanced groups.

    Units are placed heaviest-first onto the currently lightest shard
    (ties broken by shard index, unit order by ``(-weight, name)``), so
    the partition is deterministic for a given unit list.  Groups may be
    empty when there are more shards than units.
    """
    if shards < 1:
        raise ValueError("shard count must be >= 1 (got %r)" % shards)
    buckets: list[list[TrafficUnit]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for unit in sorted(units, key=lambda u: (-u.weight, u.name)):
        lightest = min(range(shards), key=lambda i: (loads[i], i))
        buckets[lightest].append(unit)
        loads[lightest] += unit.weight
    return [tuple(bucket) for bucket in buckets]


def plan_shards(config: ScenarioConfig, workers: int) -> list[Shard]:
    """Partition ``config``'s traffic units across up to ``workers`` shards.

    Empty shards are dropped, so the result may be shorter than
    ``workers``.  Shard seeds derive from the config seed and the shard
    index only — like unit seeds, they commute with
    :meth:`~repro.workloads.scenario.ScenarioConfig.scaled`.
    """
    units = plan_traffic_units(config)
    shards = []
    for index, bucket in enumerate(partition_units(units, workers)):
        if not bucket:
            continue
        shards.append(
            Shard(
                index=index,
                seed=derive_seed(config.seed, "shard", index),
                units=bucket,
            )
        )
    return shards


def resolve_workers(workers, config: ScenarioConfig) -> int:
    """Resolve a ``--workers`` value (an int or ``"auto"``) to a count.

    ``auto`` picks ``min(os.cpu_count(), planned shards)`` — more workers
    than shards would sit idle, and :func:`plan_shards` drops empty
    buckets anyway.  On a 1-CPU box it falls back to the serial path (1):
    BENCH_shard.json measured the fork-pool at 0.77–0.88× of serial
    there, so parallelism is only worth its overhead with ≥2 CPUs.
    """
    if workers != "auto":
        return int(workers)
    cpus = os.cpu_count() or 1
    if cpus < 2:
        return 1
    planned = len(plan_shards(config, cpus))
    return max(1, min(cpus, planned))


def run_shard(
    config: ScenarioConfig,
    unit_names: Optional[Sequence[str]] = None,
    obs: Optional[Observability] = None,
    heartbeat: Optional[HeartbeatWriter] = None,
):
    """Build the full deployment, run only the named traffic units.

    Returns the telescope's records sorted by the canonical
    :func:`~repro.netstack.pcap.record_sort_key`.  Used in-process by
    tests and from worker processes by :func:`simulate_sharded`;
    ``unit_names=None`` runs everything (a serial run in merge order).

    When profiling, the build and run phases open ``simulate.build`` /
    ``simulate.run`` spans marked ``local`` — they describe this
    *process*, so they are excluded from the canonical merged timeline
    (see :mod:`repro.obs.spans`).  When a ``heartbeat`` writer is given,
    it is updated through the build, every ~4096 loop events during the
    run, and once more (``final``) on completion.
    """
    obs = obs or NULL_OBS
    units = plan_traffic_units(config)
    if unit_names is not None:
        wanted = set(unit_names)
        unknown = wanted - {unit.name for unit in units}
        if unknown:
            raise ValueError("unknown traffic units: %s" % ", ".join(sorted(unknown)))
        units = tuple(unit for unit in units if unit.name in wanted)
    if heartbeat is not None:
        heartbeat.total = expected_events(sum(unit.weight for unit in units))
        heartbeat.update("build")
    with obs.span("simulate.build", local=True, units=len(units)):
        scenario = build_scenario(config, obs=obs, units=units)
    loop = scenario.loop
    if heartbeat is not None:
        telescope = scenario.telescope
        prof = obs.prof

        def on_progress(count: int) -> None:
            heartbeat.update(
                "run",
                done=count,
                records=len(telescope.records),
                span=prof.current_path if prof is not None else "",
                sim_time=loop.now,
            )

        loop.on_progress = on_progress
        heartbeat.update("run")
    with obs.span("simulate.run", local=True):
        scenario.run()
    if loop.pending:
        raise RuntimeError(
            "shard finished with %d events still queued" % loop.pending
        )
    records = scenario.telescope.capture.sorted_records()
    if heartbeat is not None:
        heartbeat.update(
            "done",
            done=loop.events_processed,
            records=len(records),
            sim_time=loop.now,
            final=True,
        )
    return records


def run_to_pcap(
    config: ScenarioConfig,
    output: str,
    obs: Optional[Observability] = None,
    heartbeat: Optional[HeartbeatWriter] = None,
    unit_names: Optional[Sequence[str]] = None,
) -> int:
    """Run a scenario in-process and persist its capture to ``output``.

    A thin composition of :func:`run_shard` and
    :func:`~repro.netstack.pcap.write_pcap` — records land on disk in the
    canonical merge order, so the file is byte-identical to what any
    ``--workers N`` merged run would produce for the same config.  This
    is the per-cell simulation primitive of ``repro.sweep``, which may
    itself already be fanning cells across a process pool (daemonic pool
    workers cannot spawn their own children, so cells simulate
    in-process).  Returns the number of captured records.
    """
    records = run_shard(config, unit_names, obs=obs, heartbeat=heartbeat)
    write_pcap(output, records)
    return len(records)


def _worker_main(payload: tuple):
    """Worker-process entry: run one shard, persist its capture.

    Returns ``(record_count, metrics_snapshot_or_None,
    prof_snapshot_or_None)``; the capture itself travels via the
    filesystem (a temporary per-shard pcap) to keep the IPC payload
    small.  ``prof_every`` turns on an in-worker profiler whose snapshot
    the parent merges; ``progress_dir`` points at the run's heartbeat
    directory.
    """
    (
        config,
        unit_names,
        pcap_path,
        want_metrics,
        trace_path,
        prof_every,
        progress_dir,
        shard_index,
    ) = payload
    from repro.obs import JsonlTracer, MetricsRegistry, Profiler

    tracer = JsonlTracer.to_path(trace_path) if trace_path else None
    metrics = MetricsRegistry() if want_metrics else None
    prof = Profiler(prof_every, metrics=metrics) if prof_every else None
    obs = Observability(tracer=tracer, metrics=metrics, prof=prof)
    heartbeat = (
        HeartbeatWriter(progress_dir, worker=shard_index) if progress_dir else None
    )
    try:
        records = run_shard(config, unit_names, obs=obs, heartbeat=heartbeat)
        write_pcap(pcap_path, records)
    finally:
        obs.close()
        if heartbeat is not None:
            heartbeat.close()
    return (
        len(records),
        metrics.snapshot() if metrics is not None else None,
        prof.snapshot() if prof is not None else None,
    )


def _pool_context():
    """Prefer fork (cheap, COW) where available; fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def simulate_sharded(
    config: ScenarioConfig,
    workers: int,
    output: str,
    obs: Optional[Observability] = None,
    trace_path: Optional[str] = None,
    progress_dir: Optional[str] = None,
    keep_shards: bool = False,
    merge: bool = True,
) -> ShardRunResult:
    """Run ``config`` across ``workers`` processes and merge into ``output``.

    Per-shard pcaps are written next to ``output`` (``output.shard<k>``)
    and removed after the merge unless ``keep_shards`` (or ``merge=False``,
    which skips the merge entirely — downstream consumers read the shard
    files directly via ``build_from_shards``).  When ``obs`` carries a
    metrics registry, workers snapshot theirs and the parent merges them;
    when it carries a profiler, workers profile at the same sampling
    interval and the parent merges their stage trees.  When
    ``trace_path`` is given, worker *k* writes its own JSONL trace to
    ``trace_path.worker<k>`` (mergeable into one canonical span timeline
    with ``repro trace merge``).  ``progress_dir`` makes every worker
    write live heartbeats there (stale ones are cleaned first) for
    ``repro progress`` / ``repro top``.
    """
    if workers < 2:
        raise ValueError(
            "simulate_sharded needs workers >= 2; run build_scenario serially"
        )
    obs = obs or NULL_OBS
    shards = plan_shards(config, workers)
    want_metrics = obs.metrics is not None
    prof_every = obs.prof.every if obs.prof is not None else 0
    if progress_dir is not None:
        clean_progress_dir(progress_dir)
    shard_paths = ["%s.shard%d" % (output, shard.index) for shard in shards]
    payloads = [
        (
            config,
            shard.unit_names,
            path,
            want_metrics,
            "%s.worker%d" % (trace_path, shard.index) if trace_path else None,
            prof_every,
            progress_dir,
            shard.index,
        )
        for shard, path in zip(shards, shard_paths)
    ]
    if obs.tracer.enabled:
        obs.tracer.emit(
            CAT_SIM,
            "shard_plan",
            time=0.0,
            workers=len(shards),
            units=[list(shard.unit_names) for shard in shards],
            weights=[shard.weight for shard in shards],
        )
    ctx = _pool_context()
    with ctx.Pool(processes=len(shards)) as pool:
        results = pool.map(_worker_main, payloads)
    if merge:
        try:
            # The parent deliberately opens no ``simulate.run`` span of its
            # own: the merged worker trees already carry the run stages,
            # and a parent duplicate would double-count them.
            with obs.span("simulate.merge", local=True, shards=len(shard_paths)):
                total = merge_pcap_files(shard_paths, output)
        finally:
            if not keep_shards:
                for path in shard_paths:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
    else:
        total = sum(count for count, _metrics, _prof in results)
    if want_metrics:
        for _count, snapshot, _prof_snap in results:
            if snapshot is not None:
                obs.metrics.merge_snapshot(snapshot)
    if obs.prof is not None:
        for _count, _metrics_snap, prof_snap in results:
            if prof_snap is not None:
                obs.prof.merge_snapshot(prof_snap)
    return ShardRunResult(
        total_records=total,
        shards=shards,
        worker_records=[count for count, _metrics_snap, _prof_snap in results],
        shard_paths=shard_paths if (keep_shards or not merge) else [],
    )
