"""Discrete-event Internet simulator.

A :class:`~repro.simnet.eventloop.EventLoop` drives simulated time; a
:class:`~repro.simnet.network.Network` routes :class:`UdpDatagram` objects
between :class:`~repro.simnet.network.Device` subclasses by longest-prefix
match, with per-device latency and optional loss.  Spoofed traffic is
first-class: replies to spoofed sources are routed to whichever device owns
the spoofed prefix — which is how backscatter reaches the telescope.
"""

from repro.simnet.eventloop import Event, EventLoop
from repro.simnet.network import Device, Network, PathModel

__all__ = ["Event", "EventLoop", "Device", "Network", "PathModel"]
