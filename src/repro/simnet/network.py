"""Packet routing between simulated devices.

Every :class:`Device` announces one or more prefixes; the network delivers
each :class:`UdpDatagram` to the device with the longest matching prefix
for the destination address.  Path latency is the sum of both endpoints'
access delays plus jitter; a global loss rate models drop on the open
Internet.  Packets to unowned space are counted and dropped (like real
traffic to dark space that no telescope covers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.inetdata.radix import RadixTree
from repro.netstack.addr import Prefix
from repro.netstack.udp import UdpDatagram
from repro.simnet.eventloop import EventLoop


@dataclass
class PathModel:
    """Latency/loss parameters for the simulated Internet."""

    base_delay: float = 0.002  # propagation floor between any two devices
    jitter: float = 0.001  # uniform jitter added per packet
    loss_rate: float = 0.0  # independent drop probability per packet

    def one_way_delay(self, rng: random.Random, src_access: float, dst_access: float) -> float:
        return self.base_delay + src_access + dst_access + rng.uniform(0.0, self.jitter)


class Device:
    """Base class for anything attached to the network."""

    #: Access delay from this device to the network core, in seconds.
    access_delay = 0.005

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: "Network | None" = None

    # -- wiring --------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        self.network = network

    def prefixes(self) -> list[Prefix]:
        """Prefixes this device answers for (empty: send-only device)."""
        return []

    # -- traffic ---------------------------------------------------------------
    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        """Called when a datagram addressed to this device arrives."""

    def send(self, datagram: UdpDatagram) -> None:
        if self.network is None:
            raise RuntimeError("device %s is not attached to a network" % self.name)
        self.network.transmit(self, datagram)


@dataclass
class NetworkStats:
    delivered: int = 0
    dropped_loss: int = 0
    dropped_unrouted: int = 0


class Network:
    """The simulated Internet: routing table + latency + loss."""

    def __init__(
        self,
        loop: EventLoop,
        rng: random.Random,
        path: PathModel | None = None,
    ) -> None:
        self.loop = loop
        self.rng = rng
        self.path = path or PathModel()
        self.stats = NetworkStats()
        self._routes: RadixTree[Device] = RadixTree()
        self._devices: list[Device] = []

    def add_device(self, device: Device) -> None:
        device.attach(self)
        self._devices.append(device)
        for prefix in device.prefixes():
            self._routes.insert(prefix, device)

    def add_route(self, prefix: Prefix | str, device: Device) -> None:
        """Announce an extra prefix for an already-attached device."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self._routes.insert(prefix, device)

    def route(self, address: int) -> Device | None:
        return self._routes.lookup(address)

    def transmit(self, sender: Device, datagram: UdpDatagram) -> None:
        """Route ``datagram`` to the owner of its destination address."""
        target = self._routes.lookup(datagram.dst_ip)
        if target is None:
            self.stats.dropped_unrouted += 1
            return
        if self.path.loss_rate and self.rng.random() < self.path.loss_rate:
            self.stats.dropped_loss += 1
            return
        delay = self.path.one_way_delay(
            self.rng, sender.access_delay, target.access_delay
        )
        self.stats.delivered += 1
        self.loop.schedule(
            delay, lambda: target.handle_datagram(datagram, self.loop.now)
        )

    @property
    def devices(self) -> list[Device]:
        return list(self._devices)
