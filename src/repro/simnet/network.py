"""Packet routing between simulated devices.

Every :class:`Device` announces one or more prefixes; the network delivers
each :class:`UdpDatagram` to the device with the longest matching prefix
for the destination address.  Path latency is the sum of both endpoints'
access delays plus jitter; a global loss rate models drop on the open
Internet.  Packets to unowned space are counted and dropped (like real
traffic to dark space that no telescope covers).

Every transmit outcome — delivered, lost, unrouted — is recorded in the
metrics registry with device and drop-reason labels, so ``repro stats``
can account for every packet.  :class:`NetworkStats` remains as a thin
compatibility view over those counters.

Per-packet jitter and loss are not drawn from a shared rng stream but
derived from a keyed hash of the packet itself (endpoints, send time,
payload).  A shared stream would make delays depend on the global order
in which packets happen to be transmitted; the keyed hash makes each
packet's fate a pure function of the packet, so a scenario sharded
across worker processes (``repro.simnet.shard``) reproduces the serial
run's capture exactly.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.inetdata.radix import RadixTree
from repro.netstack.addr import Prefix
from repro.netstack.udp import UdpDatagram
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.obs.trace import CAT_NET
from repro.simnet.eventloop import EventLoop

#: Transmit drop reasons (the ``reason`` label on ``net.dropped``).
DROP_LOSS = "loss"
DROP_NO_ROUTE = "no_route"


@dataclass
class PathModel:
    """Latency/loss parameters for the simulated Internet."""

    base_delay: float = 0.002  # propagation floor between any two devices
    jitter: float = 0.001  # uniform jitter added per packet
    loss_rate: float = 0.0  # independent drop probability per packet

    def one_way_delay(self, rng: random.Random, src_access: float, dst_access: float) -> float:
        return self.base_delay + src_access + dst_access + rng.uniform(0.0, self.jitter)

    def delay_for(
        self, jitter_fraction: float, src_access: float, dst_access: float
    ) -> float:
        """One-way delay with the jitter fixed by ``jitter_fraction`` ∈ [0, 1)."""
        return self.base_delay + src_access + dst_access + jitter_fraction * self.jitter


class Device:
    """Base class for anything attached to the network."""

    #: Access delay from this device to the network core, in seconds.
    access_delay = 0.005

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: "Network | None" = None

    # -- wiring --------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        self.network = network

    def prefixes(self) -> list[Prefix]:
        """Prefixes this device answers for (empty: send-only device)."""
        return []

    # -- traffic ---------------------------------------------------------------
    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        """Called when a datagram addressed to this device arrives."""

    def send(self, datagram: UdpDatagram) -> None:
        if self.network is None:
            raise RuntimeError("device %s is not attached to a network" % self.name)
        self.network.transmit(self, datagram)


class NetworkStats:
    """Compatibility view over the ``net.delivered``/``net.dropped`` counters."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._delivered = metrics.counter("net.delivered", ("device",))
        self._dropped = metrics.counter("net.dropped", ("reason", "device"))

    @property
    def delivered(self) -> int:
        return int(self._delivered.total())

    @property
    def dropped_loss(self) -> int:
        return int(self._dropped.sum_where(reason=DROP_LOSS))

    @property
    def dropped_unrouted(self) -> int:
        return int(self._dropped.sum_where(reason=DROP_NO_ROUTE))

    def __repr__(self) -> str:
        return "NetworkStats(delivered=%d, dropped_loss=%d, dropped_unrouted=%d)" % (
            self.delivered,
            self.dropped_loss,
            self.dropped_unrouted,
        )


class Network:
    """The simulated Internet: routing table + latency + loss."""

    def __init__(
        self,
        loop: EventLoop,
        rng: random.Random,
        path: PathModel | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.loop = loop
        self.rng = rng
        self.path = path or PathModel()
        self.obs = obs or NULL_OBS
        # The network always keeps counters (NetworkStats reads them); a
        # shared registry from ``obs`` additionally surfaces them in
        # snapshots/exports.
        self.metrics = self.obs.metrics if self.obs.metrics is not None else MetricsRegistry()
        self._m_delivered = self.metrics.counter("net.delivered", ("device",))
        self._m_dropped = self.metrics.counter("net.dropped", ("reason", "device"))
        self.stats = NetworkStats(self.metrics)
        # Path randomness is keyed, not streamed: one construction-time
        # draw salts a per-packet hash (see module docstring).
        self._path_salt = rng.getrandbits(64).to_bytes(8, "big")
        self._routes: RadixTree[Device] = RadixTree()
        self._devices: list[Device] = []

    def _path_fractions(self, datagram: UdpDatagram) -> tuple[float, float]:
        """(loss, jitter) fractions in [0, 1), a pure function of the packet."""
        digest = hashlib.blake2b(
            self._path_salt
            + b"%d|%d|%d|%d|" % (
                datagram.src_ip,
                datagram.dst_ip,
                datagram.src_port,
                datagram.dst_port,
            )
            + repr(self.loop.now).encode()
            + b"|"
            + datagram.payload,
            digest_size=16,
        ).digest()
        return (
            int.from_bytes(digest[:8], "big") / 2**64,
            int.from_bytes(digest[8:], "big") / 2**64,
        )

    def add_device(self, device: Device) -> None:
        device.attach(self)
        self._devices.append(device)
        for prefix in device.prefixes():
            self._routes.insert(prefix, device)

    def add_route(self, prefix: Prefix | str, device: Device) -> None:
        """Announce an extra prefix for an already-attached device."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self._routes.insert(prefix, device)

    def route(self, address: int) -> Device | None:
        return self._routes.lookup(address)

    def transmit(self, sender: Device, datagram: UdpDatagram) -> None:
        """Route ``datagram`` to the owner of its destination address."""
        prof = self.obs.prof
        if prof is None:
            self._transmit(sender, datagram)
            return
        # Leaf stage, not a span: transmit fires per packet and a full
        # span push/pop (plus a trace event) would dominate the thing it
        # measures.  try/finally covers all three outcome returns.
        node, start = prof.leaf_begin("net.transmit")
        try:
            self._transmit(sender, datagram)
        finally:
            prof.leaf_end(node, start, packets=1)

    def _transmit(self, sender: Device, datagram: UdpDatagram) -> None:
        tracer = self.obs.tracer
        target = self._routes.lookup(datagram.dst_ip)
        if target is None:
            self._m_dropped.inc_key((DROP_NO_ROUTE, sender.name))
            if tracer.enabled:
                tracer.emit(
                    CAT_NET,
                    "packet_dropped",
                    time=self.loop.now,
                    reason=DROP_NO_ROUTE,
                    src_device=sender.name,
                    dst_ip=datagram.dst_ip,
                    bytes=len(datagram.payload),
                )
            return
        loss_fraction, jitter_fraction = self._path_fractions(datagram)
        if self.path.loss_rate and loss_fraction < self.path.loss_rate:
            self._m_dropped.inc_key((DROP_LOSS, target.name))
            if tracer.enabled:
                tracer.emit(
                    CAT_NET,
                    "packet_dropped",
                    time=self.loop.now,
                    reason=DROP_LOSS,
                    src_device=sender.name,
                    dst_device=target.name,
                    bytes=len(datagram.payload),
                )
            return
        delay = self.path.delay_for(
            jitter_fraction, sender.access_delay, target.access_delay
        )
        self._m_delivered.inc_key((target.name,))
        if tracer.enabled:
            tracer.emit(
                CAT_NET,
                "packet_delivered",
                time=self.loop.now,
                src_device=sender.name,
                dst_device=target.name,
                delay=round(delay, 6),
                bytes=len(datagram.payload),
            )
        self.loop.schedule(
            delay, lambda: target.handle_datagram(datagram, self.loop.now)
        )

    @property
    def devices(self) -> list[Device]:
        return list(self._devices)
