"""Deterministic discrete-event loop with cancellable events."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Event:
    """Handle for a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventLoop:
    """Min-heap scheduler; ties broken by insertion order (deterministic)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        event = Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, skipping cancelled ones."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event; returns False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run(self, max_events: int = 0) -> None:
        """Drain the queue (optionally bounded by ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if max_events and count >= max_events:
                raise RuntimeError(
                    "event budget of %d exhausted; runaway simulation?" % max_events
                )

    def run_until(self, time: float) -> None:
        """Process events with timestamps <= ``time``; advance now to it."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self.now = max(self.now, time)
