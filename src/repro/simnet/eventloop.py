"""Deterministic discrete-event loop with cancellable events."""

from __future__ import annotations

import heapq
import itertools
import time as _wall
from typing import Callable, Optional

from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_SIM

#: Queue depth is sampled every 2**_SAMPLE_SHIFT processed events.
_SAMPLE_SHIFT = 10
_QUEUE_DEPTH_BOUNDS = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)


def queue_depth_bounds(expected_events: Optional[int] = None) -> tuple:
    """``sim.queue_depth`` histogram bounds sized to the scenario scale.

    Without a scale hint the static decade ladder up to 10^6 applies.
    With one, the ladder gains half-decade steps (1, 3, 10, 30, …) and
    extends past 10^6 when the expected event volume demands it — at
    10^7+ events a top bucket of "everything above 10^6" would swallow
    the entire distribution.  The hint must be derived from the *full*
    scenario config (never a shard's slice) so every worker in a sharded
    run registers identical bounds, which snapshot merging requires.
    """
    if not expected_events or expected_events <= 0:
        return _QUEUE_DEPTH_BOUNDS
    top = 1_000_000
    while top < expected_events:
        top *= 10
    bounds = []
    decade = 1
    while decade <= top:
        bounds.append(decade)
        if decade * 3 <= top:
            bounds.append(decade * 3)
        decade *= 10
    return tuple(bounds)


class Event:
    """Handle for a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled", "periodic")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        periodic: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.periodic = periodic

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventLoop:
    """Min-heap scheduler; ties broken by insertion order (deterministic)."""

    def __init__(
        self,
        obs: Observability | None = None,
        queue_depth_sample_shift: int = _SAMPLE_SHIFT,
        expected_events: Optional[int] = None,
    ) -> None:
        if queue_depth_sample_shift < 0:
            raise ValueError(
                "queue_depth_sample_shift must be >= 0 (got %r)"
                % queue_depth_sample_shift
            )
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0
        self.obs = obs or NULL_OBS
        #: ``sim.queue_depth`` is observed every 2**shift processed events.
        self.queue_depth_sample_shift = queue_depth_sample_shift
        #: Scale hint (expected event volume of the full scenario); sizes
        #: the ``sim.queue_depth`` and ``transport.datagram_bytes``
        #: histogram buckets.  None keeps the static defaults.
        self.expected_events = expected_events
        #: Non-periodic events currently in the heap (periodic ticks re-arm
        #: only while this is non-zero, so ``run()`` still drains).
        self._live_normal = 0
        #: Optional callable fired with the running event count every
        #: ~4096 processed events (heartbeat writers hook in here).  Wall
        #: clocks live inside the callback, never in event dispatch, so
        #: the hook cannot perturb simulated behaviour.
        self.on_progress: Optional[Callable[[int], None]] = None

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued.

        Shard workers assert ``pending == 0`` after :meth:`run` before
        shipping their capture: a worker that exits with events queued
        would silently under-produce its slice of the merged pcap.
        """
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self, delay: float, callback: Callable[[], None], periodic: bool = False
    ) -> Event:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        event = Event(self.now + delay, next(self._seq), callback, periodic=periodic)
        heapq.heappush(self._heap, event)
        if not periodic:
            self._live_normal += 1
        return event

    def schedule_periodic(
        self, interval: float, callback: Callable[[], None]
    ) -> Event:
        """Run ``callback`` every ``interval`` sim-seconds while work remains.

        Periodic ticks (exporter flushes, watchdogs) re-arm themselves only
        while non-periodic events are pending, so they observe a running
        simulation without keeping the queue alive forever.
        """
        if interval <= 0:
            raise ValueError("periodic interval must be > 0 (got %r)" % interval)

        def fire() -> None:
            callback()
            if self._live_normal:
                self.schedule(interval, fire, periodic=True)

        return self.schedule(interval, fire, periodic=True)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, skipping cancelled ones."""
        while self._heap and self._heap[0].cancelled:
            popped = heapq.heappop(self._heap)
            if not popped.periodic:
                self._live_normal -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event; returns False if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.periodic:
                self._live_normal -= 1
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run(self, max_events: int = 0) -> None:
        """Drain the queue (optionally bounded by ``max_events``).

        The budget guards against runaway simulations: it raises only if
        events remain pending *after* ``max_events`` have been processed
        — draining exactly on the budget is success, not failure.
        """
        obs = self.obs
        if obs.enabled or self.on_progress is not None:
            self._run_instrumented(max_events)
            return
        count = 0
        while self.step():
            count += 1
            if max_events and count >= max_events:
                if self.peek_time() is not None:
                    raise RuntimeError(
                        "event budget of %d exhausted; runaway simulation?"
                        % max_events
                    )
                break

    def _run_instrumented(self, max_events: int) -> None:
        """``run`` with tracing and queue-depth/throughput metrics."""
        obs = self.obs
        tracer = obs.tracer
        metrics = obs.metrics
        depth_hist = (
            metrics.histogram(
                "sim.queue_depth", queue_depth_bounds(self.expected_events)
            )
            if metrics is not None
            else None
        )
        if tracer.enabled:
            tracer.emit(CAT_SIM, "run_start", time=self.now, pending=len(self._heap))
        # repro: allow(DET002) -- wall time feeds only the obs rate gauges
        # (events_per_sec, sim_to_wall_ratio), never simulated behaviour
        start_wall = _wall.perf_counter()
        start_now = self.now
        count = 0
        sample_mask = (1 << self.queue_depth_sample_shift) - 1
        progress = self.on_progress
        exhausted = False
        while self.step():
            count += 1
            if depth_hist is not None and not count & sample_mask:
                depth_hist.observe_key((), len(self._heap))
            if progress is not None and not count & 4095:
                progress(count)
            if max_events and count >= max_events:
                exhausted = self.peek_time() is not None
                break
        # repro: allow(DET002) -- closes the obs-gauge interval opened above
        elapsed = _wall.perf_counter() - start_wall
        if metrics is not None:
            metrics.counter("sim.events_processed").inc_key((), count)
            if elapsed > 0:
                metrics.gauge("sim.events_per_sec").set_key((), count / elapsed)
                metrics.gauge("sim.sim_to_wall_ratio").set_key(
                    (), (self.now - start_now) / elapsed
                )
        if tracer.enabled:
            tracer.emit(
                CAT_SIM,
                "run_end",
                time=self.now,
                events=count,
                wall_seconds=round(elapsed, 6),
                pending=len(self._heap),
            )
        if exhausted:
            raise RuntimeError(
                "event budget of %d exhausted; runaway simulation?" % max_events
            )

    def run_until(self, time: float) -> None:
        """Process events with timestamps <= ``time``; advance now to it."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self.now = max(self.now, time)
