"""Client-side QUIC: connection objects and a host device.

:class:`ClientConnection` drives one handshake: it builds the padded client
Initial, unprotects the server's flight (possible because Initial keys
derive from the client's own DCID), extracts the server's SCID, transport
parameters and certificate, and produces the confirmation flight that
completes the handshake on the server.  The active prober (paper §3.2,
Appendix D) is built on top of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netstack.udp import QUIC_PORT, UdpDatagram
from repro.quic.crypto.suites import ProtectionError, suite_by_name
from repro.quic.frames import (
    AckFrame,
    AckRange,
    CryptoFrame,
    FrameParseError,
    crypto_payload,
    decode_frames,
    encode_frames,
)
from repro.quic.packet import (
    MIN_INITIAL_DATAGRAM,
    LongHeaderPacket,
    PacketParseError,
    PacketType,
    decode_datagram,
    encode_datagram,
    unprotect_packet,
)
from repro.quic.transport_params import TransportParameters
from repro.quic.version import QUIC_V1
from repro.server.engine import CERT_MAGIC
from repro.tls.certs import Certificate, CertificateError
from repro.tls.handshake import ClientHello, TlsParseError, decode_handshake, encode_handshake

#: Frame payloads of the confirmation flight, encoded once at import: the
#: Initial ACK and the Handshake "finished" CRYPTO are byte-identical for
#: every client, so per-connection work on this emitter reduces to header
#: templating + sealing inside :func:`~repro.quic.packet.encode_datagram`
#: (the write-side template plane; see ARCHITECTURE.md).
_CONFIRM_ACK_PAYLOAD = encode_frames(
    [AckFrame(largest_acked=0, ranges=(AckRange(0, 0),))]
)
_CONFIRM_FINISHED_PAYLOAD = encode_frames([CryptoFrame(offset=0, data=b"finished")])


@dataclass
class HandshakeResult:
    """What a completed (or failed) handshake attempt yields."""

    completed: bool = False
    server_scid: bytes = b""
    version: int = 0
    transport_parameters: Optional[TransportParameters] = None
    certificate: Optional[Certificate] = None
    rtt: float = 0.0
    coalesced_response: bool = False
    version_negotiation: tuple[int, ...] = ()
    #: Spare CIDs the server issued via NEW_CONNECTION_ID.
    new_connection_ids: list = field(default_factory=list)
    #: 1-RTT responses received (used by the migration experiments).
    pongs: int = 0


class ClientConnection:
    """One client-initiated QUIC connection attempt."""

    def __init__(
        self,
        rng: random.Random,
        src_ip: int,
        src_port: int,
        dst_ip: int,
        dst_port: int = QUIC_PORT,
        version: int = QUIC_V1.value,
        server_name: str = "",
        dcid: bytes | None = None,
        scid: bytes | None = None,
        suite: str = "fast",
        pad_to: int = MIN_INITIAL_DATAGRAM,
    ) -> None:
        self.rng = rng
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.version = version
        self.server_name = server_name
        #: Temporary server CID (S1 in the paper's Figure 1).
        self.dcid = dcid if dcid is not None else self._random_cid(8)
        #: Client's own CID (C1).
        self.scid = scid if scid is not None else self._random_cid(8)
        self.pad_to = pad_to
        self.protection = suite_by_name(suite)(version, self.dcid)
        self.result = HandshakeResult()
        self.sent_at = 0.0
        self._confirmed = False

    def _random_cid(self, length: int) -> bytes:
        return self.rng.getrandbits(8 * length).to_bytes(length, "big")

    # -- outbound ----------------------------------------------------------
    def initial_datagram(self, now: float = 0.0) -> UdpDatagram:
        """The first flight: a padded Initial carrying the ClientHello."""
        hello = ClientHello(
            random=self.rng.getrandbits(256).to_bytes(32, "big"),
            server_name=self.server_name,
            quic_transport_parameters=TransportParameters()
            .set(0x0F, self.scid)
            .encode(),
        )
        payload = encode_frames(
            [CryptoFrame(offset=0, data=encode_handshake(hello))]
        )
        packet = LongHeaderPacket(
            packet_type=PacketType.INITIAL,
            version=self.version,
            dcid=self.dcid,
            scid=self.scid,
            packet_number=0,
            payload=payload,
            pn_length=1,
        )
        self.sent_at = now
        data = encode_datagram(
            [packet], self.protection, is_server=False, pad_to=self.pad_to
        )
        return UdpDatagram(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload=data,
        )

    # -- inbound -----------------------------------------------------------
    def on_datagram(self, datagram: UdpDatagram, now: float = 0.0) -> Optional[UdpDatagram]:
        """Process a server datagram; returns the confirmation flight once."""
        payload = datagram.payload
        if payload and not payload[0] & 0x80:
            self._on_short(payload)
            return None
        try:
            packets = decode_datagram(payload)
        except PacketParseError:
            return None
        self.result.coalesced_response = self.result.coalesced_response or (
            len(packets) > 1
        )
        reply_needed = False
        for parsed, raw in packets:
            if parsed.packet_type is PacketType.VERSION_NEGOTIATION:
                self.result.version_negotiation = parsed.supported_versions
                return None
            if parsed.dcid != self.scid:
                continue  # not for this connection
            if parsed.packet_type is PacketType.INITIAL:
                self.result.server_scid = parsed.scid
                self.result.version = parsed.version
                self._read_initial(parsed, raw)
                reply_needed = True
            elif parsed.packet_type is PacketType.HANDSHAKE:
                self.result.server_scid = self.result.server_scid or parsed.scid
                self._read_handshake(parsed, raw)
                reply_needed = True
        if reply_needed and not self._confirmed:
            self._confirmed = True
            self.result.completed = True
            self.result.rtt = now - self.sent_at
            return self._confirmation_datagram()
        return None

    def _read_initial(self, parsed, raw: bytes) -> None:
        try:
            plain = unprotect_packet(parsed, raw, self.protection, from_server=True)
            frames = decode_frames(plain.payload)
            hello = decode_handshake(crypto_payload(frames))
        except (ProtectionError, FrameParseError, TlsParseError, ValueError):
            return
        if getattr(hello, "quic_transport_parameters", b""):
            try:
                self.result.transport_parameters = TransportParameters.decode(
                    hello.quic_transport_parameters
                )
            except ValueError:
                pass

    def _read_handshake(self, parsed, raw: bytes) -> None:
        try:
            plain = unprotect_packet(parsed, raw, self.protection, from_server=True)
            data = crypto_payload(decode_frames(plain.payload))
        except (ProtectionError, FrameParseError, ValueError):
            return
        if data[:4] == CERT_MAGIC and len(data) >= 6:
            length = int.from_bytes(data[4:6], "big")
            if length and len(data) >= 6 + length:
                try:
                    self.result.certificate = Certificate.decode(data[6 : 6 + length])
                except CertificateError:
                    pass

    def _on_short(self, payload: bytes) -> None:
        """1-RTT traffic from the server: NEW_CONNECTION_ID, PING replies."""
        from repro.quic.frames import NewConnectionIdFrame, PingFrame
        from repro.quic.packet import parse_short_header, unprotect_short_packet

        try:
            parsed = parse_short_header(payload, len(self.scid))
            if parsed.dcid != self.scid:
                return
            plain = unprotect_short_packet(
                parsed, payload, self.protection, from_server=True
            )
            frames = decode_frames(plain.payload)
        except (PacketParseError, ProtectionError, FrameParseError):
            return  # possibly a stateless reset: indistinguishable noise
        for frame in frames:
            if isinstance(frame, NewConnectionIdFrame):
                if frame.connection_id not in self.result.new_connection_ids:
                    self.result.new_connection_ids.append(frame.connection_id)
            elif isinstance(frame, PingFrame):
                self.result.pongs += 1

    def migration_datagram(
        self, new_src_port: int, dcid: bytes | None = None
    ) -> UdpDatagram:
        """A 1-RTT PING from a *new* 5-tuple — the client-migration probe.

        ``dcid`` selects which server CID to address: the handshake CID
        (default) or one issued via NEW_CONNECTION_ID (CID rotation).
        """
        from repro.quic.frames import PingFrame
        from repro.quic.packet import ShortHeaderPacket, encode_short_packet

        if not self.result.completed:
            raise RuntimeError("cannot migrate before the handshake completes")
        packet = ShortHeaderPacket(
            dcid=dcid if dcid is not None else self.result.server_scid,
            packet_number=7,
            payload=encode_frames([PingFrame()]) + b"\x00" * 24,
        )
        data = encode_short_packet(packet, self.protection, is_server=False)
        return UdpDatagram(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=new_src_port,
            dst_port=self.dst_port,
            payload=data,
        )

    def _confirmation_datagram(self) -> UdpDatagram:
        """Initial ACK + Handshake — the flight that establishes the server."""
        server_scid = self.result.server_scid
        initial_ack = LongHeaderPacket(
            packet_type=PacketType.INITIAL,
            version=self.version,
            dcid=server_scid,
            scid=self.scid,
            packet_number=1,
            payload=_CONFIRM_ACK_PAYLOAD,
            pn_length=1,
        )
        handshake = LongHeaderPacket(
            packet_type=PacketType.HANDSHAKE,
            version=self.version,
            dcid=server_scid,
            scid=self.scid,
            packet_number=0,
            payload=_CONFIRM_FINISHED_PAYLOAD,
            pn_length=1,
        )
        data = encode_datagram(
            [initial_ack, handshake],
            self.protection,
            is_server=False,
            pad_to=MIN_INITIAL_DATAGRAM,
        )
        return UdpDatagram(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload=data,
        )


class ClientHost:
    """A device hosting many client connections, demuxed by local port."""

    def __init__(self, name: str, address: int, access_delay: float = 0.005) -> None:
        self._device = _ClientDevice(name, address, self)
        self._device.access_delay = access_delay
        self.address = address
        self._connections: dict[int, ClientConnection] = {}
        self.completed: list[ClientConnection] = []

    @property
    def device(self) -> "Device":
        return self._device

    def open(self, connection: ClientConnection, now: float = 0.0) -> None:
        """Register and launch a connection from one of our ports."""
        if connection.src_ip != self.address:
            raise ValueError("connection source does not match host address")
        self._connections[connection.src_port] = connection
        self._device.send(connection.initial_datagram(now))

    def register_alias(self, port: int, connection: ClientConnection) -> None:
        """Bind an extra local port to ``connection`` (migration paths)."""
        self._connections[port] = connection

    def send_raw(self, datagram: UdpDatagram) -> None:
        """Transmit a prepared datagram (e.g. a migration probe)."""
        self._device.send(datagram)

    def _handle(self, datagram: UdpDatagram, now: float) -> None:
        connection = self._connections.get(datagram.dst_port)
        if connection is None:
            return
        reply = connection.on_datagram(datagram, now)
        if reply is not None:
            self._device.send(reply)
            self.completed.append(connection)


from repro.netstack.addr import Prefix  # noqa: E402  (device plumbing below)
from repro.simnet.network import Device  # noqa: E402


class _ClientDevice(Device):
    def __init__(self, name: str, address: int, owner: ClientHost) -> None:
        super().__init__(name)
        self.address = address
        self._owner = owner

    def prefixes(self) -> list[Prefix]:
        return [Prefix(self.address, 32)]

    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        self._owner._handle(datagram, now)
