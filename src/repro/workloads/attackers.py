"""Spoofing attackers: the QUIC INITIAL floods that create backscatter.

An attacker sends valid-looking Initials to a victim VIP with randomly
spoofed source addresses.  The victim's handshake flights — and all their
RTO-driven retransmissions — go to the spoofed sources; whenever a spoofed
source falls inside the telescope prefix, the telescope captures the
backscatter.  Real floods spoof uniformly over IPv4; to keep simulations
small we bias the spoofed-address distribution toward the telescope
(``telescope_bias``), which scales volume without changing any per-flow
behaviour (DESIGN.md §5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netstack.addr import Prefix
from repro.netstack.udp import QUIC_PORT, UdpDatagram
from repro.quic.version import QUIC_V1
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device
from repro.workloads.clients import ClientConnection


@dataclass
class AttackPlan:
    """One INITIAL flood event against one or more VIPs.

    A multi-VIP plan models a campaign sweeping a provider's frontends;
    each packet picks a target uniformly (every spoofed packet is an
    independent connection attempt either way).
    """

    targets: tuple[int, ...]
    packet_count: int
    start_time: float = 0.0
    duration: float = 60.0
    #: (version, weight) pairs the attack tool draws from.
    versions: tuple[tuple[int, float], ...] = ((QUIC_V1.value, 1.0),)
    #: Probability that a packet advertises a bogus (unsupported) version,
    #: provoking a Version Negotiation response.
    bogus_version_probability: float = 0.0
    #: DCID length the tool uses for the temporary server CID.
    dcid_length: int = 8
    server_name: str = ""


class SpoofingAttacker(Device):
    """Send-only device issuing spoofed Initials per :class:`AttackPlan`."""

    #: A version value no server supports (not reserved-greased, so it
    #: passes sanitization and shows up as a VN trigger).
    BOGUS_VERSION = 0xFF00007F

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        rng: random.Random,
        telescope_prefix: Prefix,
        spoof_pool: list[Prefix],
        telescope_bias: float = 0.5,
        suite: str = "fast",
    ) -> None:
        super().__init__(name)
        self.loop = loop
        self.rng = rng
        self.telescope_prefix = telescope_prefix
        self.spoof_pool = spoof_pool
        self.telescope_bias = telescope_bias
        self.suite = suite
        self.packets_sent = 0

    def prefixes(self) -> list[Prefix]:
        return []  # spoofed senders own nothing

    def launch(self, plan: AttackPlan) -> None:
        """Schedule every packet of ``plan`` on the event loop."""
        if plan.packet_count <= 0:
            raise ValueError("attack needs at least one packet")
        step = plan.duration / plan.packet_count
        for i in range(plan.packet_count):
            when = plan.start_time + i * step + self.rng.uniform(0, step / 2)
            self.loop.schedule_at(when, self._make_sender(plan))

    def _make_sender(self, plan: AttackPlan):
        def fire() -> None:
            self.send(self._craft_packet(plan))
            self.packets_sent += 1

        return fire

    def _spoofed_source(self) -> int:
        if self.rng.random() < self.telescope_bias or not self.spoof_pool:
            return self.telescope_prefix.random_host(self.rng)
        return self.rng.choice(self.spoof_pool).random_host(self.rng)

    def _pick_version(self, plan: AttackPlan) -> int:
        if (
            plan.bogus_version_probability
            and self.rng.random() < plan.bogus_version_probability
        ):
            return self.BOGUS_VERSION
        versions = [v for v, _w in plan.versions]
        weights = [w for _v, w in plan.versions]
        return self.rng.choices(versions, weights=weights)[0]

    def _craft_packet(self, plan: AttackPlan) -> UdpDatagram:
        connection = ClientConnection(
            rng=self.rng,
            src_ip=self._spoofed_source(),
            src_port=self.rng.randint(1024, 65535),
            dst_ip=self.rng.choice(plan.targets),
            dst_port=QUIC_PORT,
            version=self._pick_version(plan),
            server_name=plan.server_name,
            dcid=None
            if plan.dcid_length == 8
            else self.rng.getrandbits(8 * plan.dcid_length).to_bytes(
                plan.dcid_length, "big"
            ),
            suite=self.suite,
        )
        return connection.initial_datagram(self.loop.now)
