"""Scanners and noise: the request side of telescope traffic.

Three populations, per the paper:

* :class:`ResearchScanner` — acknowledged projects sweeping the whole
  telescope, typically with reserved (greasing) versions to force version
  negotiation.  Removed during sanitization; they dominate the raw capture.
* :class:`UnknownScanner` — undocumented/malicious scanners (bots).  These
  survive sanitization and define the paper's client-side version mix.
* :class:`NoiseSource` — non-QUIC UDP/443 traffic (both directions), the
  false positives the dissector removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netstack.addr import Prefix
from repro.netstack.udp import QUIC_PORT, UdpDatagram
from repro.quic.packet import (
    LongHeaderPacket,
    PacketType,
    encode_datagram,
)
from repro.quic.crypto.suites import suite_by_name
from repro.quic.frames import CryptoFrame, encode_frames
from repro.quic.version import QUIC_V1
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device
from repro.workloads.clients import ClientConnection


class ResearchScanner(Device):
    """An acknowledged scanner sweeping dark space with greased versions."""

    GREASE_VERSION = 0x1A2A3A4A  # matches RFC 9000's 0x?a?a?a?a pattern

    def __init__(
        self,
        name: str,
        address: int,
        loop: EventLoop,
        rng: random.Random,
        target_prefix: Prefix,
        suite: str = "fast",
    ) -> None:
        super().__init__(name)
        self.address = address
        self.loop = loop
        self.rng = rng
        self.target_prefix = target_prefix
        self.suite = suite
        self.packets_sent = 0

    def prefixes(self) -> list[Prefix]:
        return [Prefix(self.address, 32)]

    def sweep(self, packet_count: int, start_time: float = 0.0, duration: float = 600.0) -> None:
        """Probe ``packet_count`` random telescope addresses."""
        step = duration / max(packet_count, 1)
        for i in range(packet_count):
            self.loop.schedule_at(start_time + i * step, self._probe)

    def _probe(self) -> None:
        # Stateless enumeration probes: unpadded Initials with a greased
        # version — small, cheap, and designed to trigger VN on real servers.
        connection = ClientConnection(
            rng=self.rng,
            src_ip=self.address,
            src_port=self.rng.randint(30000, 60000),
            dst_ip=self.target_prefix.random_host(self.rng),
            version=self.GREASE_VERSION,
            suite=self.suite,
            pad_to=0,
        )
        self.send(connection.initial_datagram(self.loop.now))
        self.packets_sent += 1


class UnknownScanner(Device):
    """An undocumented scanner/bot probing dark space with real versions."""

    def __init__(
        self,
        name: str,
        address: int,
        loop: EventLoop,
        rng: random.Random,
        target_prefix: Prefix,
        versions: tuple[tuple[int, float], ...] = ((QUIC_V1.value, 1.0),),
        zero_rtt_probability: float = 0.0,
        pad_probability: float = 0.6,
        suite: str = "fast",
    ) -> None:
        super().__init__(name)
        self.address = address
        self.loop = loop
        self.rng = rng
        self.target_prefix = target_prefix
        self.versions = versions
        self.zero_rtt_probability = zero_rtt_probability
        self.pad_probability = pad_probability
        self.suite = suite
        self.packets_sent = 0

    def prefixes(self) -> list[Prefix]:
        return [Prefix(self.address, 32)]

    def sweep(self, packet_count: int, start_time: float = 0.0, duration: float = 600.0) -> None:
        step = duration / max(packet_count, 1)
        for i in range(packet_count):
            self.loop.schedule_at(start_time + i * step, self._probe)

    def _pick_version(self) -> int:
        versions = [v for v, _w in self.versions]
        weights = [w for _v, w in self.versions]
        return self.rng.choices(versions, weights=weights)[0]

    def _probe(self) -> None:
        target = self.target_prefix.random_host(self.rng)
        if self.rng.random() < self.zero_rtt_probability:
            self.send(self._zero_rtt_packet(target))
        else:
            pad = 1200 if self.rng.random() < self.pad_probability else 0
            connection = ClientConnection(
                rng=self.rng,
                src_ip=self.address,
                src_port=self.rng.randint(1024, 65535),
                dst_ip=target,
                version=self._pick_version(),
                suite=self.suite,
                pad_to=pad,
            )
            self.send(connection.initial_datagram(self.loop.now))
        self.packets_sent += 1

    def _zero_rtt_packet(self, target: int) -> UdpDatagram:
        """A 0-RTT packet replayed at dark space (session-resumption abuse)."""
        dcid = self.rng.getrandbits(64).to_bytes(8, "big")
        protection = suite_by_name(self.suite)(QUIC_V1.value, dcid)
        packet = LongHeaderPacket(
            packet_type=PacketType.ZERO_RTT,
            version=QUIC_V1.value,
            dcid=dcid,
            scid=self.rng.getrandbits(64).to_bytes(8, "big"),
            packet_number=0,
            payload=encode_frames(
                [CryptoFrame(offset=0, data=b"early-data" * 10)]
            ),
            pn_length=1,
        )
        data = encode_datagram([packet], protection, is_server=False, pad_to=0)
        return UdpDatagram(
            src_ip=self.address,
            dst_ip=target,
            src_port=self.rng.randint(1024, 65535),
            dst_port=QUIC_PORT,
            payload=data,
        )


class NoiseSource(Device):
    """Non-QUIC UDP/443 traffic: the dissector's false-positive input."""

    def __init__(
        self,
        name: str,
        address: int,
        loop: EventLoop,
        rng: random.Random,
        target_prefix: Prefix,
    ) -> None:
        super().__init__(name)
        self.address = address
        self.loop = loop
        self.rng = rng
        self.target_prefix = target_prefix
        self.packets_sent = 0

    def prefixes(self) -> list[Prefix]:
        return [Prefix(self.address, 32)]

    def emit(self, packet_count: int, start_time: float = 0.0, duration: float = 600.0) -> None:
        step = duration / max(packet_count, 1)
        for i in range(packet_count):
            self.loop.schedule_at(start_time + i * step, self._one)

    def _one(self) -> None:
        target = self.target_prefix.random_host(self.rng)
        kind = self.rng.random()
        if kind < 0.4:
            # DTLS-flavoured: first byte 22 (handshake), never a QUIC form bit.
            payload = bytes([22, 254, 253]) + self.rng.randbytes(40)
        elif kind < 0.7:
            # Random garbage with the long-header bit set but a junk version.
            payload = bytes([0xC3]) + self.rng.randbytes(30)
        else:
            # Small unparseable blobs (misdirected media / probes).
            payload = self.rng.randbytes(self.rng.randint(1, 24))
        backscatter_like = self.rng.random() < 0.5
        self.send(
            UdpDatagram(
                src_ip=self.address,
                dst_ip=target,
                src_port=QUIC_PORT if backscatter_like else self.rng.randint(1024, 65000),
                dst_port=self.rng.randint(1024, 65000) if backscatter_like else QUIC_PORT,
                payload=payload,
            )
        )
        self.packets_sent += 1
