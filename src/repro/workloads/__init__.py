"""Traffic generation: attackers, scanners, benign clients, and the
scenario builders that assemble full measurement months.
"""

from repro.workloads.clients import ClientConnection, ClientHost
from repro.workloads.attackers import SpoofingAttacker, AttackPlan
from repro.workloads.scanners import ResearchScanner, UnknownScanner, NoiseSource
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "ClientConnection",
    "ClientHost",
    "SpoofingAttacker",
    "AttackPlan",
    "ResearchScanner",
    "UnknownScanner",
    "NoiseSource",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
