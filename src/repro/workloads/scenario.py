"""Scenario builders: assemble deployments, traffic, and the telescope.

``build_scenario`` constructs a full "measurement month" — hypergiant
on-net clusters, off-net caches, assorted other QUIC servers, spoofing
attackers, scanners, and noise — and runs it against a /9 telescope.
Defaults model January 2022 at roughly 1/20 of the paper's traffic volume
(DESIGN.md §5); ``ScenarioConfig.year=2021`` re-parameterizes versions and
volumes to model April 2021.

Traffic is assembled from independent :class:`TrafficUnit`\\ s — one per
attack target-group × spoofed-source block, per scanner, per bot, plus
noise — each driven by its own :func:`derive_seed`-derived rng.  Units
never share random state, so any subset of them can run in any process
(``repro.simnet.shard``) and the union of the resulting captures is
identical to a serial run.

Smaller, purpose-built labs for the active-measurement experiments
(Figures 6, §4.3) are provided by :func:`build_facebook_lab` and
:func:`build_lb_lab`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.inetdata.certs import CertificateStore
from repro.inetdata.geodb import GeoDatabase
from repro.inetdata.hypergiants import CLOUDFLARE, FACEBOOK, GOOGLE
from repro.netstack.addr import Prefix, parse_ip
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_WORKLOAD
from repro.quic.version import (
    DRAFT_28,
    DRAFT_29,
    GQUIC_Q050,
    MVFST_1,
    MVFST_2,
    MVFST_EXP,
    QUIC_V1,
)
from repro.server.lb.cluster import FrontendCluster
from repro.server.profiles import (
    ServerProfile,
    cloudflare_profile,
    facebook_profile,
    generic_profile,
    google_profile,
)
from repro.server.simple import SimpleQuicServer
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Network, PathModel
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import ClassifiedCapture, classify_capture
from repro.telescope.darknet import Telescope
from repro.tls.certs import Certificate
from repro.workloads.attackers import AttackPlan, SpoofingAttacker
from repro.workloads.scanners import NoiseSource, ResearchScanner, UnknownScanner

#: Eyeball/ISP networks hosting off-net caches, bots, and other servers.
ISP_NETWORKS: tuple[tuple[int, str, str], ...] = (
    (7018, "ISP-US-East", "24.48.0.0/16"),
    (209, "ISP-US-West", "65.100.0.0/16"),
    (3320, "ISP-DE", "87.128.0.0/16"),
    (3215, "ISP-FR", "90.0.0.0/16"),
    (2856, "ISP-GB", "81.128.0.0/16"),
    (9121, "ISP-TR", "85.96.0.0/16"),
    (4766, "ISP-KR", "112.160.0.0/16"),
    (9829, "ISP-IN", "117.192.0.0/16"),
    (4134, "ISP-CN", "58.32.0.0/16"),
    (7738, "ISP-BR", "189.32.0.0/16"),
    (36992, "ISP-EG", "41.32.0.0/16"),
    (1221, "ISP-AU", "139.130.0.0/16"),
)

#: Research scanner source networks (stand-in for the acknowledged list).
RESEARCH_NETWORKS: tuple[tuple[str, str], ...] = (
    ("141.212.0.0/16", "scanner-umich"),
    ("198.108.66.0/24", "scanner-censys"),
    ("74.120.14.0/24", "scanner-shadowserver"),
)

_COUNTRY_CYCLE = ("US", "DE", "IN", "GB", "SG", "CA", "JP", "FR", "BR", "KR")

#: Attack traffic groups (one flood per group; see :func:`plan_traffic_units`).
ATTACK_GROUPS = ("Facebook", "Google", "Cloudflare", "Offnet", "Remaining")

#: Unknown-scanner bots homed in the first N ISP networks.
UNKNOWN_BOTS = 6


def derive_seed(root_seed: int, *parts) -> int:
    """A stable 64-bit sub-seed for one unit of work.

    The derivation hashes the root seed together with the unit's
    *identity* (kind, group, index…) and nothing else — in particular no
    traffic volumes — so :meth:`ScenarioConfig.scaled` commutes with seed
    derivation: scaling a config then deriving a unit seed gives the same
    seed as deriving first.  This is what makes shard assignment a pure
    partitioning decision with no effect on the traffic itself.
    """
    text = "|".join([str(root_seed)] + [str(part) for part in parts])
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class TrafficUnit:
    """One independently seeded slice of scenario traffic.

    Units are the unit of shard assignment: each owns a private rng
    (seeded by :func:`derive_seed`), so running any subset of units in
    any process produces exactly the packets that subset would have
    produced in a serial run.
    """

    name: str  # unique id, e.g. "attack:google:2" or "scan:scanner-umich"
    kind: str  # attack | research | bot | zero_rtt_gcp | zero_rtt_isp | noise
    seed: int  # derived, volume-independent
    count: int  # packets (scans/noise) or spoofed connections (attacks)
    weight: int  # relative simulation cost, for LPT shard balancing
    group: str = ""  # attack target group / scanner name
    index: int = 0  # block or instance index within the kind


@dataclass
class ScenarioConfig:
    """Knobs for a telescope measurement month."""

    seed: int = 20220101
    year: int = 2022
    telescope_prefix: str = "44.0.0.0/9"
    suite: str = "fast"
    window: float = 900.0  # seconds of simulated capture
    #: ``sim.queue_depth`` is sampled every 2**shift events; raise this as
    #: event rates grow past ~10^7/run to keep the histogram cheap.
    queue_depth_sample_shift: int = 10
    # --- path conditions ----------------------------------------------------
    #: Uniform datagram loss applied by the simulated Internet.  Loss is a
    #: keyed per-packet hash (see :class:`~repro.simnet.network.PathModel`),
    #: so a packet's fate is independent of shard assignment; sweep axes
    #: over ``loss_rate`` stay deterministic per cell.
    loss_rate: float = 0.0
    #: One-way delay jitter amplitude in seconds (default matches
    #: :class:`~repro.simnet.network.PathModel`).
    jitter: float = 0.001
    # --- deployment sizes -------------------------------------------------
    facebook_clusters: int = 6
    facebook_vips_per_cluster: int = 22
    facebook_hosts_per_cluster: int = 24
    google_clusters: int = 6
    google_vips_per_cluster: int = 48
    google_hosts_per_cluster: int = 20
    cloudflare_clusters: int = 3
    cloudflare_vips_per_cluster: int = 12
    cloudflare_hosts_per_cluster: int = 12
    facebook_offnets: int = 24
    cloudflare_offnets: int = 3
    remaining_servers: int = 110
    # --- attack volumes (spoofed connections) ------------------------------
    #: Spoofed-source blocks per attack group; each block is its own
    #: :class:`TrafficUnit` (the per-attacker-/16 shard key).
    attacker_blocks: int = 4
    attacks_facebook: int = 1600
    attacks_google: int = 2800
    attacks_cloudflare: int = 120
    attacks_offnet: int = 700
    attacks_remaining: int = 700
    telescope_bias: float = 0.55
    bogus_version_probability: float = 0.0008
    # --- scan/noise volumes -------------------------------------------------
    research_scan_packets: int = 30000
    unknown_scan_packets: int = 6000
    zero_rtt_scan_packets: int = 60
    noise_packets: int = 2500

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Uniformly scale all traffic volumes (deployments unchanged)."""
        return replace(
            self,
            attacks_facebook=int(self.attacks_facebook * factor),
            attacks_google=int(self.attacks_google * factor),
            attacks_cloudflare=max(1, int(self.attacks_cloudflare * factor)),
            attacks_offnet=int(self.attacks_offnet * factor),
            attacks_remaining=int(self.attacks_remaining * factor),
            research_scan_packets=int(self.research_scan_packets * factor),
            unknown_scan_packets=int(self.unknown_scan_packets * factor),
            zero_rtt_scan_packets=int(self.zero_rtt_scan_packets * factor),
            noise_packets=int(self.noise_packets * factor),
        )


def april_2021_config(seed: int = 20210401) -> ScenarioConfig:
    """The comparison month: pre-v1 versions, 1/4.4 backscatter, 1/8 scans."""
    cfg = ScenarioConfig(seed=seed, year=2021)
    cfg = cfg.scaled(1 / 4.4)
    return replace(
        cfg,
        unknown_scan_packets=int(6000 / 8.1),
        zero_rtt_scan_packets=6,
    )


def plan_traffic_units(config: ScenarioConfig) -> tuple[TrafficUnit, ...]:
    """Decompose a config's traffic into independently seeded units.

    The decomposition is structural: the set of unit names and seeds
    depends only on ``config.seed``, ``attacker_blocks``, and which
    volumes are non-zero-able — not on the volumes themselves — so
    :meth:`ScenarioConfig.scaled` preserves it.  Counts split attack
    volumes across blocks with the remainder spread over the first
    blocks; weights approximate relative simulation cost (attack
    connections trigger multi-datagram reply flights plus
    retransmissions, scans are roughly one packet each).
    """
    units: list[TrafficUnit] = []
    blocks = max(1, config.attacker_blocks)
    volumes = (
        ("Facebook", config.attacks_facebook),
        ("Google", config.attacks_google),
        ("Cloudflare", config.attacks_cloudflare),
        ("Offnet", config.attacks_offnet),
        ("Remaining", config.attacks_remaining),
    )
    for group, total in volumes:
        for block in range(blocks):
            count = total // blocks + (1 if block < total % blocks else 0)
            units.append(
                TrafficUnit(
                    name="attack:%s:%d" % (group.lower(), block),
                    kind="attack",
                    seed=derive_seed(config.seed, "attack", group, block),
                    count=count,
                    weight=count * 6,
                    group=group,
                    index=block,
                )
            )
    per_scanner = max(1, config.research_scan_packets // len(RESEARCH_NETWORKS))
    for index, (_prefix, name) in enumerate(RESEARCH_NETWORKS):
        units.append(
            TrafficUnit(
                name="scan:%s" % name,
                kind="research",
                seed=derive_seed(config.seed, "scan", name),
                count=per_scanner,
                weight=per_scanner,
                group=name,
                index=index,
            )
        )
    per_bot = max(1, config.unknown_scan_packets // UNKNOWN_BOTS)
    for index in range(UNKNOWN_BOTS):
        units.append(
            TrafficUnit(
                name="bot:%d" % index,
                kind="bot",
                seed=derive_seed(config.seed, "bot", index),
                count=per_bot,
                weight=per_bot,
                index=index,
            )
        )
    if config.zero_rtt_scan_packets:
        units.append(
            TrafficUnit(
                name="bot:gcp",
                kind="zero_rtt_gcp",
                seed=derive_seed(config.seed, "bot", "gcp"),
                count=config.zero_rtt_scan_packets,
                weight=config.zero_rtt_scan_packets,
            )
        )
        units.append(
            TrafficUnit(
                name="bot:0rtt",
                kind="zero_rtt_isp",
                seed=derive_seed(config.seed, "bot", "0rtt"),
                count=config.zero_rtt_scan_packets,
                weight=config.zero_rtt_scan_packets,
            )
        )
    units.append(
        TrafficUnit(
            name="noise",
            kind="noise",
            seed=derive_seed(config.seed, "noise"),
            count=config.noise_packets,
            weight=config.noise_packets,
        )
    )
    return tuple(units)


@dataclass
class Scenario:
    """A fully wired simulation, ready to run."""

    config: ScenarioConfig
    loop: EventLoop
    network: Network
    rng: random.Random
    telescope: Telescope
    asdb: AsDatabase
    geodb: GeoDatabase
    certstore: CertificateStore
    acknowledged: AcknowledgedScanners
    clusters: dict[str, list[FrontendCluster]] = field(default_factory=dict)
    offnet_servers: list[SimpleQuicServer] = field(default_factory=list)
    remaining_servers: list[SimpleQuicServer] = field(default_factory=list)
    attackers: list[SpoofingAttacker] = field(default_factory=list)
    obs: Observability = field(default_factory=lambda: NULL_OBS)

    @property
    def attacker(self) -> SpoofingAttacker | None:
        """The first attack unit's attacker (compatibility accessor)."""
        return self.attackers[0] if self.attackers else None

    def run(self) -> None:
        """Run the event loop to completion (all traffic + retransmissions)."""
        self.loop.run()

    def classify(self, validate_crypto_scans: bool = True) -> ClassifiedCapture:
        return classify_capture(
            self.telescope.records,
            asdb=self.asdb,
            acknowledged=self.acknowledged,
            validate_crypto_scans=validate_crypto_scans,
            obs=self.obs,
        )

    def vips(self, hypergiant: str) -> list[int]:
        """On-net VIP census for one hypergiant (the active-scan view)."""
        return [
            vip for cluster in self.clusters.get(hypergiant, []) for vip in cluster.vips
        ]

    def all_onnet_host_ids(self, hypergiant: str) -> set[int]:
        return {
            host_id
            for cluster in self.clusters.get(hypergiant, [])
            for host_id in cluster.host_ids
        }


# ---------------------------------------------------------------------------
# Version mixes
# ---------------------------------------------------------------------------


def _attack_versions(year: int, target: str) -> tuple[tuple[int, float], ...]:
    """Version distribution attack tools use against each provider.

    Attack tools reuse client libraries matched to their victim: mvfst
    versions against Facebook, a gQUIC share against Google (the source of
    the paper's server-side "others" bucket), plain v1/draft elsewhere.
    """
    if year >= 2022:
        if target == "Facebook":
            return (
                (MVFST_2.value, 0.85),
                (QUIC_V1.value, 0.12),
                (MVFST_1.value, 0.02),
                (MVFST_EXP.value, 0.01),
            )
        if target == "Google":
            return (
                (QUIC_V1.value, 0.80),
                (DRAFT_29.value, 0.02),
                (GQUIC_Q050.value, 0.18),
            )
        return ((QUIC_V1.value, 0.95), (DRAFT_29.value, 0.05))
    # 2021: pre-v1 world.
    if target == "Facebook":
        return ((MVFST_2.value, 0.75), (MVFST_1.value, 0.15), (DRAFT_29.value, 0.10))
    if target == "Google":
        return (
            (DRAFT_29.value, 0.62),
            (DRAFT_28.value, 0.10),
            (GQUIC_Q050.value, 0.28),
        )
    return ((DRAFT_29.value, 0.85), (DRAFT_28.value, 0.15))


def _scanner_versions(year: int) -> tuple[tuple[int, float], ...]:
    if year >= 2022:
        return (
            (QUIC_V1.value, 0.778),
            (MVFST_2.value, 0.212),
            (DRAFT_29.value, 0.006),
            (MVFST_1.value, 0.004),
        )
    return (
        (DRAFT_29.value, 0.595),
        (MVFST_2.value, 0.340),
        (DRAFT_28.value, 0.060),
        (QUIC_V1.value, 0.005),
    )


def _year_versions(profile: ServerProfile, year: int) -> ServerProfile:
    """Adjust a profile's supported versions for the scenario year."""
    if year >= 2022:
        return profile
    if profile.name == "Facebook":
        versions = (MVFST_2.value, MVFST_1.value, DRAFT_29.value)
    elif profile.name == "Google":
        versions = (DRAFT_29.value, DRAFT_28.value, GQUIC_Q050.value)
    else:
        versions = (DRAFT_29.value, DRAFT_28.value)
    return replace(profile, supported_versions=versions)


# ---------------------------------------------------------------------------
# Main builder
# ---------------------------------------------------------------------------


def build_scenario(
    config: ScenarioConfig | None = None,
    obs: Observability | None = None,
    units: "tuple[TrafficUnit, ...] | None" = None,
) -> Scenario:
    """Wire up a full telescope measurement month.

    ``units`` restricts traffic generation to a subset of
    :func:`plan_traffic_units` (shard workers pass their slice); the
    deployment — clusters, off-nets, remaining servers — is always built
    in full, so every worker draws the identical construction-time
    random sequence and hosts behave identically across processes.
    """
    config = config or ScenarioConfig()
    obs = obs or NULL_OBS
    rng = random.Random(config.seed)
    # Scale hint for histogram-bucket derivation.  Always computed from
    # the FULL config (unit weights approximate event cost), never from a
    # shard's ``units`` slice: shard workers must register identical
    # bucket bounds or the parent's snapshot merge would reject them.
    expected_events = sum(unit.weight for unit in plan_traffic_units(config))
    loop = EventLoop(
        obs,
        queue_depth_sample_shift=config.queue_depth_sample_shift,
        expected_events=expected_events,
    )
    network = Network(
        loop,
        random.Random(config.seed ^ 0xBEEF),
        PathModel(jitter=config.jitter, loss_rate=config.loss_rate),
        obs=obs,
    )
    telescope = Telescope(prefix=config.telescope_prefix, obs=obs)
    network.add_device(telescope)

    asdb = AsDatabase.with_hypergiants()
    geodb = GeoDatabase()
    certstore = CertificateStore()
    acknowledged = AcknowledgedScanners()
    asdb.register(
        telescope.prefix, AsEntry(asn=7377, name="Telescope", category="telescope")
    )
    isp_prefixes: list[Prefix] = []
    for asn, name, prefix_text in ISP_NETWORKS:
        prefix = Prefix.parse(prefix_text)
        isp_prefixes.append(prefix)
        asdb.register(prefix, AsEntry(asn=asn, name=name, category="isp"))
    for prefix_text, name in RESEARCH_NETWORKS:
        acknowledged.register(prefix_text, name)
        asdb.register(
            prefix_text, AsEntry(asn=394000, name=name, category="research")
        )

    scenario = Scenario(
        config=config,
        loop=loop,
        network=network,
        rng=rng,
        telescope=telescope,
        asdb=asdb,
        geodb=geodb,
        certstore=certstore,
        acknowledged=acknowledged,
        obs=obs,
    )
    _build_onnet(scenario)
    _build_offnet(scenario, isp_prefixes)
    _build_remaining(scenario, isp_prefixes)
    _build_traffic(scenario, isp_prefixes, units)
    return scenario


def _cluster_cert(hypergiant) -> Certificate:
    suffix = hypergiant.cert_suffixes[0]
    return Certificate(
        subject="*.%s" % suffix,
        subject_alt_names=tuple("*.%s" % s for s in hypergiant.cert_suffixes),
    )


def _build_onnet(scenario: Scenario) -> None:
    cfg = scenario.config
    specs = (
        (
            FACEBOOK,
            "157.240.%d.0/24",
            cfg.facebook_clusters,
            cfg.facebook_vips_per_cluster,
            cfg.facebook_hosts_per_cluster,
            facebook_profile(),
        ),
        (
            GOOGLE,
            "142.250.%d.0/24",
            cfg.google_clusters,
            cfg.google_vips_per_cluster,
            cfg.google_hosts_per_cluster,
            google_profile(),
        ),
        (
            CLOUDFLARE,
            "104.16.%d.0/24",
            cfg.cloudflare_clusters,
            cfg.cloudflare_vips_per_cluster,
            cfg.cloudflare_hosts_per_cluster,
            cloudflare_profile(),
        ),
    )
    for hypergiant, template, count, vips, hosts, profile in specs:
        profile = replace(
            _year_versions(profile, cfg.year), protection_suite=cfg.suite
        )
        cert = _cluster_cert(hypergiant)
        clusters = []
        # Host IDs are unique per cluster; keep cluster ranges disjoint so
        # the Jaccard analysis sees "all host IDs shared or none".
        next_host_id = 2000
        for i in range(count):
            country = _COUNTRY_CYCLE[i % len(_COUNTRY_CYCLE)]
            prefix = template % i
            cluster_profile = profile
            if hypergiant is CLOUDFLARE:
                # Each colo encodes its own ID into the 20-byte SCIDs.
                from repro.quic.cid.cloudflare import CloudflareScheme

                cluster_profile = replace(
                    profile, cid_scheme=CloudflareScheme(colo_id=i + 1)
                )
            cluster = FrontendCluster(
                name="%s-pop-%d" % (hypergiant.name.lower(), i),
                prefix=prefix,
                profile=cluster_profile,
                loop=scenario.loop,
                rng=scenario.rng,
                vip_count=vips,
                l7_host_count=hosts,
                host_id_base=next_host_id,
                certificate=cert,
                country=country,
                obs=scenario.obs,
            )
            next_host_id += hosts + scenario.rng.randrange(1, 50)
            scenario.network.add_device(cluster)
            scenario.geodb.register(prefix, country)
            for vip in cluster.vips:
                scenario.certstore.register(
                    vip, cert, ptr="edge-%d.%s" % (vip & 0xFF, hypergiant.cert_suffixes[0])
                )
            clusters.append(cluster)
        scenario.clusters[hypergiant.name] = clusters


def _build_offnet(scenario: Scenario, isp_prefixes: list[Prefix]) -> None:
    cfg = scenario.config
    rng = scenario.rng
    # Facebook off-net caches: mvfst stack, low host IDs (reused across
    # sites — the paper's improved classifier exploits exactly this).
    fb_profile = replace(
        _year_versions(facebook_profile(), cfg.year), protection_suite=cfg.suite
    )
    fb_cert = Certificate(
        subject="*.fbcdn.net", subject_alt_names=("*.fbcdn.net", "*.facebook.com")
    )
    for i in range(cfg.facebook_offnets):
        prefix = isp_prefixes[i % len(isp_prefixes)]
        address = prefix.host(1000 + 7 * i)
        server = SimpleQuicServer(
            name="fb-offnet-%d" % i,
            address=address,
            profile=fb_profile,
            loop=scenario.loop,
            rng=rng,
            host_id=1 + (i % 24),  # low, reused host IDs
            certificate=fb_cert,
            obs=scenario.obs,
        )
        scenario.network.add_device(server)
        scenario.certstore.register(address, fb_cert, ptr="cache-%d.fbcdn.net" % i)
        scenario.offnet_servers.append(server)
    # Cloudflare off-nets (the paper found 3 candidates, unverifiable).
    cf_profile = replace(
        _year_versions(cloudflare_profile(), cfg.year), protection_suite=cfg.suite
    )
    for i in range(cfg.cloudflare_offnets):
        prefix = isp_prefixes[(i + 5) % len(isp_prefixes)]
        address = prefix.host(2000 + 11 * i)
        server = SimpleQuicServer(
            name="cf-offnet-%d" % i,
            address=address,
            profile=cf_profile,
            loop=scenario.loop,
            rng=rng,
            host_id=i,
            obs=scenario.obs,
        )
        # No certificate registered: like the paper's Cloudflare candidates,
        # these do not admit verification.
        scenario.network.add_device(server)
        scenario.offnet_servers.append(server)


def _build_remaining(scenario: Scenario, isp_prefixes: list[Prefix]) -> None:
    cfg = scenario.config
    rng = scenario.rng
    for i in range(cfg.remaining_servers):
        prefix = isp_prefixes[i % len(isp_prefixes)]
        address = prefix.host(4000 + 13 * i + rng.randrange(5))
        profile = replace(
            _year_versions(generic_profile("other-%d" % i, rng), cfg.year),
            protection_suite=cfg.suite,
        )
        has_cert = rng.random() < 0.8
        cert = (
            Certificate(
                subject="srv%d.example-%d.net" % (i, i % 37),
                subject_alt_names=("srv%d.example-%d.net" % (i, i % 37),),
            )
            if has_cert
            else None
        )
        server = SimpleQuicServer(
            name="other-%d" % i,
            address=address,
            profile=profile,
            loop=scenario.loop,
            rng=rng,
            host_id=rng.randrange(1 << 16),
            certificate=cert,
            obs=scenario.obs,
        )
        scenario.network.add_device(server)
        if cert is not None:
            scenario.certstore.register(address, cert)
        scenario.remaining_servers.append(server)


def _build_traffic(
    scenario: Scenario,
    isp_prefixes: list[Prefix],
    units: tuple[TrafficUnit, ...] | None = None,
) -> None:
    """Install traffic units; ``None`` means all of :func:`plan_traffic_units`."""
    if units is None:
        units = plan_traffic_units(scenario.config)
    installers = {
        "attack": _install_attack,
        "research": _install_research,
        "bot": _install_bot,
        "zero_rtt_gcp": _install_zero_rtt,
        "zero_rtt_isp": _install_zero_rtt,
        "noise": _install_noise,
    }
    obs = scenario.obs
    for unit in units:
        installer = installers.get(unit.kind)
        if installer is None:
            raise ValueError("unknown traffic unit kind %r" % unit.kind)
        with obs.span(
            "simulate.unit",
            unit=unit.name,
            kind=unit.kind,
            count=unit.count,
            packets=unit.weight,
        ):
            installer(scenario, isp_prefixes, unit, random.Random(unit.seed))


def _attack_spec(scenario: Scenario, group: str):
    """(targets, versions, bogus_probability) for one attack group."""
    cfg = scenario.config
    if group in ("Facebook", "Google", "Cloudflare"):
        bogus = cfg.bogus_version_probability if group == "Google" else 0.0
        return scenario.vips(group), _attack_versions(cfg.year, group), bogus
    if group == "Offnet":
        offnet_targets = [s.address for s in scenario.offnet_servers]
        fb_offnet_targets = [
            s.address for s in scenario.offnet_servers if s.profile.name == "Facebook"
        ]
        return (
            fb_offnet_targets or offnet_targets,
            _attack_versions(cfg.year, "Facebook"),
            0.0,
        )
    return (
        [s.address for s in scenario.remaining_servers],
        _attack_versions(cfg.year, "Remaining"),
        0.0,
    )


def _install_attack(
    scenario: Scenario, isp_prefixes: list[Prefix], unit: TrafficUnit, rng: random.Random
) -> None:
    cfg = scenario.config
    targets, versions, bogus = _attack_spec(scenario, unit.group)
    if not targets or unit.count <= 0:
        return
    # Each block spoofs from its own round-robin slice of the ISP /16
    # pool, so the aggregate spoofed-source distribution matches the
    # un-sharded one while blocks stay fully independent.
    blocks = max(1, cfg.attacker_blocks)
    spoof_pool = [
        prefix for i, prefix in enumerate(isp_prefixes) if i % blocks == unit.index
    ] or list(isp_prefixes)
    attacker = SpoofingAttacker(
        name="botnet-%s-%d" % (unit.group.lower(), unit.index),
        loop=scenario.loop,
        rng=rng,
        telescope_prefix=scenario.telescope.prefix,
        spoof_pool=spoof_pool,
        telescope_bias=cfg.telescope_bias,
        suite=cfg.suite,
    )
    scenario.network.add_device(attacker)
    scenario.attackers.append(attacker)
    tracer = scenario.obs.tracer
    if tracer.enabled:
        tracer.emit(
            CAT_WORKLOAD,
            "attack_launched",
            time=scenario.loop.now,
            unit=unit.name,
            targets=len(targets),
            packets=unit.count,
            duration=cfg.window,
        )
    attacker.launch(
        AttackPlan(
            targets=tuple(targets),
            packet_count=unit.count,
            start_time=0.0,
            duration=cfg.window,
            versions=versions,
            bogus_version_probability=bogus,
        )
    )


def _install_research(
    scenario: Scenario, isp_prefixes: list[Prefix], unit: TrafficUnit, rng: random.Random
) -> None:
    cfg = scenario.config
    prefix_text, name = RESEARCH_NETWORKS[unit.index]
    scanner = ResearchScanner(
        name=name,
        address=Prefix.parse(prefix_text).host(7),
        loop=scenario.loop,
        rng=rng,
        target_prefix=scenario.telescope.prefix,
        suite=cfg.suite,
    )
    scenario.network.add_device(scanner)
    tracer = scenario.obs.tracer
    if tracer.enabled:
        tracer.emit(
            CAT_WORKLOAD,
            "scan_sweep",
            time=scenario.loop.now,
            scanner=name,
            packets=unit.count,
            duration=cfg.window,
        )
    scanner.sweep(unit.count, start_time=0.0, duration=cfg.window)


def _install_bot(
    scenario: Scenario, isp_prefixes: list[Prefix], unit: TrafficUnit, rng: random.Random
) -> None:
    cfg = scenario.config
    bot = UnknownScanner(
        name="bot-%d" % unit.index,
        address=isp_prefixes[unit.index].host(9000 + unit.index),
        loop=scenario.loop,
        rng=rng,
        target_prefix=scenario.telescope.prefix,
        versions=_scanner_versions(cfg.year),
        suite=cfg.suite,
    )
    scenario.network.add_device(bot)
    bot.sweep(unit.count, start_time=0.0, duration=cfg.window)


def _install_zero_rtt(
    scenario: Scenario, isp_prefixes: list[Prefix], unit: TrafficUnit, rng: random.Random
) -> None:
    cfg = scenario.config
    if unit.kind == "zero_rtt_gcp":
        # A bot inside Google's cloud replaying 0-RTT at dark space — the
        # source of Table 3's 0-RTT share "from" the Google network.
        name, address, probability = "bot-gcp", parse_ip("142.250.199.77"), 0.8
    else:
        name, address, probability = "bot-0rtt", isp_prefixes[7].host(9999), 0.5
    bot = UnknownScanner(
        name=name,
        address=address,
        loop=scenario.loop,
        rng=rng,
        target_prefix=scenario.telescope.prefix,
        versions=_scanner_versions(cfg.year),
        zero_rtt_probability=probability,
        suite=cfg.suite,
    )
    scenario.network.add_device(bot)
    bot.sweep(unit.count, start_time=0.0, duration=cfg.window)


def _install_noise(
    scenario: Scenario, isp_prefixes: list[Prefix], unit: TrafficUnit, rng: random.Random
) -> None:
    cfg = scenario.config
    noise = NoiseSource(
        name="noise",
        address=isp_prefixes[3].host(12345),
        loop=scenario.loop,
        rng=rng,
        target_prefix=scenario.telescope.prefix,
    )
    scenario.network.add_device(noise)
    tracer = scenario.obs.tracer
    if tracer.enabled:
        tracer.emit(
            CAT_WORKLOAD,
            "noise_started",
            time=scenario.loop.now,
            packets=unit.count,
            duration=cfg.window,
        )
    noise.emit(unit.count, start_time=0.0, duration=cfg.window)


# ---------------------------------------------------------------------------
# Active-measurement labs
# ---------------------------------------------------------------------------


@dataclass
class Lab:
    """A small deployment for active experiments (no telescope traffic)."""

    loop: EventLoop
    network: Network
    rng: random.Random
    clusters: dict[str, list[FrontendCluster]]
    geodb: GeoDatabase
    obs: Observability = field(default_factory=lambda: NULL_OBS)

    def vips(self, hypergiant: str) -> list[int]:
        return [
            vip for cluster in self.clusters.get(hypergiant, []) for vip in cluster.vips
        ]


def build_facebook_lab(
    cluster_specs: list[tuple[int, int, str]],
    seed: int = 7,
    suite: str = "null",
    workers_per_host: int = 4,
    maglev_table_size: int = 1021,
    obs: Observability | None = None,
) -> Lab:
    """Facebook on-net deployment for L7LB experiments.

    ``cluster_specs`` is a list of ``(vip_count, l7_host_count, country)``.
    The default ``null`` protection suite makes bulk probing cheap; the
    wire format is unchanged.
    """
    obs = obs or NULL_OBS
    rng = random.Random(seed)
    loop = EventLoop(obs)
    network = Network(loop, random.Random(seed ^ 1), PathModel(jitter=0.0), obs=obs)
    geodb = GeoDatabase()
    profile = replace(
        facebook_profile(), protection_suite=suite, workers_per_host=workers_per_host
    )
    cert = _cluster_cert(FACEBOOK)
    clusters = []
    next_host_id = 1000  # disjoint per-cluster host-ID ranges (see above)
    for i, (vip_count, host_count, country) in enumerate(cluster_specs):
        prefix = "157.240.%d.0/24" % (i % 250) if i < 250 else "31.13.%d.0/24" % (i - 250)
        cluster = FrontendCluster(
            name="fb-pop-%d" % i,
            prefix=prefix,
            profile=profile,
            loop=loop,
            rng=rng,
            vip_count=vip_count,
            l7_host_count=host_count,
            host_id_base=next_host_id,
            certificate=cert,
            country=country,
            maglev_table_size=maglev_table_size,
            obs=obs,
        )
        next_host_id += host_count + rng.randrange(1, 20)
        network.add_device(cluster)
        geodb.register(prefix, country)
        clusters.append(cluster)
    return Lab(
        loop=loop,
        network=network,
        rng=rng,
        clusters={"Facebook": clusters},
        geodb=geodb,
        obs=obs,
    )


def build_lb_lab(
    google_hosts: int = 12,
    facebook_hosts: int = 12,
    seed: int = 11,
    suite: str = "null",
    quic_lb_hosts: int = 0,
    obs: Observability | None = None,
) -> Lab:
    """One Google + one Facebook cluster, for the Appendix-D experiments.

    ``quic_lb_hosts`` > 0 additionally deploys a hypothetical QUIC-LB
    (IETF routable-CID) cluster under the "QuicLB" key — used by the
    migration ablation.
    """
    from repro.server.profiles import quic_lb_profile

    obs = obs or NULL_OBS
    rng = random.Random(seed)
    loop = EventLoop(obs)
    network = Network(loop, random.Random(seed ^ 1), PathModel(jitter=0.0), obs=obs)
    geodb = GeoDatabase()
    clusters: dict[str, list[FrontendCluster]] = {}
    specs = [
        (GOOGLE.name, google_profile(), "142.250.0.0/24", google_hosts, GOOGLE),
        (FACEBOOK.name, facebook_profile(), "157.240.0.0/24", facebook_hosts, FACEBOOK),
    ]
    if quic_lb_hosts:
        specs.append(
            ("QuicLB", quic_lb_profile(), "198.18.0.0/24", quic_lb_hosts, None)
        )
    for name, profile, prefix, hosts, hypergiant in specs:
        cluster = FrontendCluster(
            name="%s-lab" % name.lower(),
            prefix=prefix,
            profile=replace(profile, protection_suite=suite),
            loop=loop,
            rng=rng,
            vip_count=8,
            l7_host_count=hosts,
            host_id_base=100,
            certificate=_cluster_cert(hypergiant) if hypergiant else None,
            country="US",
            obs=obs,
        )
        network.add_device(cluster)
        geodb.register(prefix, "US")
        clusters[name] = [cluster]
    return Lab(
        loop=loop, network=network, rng=rng, clusters=clusters, geodb=geodb, obs=obs
    )
