"""Scenario builders: assemble deployments, traffic, and the telescope.

``build_scenario`` constructs a full "measurement month" — hypergiant
on-net clusters, off-net caches, assorted other QUIC servers, spoofing
attackers, scanners, and noise — and runs it against a /9 telescope.
Defaults model January 2022 at roughly 1/20 of the paper's traffic volume
(DESIGN.md §5); ``ScenarioConfig.year=2021`` re-parameterizes versions and
volumes to model April 2021.

Smaller, purpose-built labs for the active-measurement experiments
(Figures 6, §4.3) are provided by :func:`build_facebook_lab` and
:func:`build_lb_lab`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.inetdata.certs import CertificateStore
from repro.inetdata.geodb import GeoDatabase
from repro.inetdata.hypergiants import CLOUDFLARE, FACEBOOK, GOOGLE
from repro.netstack.addr import Prefix, parse_ip
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_WORKLOAD
from repro.quic.version import (
    DRAFT_28,
    DRAFT_29,
    GQUIC_Q050,
    MVFST_1,
    MVFST_2,
    MVFST_EXP,
    QUIC_V1,
)
from repro.server.lb.cluster import FrontendCluster
from repro.server.profiles import (
    ServerProfile,
    cloudflare_profile,
    facebook_profile,
    generic_profile,
    google_profile,
)
from repro.server.simple import SimpleQuicServer
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Network, PathModel
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import ClassifiedCapture, classify_capture
from repro.telescope.darknet import Telescope
from repro.tls.certs import Certificate
from repro.workloads.attackers import AttackPlan, SpoofingAttacker
from repro.workloads.scanners import NoiseSource, ResearchScanner, UnknownScanner

#: Eyeball/ISP networks hosting off-net caches, bots, and other servers.
ISP_NETWORKS: tuple[tuple[int, str, str], ...] = (
    (7018, "ISP-US-East", "24.48.0.0/16"),
    (209, "ISP-US-West", "65.100.0.0/16"),
    (3320, "ISP-DE", "87.128.0.0/16"),
    (3215, "ISP-FR", "90.0.0.0/16"),
    (2856, "ISP-GB", "81.128.0.0/16"),
    (9121, "ISP-TR", "85.96.0.0/16"),
    (4766, "ISP-KR", "112.160.0.0/16"),
    (9829, "ISP-IN", "117.192.0.0/16"),
    (4134, "ISP-CN", "58.32.0.0/16"),
    (7738, "ISP-BR", "189.32.0.0/16"),
    (36992, "ISP-EG", "41.32.0.0/16"),
    (1221, "ISP-AU", "139.130.0.0/16"),
)

#: Research scanner source networks (stand-in for the acknowledged list).
RESEARCH_NETWORKS: tuple[tuple[str, str], ...] = (
    ("141.212.0.0/16", "scanner-umich"),
    ("198.108.66.0/24", "scanner-censys"),
    ("74.120.14.0/24", "scanner-shadowserver"),
)

_COUNTRY_CYCLE = ("US", "DE", "IN", "GB", "SG", "CA", "JP", "FR", "BR", "KR")


@dataclass
class ScenarioConfig:
    """Knobs for a telescope measurement month."""

    seed: int = 20220101
    year: int = 2022
    telescope_prefix: str = "44.0.0.0/9"
    suite: str = "fast"
    window: float = 900.0  # seconds of simulated capture
    #: ``sim.queue_depth`` is sampled every 2**shift events; raise this as
    #: event rates grow past ~10^7/run to keep the histogram cheap.
    queue_depth_sample_shift: int = 10
    # --- deployment sizes -------------------------------------------------
    facebook_clusters: int = 6
    facebook_vips_per_cluster: int = 22
    facebook_hosts_per_cluster: int = 24
    google_clusters: int = 6
    google_vips_per_cluster: int = 48
    google_hosts_per_cluster: int = 20
    cloudflare_clusters: int = 3
    cloudflare_vips_per_cluster: int = 12
    cloudflare_hosts_per_cluster: int = 12
    facebook_offnets: int = 24
    cloudflare_offnets: int = 3
    remaining_servers: int = 110
    # --- attack volumes (spoofed connections) ------------------------------
    attacks_facebook: int = 1600
    attacks_google: int = 2800
    attacks_cloudflare: int = 120
    attacks_offnet: int = 700
    attacks_remaining: int = 700
    telescope_bias: float = 0.55
    bogus_version_probability: float = 0.0008
    # --- scan/noise volumes -------------------------------------------------
    research_scan_packets: int = 30000
    unknown_scan_packets: int = 6000
    zero_rtt_scan_packets: int = 60
    noise_packets: int = 2500

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Uniformly scale all traffic volumes (deployments unchanged)."""
        return replace(
            self,
            attacks_facebook=int(self.attacks_facebook * factor),
            attacks_google=int(self.attacks_google * factor),
            attacks_cloudflare=max(1, int(self.attacks_cloudflare * factor)),
            attacks_offnet=int(self.attacks_offnet * factor),
            attacks_remaining=int(self.attacks_remaining * factor),
            research_scan_packets=int(self.research_scan_packets * factor),
            unknown_scan_packets=int(self.unknown_scan_packets * factor),
            zero_rtt_scan_packets=int(self.zero_rtt_scan_packets * factor),
            noise_packets=int(self.noise_packets * factor),
        )


def april_2021_config(seed: int = 20210401) -> ScenarioConfig:
    """The comparison month: pre-v1 versions, 1/4.4 backscatter, 1/8 scans."""
    cfg = ScenarioConfig(seed=seed, year=2021)
    cfg = cfg.scaled(1 / 4.4)
    return replace(
        cfg,
        unknown_scan_packets=int(6000 / 8.1),
        zero_rtt_scan_packets=6,
    )


@dataclass
class Scenario:
    """A fully wired simulation, ready to run."""

    config: ScenarioConfig
    loop: EventLoop
    network: Network
    rng: random.Random
    telescope: Telescope
    asdb: AsDatabase
    geodb: GeoDatabase
    certstore: CertificateStore
    acknowledged: AcknowledgedScanners
    clusters: dict[str, list[FrontendCluster]] = field(default_factory=dict)
    offnet_servers: list[SimpleQuicServer] = field(default_factory=list)
    remaining_servers: list[SimpleQuicServer] = field(default_factory=list)
    attacker: SpoofingAttacker | None = None
    obs: Observability = field(default_factory=lambda: NULL_OBS)

    def run(self) -> None:
        """Run the event loop to completion (all traffic + retransmissions)."""
        self.loop.run()

    def classify(self, validate_crypto_scans: bool = True) -> ClassifiedCapture:
        return classify_capture(
            self.telescope.records,
            asdb=self.asdb,
            acknowledged=self.acknowledged,
            validate_crypto_scans=validate_crypto_scans,
            obs=self.obs,
        )

    def vips(self, hypergiant: str) -> list[int]:
        """On-net VIP census for one hypergiant (the active-scan view)."""
        return [
            vip for cluster in self.clusters.get(hypergiant, []) for vip in cluster.vips
        ]

    def all_onnet_host_ids(self, hypergiant: str) -> set[int]:
        return {
            host_id
            for cluster in self.clusters.get(hypergiant, [])
            for host_id in cluster.host_ids
        }


# ---------------------------------------------------------------------------
# Version mixes
# ---------------------------------------------------------------------------


def _attack_versions(year: int, target: str) -> tuple[tuple[int, float], ...]:
    """Version distribution attack tools use against each provider.

    Attack tools reuse client libraries matched to their victim: mvfst
    versions against Facebook, a gQUIC share against Google (the source of
    the paper's server-side "others" bucket), plain v1/draft elsewhere.
    """
    if year >= 2022:
        if target == "Facebook":
            return (
                (MVFST_2.value, 0.85),
                (QUIC_V1.value, 0.12),
                (MVFST_1.value, 0.02),
                (MVFST_EXP.value, 0.01),
            )
        if target == "Google":
            return (
                (QUIC_V1.value, 0.80),
                (DRAFT_29.value, 0.02),
                (GQUIC_Q050.value, 0.18),
            )
        return ((QUIC_V1.value, 0.95), (DRAFT_29.value, 0.05))
    # 2021: pre-v1 world.
    if target == "Facebook":
        return ((MVFST_2.value, 0.75), (MVFST_1.value, 0.15), (DRAFT_29.value, 0.10))
    if target == "Google":
        return (
            (DRAFT_29.value, 0.62),
            (DRAFT_28.value, 0.10),
            (GQUIC_Q050.value, 0.28),
        )
    return ((DRAFT_29.value, 0.85), (DRAFT_28.value, 0.15))


def _scanner_versions(year: int) -> tuple[tuple[int, float], ...]:
    if year >= 2022:
        return (
            (QUIC_V1.value, 0.778),
            (MVFST_2.value, 0.212),
            (DRAFT_29.value, 0.006),
            (MVFST_1.value, 0.004),
        )
    return (
        (DRAFT_29.value, 0.595),
        (MVFST_2.value, 0.340),
        (DRAFT_28.value, 0.060),
        (QUIC_V1.value, 0.005),
    )


def _year_versions(profile: ServerProfile, year: int) -> ServerProfile:
    """Adjust a profile's supported versions for the scenario year."""
    if year >= 2022:
        return profile
    if profile.name == "Facebook":
        versions = (MVFST_2.value, MVFST_1.value, DRAFT_29.value)
    elif profile.name == "Google":
        versions = (DRAFT_29.value, DRAFT_28.value, GQUIC_Q050.value)
    else:
        versions = (DRAFT_29.value, DRAFT_28.value)
    return replace(profile, supported_versions=versions)


# ---------------------------------------------------------------------------
# Main builder
# ---------------------------------------------------------------------------


def build_scenario(
    config: ScenarioConfig | None = None, obs: Observability | None = None
) -> Scenario:
    """Wire up a full telescope measurement month."""
    config = config or ScenarioConfig()
    obs = obs or NULL_OBS
    rng = random.Random(config.seed)
    loop = EventLoop(obs, queue_depth_sample_shift=config.queue_depth_sample_shift)
    network = Network(loop, random.Random(config.seed ^ 0xBEEF), PathModel(), obs=obs)
    telescope = Telescope(prefix=config.telescope_prefix, obs=obs)
    network.add_device(telescope)

    asdb = AsDatabase.with_hypergiants()
    geodb = GeoDatabase()
    certstore = CertificateStore()
    acknowledged = AcknowledgedScanners()
    asdb.register(
        telescope.prefix, AsEntry(asn=7377, name="Telescope", category="telescope")
    )
    isp_prefixes: list[Prefix] = []
    for asn, name, prefix_text in ISP_NETWORKS:
        prefix = Prefix.parse(prefix_text)
        isp_prefixes.append(prefix)
        asdb.register(prefix, AsEntry(asn=asn, name=name, category="isp"))
    for prefix_text, name in RESEARCH_NETWORKS:
        acknowledged.register(prefix_text, name)
        asdb.register(
            prefix_text, AsEntry(asn=394000, name=name, category="research")
        )

    scenario = Scenario(
        config=config,
        loop=loop,
        network=network,
        rng=rng,
        telescope=telescope,
        asdb=asdb,
        geodb=geodb,
        certstore=certstore,
        acknowledged=acknowledged,
        obs=obs,
    )
    _build_onnet(scenario)
    _build_offnet(scenario, isp_prefixes)
    _build_remaining(scenario, isp_prefixes)
    _build_traffic(scenario, isp_prefixes)
    return scenario


def _cluster_cert(hypergiant) -> Certificate:
    suffix = hypergiant.cert_suffixes[0]
    return Certificate(
        subject="*.%s" % suffix,
        subject_alt_names=tuple("*.%s" % s for s in hypergiant.cert_suffixes),
    )


def _build_onnet(scenario: Scenario) -> None:
    cfg = scenario.config
    specs = (
        (
            FACEBOOK,
            "157.240.%d.0/24",
            cfg.facebook_clusters,
            cfg.facebook_vips_per_cluster,
            cfg.facebook_hosts_per_cluster,
            facebook_profile(),
        ),
        (
            GOOGLE,
            "142.250.%d.0/24",
            cfg.google_clusters,
            cfg.google_vips_per_cluster,
            cfg.google_hosts_per_cluster,
            google_profile(),
        ),
        (
            CLOUDFLARE,
            "104.16.%d.0/24",
            cfg.cloudflare_clusters,
            cfg.cloudflare_vips_per_cluster,
            cfg.cloudflare_hosts_per_cluster,
            cloudflare_profile(),
        ),
    )
    for hypergiant, template, count, vips, hosts, profile in specs:
        profile = replace(
            _year_versions(profile, cfg.year), protection_suite=cfg.suite
        )
        cert = _cluster_cert(hypergiant)
        clusters = []
        # Host IDs are unique per cluster; keep cluster ranges disjoint so
        # the Jaccard analysis sees "all host IDs shared or none".
        next_host_id = 2000
        for i in range(count):
            country = _COUNTRY_CYCLE[i % len(_COUNTRY_CYCLE)]
            prefix = template % i
            cluster_profile = profile
            if hypergiant is CLOUDFLARE:
                # Each colo encodes its own ID into the 20-byte SCIDs.
                from repro.quic.cid.cloudflare import CloudflareScheme

                cluster_profile = replace(
                    profile, cid_scheme=CloudflareScheme(colo_id=i + 1)
                )
            cluster = FrontendCluster(
                name="%s-pop-%d" % (hypergiant.name.lower(), i),
                prefix=prefix,
                profile=cluster_profile,
                loop=scenario.loop,
                rng=scenario.rng,
                vip_count=vips,
                l7_host_count=hosts,
                host_id_base=next_host_id,
                certificate=cert,
                country=country,
                obs=scenario.obs,
            )
            next_host_id += hosts + scenario.rng.randrange(1, 50)
            scenario.network.add_device(cluster)
            scenario.geodb.register(prefix, country)
            for vip in cluster.vips:
                scenario.certstore.register(
                    vip, cert, ptr="edge-%d.%s" % (vip & 0xFF, hypergiant.cert_suffixes[0])
                )
            clusters.append(cluster)
        scenario.clusters[hypergiant.name] = clusters


def _build_offnet(scenario: Scenario, isp_prefixes: list[Prefix]) -> None:
    cfg = scenario.config
    rng = scenario.rng
    # Facebook off-net caches: mvfst stack, low host IDs (reused across
    # sites — the paper's improved classifier exploits exactly this).
    fb_profile = replace(
        _year_versions(facebook_profile(), cfg.year), protection_suite=cfg.suite
    )
    fb_cert = Certificate(
        subject="*.fbcdn.net", subject_alt_names=("*.fbcdn.net", "*.facebook.com")
    )
    for i in range(cfg.facebook_offnets):
        prefix = isp_prefixes[i % len(isp_prefixes)]
        address = prefix.host(1000 + 7 * i)
        server = SimpleQuicServer(
            name="fb-offnet-%d" % i,
            address=address,
            profile=fb_profile,
            loop=scenario.loop,
            rng=rng,
            host_id=1 + (i % 24),  # low, reused host IDs
            certificate=fb_cert,
            obs=scenario.obs,
        )
        scenario.network.add_device(server)
        scenario.certstore.register(address, fb_cert, ptr="cache-%d.fbcdn.net" % i)
        scenario.offnet_servers.append(server)
    # Cloudflare off-nets (the paper found 3 candidates, unverifiable).
    cf_profile = replace(
        _year_versions(cloudflare_profile(), cfg.year), protection_suite=cfg.suite
    )
    for i in range(cfg.cloudflare_offnets):
        prefix = isp_prefixes[(i + 5) % len(isp_prefixes)]
        address = prefix.host(2000 + 11 * i)
        server = SimpleQuicServer(
            name="cf-offnet-%d" % i,
            address=address,
            profile=cf_profile,
            loop=scenario.loop,
            rng=rng,
            host_id=i,
            obs=scenario.obs,
        )
        # No certificate registered: like the paper's Cloudflare candidates,
        # these do not admit verification.
        scenario.network.add_device(server)
        scenario.offnet_servers.append(server)


def _build_remaining(scenario: Scenario, isp_prefixes: list[Prefix]) -> None:
    cfg = scenario.config
    rng = scenario.rng
    for i in range(cfg.remaining_servers):
        prefix = isp_prefixes[i % len(isp_prefixes)]
        address = prefix.host(4000 + 13 * i + rng.randrange(5))
        profile = replace(
            _year_versions(generic_profile("other-%d" % i, rng), cfg.year),
            protection_suite=cfg.suite,
        )
        has_cert = rng.random() < 0.8
        cert = (
            Certificate(
                subject="srv%d.example-%d.net" % (i, i % 37),
                subject_alt_names=("srv%d.example-%d.net" % (i, i % 37),),
            )
            if has_cert
            else None
        )
        server = SimpleQuicServer(
            name="other-%d" % i,
            address=address,
            profile=profile,
            loop=scenario.loop,
            rng=rng,
            host_id=rng.randrange(1 << 16),
            certificate=cert,
            obs=scenario.obs,
        )
        scenario.network.add_device(server)
        if cert is not None:
            scenario.certstore.register(address, cert)
        scenario.remaining_servers.append(server)


def _build_traffic(scenario: Scenario, isp_prefixes: list[Prefix]) -> None:
    cfg = scenario.config
    loop = scenario.loop
    tracer = scenario.obs.tracer
    attacker = SpoofingAttacker(
        name="botnet",
        loop=loop,
        rng=random.Random(cfg.seed ^ 0xA77AC),
        telescope_prefix=scenario.telescope.prefix,
        spoof_pool=isp_prefixes,
        telescope_bias=cfg.telescope_bias,
        suite=cfg.suite,
    )
    scenario.network.add_device(attacker)
    scenario.attacker = attacker

    window = cfg.window

    def flood(targets, count, versions, bogus=0.0):
        if not targets or count <= 0:
            return
        if tracer.enabled:
            tracer.emit(
                CAT_WORKLOAD,
                "attack_launched",
                time=loop.now,
                targets=len(targets),
                packets=count,
                duration=window,
            )
        attacker.launch(
            AttackPlan(
                targets=tuple(targets),
                packet_count=count,
                start_time=0.0,
                duration=window,
                versions=versions,
                bogus_version_probability=bogus,
            )
        )

    flood(
        scenario.vips("Facebook"),
        cfg.attacks_facebook,
        _attack_versions(cfg.year, "Facebook"),
    )
    flood(
        scenario.vips("Google"),
        cfg.attacks_google,
        _attack_versions(cfg.year, "Google"),
        bogus=cfg.bogus_version_probability,
    )
    flood(
        scenario.vips("Cloudflare"),
        cfg.attacks_cloudflare,
        _attack_versions(cfg.year, "Cloudflare"),
    )
    offnet_targets = [s.address for s in scenario.offnet_servers]
    fb_offnet_targets = [
        s.address for s in scenario.offnet_servers if s.profile.name == "Facebook"
    ]
    flood(
        fb_offnet_targets or offnet_targets,
        cfg.attacks_offnet,
        _attack_versions(cfg.year, "Facebook"),
    )
    flood(
        [s.address for s in scenario.remaining_servers],
        cfg.attacks_remaining,
        _attack_versions(cfg.year, "Remaining"),
    )

    # Scanners --------------------------------------------------------------
    research_rng = random.Random(cfg.seed ^ 0x5CA41)
    per_scanner = max(1, cfg.research_scan_packets // len(RESEARCH_NETWORKS))
    for prefix_text, name in RESEARCH_NETWORKS:
        scanner = ResearchScanner(
            name=name,
            address=Prefix.parse(prefix_text).host(7),
            loop=loop,
            rng=research_rng,
            target_prefix=scenario.telescope.prefix,
            suite=cfg.suite,
        )
        scenario.network.add_device(scanner)
        if tracer.enabled:
            tracer.emit(
                CAT_WORKLOAD,
                "scan_sweep",
                time=loop.now,
                scanner=name,
                packets=per_scanner,
                duration=window,
            )
        scanner.sweep(per_scanner, start_time=0.0, duration=window)

    bot_rng = random.Random(cfg.seed ^ 0xB07)
    bot_homes = [prefix.host(9000 + i) for i, prefix in enumerate(isp_prefixes[:6])]
    per_bot = max(1, cfg.unknown_scan_packets // max(len(bot_homes), 1))
    for i, home in enumerate(bot_homes):
        bot = UnknownScanner(
            name="bot-%d" % i,
            address=home,
            loop=loop,
            rng=bot_rng,
            target_prefix=scenario.telescope.prefix,
            versions=_scanner_versions(cfg.year),
            suite=cfg.suite,
        )
        scenario.network.add_device(bot)
        bot.sweep(per_bot, start_time=0.0, duration=window)

    if cfg.zero_rtt_scan_packets:
        # A bot inside Google's cloud replaying 0-RTT at dark space — the
        # source of Table 3's 0-RTT share "from" the Google network.
        gcp_bot = UnknownScanner(
            name="bot-gcp",
            address=parse_ip("142.250.199.77"),
            loop=loop,
            rng=bot_rng,
            target_prefix=scenario.telescope.prefix,
            versions=_scanner_versions(cfg.year),
            zero_rtt_probability=0.8,
            suite=cfg.suite,
        )
        scenario.network.add_device(gcp_bot)
        gcp_bot.sweep(cfg.zero_rtt_scan_packets, start_time=0.0, duration=window)
        isp_bot = UnknownScanner(
            name="bot-0rtt",
            address=isp_prefixes[7].host(9999),
            loop=loop,
            rng=bot_rng,
            target_prefix=scenario.telescope.prefix,
            versions=_scanner_versions(cfg.year),
            zero_rtt_probability=0.5,
            suite=cfg.suite,
        )
        scenario.network.add_device(isp_bot)
        isp_bot.sweep(cfg.zero_rtt_scan_packets, start_time=0.0, duration=window)

    noise = NoiseSource(
        name="noise",
        address=isp_prefixes[3].host(12345),
        loop=loop,
        rng=random.Random(cfg.seed ^ 0x401E),
        target_prefix=scenario.telescope.prefix,
    )
    scenario.network.add_device(noise)
    if tracer.enabled:
        tracer.emit(
            CAT_WORKLOAD,
            "noise_started",
            time=loop.now,
            packets=cfg.noise_packets,
            duration=window,
        )
    noise.emit(cfg.noise_packets, start_time=0.0, duration=window)


# ---------------------------------------------------------------------------
# Active-measurement labs
# ---------------------------------------------------------------------------


@dataclass
class Lab:
    """A small deployment for active experiments (no telescope traffic)."""

    loop: EventLoop
    network: Network
    rng: random.Random
    clusters: dict[str, list[FrontendCluster]]
    geodb: GeoDatabase
    obs: Observability = field(default_factory=lambda: NULL_OBS)

    def vips(self, hypergiant: str) -> list[int]:
        return [
            vip for cluster in self.clusters.get(hypergiant, []) for vip in cluster.vips
        ]


def build_facebook_lab(
    cluster_specs: list[tuple[int, int, str]],
    seed: int = 7,
    suite: str = "null",
    workers_per_host: int = 4,
    maglev_table_size: int = 1021,
    obs: Observability | None = None,
) -> Lab:
    """Facebook on-net deployment for L7LB experiments.

    ``cluster_specs`` is a list of ``(vip_count, l7_host_count, country)``.
    The default ``null`` protection suite makes bulk probing cheap; the
    wire format is unchanged.
    """
    obs = obs or NULL_OBS
    rng = random.Random(seed)
    loop = EventLoop(obs)
    network = Network(loop, random.Random(seed ^ 1), PathModel(jitter=0.0), obs=obs)
    geodb = GeoDatabase()
    profile = replace(
        facebook_profile(), protection_suite=suite, workers_per_host=workers_per_host
    )
    cert = _cluster_cert(FACEBOOK)
    clusters = []
    next_host_id = 1000  # disjoint per-cluster host-ID ranges (see above)
    for i, (vip_count, host_count, country) in enumerate(cluster_specs):
        prefix = "157.240.%d.0/24" % (i % 250) if i < 250 else "31.13.%d.0/24" % (i - 250)
        cluster = FrontendCluster(
            name="fb-pop-%d" % i,
            prefix=prefix,
            profile=profile,
            loop=loop,
            rng=rng,
            vip_count=vip_count,
            l7_host_count=host_count,
            host_id_base=next_host_id,
            certificate=cert,
            country=country,
            maglev_table_size=maglev_table_size,
            obs=obs,
        )
        next_host_id += host_count + rng.randrange(1, 20)
        network.add_device(cluster)
        geodb.register(prefix, country)
        clusters.append(cluster)
    return Lab(
        loop=loop,
        network=network,
        rng=rng,
        clusters={"Facebook": clusters},
        geodb=geodb,
        obs=obs,
    )


def build_lb_lab(
    google_hosts: int = 12,
    facebook_hosts: int = 12,
    seed: int = 11,
    suite: str = "null",
    quic_lb_hosts: int = 0,
    obs: Observability | None = None,
) -> Lab:
    """One Google + one Facebook cluster, for the Appendix-D experiments.

    ``quic_lb_hosts`` > 0 additionally deploys a hypothetical QUIC-LB
    (IETF routable-CID) cluster under the "QuicLB" key — used by the
    migration ablation.
    """
    from repro.server.profiles import quic_lb_profile

    obs = obs or NULL_OBS
    rng = random.Random(seed)
    loop = EventLoop(obs)
    network = Network(loop, random.Random(seed ^ 1), PathModel(jitter=0.0), obs=obs)
    geodb = GeoDatabase()
    clusters: dict[str, list[FrontendCluster]] = {}
    specs = [
        (GOOGLE.name, google_profile(), "142.250.0.0/24", google_hosts, GOOGLE),
        (FACEBOOK.name, facebook_profile(), "157.240.0.0/24", facebook_hosts, FACEBOOK),
    ]
    if quic_lb_hosts:
        specs.append(
            ("QuicLB", quic_lb_profile(), "198.18.0.0/24", quic_lb_hosts, None)
        )
    for name, profile, prefix, hosts, hypergiant in specs:
        cluster = FrontendCluster(
            name="%s-lab" % name.lower(),
            prefix=prefix,
            profile=replace(profile, protection_suite=suite),
            loop=loop,
            rng=rng,
            vip_count=8,
            l7_host_count=hosts,
            host_id_base=100,
            certificate=_cluster_cert(hypergiant) if hypergiant else None,
            country="US",
            obs=obs,
        )
        network.add_device(cluster)
        geodb.register(prefix, "US")
        clusters[name] = [cluster]
    return Lab(
        loop=loop, network=network, rng=rng, clusters=clusters, geodb=geodb, obs=obs
    )
