"""repro — passive measurement toolchain for QUIC deployments.

A full reproduction of "Waiting for QUIC: On the Opportunities of Passive
Measurements to Understand QUIC Deployments": a from-scratch QUIC wire
stack (RFC 8999/9000/9001 Initial crypto included), an Internet/telescope
simulator with hypergiant server and load-balancer models, and the passive
analysis pipeline that recovers deployment configurations from backscatter.

Quickstart::

    from repro.workloads.scenario import build_scenario
    from repro.core.timing import timing_profiles

    scenario = build_scenario()
    scenario.run()
    capture = scenario.classify()
    for origin, profile in timing_profiles(capture.backscatter).items():
        print(origin, profile.initial_rto, profile.resend_range)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "quic",
    "tls",
    "netstack",
    "inetdata",
    "simnet",
    "server",
    "workloads",
    "telescope",
    "core",
    "active",
]
