"""Internet metadata: IP-to-AS mapping, geolocation, hypergiant registry,
and the synthetic certificate/PTR store used for off-net verification.

These stand in for CAIDA prefix-to-AS data, MaxMind GeoLite, and live
TLS/DNS lookups (see DESIGN.md substitution table).
"""

from repro.inetdata.radix import RadixTree
from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.inetdata.geodb import GeoDatabase, GeoEntry
from repro.inetdata.hypergiants import (
    CLOUDFLARE,
    FACEBOOK,
    GOOGLE,
    Hypergiant,
    HYPERGIANTS,
)
from repro.inetdata.certs import CertificateStore

__all__ = [
    "RadixTree",
    "AsDatabase",
    "AsEntry",
    "GeoDatabase",
    "GeoEntry",
    "Hypergiant",
    "HYPERGIANTS",
    "CLOUDFLARE",
    "FACEBOOK",
    "GOOGLE",
    "CertificateStore",
]
