"""Registry of the hypergiants the paper studies.

AS numbers and domain suffixes are the real ones; prefixes are
representative published prefixes of each network (used to lay out the
simulated deployments and the IP-to-AS database).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Hypergiant:
    """One content hypergiant: AS, prefixes, and verification domains."""

    name: str
    asn: int
    prefixes: tuple[str, ...]
    #: Domain suffixes accepted as proof of operation (paper Appendix C).
    cert_suffixes: tuple[str, ...]

    def __str__(self) -> str:
        return self.name


FACEBOOK = Hypergiant(
    name="Facebook",
    asn=32934,
    prefixes=("157.240.0.0/16", "31.13.24.0/21", "179.60.192.0/22"),
    cert_suffixes=("facebook.com", "instagram.com", "fbcdn.net", "whatsapp.com"),
)

GOOGLE = Hypergiant(
    name="Google",
    asn=15169,
    prefixes=("142.250.0.0/15", "172.217.0.0/16", "216.58.192.0/19"),
    cert_suffixes=("google.com", "youtube.com", "gstatic.com", "1e100.net"),
)

CLOUDFLARE = Hypergiant(
    name="Cloudflare",
    asn=13335,
    prefixes=("104.16.0.0/13", "172.64.0.0/14", "188.114.96.0/20"),
    cert_suffixes=("cloudflare.com", "cloudflare.net", "cloudflaressl.com"),
)

HYPERGIANTS: dict[str, Hypergiant] = {
    hg.name: hg for hg in (FACEBOOK, GOOGLE, CLOUDFLARE)
}

#: Display order used by the paper's tables.
TABLE_ORDER = ("Cloudflare", "Facebook", "Google")
REMAINING = "Remaining"


def by_asn(asn: int) -> Hypergiant | None:
    for hg in HYPERGIANTS.values():
        if hg.asn == asn:
            return hg
    return None
