"""Prefix-based geolocation database (stands in for MaxMind GeoLite).

Figure 6 of the paper aggregates Facebook frontend clusters by country and
continent; the scenario builder registers every cluster prefix here with
the country it is deployed in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.inetdata.radix import RadixTree
from repro.netstack.addr import Prefix

#: ISO country code → continent, for the countries used in scenarios.
COUNTRY_TO_CONTINENT = {
    "US": "North America",
    "CA": "North America",
    "MX": "North America",
    "BR": "South America",
    "CL": "South America",
    "DE": "Europe",
    "GB": "Europe",
    "FR": "Europe",
    "NL": "Europe",
    "SE": "Europe",
    "ES": "Europe",
    "IT": "Europe",
    "PL": "Europe",
    "IN": "Asia",
    "SG": "Asia",
    "JP": "Asia",
    "HK": "Asia",
    "KR": "Asia",
    "TH": "Asia",
    "ID": "Asia",
    "MY": "Asia",
    "PH": "Asia",
    "VN": "Asia",
    "AU": "Oceania",
    "NZ": "Oceania",
    "ZA": "Africa",
    "KE": "Africa",
    "NG": "Africa",
}


@dataclass(frozen=True)
class GeoEntry:
    country: str  # ISO 3166-1 alpha-2

    @property
    def continent(self) -> str:
        return COUNTRY_TO_CONTINENT.get(self.country, "Unknown")


class GeoDatabase:
    """Prefix → country mapping with longest-prefix lookup."""

    def __init__(self) -> None:
        self._trie: RadixTree[GeoEntry] = RadixTree()

    def register(self, prefix: Prefix | str, country: str) -> None:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if country not in COUNTRY_TO_CONTINENT:
            raise ValueError("unknown country code %r" % country)
        self._trie.insert(prefix, GeoEntry(country))

    def country(self, address: int) -> str | None:
        entry = self._trie.lookup(address)
        return entry.country if entry else None

    def continent(self, address: int) -> str | None:
        entry = self._trie.lookup(address)
        return entry.continent if entry else None
