"""IP-to-AS database with longest-prefix matching.

Stands in for CAIDA's prefix-to-AS files.  The scenario builder registers
hypergiant prefixes, ISP/eyeball prefixes, research-scanner prefixes, and
the telescope itself; analyses then map backscatter source addresses to
origin networks exactly like the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.inetdata.hypergiants import HYPERGIANTS, Hypergiant
from repro.inetdata.radix import RadixTree
from repro.netstack.addr import Prefix, format_ip


@dataclass(frozen=True)
class AsEntry:
    """One origin AS."""

    asn: int
    name: str
    #: Category: hypergiant | isp | research | telescope | other
    category: str = "other"


class AsDatabase:
    """Prefix → origin-AS mapping."""

    def __init__(self) -> None:
        self._trie: RadixTree[AsEntry] = RadixTree()
        self._entries: dict[int, AsEntry] = {}

    def register(self, prefix: Prefix | str, entry: AsEntry) -> None:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self._trie.insert(prefix, entry)
        self._entries.setdefault(entry.asn, entry)

    def register_hypergiant(self, hypergiant: Hypergiant) -> None:
        entry = AsEntry(hypergiant.asn, hypergiant.name, category="hypergiant")
        for prefix in hypergiant.prefixes:
            self.register(prefix, entry)

    def lookup(self, address: int) -> AsEntry | None:
        """Longest-prefix origin AS for ``address``."""
        return self._trie.lookup(address)

    def origin_name(self, address: int) -> str:
        """Paper-style origin label: hypergiant name or "Remaining"."""
        entry = self.lookup(address)
        if entry is not None and entry.name in HYPERGIANTS:
            return entry.name
        return "Remaining"

    def asn_of(self, address: int) -> int | None:
        entry = self.lookup(address)
        return entry.asn if entry else None

    def entries(self) -> list[AsEntry]:
        return sorted(self._entries.values(), key=lambda e: e.asn)

    def prefixes_of(self, asn: int) -> list[Prefix]:
        return [p for p, e in self._trie.items() if e.asn == asn]

    @classmethod
    def with_hypergiants(cls) -> "AsDatabase":
        """A database pre-seeded with the three studied hypergiants."""
        db = cls()
        for hg in HYPERGIANTS.values():
            db.register_hypergiant(hg)
        return db

    def describe(self, address: int) -> str:
        entry = self.lookup(address)
        if entry is None:
            return "%s (unrouted)" % format_ip(address)
        return "%s (AS%d %s)" % (format_ip(address), entry.asn, entry.name)
