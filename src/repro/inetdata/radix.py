"""Binary radix (Patricia-style) trie for longest-prefix matching.

The same structure routers use for forwarding tables; here it backs the
IP-to-AS database, the geolocation database, and the simulator's routing
table.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.netstack.addr import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class RadixTree(Generic[V]):
    """Maps CIDR prefixes to values; lookup returns the longest match."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[V]:
        """Longest-prefix match for ``address``; None if nothing matches."""
        match = self.lookup_with_prefix(address)
        return match[1] if match else None

    def lookup_with_prefix(self, address: int) -> Optional[tuple[Prefix, V]]:
        """Longest-prefix match returning the matched prefix as well."""
        node = self._root
        best: Optional[tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[assignment]
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)  # type: ignore[assignment]
        if best is None:
            return None
        length, value = best
        mask = ((1 << length) - 1) << (32 - length) if length else 0
        return Prefix(address & mask, length), value

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Yield all (prefix, value) pairs in preorder."""

        def walk(node: _Node[V], network: int, depth: int):
            if node.has_value:
                yield Prefix(network, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, network | (bit << (31 - depth)), depth + 1)

        yield from walk(self._root, 0, 0)
