"""Per-IP certificate and PTR-record store.

The paper verifies off-net candidates by (i) connecting and inspecting the
TLS certificate's subjectAltNames and (ii) checking DNS PTR records
(Appendix C).  The scenario builder registers what each simulated server
would present; the verification step then performs the same decision.
"""

from __future__ import annotations

from repro.inetdata.hypergiants import Hypergiant
from repro.tls.certs import Certificate


class CertificateStore:
    """Maps server IP → presented certificate and PTR name."""

    def __init__(self) -> None:
        self._certs: dict[int, Certificate] = {}
        self._ptr: dict[int, str] = {}

    def register(self, address: int, certificate: Certificate, ptr: str = "") -> None:
        self._certs[address] = certificate
        if ptr:
            self._ptr[address] = ptr

    def certificate(self, address: int) -> Certificate | None:
        return self._certs.get(address)

    def ptr(self, address: int) -> str:
        return self._ptr.get(address, "")

    def __contains__(self, address: int) -> bool:
        return address in self._certs

    def __len__(self) -> int:
        return len(self._certs)

    def operated_by(self, address: int, hypergiant: Hypergiant) -> bool:
        """Appendix-C ground truth: SAN suffix match, or PTR suffix match."""
        cert = self._certs.get(address)
        if cert is not None and cert.matches_any_suffix(hypergiant.cert_suffixes):
            return True
        ptr = self._ptr.get(address, "")
        return any(
            ptr == suffix or ptr.endswith("." + suffix)
            for suffix in hypergiant.cert_suffixes
        )
