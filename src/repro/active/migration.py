"""Client-migration experiments (paper §2.2's motivating problem).

QUIC lets an established client change its 5-tuple (NAT rebinding, Wi-Fi
to cellular) and even rotate to a fresh connection ID.  Whether the
connection survives depends entirely on the load-balancer fabric:

* **5-tuple routing** (Facebook): any path change rehashes to a different
  L7LB, which holds no state → the probe gets a stateless reset.
* **CID-aware routing** (Google): migration with the *same* CID reaches
  the same L7LB and survives; but a *rotated* CID (random, no encoded
  information) hashes elsewhere → broken again.
* **QUIC-LB routable CIDs** (IETF draft): every CID the deployment mints
  encodes the backend, so both migrations survive.

``migration_probe`` measures exactly this, completing the paper's §2.2
argument for why information encoding in CIDs is unavoidable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.active.prober import Prober


@dataclass
class MigrationOutcome:
    """Result of one migration probe."""

    vip: int
    rotated_cid: bool
    survived: bool
    new_cid_available: bool


def migration_probe(
    prober: Prober,
    vip: int,
    rotate_cid: bool = False,
    wait: float = 2.0,
) -> MigrationOutcome:
    """Handshake, then ping from a new 5-tuple (optionally on a new CID)."""
    result = prober.handshake(vip)
    if not result.completed:
        raise RuntimeError("handshake to VIP did not complete")
    connection = prober.last_connection
    assert connection is not None
    # Give the server's NEW_CONNECTION_ID time to arrive.
    prober.advance(0.3)

    dcid = None
    if rotate_cid:
        if not connection.result.new_connection_ids:
            return MigrationOutcome(
                vip=vip, rotated_cid=True, survived=False, new_cid_available=False
            )
        dcid = connection.result.new_connection_ids[0]

    new_port = prober.take_port()
    prober.host.register_alias(new_port, connection)
    pongs_before = connection.result.pongs
    prober.host.send_raw(connection.migration_datagram(new_port, dcid=dcid))
    prober.advance(wait)
    return MigrationOutcome(
        vip=vip,
        rotated_cid=rotate_cid,
        survived=connection.result.pongs > pongs_before,
        new_cid_available=bool(connection.result.new_connection_ids),
    )


def migration_matrix(
    prober_by_deployment: dict[str, tuple[Prober, list[int]]],
    probes_per_cell: int = 8,
) -> dict[str, dict[str, float]]:
    """Survival rates for every (deployment, migration kind) combination.

    Returns ``{deployment: {"same_cid": rate, "rotated_cid": rate}}``.
    """
    matrix: dict[str, dict[str, float]] = {}
    for deployment, (prober, vips) in prober_by_deployment.items():
        cells = {}
        for label, rotate in (("same_cid", False), ("rotated_cid", True)):
            survived = 0
            for i in range(probes_per_cell):
                outcome = migration_probe(
                    prober, vips[i % len(vips)], rotate_cid=rotate
                )
                survived += outcome.survived
            cells[label] = survived / probes_per_cell
        matrix[deployment] = cells
    return matrix
