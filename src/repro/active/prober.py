"""The scanning probe: drives QUIC handshakes against simulated deployments.

A single probe host (the paper scans "from a single scanning probe within a
university network") opens connections with successively decreasing source
ports — the trick that walks a consistent-hashing load balancer across its
backends — and logs server connection IDs, transport parameters, and
certificates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.l7lb import host_id_of
from repro.netstack.addr import parse_ip
from repro.quic.cid.google import echoes_client_dcid
from repro.quic.version import QUIC_V1
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Network
from repro.workloads.clients import ClientConnection, ClientHost, HandshakeResult

DEFAULT_PROBE_ADDRESS = "198.51.100.10"  # TEST-NET-2


@dataclass
class ProbeLog:
    """One handshake attempt's outcome, as the paper's scan logs record."""

    vip: int
    src_port: int
    completed: bool
    server_scid: bytes
    host_id: int | None
    rtt: float


class Prober:
    """Synchronous handshake driver on top of the event loop."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: random.Random | None = None,
        address: int | str = DEFAULT_PROBE_ADDRESS,
        suite: str = "null",
        timeout: float = 3.0,
    ) -> None:
        self.loop = loop
        self.rng = rng or random.Random(0xB0BE)
        if isinstance(address, str):
            address = parse_ip(address)
        self.host = ClientHost("prober", address)
        network.add_device(self.host.device)
        self.suite = suite
        self.timeout = timeout
        self.logs: list[ProbeLog] = []
        #: The ClientConnection behind the most recent handshake() call.
        self.last_connection: ClientConnection | None = None
        self._next_port = 65000

    # ------------------------------------------------------------------ core
    def handshake(
        self,
        vip: int,
        src_port: int | None = None,
        version: int = QUIC_V1.value,
        server_name: str = "",
        dcid: bytes | None = None,
        timeout: float | None = None,
    ) -> HandshakeResult:
        """Run one handshake to completion or timeout; returns its result."""
        if src_port is None:
            src_port = self._take_port()
        connection = ClientConnection(
            rng=self.rng,
            src_ip=self.host.address,
            src_port=src_port,
            dst_ip=vip,
            version=version,
            server_name=server_name,
            dcid=dcid,
            suite=self.suite,
        )
        self.host.open(connection, self.loop.now)
        self.last_connection = connection
        self._run_until_complete(connection, timeout or self.timeout)
        result = connection.result
        self.logs.append(
            ProbeLog(
                vip=vip,
                src_port=src_port,
                completed=result.completed,
                server_scid=result.server_scid,
                host_id=host_id_of(result.server_scid)
                if result.server_scid
                else None,
                rtt=result.rtt,
            )
        )
        return result

    def _run_until_complete(self, connection: ClientConnection, timeout: float) -> None:
        deadline = self.loop.now + timeout
        while not connection.result.completed:
            next_time = self.loop.peek_time()
            if next_time is None or next_time > deadline:
                return
            self.loop.step()
        # Drain the rest of the flight (e.g. the non-coalesced Handshake
        # datagram carrying the certificate) before returning.
        grace = self.loop.now + 0.05
        while True:
            next_time = self.loop.peek_time()
            if next_time is None or next_time > grace:
                break
            self.loop.step()

    def take_port(self) -> int:
        """Successively decreasing source ports, as in the paper's scans."""
        port = self._next_port
        self._next_port -= 1
        if self._next_port < 1025:
            self._next_port = 65000
        return port

    _take_port = take_port  # internal alias

    def advance(self, seconds: float) -> None:
        """Let simulated time pass (processing due events)."""
        self.loop.run_until(self.loop.now + seconds)

    # -------------------------------------------------------------- campaigns
    def enumerate_host_ids(
        self, vip: int, handshakes: int, stop_after_stable: int = 0
    ) -> list[int | None]:
        """Host-ID sequence from ``handshakes`` port-varying handshakes.

        ``stop_after_stable`` > 0 ends the campaign early once that many
        consecutive handshakes yield no previously-unseen host ID — the
        practical convergence cutoff for bulk scans (§4.3 shows discovery
        converges quickly).
        """
        sequence: list[int | None] = []
        seen: set[int] = set()
        stable = 0
        for _ in range(handshakes):
            result = self.handshake(vip)
            host_id = host_id_of(result.server_scid) if result.completed else None
            sequence.append(host_id)
            if host_id is not None and host_id not in seen:
                seen.add(host_id)
                stable = 0
            else:
                stable += 1
                if stop_after_stable and stable >= stop_after_stable:
                    break
        return sequence

    def scan_vips(
        self,
        vips: list[int],
        handshakes_per_vip: int,
        stop_after_stable: int = 0,
    ) -> dict[int, set[int]]:
        """Paper §4.3: per-VIP host-ID sets from bulk scanning."""
        out: dict[int, set[int]] = {}
        for vip in vips:
            ids = self.enumerate_host_ids(
                vip, handshakes_per_vip, stop_after_stable=stop_after_stable
            )
            out[vip] = {h for h in ids if h is not None}
        return out

    def detect_echo_behaviour(self, vip: int, attempts: int = 3) -> bool:
        """Probe with chosen DCIDs: does the server echo them as its SCID?

        This is how the paper establishes that Google does not choose its
        own connection IDs (§4.2 "Google SCIDs").
        """
        echoes = 0
        completed = 0
        for _ in range(attempts):
            dcid = self.rng.getrandbits(96).to_bytes(12, "big")
            result = self.handshake(vip, dcid=dcid)
            if not result.completed:
                continue
            completed += 1
            if echoes_client_dcid(result.server_scid, dcid):
                echoes += 1
        return completed > 0 and echoes == completed

    def transport_parameters(self, vip: int):
        """Zirngibl-style stateful scan: the server's transport parameters."""
        return self.handshake(vip).transport_parameters

    def certificate(self, vip: int):
        return self.handshake(vip).certificate
