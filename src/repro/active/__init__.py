"""Active measurements: handshake probing and load-balancer inference.

These complement the passive pipeline exactly as in the paper — verifying
SCID semantics (echo vs. chosen), enumerating L7LB host IDs per VIP, and
running the Appendix-D follow-up-handshake experiment that distinguishes
5-tuple from CID-aware load balancing.
"""

from repro.active.prober import Prober
from repro.active.lb_inference import (
    classify_lb,
    follow_up_delay,
    same_instance_probe,
)

__all__ = ["Prober", "follow_up_delay", "classify_lb", "same_instance_probe"]
