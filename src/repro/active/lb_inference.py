"""Appendix-D experiments: same-instance detection and LB-type inference.

Procedure (paper Appendix D):

1. complete a QUIC handshake towards a VIP and keep the connection idle;
2. every second, attempt a *follow-up* handshake to the same VIP with a
   different 5-tuple (new client port), a new client CID — but the same
   server CID S1 as the DCID;
3. a server instance holding state for S1 must silently discard the
   inconsistent Initial (RFC 9000 §5.2) → the follow-up times out; a
   *different* instance completes it.

Consequences: behind a 5-tuple load balancer (Facebook) follow-ups succeed
immediately (new 5-tuple → new L7LB); behind a CID-aware balancer (Google)
they keep reaching the same instance and fail until its connection state
expires (~240 s in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.active.prober import Prober
from repro.core.l7lb import host_id_of, worker_id_of
from repro.quic.version import QUIC_V1

#: Follow-up delays beyond this many seconds indicate CID-aware routing.
CID_AWARE_THRESHOLD = 30.0


@dataclass
class FollowUpOutcome:
    """Result of one Appendix-D measurement against one VIP."""

    vip: int
    initial_scid: bytes
    #: Seconds from the first follow-up attempt until one succeeded
    #: (None: never succeeded within the observation window).
    delay: float | None
    followup_scid: bytes
    attempts: int

    @property
    def initial_host_id(self) -> int | None:
        return host_id_of(self.initial_scid)

    @property
    def followup_host_id(self) -> int | None:
        return host_id_of(self.followup_scid)


def follow_up_delay(
    prober: Prober,
    vip: int,
    version: int = QUIC_V1.value,
    max_wait: float = 300.0,
    interval: float = 1.0,
) -> FollowUpOutcome:
    """Run the Appendix-D procedure against ``vip``."""
    first = prober.handshake(vip, version=version)
    if not first.completed:
        raise RuntimeError("initial handshake to VIP did not complete")
    s1 = first.server_scid
    start = prober.loop.now
    attempts = 0
    while prober.loop.now - start < max_wait:
        attempts += 1
        result = prober.handshake(
            vip,
            version=version,
            dcid=s1,
            timeout=interval * 0.9,
        )
        if result.completed:
            return FollowUpOutcome(
                vip=vip,
                initial_scid=s1,
                delay=prober.loop.now - start,
                followup_scid=result.server_scid,
                attempts=attempts,
            )
        # Wait out the rest of the second before the next attempt.
        prober.advance(max(0.0, interval - (prober.loop.now - start) % interval))
    return FollowUpOutcome(
        vip=vip, initial_scid=s1, delay=None, followup_scid=b"", attempts=attempts
    )


def classify_lb(outcome: FollowUpOutcome, threshold: float = CID_AWARE_THRESHOLD) -> str:
    """Map a follow-up delay to the paper's two load-balancer types."""
    if outcome.delay is None or outcome.delay > threshold:
        return "cid-aware"
    return "5-tuple"


@dataclass
class SameInstanceResult:
    """§4.3 validation: do distinct host IDs mean distinct L7LBs?"""

    vip: int
    first_host_id: int | None
    first_worker_id: int | None
    followup_host_id: int | None
    followup_worker_id: int | None
    followup_delayed: bool

    @property
    def reached_new_instance(self) -> bool:
        return (
            not self.followup_delayed
            and self.followup_host_id is not None
            and (
                self.followup_host_id != self.first_host_id
                or self.followup_worker_id != self.first_worker_id
            )
        )


def same_instance_probe(
    prober: Prober, vip: int, version: int = QUIC_V1.value
) -> SameInstanceResult:
    """One follow-up round, reading host/worker IDs from both SCIDs."""
    outcome = follow_up_delay(prober, vip, version=version, max_wait=10.0)
    return SameInstanceResult(
        vip=vip,
        first_host_id=host_id_of(outcome.initial_scid),
        first_worker_id=worker_id_of(outcome.initial_scid),
        followup_host_id=host_id_of(outcome.followup_scid)
        if outcome.followup_scid
        else None,
        followup_worker_id=worker_id_of(outcome.followup_scid)
        if outcome.followup_scid
        else None,
        followup_delayed=outcome.delay is None or outcome.delay > 5.0,
    )
