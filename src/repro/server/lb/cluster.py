"""A frontend cluster: one /24 of VIPs fronting many L7LB hosts.

Mirrors the paper's Figure 2: requests to any VIP of the cluster hit one of
several L4LBs via ECMP; every L4LB shares the same Maglev view of the
cluster's L7 hosts, so the choice of L4LB is invisible.  Host IDs are
unique *within* a cluster (the paper finds host IDs reused across off-net
deployments but unique per on-net cluster).

ECMP is a SHA-256 of the flow 5-tuple — stateless and order-independent,
like the Maglev and worker-selection stages below it — so the whole
dispatch path is a pure function of the packet.  Sharded simulation
(``repro.simnet.shard``) leans on exactly this: any worker process
replays the same packet → same L4LB → same L7 host → same engine chain.

Key classes: :class:`FrontendCluster` (this module),
:class:`~repro.server.lb.l4lb.L4LoadBalancer`,
:class:`~repro.server.lb.l7lb.L7LbHost`.
"""

from __future__ import annotations

import hashlib
import random

from repro.netstack.addr import Prefix
from repro.netstack.udp import UdpDatagram
from repro.obs import NULL_OBS, Observability
from repro.server.lb.l4lb import L4LoadBalancer
from repro.server.lb.l7lb import L7LbHost
from repro.server.lb.maglev import MaglevTable, flow_key
from repro.server.profiles import ServerProfile
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device
from repro.tls.certs import Certificate


class FrontendCluster(Device):
    """One point of presence of a hypergiant."""

    def __init__(
        self,
        name: str,
        prefix: Prefix | str,
        profile: ServerProfile,
        loop: EventLoop,
        rng: random.Random,
        vip_count: int = 22,
        l7_host_count: int = 16,
        l4_count: int = 4,
        host_id_base: int = 1,
        certificate: Certificate | None = None,
        country: str = "US",
        maglev_table_size: int = 1021,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(name)
        obs = obs or NULL_OBS
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if vip_count > prefix.size - 2:
            raise ValueError("prefix %s too small for %d VIPs" % (prefix, vip_count))
        self.prefix = prefix
        self.profile = profile
        self.loop = loop
        self.country = country
        #: VIPs start at .1 (network address excluded).
        self.vips: list[int] = [prefix.host(1 + i) for i in range(vip_count)]
        self._vip_set = set(self.vips)
        #: Host IDs are contiguous from ``host_id_base`` — the paper observes
        #: low host IDs at off-nets; scenarios set the base accordingly.
        self.hosts: list[L7LbHost] = [
            L7LbHost(
                host_id=host_id_base + i,
                profile=profile,
                loop=loop,
                rng=rng,
                send=self._send_reply,
                certificate=certificate,
                address=prefix.host(prefix.size - 2) ,  # shared DSR address
                obs=obs,
            )
            for i in range(l7_host_count)
        ]
        shared_maglev = MaglevTable(
            [b"l7-%d" % h.host_id for h in self.hosts], table_size=maglev_table_size
        )
        quic_lb_config = getattr(profile.cid_scheme, "config", None)
        self.l4lbs: list[L4LoadBalancer] = [
            L4LoadBalancer(
                name="%s-l4-%d" % (name, i),
                address=prefix.host(prefix.size - 2),
                hosts=self.hosts,
                routing=profile.routing,
                maglev=shared_maglev,
                cid_length=profile.cid_scheme.length,
                quic_lb_config=quic_lb_config,
                obs=obs,
            )
            for i in range(l4_count)
        ]
        self.dropped_non_vip = 0

    # -- Device interface ----------------------------------------------------
    def prefixes(self) -> list[Prefix]:
        return [self.prefix]

    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        if datagram.dst_ip not in self._vip_set:
            self.dropped_non_vip += 1
            return
        l4 = self._ecmp_select(datagram)
        l4.forward(datagram, now)

    def _ecmp_select(self, datagram: UdpDatagram) -> L4LoadBalancer:
        """Router ECMP: 5-tuple hash chooses the L4LB instance."""
        key = flow_key(
            datagram.src_ip, datagram.src_port, datagram.dst_ip, datagram.dst_port
        )
        digest = hashlib.sha256(b"ecmp" + key).digest()
        return self.l4lbs[digest[0] % len(self.l4lbs)]

    def _send_reply(self, datagram: UdpDatagram) -> None:
        """Direct server return: L7 hosts reply straight to the network."""
        self.send(datagram)

    # -- introspection ---------------------------------------------------------
    @property
    def host_ids(self) -> list[int]:
        return [h.host_id for h in self.hosts]

    def total_connections(self) -> int:
        return sum(h.total_connections() for h in self.hosts)

    def engine_stats(self) -> dict[str, int]:
        """Aggregate engine counters across every materialized worker."""
        totals: dict[str, int] = {}
        for host in self.hosts:
            for worker in host.workers.values():
                for key, value in vars(worker.stats).items():
                    totals[key] = totals.get(key, 0) + value
        return totals
