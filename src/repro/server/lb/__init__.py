"""Load-balancer fabric: Maglev hashing, L4 ECMP + tunneling, L7 hosts."""

from repro.server.lb.maglev import MaglevTable
from repro.server.lb.l7lb import L7LbHost
from repro.server.lb.l4lb import L4LoadBalancer
from repro.server.lb.cluster import FrontendCluster

__all__ = ["MaglevTable", "L7LbHost", "L4LoadBalancer", "FrontendCluster"]
