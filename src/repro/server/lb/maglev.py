"""Maglev consistent hashing (Eisenbud et al., NSDI 2016 §3.4).

Each backend generates a permutation of the table from two hashes of its
name; backends take turns claiming their next preferred slot until the
table is full.  The result: near-uniform load, and minimal disruption when
backends come or go — the property that lets every L4LB instance compute
the same mapping independently (which is why ECMP across L4LBs is
transparent to clients).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

#: Default lookup-table size.  Must be prime; 1021 keeps construction cheap
#: while giving <1% load imbalance for the backend counts we simulate (the
#: production paper uses 65537).
DEFAULT_TABLE_SIZE = 1021


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def _hash64(data: bytes, salt: bytes) -> int:
    return int.from_bytes(hashlib.sha256(salt + data).digest()[:8], "big")


class MaglevTable:
    """Immutable lookup table mapping hashable keys to backend indices."""

    def __init__(self, backend_names: Sequence[bytes], table_size: int = DEFAULT_TABLE_SIZE) -> None:
        if not backend_names:
            raise ValueError("Maglev needs at least one backend")
        if not _is_prime(table_size):
            raise ValueError("Maglev table size must be prime, got %d" % table_size)
        if len(backend_names) > table_size:
            raise ValueError("more backends than table slots")
        self.table_size = table_size
        self.backend_count = len(backend_names)
        self._table = self._populate(list(backend_names), table_size)

    @staticmethod
    def _populate(names: list[bytes], m: int) -> list[int]:
        n = len(names)
        offsets = [_hash64(name, b"maglev-offset") % m for name in names]
        skips = [_hash64(name, b"maglev-skip") % (m - 1) + 1 for name in names]
        next_index = [0] * n
        table = [-1] * m
        filled = 0
        while True:
            for i in range(n):
                # Walk backend i's permutation to its next free slot.
                while True:
                    slot = (offsets[i] + next_index[i] * skips[i]) % m
                    next_index[i] += 1
                    if table[slot] < 0:
                        table[slot] = i
                        filled += 1
                        break
                if filled == m:
                    return table

    def lookup(self, key: bytes) -> int:
        """Return the backend index serving ``key``."""
        return self._table[_hash64(key, b"maglev-lookup") % self.table_size]

    def load_distribution(self) -> list[int]:
        """Slots per backend (for the load-uniformity property tests)."""
        counts = [0] * self.backend_count
        for backend in self._table:
            counts[backend] += 1
        return counts

    def disruption(self, other: "MaglevTable") -> float:
        """Fraction of slots that map differently in ``other`` (same size)."""
        if other.table_size != self.table_size:
            raise ValueError("cannot compare tables of different sizes")
        diff = sum(1 for a, b in zip(self._table, other._table) if a != b)
        return diff / self.table_size


def flow_key(src_ip: int, src_port: int, dst_ip: int, dst_port: int) -> bytes:
    """Serialize a 5-tuple (UDP implied) into a hash key."""
    return b"%d|%d|%d|%d|udp" % (src_ip, src_port, dst_ip, dst_port)
