"""Layer-7 load balancer host: terminates QUIC, one engine per worker.

The L7LB is the entity the paper enumerates.  Each host carries a cluster-
unique ``host_id`` (encoded into mvfst SCIDs); each host runs several
worker processes, and connection state lives *per worker* — matching the
paper's finding that "Facebook server instances track QUIC connection
states per host and worker".

Worker selection hashes the first CID bytes (long headers) or the
5-tuple (short headers) — no shared random state — and engines are
created lazily from a per-host seed XOR the worker id.  Both properties
make dispatch and engine behaviour independent of packet arrival order,
which is what allows ``repro.simnet.shard`` to split a scenario across
processes and still merge back the exact serial capture.

Key classes: :class:`L7LbHost` (this module),
:class:`~repro.server.engine.QuicServerEngine` (the per-worker
terminator it multiplexes).
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable

from repro.netstack.udp import UdpDatagram
from repro.obs import NULL_OBS, Observability
from repro.server.engine import QuicServerEngine
from repro.server.profiles import ROUTE_CID, ServerProfile
from repro.simnet.eventloop import EventLoop
from repro.tls.certs import Certificate


class L7LbHost:
    """One layer-7 load balancer (a physical server behind the VIPs)."""

    def __init__(
        self,
        host_id: int,
        profile: ServerProfile,
        loop: EventLoop,
        rng: random.Random,
        send: Callable[[UdpDatagram], None],
        certificate: Certificate | None = None,
        address: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self.host_id = host_id
        self.profile = profile
        self.address = address  # internal (tunnel) address of the host
        self._loop = loop
        self._send = send
        self._certificate = certificate
        self._obs = obs or NULL_OBS
        # Workers are materialized lazily: large clusters have hundreds of
        # hosts and most never receive a packet in a given scenario.
        self._workers: dict[int, QuicServerEngine] = {}
        # Derive per-host determinism from the scenario RNG once.
        self._seed = rng.getrandbits(64)

    @property
    def worker_count(self) -> int:
        return self.profile.workers_per_host

    def _worker(self, worker_id: int) -> QuicServerEngine:
        engine = self._workers.get(worker_id)
        if engine is None:
            engine = QuicServerEngine(
                profile=self.profile,
                loop=self._loop,
                rng=random.Random(self._seed ^ (worker_id * 0x9E3779B97F4A7C15)),
                send=self._send,
                host_id=self.host_id,
                worker_id=worker_id,
                process_id=self.host_id & 1,
                certificate=self._certificate,
                obs=self._obs,
            )
            self._workers[worker_id] = engine
        return engine

    def select_worker_id(self, datagram: UdpDatagram, dcid: bytes) -> int:
        """Stable worker choice: keyed like the fabric routes (5-tuple or CID)."""
        if self.profile.routing == ROUTE_CID and dcid:
            key = dcid[:8]
        else:
            key = b"%d|%d" % (datagram.src_ip, datagram.src_port)
        digest = hashlib.sha256(b"worker" + key).digest()
        return digest[0] % self.worker_count

    def handle(self, datagram: UdpDatagram, dcid: bytes, now: float) -> None:
        self._worker(self.select_worker_id(datagram, dcid)).on_datagram(datagram, now)

    # -- introspection used by tests and analyses ---------------------------
    @property
    def workers(self) -> dict[int, QuicServerEngine]:
        return self._workers

    def total_connections(self) -> int:
        return sum(w.connection_count for w in self._workers.values())
