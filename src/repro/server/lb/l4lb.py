"""Layer-4 load balancer: Maglev over L7 hosts, IP-in-IP tunneling.

Katran-style: the L4LB does not terminate anything.  It picks an L7 host —
by consistent-hashing the 5-tuple (Facebook-style), the first 8 bytes of
the destination connection ID (CID-aware, Google-style), or by decoding a
QUIC-LB routable CID (the IETF draft) — and tunnels the client packet to
that host unchanged.

Routing 1-RTT (short-header) packets requires knowing the CID length the
deployment uses: short headers do not carry it (paper §2.2), which is why
``cid_length`` is part of the balancer's configuration.

Key classes: :class:`L4LoadBalancer` (this module),
:class:`~repro.server.lb.maglev.MaglevTable` (the backend-selection
table), :class:`~repro.quic.cid.quic_lb.QuicLbScheme` counterparts for
routable CIDs.  All selection is hashing over packet fields; nothing
here draws from an rng at dispatch time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netstack import encap
from repro.netstack.udp import UdpDatagram
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_LB
from repro.quic.cid import quic_lb
from repro.quic.cid.quic_lb import QuicLbConfig, QuicLbError
from repro.quic.packet import FORM_BIT, PacketParseError, parse_long_header
from repro.server.lb.l7lb import L7LbHost
from repro.server.lb.maglev import MaglevTable, flow_key
from repro.server.profiles import ROUTE_CID, ROUTE_QUIC_LB


@dataclass
class L4Stats:
    forwarded: int = 0
    tunnel_bytes: int = 0
    cid_routed: int = 0
    tuple_routed: int = 0
    quic_lb_routed: int = 0
    quic_lb_fallback: int = 0


class L4LoadBalancer:
    """One L4LB instance; all instances of a cluster share the Maglev view."""

    def __init__(
        self,
        name: str,
        address: int,
        hosts: list[L7LbHost],
        routing: str,
        table_size: int = 1021,
        maglev: MaglevTable | None = None,
        cid_length: int = 8,
        quic_lb_config: QuicLbConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        if not hosts:
            raise ValueError("L4LB needs at least one L7 host")
        obs = obs or NULL_OBS
        self._tracer = obs.tracer
        self._m_dispatch = (
            obs.metrics.counter("lb.dispatch", ("lb", "routing"))
            if obs.metrics is not None
            else None
        )
        self.name = name
        self.address = address
        self.hosts = hosts
        self.routing = routing
        self.cid_length = cid_length
        self.maglev = maglev or MaglevTable(
            [b"l7-%d" % h.host_id for h in hosts], table_size=table_size
        )
        self.stats = L4Stats()
        self.quic_lb_config = quic_lb_config
        #: QUIC-LB server IDs are the hosts' host IDs.
        self._host_by_server_id = {host.host_id: host for host in hosts}
        if routing == ROUTE_QUIC_LB and quic_lb_config is None:
            raise ValueError("QUIC-LB routing requires a QuicLbConfig")

    def extract_dcid(self, datagram: UdpDatagram) -> bytes:
        """Best-effort DCID (empty on failure).

        Long headers self-describe their CID lengths; short headers are
        sliced at the configured deployment CID length.
        """
        payload = datagram.payload
        if not payload:
            return b""
        if payload[0] & FORM_BIT:
            try:
                return parse_long_header(payload).dcid
            except PacketParseError:
                return b""
        if len(payload) >= 1 + self.cid_length:
            return payload[1 : 1 + self.cid_length]
        return b""

    def routing_key(self, datagram: UdpDatagram, dcid: bytes) -> bytes:
        if self.routing == ROUTE_CID and dcid:
            self.stats.cid_routed += 1
            return b"cid|" + dcid[:8]
        self.stats.tuple_routed += 1
        return flow_key(
            datagram.src_ip, datagram.src_port, datagram.dst_ip, datagram.dst_port
        )

    def select_host(self, datagram: UdpDatagram, dcid: bytes) -> L7LbHost:
        """The routing decision (exposed for tests and ablations)."""
        if self.routing == ROUTE_QUIC_LB and dcid and self.quic_lb_config:
            try:
                server_id, _nonce = quic_lb.decode(self.quic_lb_config, dcid)
                host = self._host_by_server_id.get(server_id)
                if host is not None:
                    self.stats.quic_lb_routed += 1
                    return host
            except QuicLbError:
                pass
            # Unroutable CID (e.g. the client's random first DCID): fall
            # back to consistent hashing, as the draft prescribes.
            self.stats.quic_lb_fallback += 1
            return self.hosts[self.maglev.lookup(b"cid|" + dcid[:8])]
        return self.hosts[self.maglev.lookup(self.routing_key(datagram, dcid))]

    def forward(self, datagram: UdpDatagram, now: float) -> L7LbHost:
        """Tunnel ``datagram`` to the selected host; returns that host.

        The IP-in-IP round trip is performed for real so the tunnel path is
        exercised; the host then handles the decapsulated inner packet.
        """
        dcid = self.extract_dcid(datagram)
        host = self.select_host(datagram, dcid)
        tunneled = encap.encapsulate(datagram, self.address, host.address)
        self.stats.forwarded += 1
        self.stats.tunnel_bytes += len(tunneled)
        if self._m_dispatch is not None:
            self._m_dispatch.inc_key((self.name, self.routing))
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_LB,
                "dispatch",
                time=now,
                lb=self.name,
                routing=self.routing,
                host_id=host.host_id,
                dcid=dcid.hex(),
                src_ip=datagram.src_ip,
            )
        _src, _dst, inner = encap.decapsulate(tunneled)
        host.handle(inner, dcid, now)
        return host
