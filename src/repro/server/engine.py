"""Server-side QUIC engine: handshakes, retransmissions, state discard.

One engine instance represents one *worker* (process) on one L7LB host —
the granularity at which Facebook tracks connection state (paper §4.3).
The engine implements the behaviours the telescope observes:

* replies to client Initials with an Initial+Handshake flight, coalesced or
  not per profile, padded to the profile's characteristic datagram sizes;
* retransmits the flight on the profile's RTO schedule (exponential
  backoff) up to the instance's maximum — the Figure 3/4 signal;
* chooses SCIDs through the profile's CID scheme — the Figure 5 signal;
* silently discards packets that match an existing connection's CID but
  are inconsistent with its state (RFC 9000 §5.2) — the Appendix-D lever
  used to detect same-instance routing.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import hotpath
from repro.netstack.udp import UdpDatagram
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import (
    CAT_CONNECTIVITY,
    CAT_RECOVERY,
    CAT_SECURITY,
    CAT_TRANSPORT,
)
from repro.quic.cid.base import CidContext, RandomScheme
from repro.quic.cid.google import GoogleEchoScheme
from repro.quic.crypto.suites import (
    PacketProtection,
    ProtectionError,
    TAG_LENGTH,
    suite_by_name,
)
from repro.quic.frames import (
    AckFrame,
    AckRange,
    CryptoFrame,
    FrameParseError,
    NewConnectionIdFrame,
    PingFrame,
    decode_frames,
    encode_frames,
)
from repro.quic.packet import (
    FORM_BIT,
    LongHeaderPacket,
    PacketParseError,
    PacketType,
    RetryPacket,
    ShortHeaderPacket,
    VersionNegotiationPacket,
    decode_datagram,
    encode_datagram,
    encode_retry,
    encode_short_packet,
    encode_version_negotiation,
    header_length,
    packet_template,
    parse_short_header,
    unprotect_short_packet,
)
from repro.quic.transport_params import (
    ACTIVE_CONNECTION_ID_LIMIT,
    INITIAL_SOURCE_CONNECTION_ID,
    MAX_IDLE_TIMEOUT,
    MAX_UDP_PAYLOAD_SIZE,
    TransportParameters,
)
from repro.server.profiles import ServerProfile
from repro.simnet.eventloop import Event, EventLoop
from repro.tls.certs import Certificate
from repro.tls.handshake import ServerHello, encode_handshake

#: Marker introducing the certificate blob inside Handshake CRYPTO data.
CERT_MAGIC = b"CRT1"

#: ``transport.datagram_bytes`` buckets.  The inner bounds sit exactly on
#: the profiles' characteristic padded sizes (1052/1200/1232/1242/1252),
#: so Figure 7's length signatures can be read straight off the metrics
#: without a pcap pass.
DATAGRAM_LENGTH_BOUNDS = (200, 600, 1000, 1052, 1200, 1232, 1242, 1252, 1300, 1500)


def datagram_length_bounds(expected_events: Optional[int] = None) -> tuple:
    """``transport.datagram_bytes`` buckets, densified with scenario scale.

    The static set keeps one bucket per characteristic size — fine for
    default runs, but at 10^6+ events each bucket holds so many samples
    that the shape between the characteristic sizes disappears.  The
    scale hint (the event loop's ``expected_events``, derived from the
    full scenario config so all shard workers agree) adds a 100-byte grid
    at 10^6+ and a 50-byte grid at 10^8+, always keeping the exact
    characteristic sizes as bounds.
    """
    if not expected_events or expected_events < 1_000_000:
        return DATAGRAM_LENGTH_BOUNDS
    bounds = set(DATAGRAM_LENGTH_BOUNDS)
    step = 50 if expected_events >= 100_000_000 else 100
    bounds.update(range(step, 1551, step))
    return tuple(sorted(bounds))


class ConnState(enum.Enum):
    AWAIT_CLIENT = 1  # flight sent, waiting for client Handshake/ACK
    ESTABLISHED = 2
    CLOSED = 3


@dataclass
class ServerConnection:
    """Per-connection server state."""

    scid: bytes  # server-chosen CID (S2)
    original_dcid: bytes  # client's temporary server CID (S1)
    client_cid: bytes  # client-chosen CID (C1)
    client_ip: int
    client_port: int
    vip: int
    version: int
    protection: PacketProtection
    state: ConnState = ConnState.AWAIT_CLIENT
    created_at: float = 0.0
    last_active: float = 0.0
    retransmits_done: int = 0
    max_retransmits: int = 0
    retransmit_event: Optional[Event] = None
    next_packet_number: int = 0
    coalesced: bool = False
    #: Additional CIDs issued via NEW_CONNECTION_ID (sequence order).
    issued_cids: list[bytes] = field(default_factory=list)
    short_packet_number: int = 0
    #: Private rng derived from the engine seed and the client's
    #: (address, port, DCID) — see :meth:`QuicServerEngine._derive_rng`.
    rng: Optional[random.Random] = None
    #: Lazily built :class:`_FlightLayout` (template fast path only).
    flight_layout: Optional["_ConnFlight"] = None

    def consistent_with(self, datagram: UdpDatagram, client_scid: bytes) -> bool:
        """Does this packet plausibly continue the stored connection?"""
        return (
            datagram.src_ip == self.client_ip
            and datagram.src_port == self.client_port
            and client_scid == self.client_cid
        )


@dataclass
class EngineStats:
    initials_received: int = 0
    connections_created: int = 0
    flights_sent: int = 0
    retransmissions: int = 0
    established: int = 0
    discarded_inconsistent: int = 0
    version_negotiations: int = 0
    retries_sent: int = 0
    non_quic_ignored: int = 0
    expired: int = 0
    short_packets_received: int = 0
    migrations_accepted: int = 0
    stateless_resets_sent: int = 0
    new_cids_issued: int = 0


class _FlightLayout:
    """Precomputed Initial+Handshake flight bytes for one flight *shape*.

    Everything in a handshake flight is determined by the connection's
    shape — ``(version, dcid length, scid length, coalesced)`` — except
    the 32-byte ServerHello random, the server CID, the two header CIDs
    and the two packet numbers: the transport parameters, ACK and CRYPTO
    framing, padding, both header skeletons (via
    :func:`~repro.quic.packet.packet_template`) and the padding deficits
    (computed analytically from
    :func:`~repro.quic.packet.header_length`, matching the reference
    path's measure-then-pad arithmetic) are all shared.  The engine
    keeps one layout per shape; :meth:`bind` splices a connection's CIDs
    into the shared skeletons once, after which every flight — and the
    retransmissions that dominate emission, per Figure 3/4 — reduces to:
    one rng draw, a three-way payload join, a header copy with a
    one-byte PN patch, and one AEAD seal per packet.

    The scid's offset inside the encrypted payload (it rides in the
    INITIAL_SOURCE_CONNECTION_ID transport parameter) is located by
    encoding the payload twice with two distinct sentinel CIDs and
    diffing — collision-proof, unlike searching for a magic substring.
    """

    __slots__ = (
        "prefix",
        "mid",
        "suffix",
        "handshake_payload",
        "initial_template",
        "handshake_template",
        "coalesced",
    )

    #: ServerHello random sentinel; replaced per flight by the rng draw.
    _RANDOM_SENTINEL = bytes(range(32))

    def __init__(
        self,
        engine: "QuicServerEngine",
        version: int,
        dcid_len: int,
        scid_len: int,
        coalesced: bool,
    ) -> None:
        profile = engine.profile
        payload_a = self._initial_payload(profile, b"\x00" * scid_len)
        payload_b = self._initial_payload(profile, b"\xff" * scid_len)
        diff = [i for i in range(len(payload_a)) if payload_a[i] != payload_b[i]]
        if scid_len:
            scid_offset = diff[0]
            if diff != list(range(scid_offset, scid_offset + scid_len)):
                raise AssertionError("scid region is not contiguous in payload")
        else:
            scid_offset = len(payload_a)
        random_offset = payload_a.index(self._RANDOM_SENTINEL)
        if random_offset + 32 > scid_offset:
            raise AssertionError("ServerHello random must precede the scid")
        prefix = payload_a[:random_offset]
        mid = payload_a[random_offset + 32 : scid_offset]
        suffix = payload_a[scid_offset + scid_len :]
        handshake_payload = engine._handshake_payload_bytes()

        def encoded_length(packet_type: PacketType, payload_len: int) -> int:
            return (
                header_length(packet_type, dcid_len, scid_len, 0, payload_len, 1)
                + payload_len
                + TAG_LENGTH
            )

        initial_len = len(payload_a)
        handshake_len = len(handshake_payload)
        if coalesced:
            total = encoded_length(PacketType.INITIAL, initial_len) + encoded_length(
                PacketType.HANDSHAKE, handshake_len
            )
            handshake_pad = max(0, profile.coalesced_datagram_size - total)
        else:
            initial_pad = max(
                0,
                profile.initial_datagram_size
                - encoded_length(PacketType.INITIAL, initial_len),
            )
            handshake_pad = max(
                0,
                profile.handshake_datagram_size
                - encoded_length(PacketType.HANDSHAKE, handshake_len),
            )
            suffix += b"\x00" * initial_pad
            initial_len += initial_pad
        handshake_payload += b"\x00" * handshake_pad
        handshake_len += handshake_pad

        self.prefix = prefix
        self.mid = mid
        self.suffix = suffix
        self.handshake_payload = handshake_payload
        self.initial_template = packet_template(
            PacketType.INITIAL, version, dcid_len, scid_len, 0, initial_len, 1
        )
        self.handshake_template = packet_template(
            PacketType.HANDSHAKE, version, dcid_len, scid_len, 0, handshake_len, 1
        )
        self.coalesced = coalesced

    @staticmethod
    def _initial_payload(profile, scid: bytes) -> bytes:
        params = TransportParameters()
        params.set(INITIAL_SOURCE_CONNECTION_ID, scid)
        params.set(MAX_IDLE_TIMEOUT, int(profile.idle_timeout * 1000))
        params.set(MAX_UDP_PAYLOAD_SIZE, 1472)
        params.set(ACTIVE_CONNECTION_ID_LIMIT, 4)
        hello = encode_handshake(
            ServerHello(
                random=_FlightLayout._RANDOM_SENTINEL,
                quic_transport_parameters=params.encode(),
            )
        )
        return encode_frames(
            [
                AckFrame(largest_acked=0, ranges=(AckRange(0, 0),)),
                CryptoFrame(offset=0, data=hello),
            ]
        )

    def bind(self, conn: ServerConnection) -> "_ConnFlight":
        """Splice one connection's CIDs into the shared skeletons."""
        return _ConnFlight(
            prefix=self.prefix,
            suffix=b"".join((self.mid, conn.scid, self.suffix)),
            handshake_payload=self.handshake_payload,
            initial_header=bytearray(
                self.initial_template.render(conn.client_cid, conn.scid, 0)
            ),
            handshake_header=bytearray(
                self.handshake_template.render(conn.client_cid, conn.scid, 0)
            ),
            coalesced=self.coalesced,
        )


class _ConnFlight:
    """One connection's bound flight: headers rendered, payload split."""

    __slots__ = (
        "prefix",
        "suffix",
        "handshake_payload",
        "initial_header",
        "handshake_header",
        "coalesced",
    )

    def __init__(
        self,
        prefix: bytes,
        suffix: bytes,
        handshake_payload: bytes,
        initial_header: bytearray,
        handshake_header: bytearray,
        coalesced: bool,
    ) -> None:
        self.prefix = prefix
        self.suffix = suffix
        self.handshake_payload = handshake_payload
        self.initial_header = initial_header
        self.handshake_header = handshake_header
        self.coalesced = coalesced

    def datagrams(self, conn: ServerConnection, rng: random.Random) -> list[bytes]:
        """Emit one flight's datagrams (rng draw order matches rebuild)."""
        random32 = rng.getrandbits(256).to_bytes(32, "big")
        pn = conn.next_packet_number
        conn.next_packet_number += 2
        protection = conn.protection
        header = self.initial_header.copy()
        header[-1] = pn & 0xFF  # pn_length is 1 in every flight
        initial = protection.protect(
            True, header, pn, b"".join((self.prefix, random32, self.suffix))
        )
        header = self.handshake_header.copy()
        header[-1] = (pn + 1) & 0xFF
        handshake = protection.protect(True, header, pn + 1, self.handshake_payload)
        if self.coalesced:
            return [initial + handshake]
        return [initial, handshake]


class QuicServerEngine:
    """One QUIC-terminating worker process."""

    def __init__(
        self,
        profile: ServerProfile,
        loop: EventLoop,
        rng: random.Random,
        send: Callable[[UdpDatagram], None],
        host_id: int = 0,
        worker_id: int = 0,
        process_id: int = 0,
        certificate: Certificate | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.profile = profile
        self.loop = loop
        self.rng = rng
        self._send = send
        self.host_id = host_id
        self.worker_id = worker_id
        self.process_id = process_id
        self.certificate = certificate
        self.stats = EngineStats()
        obs = obs or NULL_OBS
        self._obs = obs
        self._prof = obs.prof
        # Per-worker scoped tracer: every event carries profile/host/worker.
        self._tracer = (
            obs.tracer.scoped(
                profile=profile.name, host=host_id, worker=worker_id
            )
            if obs.tracer.enabled
            else obs.tracer
        )
        self._m_events = (
            obs.metrics.counter("engine.events", ("event", "profile"))
            if obs.metrics is not None
            else None
        )
        # Flight-level transport telemetry (ROADMAP: per-flight byte counts
        # so Figure 7 cross-checks need no pcap pass).
        if obs.metrics is not None:
            self._m_datagrams = obs.metrics.counter(
                "transport.datagrams_sent", ("profile",)
            )
            self._m_flight_bytes = obs.metrics.counter(
                "transport.flight_bytes", ("profile",)
            )
            self._m_datagram_bytes = obs.metrics.histogram(
                "transport.datagram_bytes",
                datagram_length_bounds(getattr(loop, "expected_events", None)),
                ("profile",),
            )
        else:
            self._m_datagrams = None
            self._m_flight_bytes = None
            self._m_datagram_bytes = None
        self._suite = suite_by_name(profile.protection_suite)
        #: Lazily encoded Handshake CRYPTO payload (constant per engine).
        self._handshake_payload: Optional[bytes] = None
        self._flight_layouts: dict[tuple, _FlightLayout] = {}
        #: Connections addressable by the server-chosen CID.
        self._by_scid: dict[bytes, ServerConnection] = {}
        #: Dedup of client Initials: (src, sport, original dcid) → connection.
        self._by_origin: dict[tuple[int, int, bytes], ServerConnection] = {}
        self._max_retransmits = profile.draw_max_retransmits(rng)
        # One construction-time draw seeds all per-connection randomness:
        # each connection derives its own rng from (this seed, client ip,
        # port, DCID), so every reply is a pure function of the arriving
        # packet rather than of global event interleaving.  That property
        # is what lets sharded multi-process runs merge into the exact
        # capture a serial run produces.
        self._conn_seed = rng.getrandbits(64)
        # CID rotation: echo schemes cannot mint *new* IDs (they only
        # reflect the client's DCID), so rotation falls back to random —
        # exactly the property that breaks migration under CID-aware
        # routing without encoded information (paper §2.2).
        if isinstance(profile.cid_scheme, GoogleEchoScheme):
            self._rotation_scheme = RandomScheme(length=profile.cid_scheme.length)
        else:
            self._rotation_scheme = profile.cid_scheme

    # ------------------------------------------------------------------ API
    @property
    def connection_count(self) -> int:
        # _by_scid may hold several aliases per connection (rotated CIDs).
        return len(self._by_origin)

    def _count(self, event: str) -> None:
        if self._m_events is not None:
            self._m_events.inc_key((event, self.profile.name))

    def _derive_rng(self, src_ip: int, src_port: int, dcid: bytes) -> random.Random:
        """An rng keyed by the engine seed and one client's identity."""
        key = b"%d|%d|%d|" % (self._conn_seed, src_ip, src_port) + dcid
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def on_datagram(self, datagram: UdpDatagram, now: float) -> None:
        """Entry point: one UDP datagram addressed to this worker."""
        if datagram.payload and not datagram.payload[0] & FORM_BIT:
            self._on_short(datagram, now)
            return
        try:
            packets = decode_datagram(datagram.payload)
        except PacketParseError:
            self.stats.non_quic_ignored += 1
            self._count("non_quic_ignored")
            return
        parsed, _raw = packets[0]
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_TRANSPORT,
                "packet_received",
                time=now,
                packet_type=parsed.packet_type.name.lower(),
                dcid=parsed.dcid.hex(),
                src_ip=datagram.src_ip,
                bytes=len(datagram.payload),
            )
        self._count("packets_received")

        if parsed.packet_type is PacketType.VERSION_NEGOTIATION:
            return  # servers never act on VN
        existing = self._by_scid.get(parsed.dcid)
        if existing is not None:
            self._on_existing(existing, datagram, parsed, now)
            return
        if parsed.packet_type is PacketType.INITIAL:
            self._on_new_initial(datagram, parsed, now)
        elif parsed.packet_type is PacketType.ZERO_RTT:
            # 0-RTT without cached state: silently dropped.
            self.stats.discarded_inconsistent += 1
        # Handshake packets for unknown connections are dropped silently.

    # ----------------------------------------------------------- internals
    def _on_existing(
        self, conn: ServerConnection, datagram: UdpDatagram, parsed, now: float
    ) -> None:
        if (
            conn.state is ConnState.ESTABLISHED
            and now - conn.last_active > self.profile.idle_timeout
        ):
            self._drop_connection(conn)
            self.stats.expired += 1
            self._count("connections_expired")
            if self._tracer.enabled:
                self._tracer.emit(
                    CAT_CONNECTIVITY, "connection_expired", time=now, cid=conn.scid.hex()
                )
            if parsed.packet_type is PacketType.INITIAL:
                self._on_new_initial(datagram, parsed, now)
            return
        if not conn.consistent_with(datagram, parsed.scid):
            # RFC 9000 §5.2: inconsistent packets for a known CID are
            # silently discarded.  This is the Appendix-D observable.
            self.stats.discarded_inconsistent += 1
            self._count("discarded_inconsistent")
            return
        conn.last_active = now
        if conn.state is ConnState.AWAIT_CLIENT:
            conn.state = ConnState.ESTABLISHED
            self.stats.established += 1
            self._count("connections_established")
            if self._tracer.enabled:
                self._tracer.emit(
                    CAT_CONNECTIVITY,
                    "connection_established",
                    time=now,
                    cid=conn.scid.hex(),
                    retransmits=conn.retransmits_done,
                )
            if conn.retransmit_event is not None:
                conn.retransmit_event.cancel()
                conn.retransmit_event = None
            self._issue_new_cid(conn)

    def _on_new_initial(self, datagram: UdpDatagram, parsed, now: float) -> None:
        self.stats.initials_received += 1
        origin_key = (datagram.src_ip, datagram.src_port, parsed.dcid)
        if origin_key in self._by_origin:
            return  # duplicate client Initial; flight already scheduled
        if parsed.version not in self.profile.supported_versions:
            self._send_version_negotiation(datagram, parsed)
            return
        conn_rng = self._derive_rng(datagram.src_ip, datagram.src_port, parsed.dcid)
        if (
            self.profile.retry_probability
            and not parsed.token
            and conn_rng.random() < self.profile.retry_probability
        ):
            self._send_retry(datagram, parsed, conn_rng)
            return

        context = CidContext(
            host_id=self.host_id,
            worker_id=self.worker_id,
            process_id=self.process_id,
            client_dcid=parsed.dcid,
        )
        scid = self.profile.cid_scheme.generate(conn_rng, context)
        prof = self._prof
        if prof is None:
            protection = self._suite(parsed.version, parsed.dcid)
        else:
            # Suite construction is where Initial key derivation (HKDF)
            # happens — the "engine.keys" stage of the packet lifecycle.
            node, start = prof.leaf_begin("engine.keys", self.profile.name)
            protection = self._suite(parsed.version, parsed.dcid)
            prof.leaf_end(node, start, packets=1)
            protection.prof = prof
            protection.prof_profile = self.profile.name
        conn = ServerConnection(
            scid=scid,
            original_dcid=parsed.dcid,
            client_cid=parsed.scid,
            client_ip=datagram.src_ip,
            client_port=datagram.src_port,
            vip=datagram.dst_ip,
            version=parsed.version,
            protection=protection,
            created_at=now,
            last_active=now,
            max_retransmits=self._max_retransmits,
            coalesced=conn_rng.random() < self.profile.coalesce_probability,
            rng=conn_rng,
        )
        self._by_scid[scid] = conn
        self._by_origin[origin_key] = conn
        self.stats.connections_created += 1
        self._count("connections_created")
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_CONNECTIVITY,
                "connection_created",
                time=now,
                cid=scid.hex(),
                client_cid=parsed.scid.hex(),
                client_ip=datagram.src_ip,
                version="0x%08x" % parsed.version,
                coalesced=conn.coalesced,
            )
        self._send_flight(conn, datagram)
        self._schedule_retransmit(conn, datagram, self.profile.initial_rto)

    # -------------------------------------------------------- 1-RTT traffic
    def _on_short(self, datagram: UdpDatagram, now: float) -> None:
        """Handle a 1-RTT packet: continuation, migration, or reset."""
        self.stats.short_packets_received += 1
        try:
            parsed = parse_short_header(
                datagram.payload, self.profile.cid_scheme.length
            )
        except PacketParseError:
            self.stats.non_quic_ignored += 1
            return
        conn = self._by_scid.get(parsed.dcid)
        if (
            conn is None
            or conn.state is not ConnState.ESTABLISHED
            or now - conn.last_active > self.profile.idle_timeout
        ):
            if conn is not None:
                self._drop_connection(conn)
                self.stats.expired += 1
            # RFC 9000 §10.3: no matching connection -> stateless reset.
            self._send_stateless_reset(datagram, parsed.dcid)
            return
        try:
            plain = unprotect_short_packet(
                parsed, datagram.payload, conn.protection, from_server=False
            )
            decode_frames(plain.payload)
        except (ProtectionError, FrameParseError):
            self.stats.discarded_inconsistent += 1
            return
        if (datagram.src_ip, datagram.src_port) != (conn.client_ip, conn.client_port):
            # Valid packet from a new path: connection migration.  (Path
            # validation is collapsed into immediate acceptance.)
            conn.client_ip = datagram.src_ip
            conn.client_port = datagram.src_port
            self.stats.migrations_accepted += 1
            self._count("migrations_accepted")
            if self._tracer.enabled:
                self._tracer.emit(
                    CAT_CONNECTIVITY,
                    "migration_accepted",
                    time=now,
                    cid=parsed.dcid.hex(),
                    new_ip=datagram.src_ip,
                )
        conn.last_active = now
        self._send_short(conn, [PingFrame()], datagram)

    def _issue_new_cid(self, conn: ServerConnection) -> None:
        """Send NEW_CONNECTION_ID with a spare CID after establishment."""
        context = CidContext(
            host_id=self.host_id,
            worker_id=self.worker_id,
            process_id=self.process_id,
            client_dcid=conn.original_dcid,
        )
        rng = conn.rng if conn.rng is not None else self.rng
        new_cid = self._rotation_scheme.generate(rng, context)
        if new_cid in self._by_scid:
            return  # astronomically unlikely collision; skip the rotation
        conn.issued_cids.append(new_cid)
        self._by_scid[new_cid] = conn
        self.stats.new_cids_issued += 1
        self._count("new_cids_issued")
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_CONNECTIVITY,
                "new_cid_issued",
                time=self.loop.now,
                cid=conn.scid.hex(),
                new_cid=new_cid.hex(),
            )
        frame = NewConnectionIdFrame(
            sequence_number=len(conn.issued_cids),
            retire_prior_to=0,
            connection_id=new_cid,
            stateless_reset_token=rng.getrandbits(128).to_bytes(16, "big"),
        )
        self._send_short(conn, [frame], None)

    def _send_short(
        self,
        conn: ServerConnection,
        frames: list,
        request: UdpDatagram | None,
    ) -> None:
        payload = encode_frames(frames)
        if len(payload) < 24:
            # Keep the packet long enough for the header-protection sample
            # (RFC 9001 §5.4.2) — real stacks pad tiny 1-RTT packets too.
            payload += b"\x00" * (24 - len(payload))
        packet = ShortHeaderPacket(
            dcid=conn.client_cid,
            packet_number=conn.short_packet_number,
            payload=payload,
        )
        conn.short_packet_number += 1
        data = encode_short_packet(packet, conn.protection, is_server=True)
        self._send(
            UdpDatagram(
                src_ip=conn.vip,
                dst_ip=request.src_ip if request else conn.client_ip,
                src_port=443,
                dst_port=request.src_port if request else conn.client_port,
                payload=data,
            )
        )

    def _send_stateless_reset(self, request: UdpDatagram, dcid: bytes) -> None:
        """RFC 9000 §10.3: unpredictable bytes ending in a reset token."""
        rng = self._derive_rng(request.src_ip, request.src_port, dcid)
        filler_len = max(5, 22 - 16)
        filler = bytearray(rng.getrandbits(8 * filler_len).to_bytes(filler_len, "big"))
        filler[0] = 0x40 | (filler[0] & 0x3F)  # looks like a short header
        token = rng.getrandbits(128).to_bytes(16, "big")
        self._reply(request, request.dst_ip, bytes(filler) + token)
        self.stats.stateless_resets_sent += 1
        self._count("stateless_resets_sent")
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_SECURITY,
                "stateless_reset_sent",
                time=self.loop.now,
                dcid=dcid.hex(),
                dst_ip=request.src_ip,
            )

    def _schedule_retransmit(
        self, conn: ServerConnection, datagram: UdpDatagram, timeout: float
    ) -> None:
        def fire() -> None:
            if conn.state is not ConnState.AWAIT_CLIENT:
                return
            if conn.retransmits_done >= conn.max_retransmits:
                conn.state = ConnState.CLOSED
                self._drop_connection(conn)
                self._count("flights_abandoned")
                if self._tracer.enabled:
                    self._tracer.emit(
                        CAT_RECOVERY,
                        "flight_abandoned",
                        time=self.loop.now,
                        cid=conn.scid.hex(),
                        retransmits=conn.retransmits_done,
                    )
                return
            conn.retransmits_done += 1
            self.stats.retransmissions += 1
            self._count("retransmissions")
            if self._tracer.enabled:
                self._tracer.emit(
                    CAT_RECOVERY,
                    "rto_fired",
                    time=self.loop.now,
                    cid=conn.scid.hex(),
                    attempt=conn.retransmits_done,
                    timeout=round(timeout, 6),
                )
            self._send_flight(conn, datagram)
            self._schedule_retransmit(conn, datagram, timeout * self.profile.rto_backoff)

        conn.retransmit_event = self.loop.schedule(timeout, fire)

    def _drop_connection(self, conn: ServerConnection) -> None:
        self._by_scid.pop(conn.scid, None)
        for issued in conn.issued_cids:
            self._by_scid.pop(issued, None)
        self._by_origin.pop((conn.client_ip, conn.client_port, conn.original_dcid), None)
        if conn.retransmit_event is not None:
            conn.retransmit_event.cancel()
            conn.retransmit_event = None

    # --------------------------------------------------------- flight build
    def _server_hello_bytes(self, conn: ServerConnection) -> bytes:
        params = TransportParameters()
        params.set(INITIAL_SOURCE_CONNECTION_ID, conn.scid)
        params.set(MAX_IDLE_TIMEOUT, int(self.profile.idle_timeout * 1000))
        params.set(MAX_UDP_PAYLOAD_SIZE, 1472)
        params.set(ACTIVE_CONNECTION_ID_LIMIT, 4)
        rng = conn.rng if conn.rng is not None else self.rng
        hello = ServerHello(
            random=rng.getrandbits(256).to_bytes(32, "big"),
            quic_transport_parameters=params.encode(),
        )
        return encode_handshake(hello)

    def _handshake_crypto(self) -> bytes:
        if self.certificate is None:
            return CERT_MAGIC + (0).to_bytes(2, "big")
        raw = self.certificate.encode()
        return CERT_MAGIC + len(raw).to_bytes(2, "big") + raw

    def _handshake_payload_bytes(self) -> bytes:
        """The (engine-constant) Handshake CRYPTO payload, encoded once."""
        if self._handshake_payload is None:
            self._handshake_payload = encode_frames(
                [CryptoFrame(offset=0, data=self._handshake_crypto())]
            )
        return self._handshake_payload

    def _send_flight(self, conn: ServerConnection, request: UdpDatagram) -> None:
        if self._prof is None:
            self._send_flight_inner(conn, request)
            return
        with self._obs.span(
            "engine.flight",
            time=self.loop.now,
            profile=self.profile.name,
            cid=conn.scid.hex(),
            coalesced=conn.coalesced,
        ) as span:
            self._send_flight_inner(conn, request, span)

    def _send_flight_inner(
        self, conn: ServerConnection, request: UdpDatagram, span=None
    ) -> None:
        if hotpath.enabled:
            flight = conn.flight_layout
            if flight is None:
                key = (conn.version, len(conn.client_cid), len(conn.scid), conn.coalesced)
                layout = self._flight_layouts.get(key)
                if layout is None:
                    layout = self._flight_layouts[key] = _FlightLayout(self, *key)
                flight = conn.flight_layout = layout.bind(conn)
            rng = conn.rng if conn.rng is not None else self.rng
            datagrams = flight.datagrams(conn, rng)
        else:
            datagrams = self._flight_datagrams_rebuild(conn)
        profile = self.profile
        lengths = [len(data) for data in datagrams]
        for data in datagrams:
            self._reply(request, conn.vip, data)
        if span is not None:
            span.note(packets=len(lengths), bytes=sum(lengths))
        self.stats.flights_sent += 1
        self._count("flights_sent")
        if self._m_datagrams is not None:
            key = (profile.name,)
            self._m_datagrams.inc_key(key, len(lengths))
            self._m_flight_bytes.inc_key(key, sum(lengths))
            for length in lengths:
                self._m_datagram_bytes.observe_key(key, length)
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_TRANSPORT,
                "packet_sent",
                time=self.loop.now,
                kind="handshake_flight",
                cid=conn.scid.hex(),
                dst_ip=request.src_ip,
                coalesced=conn.coalesced,
            )
            self._tracer.emit(
                CAT_TRANSPORT,
                "datagrams_sent",
                time=self.loop.now,
                cid=conn.scid.hex(),
                coalesced=conn.coalesced,
                lengths=lengths,
                bytes=sum(lengths),
                packets=2,
            )

    def _flight_datagrams_rebuild(self, conn: ServerConnection) -> list[bytes]:
        """Frame-by-frame reference flight (parity baseline for layouts)."""
        initial_payload = encode_frames(
            [
                AckFrame(largest_acked=0, ranges=(AckRange(0, 0),)),
                CryptoFrame(offset=0, data=self._server_hello_bytes(conn)),
            ]
        )
        handshake_payload = encode_frames(
            [CryptoFrame(offset=0, data=self._handshake_crypto())]
        )
        initial_pkt = LongHeaderPacket(
            packet_type=PacketType.INITIAL,
            version=conn.version,
            dcid=conn.client_cid,
            scid=conn.scid,
            packet_number=conn.next_packet_number,
            payload=initial_payload,
            pn_length=1,
        )
        handshake_pkt = LongHeaderPacket(
            packet_type=PacketType.HANDSHAKE,
            version=conn.version,
            dcid=conn.client_cid,
            scid=conn.scid,
            packet_number=conn.next_packet_number + 1,
            payload=handshake_payload,
            pn_length=1,
        )
        conn.next_packet_number += 2
        profile = self.profile
        if conn.coalesced:
            return [
                encode_datagram(
                    [initial_pkt, handshake_pkt],
                    conn.protection,
                    is_server=True,
                    pad_to=profile.coalesced_datagram_size,
                )
            ]
        return [
            encode_datagram(
                [initial_pkt],
                conn.protection,
                is_server=True,
                pad_to=profile.initial_datagram_size,
            ),
            encode_datagram(
                [handshake_pkt],
                conn.protection,
                is_server=True,
                pad_to=profile.handshake_datagram_size,
            ),
        ]

    def _send_version_negotiation(self, request: UdpDatagram, parsed) -> None:
        packet = VersionNegotiationPacket(
            dcid=parsed.scid,
            scid=parsed.dcid,
            supported_versions=self.profile.supported_versions,
        )
        self._reply(request, request.dst_ip, encode_version_negotiation(packet))
        self.stats.version_negotiations += 1
        self._count("version_negotiations")
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_SECURITY,
                "version_negotiation_sent",
                time=self.loop.now,
                offered="0x%08x" % parsed.version,
                dst_ip=request.src_ip,
            )

    def _send_retry(
        self, request: UdpDatagram, parsed, rng: random.Random | None = None
    ) -> None:
        if rng is None:
            rng = self._derive_rng(request.src_ip, request.src_port, parsed.dcid)
        context = CidContext(
            host_id=self.host_id,
            worker_id=self.worker_id,
            process_id=self.process_id,
            client_dcid=parsed.dcid,
        )
        scid = self.profile.cid_scheme.generate(rng, context)
        token = b"retry-" + rng.getrandbits(64).to_bytes(8, "big")
        packet = RetryPacket(
            version=parsed.version, dcid=parsed.scid, scid=scid, retry_token=token
        )
        self._reply(request, request.dst_ip, encode_retry(packet))
        self.stats.retries_sent += 1
        self._count("retries_sent")
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_SECURITY,
                "retry_sent",
                time=self.loop.now,
                scid=scid.hex(),
                dst_ip=request.src_ip,
            )

    def _reply(self, request: UdpDatagram, vip: int, payload: bytes) -> None:
        self._send(
            UdpDatagram(
                src_ip=vip,
                dst_ip=request.src_ip,
                src_port=request.dst_port,
                dst_port=request.src_port,
                payload=payload,
            )
        )
