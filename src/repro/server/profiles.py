"""Deployment profiles encoding each hypergiant's observable QUIC behaviour.

Values follow the paper's measurements (Tables 1, 3, 4 and Figures 3, 4, 7):

===================  ==========  ==========  ==========
Feature              Cloudflare  Facebook    Google
===================  ==========  ==========  ==========
Coalescence          rare (~6%)  never       usual (~69% of flights)
Server-chosen IDs    yes         yes         no (echoes client DCID)
Structured SCIDs     yes (20 B)  yes (mvfst) no
Initial RTO          1.0 s       0.4 s       0.3 s
Max retransmissions  3-6         7-9         3-6
LB routing           5-tuple     5-tuple     CID-aware
===================  ==========  ==========  ==========

Packet/datagram sizes are synthetic but fixed per profile so that Figure 7's
"distinct length patterns per hypergiant" reproduces; the exact byte values
are documented here and in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.quic.cid.base import CidScheme, RandomScheme
from repro.quic.cid.cloudflare import CloudflareScheme
from repro.quic.cid.google import GoogleEchoScheme
from repro.quic.cid.mvfst import MvfstScheme
from repro.quic.version import DRAFT_29, GQUIC_Q050, MVFST_1, MVFST_2, QUIC_V1

#: LB routing modes.  5-tuple and CID-aware are observed in the wild
#: (paper §4.3); QUIC-LB is the IETF draft the paper's outlook discusses —
#: routable CIDs that encode the backend explicitly.
ROUTE_5TUPLE = "5-tuple"
ROUTE_CID = "cid-aware"
ROUTE_QUIC_LB = "quic-lb"


@dataclass
class ServerProfile:
    """Everything a simulated QUIC deployment needs to behave like a stack."""

    name: str
    cid_scheme: CidScheme
    #: Versions the server accepts (first entry is what it prefers).
    supported_versions: tuple[int, ...] = (QUIC_V1.value,)
    #: Probability that a response flight coalesces Initial+Handshake into
    #: one datagram (0.0 = never, like mvfst; ~0.69 reproduces Google's
    #: packet shares in Table 3).
    coalesce_probability: float = 0.0
    #: Retransmission timer: first timeout, exponential base, and the
    #: inclusive range from which each server instance draws its maximum
    #: number of retransmissions.
    initial_rto: float = 0.5
    rto_backoff: float = 2.0
    max_retransmits: tuple[int, int] = (3, 6)
    #: Idle lifetime of established connection state — the paper observes
    #: ~240 s at Google via follow-up-handshake failures.
    idle_timeout: float = 60.0
    #: UDP payload targets (QUIC bytes per datagram) for the server flight.
    initial_datagram_size: int = 1200
    handshake_datagram_size: int = 1200
    coalesced_datagram_size: int = 1252
    #: How the fabric routes packets to L7LBs.
    routing: str = ROUTE_5TUPLE
    #: Small-probability behaviours rounding out Table 3.
    zero_rtt_probability: float = 0.0
    retry_probability: float = 0.0
    #: Packet protection suite name ("fast" for bulk simulation).
    protection_suite: str = "fast"
    #: Workers (processes) per L7LB host; mvfst encodes the worker ID.
    workers_per_host: int = 2

    def draw_max_retransmits(self, rng: random.Random) -> int:
        low, high = self.max_retransmits
        return rng.randint(low, high)

    def rto_schedule(self, max_retransmits: int) -> list[float]:
        """Offsets (seconds since first flight) of every retransmission."""
        offsets = []
        elapsed = 0.0
        timeout = self.initial_rto
        for _ in range(max_retransmits):
            elapsed += timeout
            offsets.append(elapsed)
            timeout *= self.rto_backoff
        return offsets


def cloudflare_profile(colo_id: int = 1) -> ServerProfile:
    """Cloudflare: 20-byte structured SCIDs, 1 s RTO, rare coalescence."""
    return ServerProfile(
        name="Cloudflare",
        cid_scheme=CloudflareScheme(colo_id=colo_id),
        supported_versions=(QUIC_V1.value, DRAFT_29.value),
        coalesce_probability=0.064,
        initial_rto=1.0,
        max_retransmits=(3, 6),
        idle_timeout=180.0,
        initial_datagram_size=1200,
        handshake_datagram_size=1242,
        coalesced_datagram_size=1242,
        routing=ROUTE_5TUPLE,
    )


def facebook_profile(cid_version: int = 1) -> ServerProfile:
    """Facebook mvfst: structured 8-byte SCIDs, 0.4 s RTO, no coalescence."""
    return ServerProfile(
        name="Facebook",
        cid_scheme=MvfstScheme(cid_version=cid_version),
        supported_versions=(QUIC_V1.value, MVFST_2.value, MVFST_1.value),
        coalesce_probability=0.0,
        initial_rto=0.4,
        max_retransmits=(7, 9),
        idle_timeout=60.0,
        initial_datagram_size=1200,
        handshake_datagram_size=1232,
        routing=ROUTE_5TUPLE,
        workers_per_host=4,
    )


def google_profile() -> ServerProfile:
    """Google: echoed client DCIDs, 0.3 s RTO, heavy coalescence, CID-aware LB."""
    return ServerProfile(
        name="Google",
        cid_scheme=GoogleEchoScheme(),
        # Q050: Google still served legacy gQUIC alongside v1 in 2022 —
        # the main contributor to Table 2's server-side "others" bucket.
        supported_versions=(QUIC_V1.value, DRAFT_29.value, GQUIC_Q050.value),
        coalesce_probability=0.69,
        initial_rto=0.3,
        max_retransmits=(3, 6),
        idle_timeout=240.0,
        initial_datagram_size=1200,
        handshake_datagram_size=1052,
        coalesced_datagram_size=1252,
        routing=ROUTE_CID,
        zero_rtt_probability=0.005,
    )


def quic_lb_profile() -> ServerProfile:
    """A hypothetical deployment of the IETF QUIC-LB draft (§5 outlook).

    Routable CIDs carry an explicit server ID, so the fabric can route
    *any* CID the deployment minted — including rotated ones — back to the
    right L7LB.  Used by the migration ablation bench.
    """
    from repro.quic.cid.quic_lb import QuicLbConfig, QuicLbScheme

    return ServerProfile(
        name="QuicLB",
        cid_scheme=QuicLbScheme(
            config=QuicLbConfig(config_rotation=1, server_id_length=2, nonce_length=5)
        ),
        supported_versions=(QUIC_V1.value,),
        coalesce_probability=0.5,
        initial_rto=0.3,
        max_retransmits=(3, 5),
        idle_timeout=120.0,
        routing=ROUTE_QUIC_LB,
        # QUIC-LB CIDs identify the *host*; intra-host dispatch would use a
        # shared CID table, modelled here as a single worker per host.
        workers_per_host=1,
    )


#: Canonical instances used throughout tests and scenarios.
CLOUDFLARE_PROFILE = cloudflare_profile()
FACEBOOK_PROFILE = facebook_profile()
GOOGLE_PROFILE = google_profile()


def _generic_cid_scheme(rng: random.Random, cid_length: int):
    """CID scheme mix for non-hypergiant stacks.

    Besides purely random IDs, real small stacks use fixed lead bytes
    (build tags, config epochs) or small counters.  Both can *collide* with
    mvfst's bit layout, which is precisely what gives the paper's SCID-only
    off-net classifier its false positives (Table 6).
    """
    from repro.quic.cid.base import FixedPrefixScheme

    roll = rng.random()
    if cid_length != 8 or roll < 0.57:
        return RandomScheme(length=cid_length)
    if roll < 0.97:
        # Fixed 3-byte lead: 1/4 of these land in mvfst's version-1 space.
        prefix = rng.getrandbits(24).to_bytes(3, "big")
        return FixedPrefixScheme(length=cid_length, prefix=prefix)
    # Counter-style low lead bytes: parse as mvfst v1 with a low host ID.
    prefix = bytes([0x40 | rng.randrange(4), 0x00, rng.randrange(0x20)])
    return FixedPrefixScheme(length=cid_length, prefix=prefix)


def generic_profile(
    name: str,
    rng: random.Random,
    cid_length: int | None = None,
) -> ServerProfile:
    """A randomized profile for "Remaining" (non-hypergiant) servers.

    Draws an RTO, retransmission budget, CID length, and sizes from ranges
    that cover the diversity of smaller stacks in telescope data (Table 4
    notes occasional 4/12/14/20-byte SCIDs among mostly 8-byte ones).
    """
    if cid_length is None:
        cid_length = rng.choices([8, 4, 12, 14, 20], weights=[180, 1, 1, 1, 1])[0]
    return ServerProfile(
        name=name,
        cid_scheme=_generic_cid_scheme(rng, cid_length),
        supported_versions=(
            (QUIC_V1.value, DRAFT_29.value)
            if rng.random() < 0.85
            else (DRAFT_29.value,)
        ),
        coalesce_probability=rng.choice([0.0, 0.0, 0.1, 0.5]),
        initial_rto=rng.choice([0.2, 0.25, 0.4, 0.5, 0.5, 1.0]),
        max_retransmits=(low := rng.randint(2, 6), min(low + rng.randint(0, 3), 9)),
        idle_timeout=rng.choice([30.0, 60.0, 120.0]),
        initial_datagram_size=1200,
        handshake_datagram_size=rng.choice([900, 1100, 1200, 1350]),
        coalesced_datagram_size=rng.choice([1252, 1357]),
        routing=ROUTE_5TUPLE,
        retry_probability=0.0005,
    )
