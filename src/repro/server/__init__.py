"""Hypergiant QUIC server fabric: stacks, profiles, and load balancers.

The observable behaviours the paper measures — SCID structure, packet
coalescence, padding, retransmission schedules, 5-tuple vs CID-aware
routing — are configured per deployment through
:class:`~repro.server.profiles.ServerProfile` and executed by
:class:`~repro.server.engine.QuicServerEngine` instances running behind the
load-balancer fabric in :mod:`repro.server.lb`.
"""

from repro.server.profiles import (
    CLOUDFLARE_PROFILE,
    FACEBOOK_PROFILE,
    GOOGLE_PROFILE,
    ServerProfile,
    generic_profile,
)
from repro.server.engine import QuicServerEngine
from repro.server.lb.cluster import FrontendCluster
from repro.server.simple import SimpleQuicServer

__all__ = [
    "ServerProfile",
    "CLOUDFLARE_PROFILE",
    "FACEBOOK_PROFILE",
    "GOOGLE_PROFILE",
    "generic_profile",
    "QuicServerEngine",
    "FrontendCluster",
    "SimpleQuicServer",
]
