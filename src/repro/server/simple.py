"""A standalone QUIC server: one host, no LB fabric in front.

Used for "Remaining" (non-hypergiant) deployments and for hypergiant
*off-net* caches, which the paper models as few hosts with low host IDs
placed inside ISP networks.
"""

from __future__ import annotations

import random

from repro.netstack.addr import Prefix
from repro.netstack.udp import UdpDatagram
from repro.obs import Observability
from repro.server.lb.l7lb import L7LbHost
from repro.server.profiles import ServerProfile
from repro.simnet.eventloop import EventLoop
from repro.simnet.network import Device
from repro.tls.certs import Certificate


class SimpleQuicServer(Device):
    """One QUIC server answering for one address (or a small prefix)."""

    def __init__(
        self,
        name: str,
        address: int,
        profile: ServerProfile,
        loop: EventLoop,
        rng: random.Random,
        host_id: int = 0,
        certificate: Certificate | None = None,
        prefix_length: int = 32,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(name)
        self.address = address
        self.profile = profile
        self._prefix = Prefix(address & _mask(prefix_length), prefix_length)
        self.host = L7LbHost(
            host_id=host_id,
            profile=profile,
            loop=loop,
            rng=rng,
            send=self.send,
            certificate=certificate,
            address=address,
            obs=obs,
        )

    def prefixes(self) -> list[Prefix]:
        return [self._prefix]

    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        dcid = _extract_dcid(datagram, self.profile.cid_scheme.length)
        self.host.handle(datagram, dcid, now)


def _mask(length: int) -> int:
    return ((1 << length) - 1) << (32 - length) if length else 0


def _extract_dcid(datagram: UdpDatagram, cid_length: int) -> bytes:
    from repro.quic.packet import FORM_BIT, PacketParseError, parse_long_header

    payload = datagram.payload
    if not payload:
        return b""
    if not payload[0] & FORM_BIT:
        # 1-RTT: slice at the deployment's configured CID length.
        return payload[1 : 1 + cid_length] if len(payload) > cid_length else b""
    try:
        return parse_long_header(payload).dcid
    except PacketParseError:
        return b""
