"""Versioned on-disk format for :class:`CaptureTable` (`.capidx` sidecar).

Layout (all integers little-endian):

=========  =====================================================
bytes      contents
=========  =====================================================
0..7       magic ``b"RQCAPIDX"``
8..11      schema version (u32)
12..15     header length (u32)
16..       header: UTF-8 JSON (source fingerprint, stats, origins,
           column descriptors, blake2b of the payload)
..         payload: column bytes concatenated in descriptor order
=========  =====================================================

The header carries everything needed to validate before touching the
payload: a schema version for forward evolution, the source pcap
fingerprint (size + mtime_ns + content hash) for cache invalidation, and
a blake2b checksum of the payload against torn writes.  Writes go
through a temp file + ``os.replace`` so a crashed build never leaves a
half-written sidecar that a later run would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from array import array
from dataclasses import dataclass
from typing import Optional

from repro.capstore.table import (
    OFFSET_COLUMNS,
    PACKET_COLUMNS,
    ROW_COLUMNS,
    CaptureTable,
)
from repro.telescope.classify import SanitizationStats

MAGIC = b"RQCAPIDX"
SCHEMA_VERSION = 1

#: Fields of SanitizationStats persisted in the header (the derived
#: ``removed``/``removed_share`` properties are recomputed on load).
STATS_FIELDS = (
    "total_records",
    "non_udp",
    "non_port_443",
    "failed_dissection",
    "acknowledged_scanner",
    "backscatter",
    "scans",
)


class CapIndexError(ValueError):
    """Raised on malformed, truncated, or checksum-failing .capidx files."""


@dataclass
class IndexPayload:
    """A deserialized sidecar: the table plus its provenance."""

    table: CaptureTable
    stats: SanitizationStats
    source: dict
    pipeline: dict
    schema_version: int = SCHEMA_VERSION


def _columns(table: CaptureTable) -> list:
    """(name, array) pairs in canonical serialization order."""
    named = [
        (name, getattr(table, name))
        for name, _ in ROW_COLUMNS + PACKET_COLUMNS + OFFSET_COLUMNS
    ]
    named.append(("sv_values", table.sv_values))
    return named


def dumps_index(
    table: CaptureTable,
    stats: SanitizationStats,
    source: Optional[dict] = None,
    pipeline: Optional[dict] = None,
) -> bytes:
    """Serialize a table (+stats, +source fingerprint) to .capidx bytes."""
    columns = _columns(table)
    payload_parts = [column.tobytes() for _name, column in columns]
    payload_parts.append(bytes(table.blob))
    payload = b"".join(payload_parts)
    header = {
        "byteorder": sys.byteorder,
        "rows": table.num_rows,
        "packets": table.num_packets,
        "origins": table.origins,
        "stats": {field: getattr(stats, field) for field in STATS_FIELDS},
        "source": source or {},
        "pipeline": pipeline or {},
        "columns": [
            {"name": name, "typecode": column.typecode, "count": len(column)}
            for name, column in columns
        ]
        + [{"name": "blob", "typecode": "B", "count": len(table.blob)}],
        "payload_blake2b": hashlib.blake2b(payload, digest_size=16).hexdigest(),
    }
    header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    return b"".join(
        (
            MAGIC,
            SCHEMA_VERSION.to_bytes(4, "little"),
            len(header_bytes).to_bytes(4, "little"),
            header_bytes,
            payload,
        )
    )


def dump_index(
    path: str,
    table: CaptureTable,
    stats: SanitizationStats,
    source: Optional[dict] = None,
    pipeline: Optional[dict] = None,
) -> None:
    """Atomically write the sidecar: temp file in the same dir + rename."""
    blob = dumps_index(table, stats, source=source, pipeline=pipeline)
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp_path, "wb") as fileobj:
        fileobj.write(blob)
    os.replace(tmp_path, path)


def read_header(path: str) -> dict:
    """Parse only the JSON header (cheap inspection, no payload read)."""
    with open(path, "rb") as fileobj:
        prefix = fileobj.read(16)
        if len(prefix) < 16 or prefix[:8] != MAGIC:
            raise CapIndexError("%s: not a .capidx file (bad magic)" % path)
        schema = int.from_bytes(prefix[8:12], "little")
        if schema != SCHEMA_VERSION:
            raise CapIndexError(
                "%s: unsupported schema version %d (expected %d)"
                % (path, schema, SCHEMA_VERSION)
            )
        header_len = int.from_bytes(prefix[12:16], "little")
        header_bytes = fileobj.read(header_len)
        if len(header_bytes) < header_len:
            raise CapIndexError("%s: truncated header" % path)
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise CapIndexError("%s: corrupt header (%s)" % (path, exc)) from exc
    header["_schema_version"] = schema
    return header


def load_index(path: str) -> IndexPayload:
    """Read, checksum-verify, and deserialize a sidecar."""
    with open(path, "rb") as fileobj:
        prefix = fileobj.read(16)
        if len(prefix) < 16 or prefix[:8] != MAGIC:
            raise CapIndexError("%s: not a .capidx file (bad magic)" % path)
        schema = int.from_bytes(prefix[8:12], "little")
        if schema != SCHEMA_VERSION:
            raise CapIndexError(
                "%s: unsupported schema version %d (expected %d)"
                % (path, schema, SCHEMA_VERSION)
            )
        header_len = int.from_bytes(prefix[12:16], "little")
        header_bytes = fileobj.read(header_len)
        if len(header_bytes) < header_len:
            raise CapIndexError("%s: truncated header" % path)
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise CapIndexError("%s: corrupt header (%s)" % (path, exc)) from exc
        payload = fileobj.read()
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    if digest != header.get("payload_blake2b"):
        raise CapIndexError("%s: payload checksum mismatch" % path)

    table = CaptureTable()
    swap = header.get("byteorder", sys.byteorder) != sys.byteorder
    cursor = 0
    for descriptor in header["columns"]:
        name = descriptor["name"]
        count = descriptor["count"]
        if name == "blob":
            table.blob = bytearray(payload[cursor : cursor + count])
            cursor += count
            continue
        column = array(descriptor["typecode"])
        nbytes = count * column.itemsize
        if cursor + nbytes > len(payload):
            raise CapIndexError("%s: truncated column %s" % (path, name))
        column.frombytes(payload[cursor : cursor + nbytes])
        if swap:
            column.byteswap()
        cursor += nbytes
        setattr(table, name, column)
    table.origins = list(header["origins"])
    table.rebuild_origin_index()
    if table.num_rows != header["rows"] or table.num_packets != header["packets"]:
        raise CapIndexError("%s: column counts disagree with header" % path)
    stats = SanitizationStats(**header["stats"])
    return IndexPayload(
        table=table,
        stats=stats,
        source=header.get("source", {}),
        pipeline=header.get("pipeline", {}),
        schema_version=schema,
    )
