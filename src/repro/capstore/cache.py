"""Transparent sidecar caching: dissect once, analyze many times.

:func:`load_or_build` is the analysis plane's single entry point.  On a
cache miss it streams the pcap through the dissection pipeline (serial
or parallel, see ``repro.capstore.build``) and writes the ``.capidx``
sidecar next to the pcap; on a hit it deserializes columns straight from
disk — no UDP decoding, no QUIC dissection, no AEAD validation.

Validity is judged against a source fingerprint stored in the sidecar
header: file size first (cheapest), then mtime_ns (a match lets us skip
hashing the pcap), with a blake2b content hash as the authoritative
check when the mtime moved — so a rewritten capture invalidates even
with a back-dated timestamp, and a merely-touched file still hits.

The fingerprint also records the *prefix* the index covers —
``indexed_bytes`` (how far into the pcap the dissection ran),
``prefix_blake2b`` (content hash of exactly those bytes), and
``records`` (how many records they held).  A capture that *grew* —
the live-telescope case: a pcap being appended to while analyses run —
revalidates against the prefix hash and only the appended tail is
dissected (result ``extended``), instead of the former full rebuild on
any size change.  A rewritten or truncated pcap still fails the prefix
check and rebuilds from scratch.

Everything is wired through ``repro.obs``: ``index.load``/``index.build``
/``index.extend`` stage timers, a ``capstore.cache``
hit/extended/stale/miss counter, and ``capstore.rows`` row counts per
class.
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.capstore.build import (
    build_capture_table,
    build_from_records,
    default_acknowledged,
    default_asdb,
    emit_stats_counters,
)
from repro.capstore.format import (
    CapIndexError,
    IndexPayload,
    dump_index,
    load_index,
)
from repro.capstore.table import ClassifiedView
from repro.netstack.pcap import PcapError, iter_pcap_range, scan_pcap_tail
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_CAPSTORE

#: Pipeline identity recorded in the sidecar; a cache entry built with a
#: different classification setup must not satisfy a default-pipeline read.
DEFAULT_PIPELINE = {"asdb": "default", "acknowledged": "default", "validate_crypto_scans": True}


def sidecar_path(pcap_path: str) -> str:
    return pcap_path + ".capidx"


def pcap_fingerprint(pcap_path: str, with_hash: bool = True) -> dict:
    """Identity of the source pcap: size, mtime_ns, blake2b content hash."""
    stat = os.stat(pcap_path)
    fingerprint = {"size": stat.st_size, "mtime_ns": stat.st_mtime_ns}
    if with_hash:
        digest = hashlib.blake2b(digest_size=16)
        with open(pcap_path, "rb") as fileobj:
            for chunk in iter(lambda: fileobj.read(1 << 20), b""):
                digest.update(chunk)
        fingerprint["blake2b"] = digest.hexdigest()
    return fingerprint


def prefix_fingerprint(
    pcap_path: str, indexed_bytes: int, records: Optional[int] = None
) -> dict:
    """Source fingerprint extended with prefix coverage, in one read pass.

    Adds to :func:`pcap_fingerprint`'s size/mtime/full-hash triple:
    ``indexed_bytes`` (the byte offset the dissection covered — one past
    the last complete record at build time), ``prefix_blake2b`` (hash of
    exactly those bytes), and ``records`` (record count in the prefix).
    Both digests come from a single sequential read of the file.
    """
    stat = os.stat(pcap_path)
    prefix_digest = hashlib.blake2b(digest_size=16)
    full_digest = hashlib.blake2b(digest_size=16)
    remaining = indexed_bytes
    with open(pcap_path, "rb") as fileobj:
        for chunk in iter(lambda: fileobj.read(1 << 20), b""):
            full_digest.update(chunk)
            if remaining > 0:
                prefix_digest.update(chunk[:remaining])
                remaining -= min(remaining, len(chunk))
    fingerprint = {
        "size": stat.st_size,
        "mtime_ns": stat.st_mtime_ns,
        "blake2b": full_digest.hexdigest(),
        "indexed_bytes": indexed_bytes,
        "prefix_blake2b": prefix_digest.hexdigest(),
    }
    if records is not None:
        fingerprint["records"] = records
    return fingerprint


def fingerprint_matches(stored: dict, pcap_path: str) -> bool:
    """Is a stored fingerprint still valid for the pcap on disk?"""
    if not stored:
        return False
    current = pcap_fingerprint(pcap_path, with_hash=False)
    if stored.get("size") != current["size"]:
        return False
    if stored.get("mtime_ns") == current["mtime_ns"]:
        return True  # unchanged inode metadata: trust without re-hashing
    return stored.get("blake2b") == pcap_fingerprint(pcap_path)["blake2b"]


def prefix_matches(stored: dict, pcap_path: str) -> bool:
    """Does the pcap on disk still start with the indexed prefix?

    A *grown* capture passes (only the tail needs dissection); a
    rewritten or truncated one fails.  Sidecars written before the
    prefix fields existed fall back to their whole-file values —
    ``indexed_bytes`` defaults to the stored size and ``prefix_blake2b``
    to the full-content hash, which is exactly the prefix hash when the
    index covered the whole file.
    """
    if not stored:
        return False
    indexed = stored.get("indexed_bytes", stored.get("size"))
    prefix_hash = stored.get("prefix_blake2b", stored.get("blake2b"))
    if indexed is None or prefix_hash is None:
        return False
    stat = os.stat(pcap_path)
    if stat.st_size < indexed:
        return False  # truncated below the indexed prefix
    if (
        stat.st_size == stored.get("size")
        and stat.st_mtime_ns == stored.get("mtime_ns")
    ):
        return True  # unchanged inode metadata: the prefix is untouched
    digest = hashlib.blake2b(digest_size=16)
    remaining = indexed
    with open(pcap_path, "rb") as fileobj:
        while remaining > 0:
            chunk = fileobj.read(min(1 << 20, remaining))
            if not chunk:
                return False
            digest.update(chunk)
            remaining -= len(chunk)
    return digest.hexdigest() == prefix_hash


@dataclass
class CacheResult:
    """Outcome of :func:`load_or_build_ex`.

    ``status`` is ``"hit"`` (sidecar covered the file as-is),
    ``"extended"`` (valid prefix; only the grown tail was dissected), or
    ``"miss"`` (full build — including after a stale sidecar).
    ``indexed_bytes`` is how far into the pcap the returned view covers:
    the end of the last complete record, which trails the file size while
    a writer is mid-append.
    """

    view: ClassifiedView
    status: str
    indexed_bytes: int


def load_or_build(
    pcap_path: str,
    workers: int = 1,
    use_cache: bool = True,
    obs: Optional[Observability] = None,
    validate_crypto_scans: bool = True,
) -> Tuple[ClassifiedView, bool]:
    """Return ``(view, cache_hit)`` for a pcap, building the index if needed.

    With ``use_cache`` (the default) a valid ``.capidx`` sidecar is loaded
    instead of dissecting, and a freshly built index is persisted for the
    next run; ``use_cache=False`` both ignores and skips writing the
    sidecar (the ``--no-cache`` escape hatch).  ``cache_hit`` is True only
    for a pure hit; see :func:`load_or_build_ex` for the richer status
    that distinguishes an incremental tail extension.
    """
    result = load_or_build_ex(
        pcap_path,
        workers=workers,
        use_cache=use_cache,
        obs=obs,
        validate_crypto_scans=validate_crypto_scans,
    )
    return result.view, result.status == "hit"


def load_or_build_ex(
    pcap_path: str,
    workers: int = 1,
    use_cache: bool = True,
    obs: Optional[Observability] = None,
    validate_crypto_scans: bool = True,
) -> CacheResult:
    """The streaming-aware cache entry point: hit, extend, or rebuild.

    The build (and extension) paths cover exactly the pcap's
    complete-record *prefix* — a capture still being appended to is
    indexed up to the last complete record, never through a torn tail —
    and the stored fingerprint records that coverage, so the next call
    dissects only what arrived since.
    """
    obs = obs or NULL_OBS
    metrics = obs.metrics
    tracer = obs.tracer
    cache_counter = (
        metrics.counter("capstore.cache", ("result",)) if metrics is not None else None
    )
    pipeline = dict(DEFAULT_PIPELINE)
    pipeline["validate_crypto_scans"] = validate_crypto_scans
    index_path = sidecar_path(pcap_path)

    if use_cache and os.path.exists(index_path):
        payload = _load_payload(index_path, pipeline, obs)
        if payload is not None:
            stored = payload.source
            indexed = stored.get("indexed_bytes", stored.get("size"))
            covers_whole_file = indexed == stored.get("size")
            if covers_whole_file and fingerprint_matches(stored, pcap_path):
                return _finish_hit(payload, index_path, indexed, obs, cache_counter)
            if prefix_matches(stored, pcap_path):
                tail_offsets, end = scan_pcap_tail(pcap_path, start=indexed)
                if not tail_offsets:
                    # Grown, but no *complete* new record yet (a writer is
                    # mid-append): the prefix view is still the full truth.
                    return _finish_hit(
                        payload, index_path, indexed, obs, cache_counter
                    )
                return _extend(
                    payload,
                    pcap_path,
                    index_path,
                    tail_offsets,
                    end,
                    pipeline,
                    validate_crypto_scans,
                    obs,
                    cache_counter,
                )
        if cache_counter is not None:
            cache_counter.inc_key(("stale",))

    if cache_counter is not None:
        cache_counter.inc_key(("miss",))
    # Snapshot the complete-record prefix *before* dissecting, so the
    # stored fingerprint describes exactly the bytes that were indexed
    # even if a writer appends concurrently.
    offsets, end = scan_pcap_tail(pcap_path)
    if not offsets and end > os.path.getsize(pcap_path):
        raise PcapError("truncated pcap global header")
    with obs.span("index.build", local=True, path=pcap_path, workers=workers):
        if metrics is not None:
            with metrics.time_block("index.build"):
                table, stats = build_capture_table(
                    pcap_path,
                    workers=workers,
                    validate_crypto_scans=validate_crypto_scans,
                    obs=obs,
                    offsets=offsets,
                )
        else:
            table, stats = build_capture_table(
                pcap_path,
                workers=workers,
                validate_crypto_scans=validate_crypto_scans,
                obs=obs,
                offsets=offsets,
            )
    payload = IndexPayload(table=table, stats=stats, source={}, pipeline=pipeline)
    _count_rows(payload, metrics)
    if tracer.enabled:
        tracer.emit(
            CAT_CAPSTORE,
            "index_built",
            path=pcap_path,
            rows=table.num_rows,
            workers=workers,
        )
    if use_cache:
        _write_sidecar(
            index_path,
            payload,
            prefix_fingerprint(pcap_path, end, records=stats.total_records),
        )
    return CacheResult(ClassifiedView(table, stats), "miss", end)


def _finish_hit(
    payload: IndexPayload,
    index_path: str,
    indexed: int,
    obs: Observability,
    cache_counter,
) -> CacheResult:
    if cache_counter is not None:
        cache_counter.inc_key(("hit",))
    _count_rows(payload, obs.metrics)
    emit_stats_counters(payload.stats, obs)
    if obs.tracer.enabled:
        obs.tracer.emit(
            CAT_CAPSTORE,
            "index_hit",
            path=index_path,
            rows=payload.table.num_rows,
        )
    return CacheResult(
        ClassifiedView(payload.table, payload.stats), "hit", indexed
    )


def _extend(
    payload: IndexPayload,
    pcap_path: str,
    index_path: str,
    tail_offsets: list,
    end: int,
    pipeline: dict,
    validate_crypto_scans: bool,
    obs: Observability,
    cache_counter,
) -> CacheResult:
    """Dissect only the grown tail, appending into the cached table."""
    metrics = obs.metrics
    if cache_counter is not None:
        cache_counter.inc_key(("extended",))
    prefix_rows = payload.table.num_rows
    # Counter parity with a full run: re-emit the prefix totals now, then
    # let the per-record pipeline add the tail increments.
    emit_stats_counters(payload.stats, obs)
    tail_records = iter_pcap_range(pcap_path, tail_offsets[0], len(tail_offsets))
    with obs.span(
        "index.extend", local=True, path=pcap_path, records=len(tail_offsets)
    ):
        if metrics is not None:
            with metrics.time_block("index.extend"):
                build_from_records(
                    tail_records,
                    asdb=default_asdb(),
                    acknowledged=default_acknowledged(),
                    validate_crypto_scans=validate_crypto_scans,
                    obs=obs,
                    table=payload.table,
                    stats=payload.stats,
                )
        else:
            build_from_records(
                tail_records,
                asdb=default_asdb(),
                acknowledged=default_acknowledged(),
                validate_crypto_scans=validate_crypto_scans,
                obs=obs,
                table=payload.table,
                stats=payload.stats,
            )
    _count_rows(payload, metrics)
    if obs.tracer.enabled:
        obs.tracer.emit(
            CAT_CAPSTORE,
            "index_extended",
            path=index_path,
            rows=payload.table.num_rows,
            new_rows=payload.table.num_rows - prefix_rows,
        )
    _write_sidecar(
        index_path,
        payload,
        prefix_fingerprint(pcap_path, end, records=payload.stats.total_records),
    )
    return CacheResult(
        ClassifiedView(payload.table, payload.stats), "extended", end
    )


def _write_sidecar(index_path: str, payload: IndexPayload, source: dict) -> None:
    payload.source = source
    try:
        dump_index(
            index_path,
            payload.table,
            payload.stats,
            source=source,
            pipeline=payload.pipeline,
        )
    except OSError as exc:  # read-only dir: analysis still proceeds
        print(
            "warning: could not write %s: %s" % (index_path, exc),
            file=sys.stderr,
        )


def _load_payload(
    index_path: str, pipeline: dict, obs: Observability
) -> Optional[IndexPayload]:
    """Load a sidecar + check pipeline identity; None on corruption/mismatch.

    Source-fingerprint classification (hit / extend / stale) happens in
    the caller, which needs the distinction; this helper only guarantees
    the payload is intact and was built by the same pipeline.
    """
    metrics = obs.metrics
    try:
        with obs.span("index.load", local=True, path=index_path):
            if metrics is not None:
                with metrics.time_block("index.load"):
                    payload = load_index(index_path)
            else:
                payload = load_index(index_path)
    except (CapIndexError, OSError):
        return None
    if payload.pipeline != pipeline:
        return None
    return payload


def _count_rows(payload: IndexPayload, metrics) -> None:
    if metrics is None:
        return
    rows = metrics.counter("capstore.rows", ("klass",))
    if payload.stats.backscatter:
        rows.inc_key(("backscatter",), payload.stats.backscatter)
    if payload.stats.scans:
        rows.inc_key(("scan",), payload.stats.scans)
