"""Transparent sidecar caching: dissect once, analyze many times.

:func:`load_or_build` is the analysis plane's single entry point.  On a
cache miss it streams the pcap through the dissection pipeline (serial
or parallel, see ``repro.capstore.build``) and writes the ``.capidx``
sidecar next to the pcap; on a hit it deserializes columns straight from
disk — no UDP decoding, no QUIC dissection, no AEAD validation.

Validity is judged against a source fingerprint stored in the sidecar
header: file size first (cheapest), then mtime_ns (a match lets us skip
hashing the pcap), with a blake2b content hash as the authoritative
check when the mtime moved — so a rewritten capture invalidates even
with a back-dated timestamp, and a merely-touched file still hits.

Everything is wired through ``repro.obs``: ``index.load``/``index.build``
stage timers, a ``capstore.cache`` hit/miss/stale counter, and
``capstore.rows`` row counts per class.
"""

from __future__ import annotations

import hashlib
import os
import sys
from typing import Optional, Tuple

from repro.capstore.build import (
    build_capture_table,
    default_acknowledged,
    default_asdb,
    emit_stats_counters,
)
from repro.capstore.format import (
    CapIndexError,
    IndexPayload,
    dump_index,
    load_index,
)
from repro.capstore.table import ClassifiedView
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_CAPSTORE

#: Pipeline identity recorded in the sidecar; a cache entry built with a
#: different classification setup must not satisfy a default-pipeline read.
DEFAULT_PIPELINE = {"asdb": "default", "acknowledged": "default", "validate_crypto_scans": True}


def sidecar_path(pcap_path: str) -> str:
    return pcap_path + ".capidx"


def pcap_fingerprint(pcap_path: str, with_hash: bool = True) -> dict:
    """Identity of the source pcap: size, mtime_ns, blake2b content hash."""
    stat = os.stat(pcap_path)
    fingerprint = {"size": stat.st_size, "mtime_ns": stat.st_mtime_ns}
    if with_hash:
        digest = hashlib.blake2b(digest_size=16)
        with open(pcap_path, "rb") as fileobj:
            for chunk in iter(lambda: fileobj.read(1 << 20), b""):
                digest.update(chunk)
        fingerprint["blake2b"] = digest.hexdigest()
    return fingerprint


def fingerprint_matches(stored: dict, pcap_path: str) -> bool:
    """Is a stored fingerprint still valid for the pcap on disk?"""
    if not stored:
        return False
    current = pcap_fingerprint(pcap_path, with_hash=False)
    if stored.get("size") != current["size"]:
        return False
    if stored.get("mtime_ns") == current["mtime_ns"]:
        return True  # unchanged inode metadata: trust without re-hashing
    return stored.get("blake2b") == pcap_fingerprint(pcap_path)["blake2b"]


def load_or_build(
    pcap_path: str,
    workers: int = 1,
    use_cache: bool = True,
    obs: Optional[Observability] = None,
    validate_crypto_scans: bool = True,
) -> Tuple[ClassifiedView, bool]:
    """Return ``(view, cache_hit)`` for a pcap, building the index if needed.

    With ``use_cache`` (the default) a valid ``.capidx`` sidecar is loaded
    instead of dissecting, and a freshly built index is persisted for the
    next run; ``use_cache=False`` both ignores and skips writing the
    sidecar (the ``--no-cache`` escape hatch).
    """
    obs = obs or NULL_OBS
    metrics = obs.metrics
    tracer = obs.tracer
    cache_counter = (
        metrics.counter("capstore.cache", ("result",)) if metrics is not None else None
    )
    pipeline = dict(DEFAULT_PIPELINE)
    pipeline["validate_crypto_scans"] = validate_crypto_scans
    index_path = sidecar_path(pcap_path)

    if use_cache and os.path.exists(index_path):
        payload = _try_load(index_path, pcap_path, pipeline, obs)
        if payload is not None:
            if cache_counter is not None:
                cache_counter.inc_key(("hit",))
            _count_rows(payload, metrics)
            emit_stats_counters(payload.stats, obs)
            if tracer.enabled:
                tracer.emit(
                    CAT_CAPSTORE,
                    "index_hit",
                    path=index_path,
                    rows=payload.table.num_rows,
                )
            return ClassifiedView(payload.table, payload.stats), True
        if cache_counter is not None:
            cache_counter.inc_key(("stale",))

    if cache_counter is not None:
        cache_counter.inc_key(("miss",))
    with obs.span("index.build", local=True, path=pcap_path, workers=workers):
        if metrics is not None:
            with metrics.time_block("index.build"):
                table, stats = build_capture_table(
                    pcap_path,
                    workers=workers,
                    validate_crypto_scans=validate_crypto_scans,
                    obs=obs,
                )
        else:
            table, stats = build_capture_table(
                pcap_path,
                workers=workers,
                validate_crypto_scans=validate_crypto_scans,
                obs=obs,
            )
    payload = IndexPayload(table=table, stats=stats, source={}, pipeline=pipeline)
    _count_rows(payload, metrics)
    if tracer.enabled:
        tracer.emit(
            CAT_CAPSTORE,
            "index_built",
            path=pcap_path,
            rows=table.num_rows,
            workers=workers,
        )
    if use_cache:
        try:
            dump_index(
                index_path,
                table,
                stats,
                source=pcap_fingerprint(pcap_path),
                pipeline=pipeline,
            )
        except OSError as exc:  # read-only dir: analysis still proceeds
            print(
                "warning: could not write %s: %s" % (index_path, exc),
                file=sys.stderr,
            )
    return ClassifiedView(table, stats), False


def _try_load(
    index_path: str, pcap_path: str, pipeline: dict, obs: Observability
) -> Optional[IndexPayload]:
    """Load + validate a sidecar; None on any mismatch or corruption."""
    metrics = obs.metrics
    try:
        with obs.span("index.load", local=True, path=index_path):
            if metrics is not None:
                with metrics.time_block("index.load"):
                    payload = load_index(index_path)
            else:
                payload = load_index(index_path)
    except (CapIndexError, OSError):
        return None
    if payload.pipeline != pipeline:
        return None
    if not fingerprint_matches(payload.source, pcap_path):
        return None
    return payload


def _count_rows(payload: IndexPayload, metrics) -> None:
    if metrics is None:
        return
    rows = metrics.counter("capstore.rows", ("klass",))
    if payload.stats.backscatter:
        rows.inc_key(("backscatter",), payload.stats.backscatter)
    if payload.stats.scans:
        rows.inc_key(("scan",), payload.stats.scans)
