"""Build :class:`CaptureTable` from pcaps: streaming, parallel, sharded.

Three entry points, all producing bit-identical tables for the same
record multiset:

* :func:`build_from_records` — one streaming dissection pass over any
  record iterable (the serial path, and the per-worker inner loop);
* :func:`build_capture_table` — row-group parallelism over one pcap: a
  cheap header-only offset scan splits the file into contiguous groups,
  a worker pool dissects each group, and the parent concatenates the
  partial tables in file order.  Classification is stateless per record
  (:func:`~repro.telescope.classify.classify_record`), so concatenation
  *is* the serial result;
* :func:`build_from_shards` — per-shard pcaps (as written by
  ``repro simulate --workers N`` before its merge): each shard is
  dissected in parallel, then rows are interleaved by streaming a k-way
  merge over the shard *record* streams with the same
  :func:`~repro.netstack.pcap.record_sort_key` discipline the simulator
  uses, so the result equals indexing the merged pcap.

Workers are handed *factory* callables for the AS database and the
acknowledged-scanner registry (must be module-level, hence picklable);
each worker builds its own instances instead of serializing them.
"""

from __future__ import annotations

import heapq
import multiprocessing
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.netstack.pcap import (
    PcapRecord,
    iter_pcap,
    iter_pcap_range,
    record_sort_key,
    scan_pcap_offsets,
)
from repro.obs import NULL_OBS, Observability
from repro.obs.progress import HeartbeatWriter
from repro.capstore.table import CaptureTable
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import (
    DROP_REASONS,
    PacketClass,
    SanitizationStats,
    SanitizeEmitter,
    classify_record,
)


def default_asdb() -> AsDatabase:
    """The CLI's AS database: hypergiants plus the scenario ISP networks."""
    from repro.workloads.scenario import ISP_NETWORKS

    asdb = AsDatabase.with_hypergiants()
    for asn, name, prefix in ISP_NETWORKS:
        asdb.register(prefix, AsEntry(asn, name, category="isp"))
    return asdb


def default_acknowledged() -> AcknowledgedScanners:
    """The CLI's acknowledged-scanner registry (paper's research scanners)."""
    from repro.workloads.scenario import RESEARCH_NETWORKS

    scanners = AcknowledgedScanners()
    for prefix, name in RESEARCH_NETWORKS:
        scanners.register(prefix, name)
    return scanners


def build_from_records(
    records: Iterable[PcapRecord],
    asdb: Optional[AsDatabase] = None,
    acknowledged: Optional[AcknowledgedScanners] = None,
    validate_crypto_scans: bool = True,
    obs: Optional[Observability] = None,
    kept_flags: Optional[bytearray] = None,
    progress: Optional[Callable[[int], None]] = None,
    table: Optional[CaptureTable] = None,
    stats: Optional[SanitizationStats] = None,
) -> Tuple[CaptureTable, SanitizationStats]:
    """One streaming dissection pass: records in, columnar table out.

    Emits the same ``sanitize.packets`` counters and ``sanitize:drop``
    trace events as :func:`~repro.telescope.classify.classify_capture`.
    ``kept_flags``, if given, receives one byte per input record (1 =
    kept as a row) — the alignment data :func:`build_from_shards` needs
    to interleave rows during its record-stream merge.  ``progress`` is
    called with the running record count every ~2048 records (heartbeat
    writers hook in here); with a profiler attached, each dissection is
    an ``index.record`` leaf stage.

    ``table``/``stats`` make the pass *append into* existing state
    instead of starting fresh — the streaming plane's extension path:
    feeding the tail records of a grown pcap into the table built from
    its prefix yields exactly the table a full pass would build, because
    rows are append-only and classification is stateless per record.
    """
    emitter = SanitizeEmitter(obs)
    prof = obs.prof if obs is not None else None
    if table is None:
        table = CaptureTable()
    if stats is None:
        stats = SanitizationStats()
    for record in records:
        stats.total_records += 1
        if progress is not None and not stats.total_records & 2047:
            progress(stats.total_records)
        if prof is None:
            captured, reason = classify_record(
                record,
                asdb=asdb,
                acknowledged=acknowledged,
                validate_crypto_scans=validate_crypto_scans,
            )
        else:
            node, start = prof.leaf_begin("index.record")
            captured, reason = classify_record(
                record,
                asdb=asdb,
                acknowledged=acknowledged,
                validate_crypto_scans=validate_crypto_scans,
            )
            prof.leaf_end(node, start, packets=1)
        if captured is None:
            setattr(stats, reason, getattr(stats, reason) + 1)
            emitter.drop(record, reason)
            if kept_flags is not None:
                kept_flags.append(0)
            continue
        table.append(captured)
        if captured.klass is PacketClass.BACKSCATTER:
            stats.backscatter += 1
        else:
            stats.scans += 1
        emitter.kept(captured.klass)
        if kept_flags is not None:
            kept_flags.append(1)
    return table, stats


def _merge_stats(parts: Sequence[SanitizationStats]) -> SanitizationStats:
    total = SanitizationStats()
    for part in parts:
        total.total_records += part.total_records
        for reason in DROP_REASONS:
            setattr(total, reason, getattr(total, reason) + getattr(part, reason))
        total.backscatter += part.backscatter
        total.scans += part.scans
    return total


def emit_stats_counters(stats: SanitizationStats, obs: Optional[Observability]) -> None:
    """Re-emit ``sanitize.packets`` counter values from stored stats.

    Parallel workers and cache hits skip the per-record pipeline, but the
    counter values are a pure function of the stats, so observability
    output stays identical to a serial in-process run (per-drop trace
    events are the one thing only the serial path produces).
    """
    obs = obs or NULL_OBS
    if obs.metrics is None:
        return
    counter = obs.metrics.counter("sanitize.packets", ("stage",))
    for reason in DROP_REASONS:
        value = getattr(stats, reason)
        if value:
            counter.inc_key((reason,), value)
    if stats.backscatter:
        counter.inc_key(("kept_backscatter",), stats.backscatter)
    if stats.scans:
        counter.inc_key(("kept_scan",), stats.scans)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the loaded modules); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context("spawn")


def _worker_build(payload: tuple):
    """Pool target: dissect one row group of one pcap into a partial table.

    With a ``progress_dir`` in the payload, the worker heartbeats its
    dissection progress there (stage ``index``) exactly like simulate's
    shard workers, so ``repro progress`` covers index builds too.
    """
    (
        path,
        offset,
        count,
        validate_crypto_scans,
        asdb_factory,
        ack_factory,
        want_flags,
        progress_dir,
        group_index,
    ) = payload
    kept_flags = bytearray() if want_flags else None
    heartbeat = (
        HeartbeatWriter(progress_dir, worker=group_index, total=count)
        if progress_dir
        else None
    )
    progress = None
    if heartbeat is not None:
        progress = lambda done: heartbeat.update("index", done=done, records=done)
        heartbeat.update("index")
    try:
        table, stats = build_from_records(
            iter_pcap_range(path, offset, count),
            asdb=asdb_factory() if asdb_factory else None,
            acknowledged=ack_factory() if ack_factory else None,
            validate_crypto_scans=validate_crypto_scans,
            kept_flags=kept_flags,
            progress=progress,
        )
        if heartbeat is not None:
            heartbeat.update(
                "done",
                done=stats.total_records,
                records=stats.total_records,
                final=True,
            )
    finally:
        if heartbeat is not None:
            heartbeat.close()
    return table, stats, kept_flags


def _row_groups(offsets: Sequence[int], workers: int) -> List[Tuple[int, int]]:
    """Split record offsets into ≤ ``workers`` contiguous (offset, count) groups."""
    total = len(offsets)
    groups: List[Tuple[int, int]] = []
    workers = max(1, min(workers, total))
    base, extra = divmod(total, workers)
    start = 0
    for index in range(workers):
        count = base + (1 if index < extra else 0)
        if count == 0:
            break
        groups.append((offsets[start], count))
        start += count
    return groups


def build_capture_table(
    pcap_path: str,
    workers: int = 1,
    validate_crypto_scans: bool = True,
    obs: Optional[Observability] = None,
    asdb_factory: Callable[[], AsDatabase] = default_asdb,
    ack_factory: Callable[[], AcknowledgedScanners] = default_acknowledged,
    progress_dir: Optional[str] = None,
    offsets: Optional[Sequence[int]] = None,
) -> Tuple[CaptureTable, SanitizationStats]:
    """Build the columnar table for one pcap, optionally in parallel.

    ``workers > 1`` splits the file into contiguous row groups and
    dissects them in a process pool; the concatenated result is exactly
    the serial table.  Factories must be module-level callables so they
    pickle into workers by reference.  ``progress_dir`` makes each
    row-group worker write live heartbeats there.

    ``offsets``, if given, is a precomputed record-offset list (e.g. the
    complete-record prefix of a still-growing capture from
    :func:`~repro.netstack.pcap.scan_pcap_tail`); only those records are
    dissected, and the strict whole-file scan is skipped.
    """
    obs = obs or NULL_OBS
    if workers <= 1:
        if offsets is None:
            records = iter_pcap(pcap_path)
        elif offsets:
            records = iter_pcap_range(pcap_path, offsets[0], len(offsets))
        else:
            records = iter(())
        return build_from_records(
            records,
            asdb=asdb_factory() if asdb_factory else None,
            acknowledged=ack_factory() if ack_factory else None,
            validate_crypto_scans=validate_crypto_scans,
            obs=obs,
        )
    if offsets is None:
        offsets = scan_pcap_offsets(pcap_path)
    groups = _row_groups(offsets, workers)
    if len(groups) <= 1:
        return build_capture_table(
            pcap_path,
            workers=1,
            validate_crypto_scans=validate_crypto_scans,
            obs=obs,
            asdb_factory=asdb_factory,
            ack_factory=ack_factory,
            offsets=offsets,
        )
    payloads = [
        (
            pcap_path,
            offset,
            count,
            validate_crypto_scans,
            asdb_factory,
            ack_factory,
            False,
            progress_dir,
            group_index,
        )
        for group_index, (offset, count) in enumerate(groups)
    ]
    ctx = _pool_context()
    with ctx.Pool(processes=len(groups)) as pool:
        parts = pool.map(_worker_build, payloads)
    table = CaptureTable()
    for part_table, _stats, _flags in parts:
        table.extend(part_table)
    stats = _merge_stats([part_stats for _t, part_stats, _f in parts])
    emit_stats_counters(stats, obs)
    return table, stats


def build_from_shards(
    shard_paths: Sequence[str],
    validate_crypto_scans: bool = True,
    obs: Optional[Observability] = None,
    asdb_factory: Callable[[], AsDatabase] = default_asdb,
    ack_factory: Callable[[], AcknowledgedScanners] = default_acknowledged,
    progress_dir: Optional[str] = None,
) -> Tuple[CaptureTable, SanitizationStats]:
    """Index per-shard pcaps in parallel; equals indexing their merge.

    Each shard is dissected by its own worker.  Rows are then interleaved
    by k-way-merging the shard *record* streams under
    :func:`record_sort_key` — the identical discipline
    :func:`repro.netstack.pcap.merge_pcap_files` applies when ``simulate
    --workers`` merges shard captures — while per-record kept flags keep
    the row cursors aligned with the record cursors.
    """
    obs = obs or NULL_OBS
    payloads = []
    for shard_index, path in enumerate(shard_paths):
        offsets = scan_pcap_offsets(path)
        payloads.append(
            (
                path,
                offsets[0] if offsets else 0,
                len(offsets),
                validate_crypto_scans,
                asdb_factory,
                ack_factory,
                True,
                progress_dir,
                shard_index,
            )
        )
    if len(payloads) == 1:
        parts = [_worker_build(payloads[0])]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=len(payloads)) as pool:
            parts = pool.map(_worker_build, payloads)

    def shard_stream(shard_index: int):
        for record_index, record in enumerate(iter_pcap(shard_paths[shard_index])):
            yield record_sort_key(record), shard_index, record_index

    merged = heapq.merge(*(shard_stream(i) for i in range(len(shard_paths))))
    table = CaptureTable()
    row_cursors = [0] * len(shard_paths)
    for _key, shard_index, record_index in merged:
        if parts[shard_index][2][record_index]:
            table.append_row_from(parts[shard_index][0], row_cursors[shard_index])
            row_cursors[shard_index] += 1
    stats = _merge_stats([part_stats for _t, part_stats, _f in parts])
    emit_stats_counters(stats, obs)
    return table, stats
