"""Columnar storage for sanitized telescope captures.

A :class:`CaptureTable` holds one sanitized datagram per *row* in parallel
typed arrays (``array`` module — compact, picklable, serializable with a
single ``tobytes()`` per column), and one parsed long header per *packet*
entry.  Rows reference their packets through a prefix-offset array, and
variable-length packet fields (DCID/SCID/token/retry token) live as slices
of one shared byte blob — the layout the paper's "dissect once, analyze
many times" pipeline wants: dense, order-preserving, and cheap to
concatenate across row groups built by parallel workers.

Analyses never touch the arrays directly: :class:`CapturedRowView` lazily
re-materializes :class:`~repro.telescope.classify.CapturedPacket`-shaped
objects (real :class:`~repro.quic.packet.ParsedLongHeader` instances
included), so every existing `core.*` consumer sees the exact API it was
written against.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple

from repro.quic.packet import PacketType, ParsedLongHeader
from repro.telescope.classify import (
    CapturedPacket,
    ClassifiedCapture,
    PacketClass,
    SanitizationStats,
)

#: Row-level columns, in serialization order: (attribute, array typecode).
ROW_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("ts", "d"),
    ("src_ip", "I"),
    ("dst_ip", "I"),
    ("src_port", "H"),
    ("dst_port", "H"),
    ("payload_len", "I"),
    ("klass", "B"),
    ("origin_id", "I"),
)

#: Packet-level columns, in serialization order.
PACKET_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pkt_type", "B"),
    ("pkt_version", "I"),
    ("pkt_pn_offset", "I"),
    ("pkt_length", "I"),
    ("pkt_payload_length", "I"),
    ("dcid_len", "B"),
    ("scid_len", "B"),
    ("token_len", "I"),
    ("retry_token_len", "I"),
)

#: Prefix-offset columns: one more entry than their parent dimension.
OFFSET_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pkt_start", "I"),  # row -> first packet index
    ("bytes_start", "Q"),  # packet -> first blob byte
    ("sv_start", "I"),  # packet -> first supported-version entry
)

_KLASS_CODES = {PacketClass.BACKSCATTER: 0, PacketClass.SCAN: 1}
_KLASS_VALUES = (PacketClass.BACKSCATTER, PacketClass.SCAN)


class CaptureTable:
    """Sanitized capture as parallel columns; append-only."""

    __slots__ = (
        [name for name, _ in ROW_COLUMNS]
        + [name for name, _ in PACKET_COLUMNS]
        + [name for name, _ in OFFSET_COLUMNS]
        + ["sv_values", "blob", "origins", "_origin_ids"]
    )

    def __init__(self) -> None:
        for name, typecode in ROW_COLUMNS + PACKET_COLUMNS:
            setattr(self, name, array(typecode))
        for name, typecode in OFFSET_COLUMNS:
            setattr(self, name, array(typecode, [0]))
        self.sv_values = array("I")
        self.blob = bytearray()
        #: Origin string table, in first-seen order (deterministic for a
        #: fixed row order, which makes serial and parallel builds agree).
        self.origins: List[str] = []
        self._origin_ids: dict = {}

    # -- dimensions ------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.ts)

    @property
    def num_packets(self) -> int:
        return len(self.pkt_type)

    def __len__(self) -> int:
        return self.num_rows

    # -- building --------------------------------------------------------

    def _origin_index(self, origin: str) -> int:
        index = self._origin_ids.get(origin)
        if index is None:
            index = len(self.origins)
            self.origins.append(origin)
            self._origin_ids[origin] = index
        return index

    def append(self, packet: CapturedPacket) -> None:
        """Append one sanitized datagram (row + its parsed packets)."""
        self.ts.append(packet.timestamp)
        self.src_ip.append(packet.src_ip)
        self.dst_ip.append(packet.dst_ip)
        self.src_port.append(packet.src_port)
        self.dst_port.append(packet.dst_port)
        self.payload_len.append(packet.udp_payload_length)
        self.klass.append(_KLASS_CODES[packet.klass])
        self.origin_id.append(self._origin_index(packet.origin))
        for parsed in packet.packets:
            self.pkt_type.append(parsed.packet_type.value)
            self.pkt_version.append(parsed.version)
            self.pkt_pn_offset.append(parsed.pn_offset)
            self.pkt_length.append(parsed.packet_length)
            self.pkt_payload_length.append(parsed.payload_length)
            self.dcid_len.append(len(parsed.dcid))
            self.scid_len.append(len(parsed.scid))
            self.token_len.append(len(parsed.token))
            self.retry_token_len.append(len(parsed.retry_token))
            self.blob += parsed.dcid
            self.blob += parsed.scid
            self.blob += parsed.token
            self.blob += parsed.retry_token
            self.bytes_start.append(len(self.blob))
            self.sv_values.extend(parsed.supported_versions)
            self.sv_start.append(len(self.sv_values))
        self.pkt_start.append(self.num_packets)

    def extend(self, other: "CaptureTable") -> None:
        """Append all rows of ``other``, remapping its origin table.

        Concatenating row-group tables in record order reproduces exactly
        the table a serial pass would build: per-row columns concatenate,
        offsets shift by this table's totals, and the merged origin table
        is still in global first-seen order.
        """
        origin_map = [self._origin_index(name) for name in other.origins]
        for name, _ in ROW_COLUMNS:
            if name == "origin_id":
                continue
            getattr(self, name).extend(getattr(other, name))
        self.origin_id.extend(origin_map[i] for i in other.origin_id)
        packet_base = self.num_packets
        self.pkt_start.extend(packet_base + v for v in other.pkt_start[1:])
        for name, _ in PACKET_COLUMNS:
            getattr(self, name).extend(getattr(other, name))
        blob_base = self.bytes_start[-1]
        self.bytes_start.extend(blob_base + v for v in other.bytes_start[1:])
        sv_base = self.sv_start[-1]
        self.sv_start.extend(sv_base + v for v in other.sv_start[1:])
        self.sv_values.extend(other.sv_values)
        self.blob += other.blob

    def append_row_from(self, other: "CaptureTable", row: int) -> None:
        """Append row ``row`` of ``other`` (used by the k-way shard merge)."""
        self.ts.append(other.ts[row])
        self.src_ip.append(other.src_ip[row])
        self.dst_ip.append(other.dst_ip[row])
        self.src_port.append(other.src_port[row])
        self.dst_port.append(other.dst_port[row])
        self.payload_len.append(other.payload_len[row])
        self.klass.append(other.klass[row])
        self.origin_id.append(self._origin_index(other.origins[other.origin_id[row]]))
        for j in range(other.pkt_start[row], other.pkt_start[row + 1]):
            for name, _ in PACKET_COLUMNS:
                getattr(self, name).append(getattr(other, name)[j])
            self.blob += other.blob[other.bytes_start[j] : other.bytes_start[j + 1]]
            self.bytes_start.append(len(self.blob))
            self.sv_values.extend(
                other.sv_values[other.sv_start[j] : other.sv_start[j + 1]]
            )
            self.sv_start.append(len(self.sv_values))
        self.pkt_start.append(self.num_packets)

    def rebuild_origin_index(self) -> None:
        """Recompute the name→id map after deserialization."""
        self._origin_ids = {name: i for i, name in enumerate(self.origins)}

    # -- reading ---------------------------------------------------------

    def packets_of(self, row: int) -> List[ParsedLongHeader]:
        """Materialize the parsed long headers of one row."""
        out: List[ParsedLongHeader] = []
        for j in range(self.pkt_start[row], self.pkt_start[row + 1]):
            cursor = self.bytes_start[j]
            dcid_end = cursor + self.dcid_len[j]
            scid_end = dcid_end + self.scid_len[j]
            token_end = scid_end + self.token_len[j]
            retry_end = token_end + self.retry_token_len[j]
            out.append(
                ParsedLongHeader(
                    packet_type=PacketType(self.pkt_type[j]),
                    version=self.pkt_version[j],
                    dcid=bytes(self.blob[cursor:dcid_end]),
                    scid=bytes(self.blob[dcid_end:scid_end]),
                    token=bytes(self.blob[scid_end:token_end]),
                    pn_offset=self.pkt_pn_offset[j],
                    packet_length=self.pkt_length[j],
                    payload_length=self.pkt_payload_length[j],
                    supported_versions=tuple(
                        self.sv_values[self.sv_start[j] : self.sv_start[j + 1]]
                    ),
                    retry_token=bytes(self.blob[token_end:retry_end]),
                )
            )
        return out

    def row_view(self, row: int) -> "CapturedRowView":
        return CapturedRowView(self, row)

    def materialize(self, row: int) -> CapturedPacket:
        """Build a real :class:`CapturedPacket` for one row."""
        return CapturedPacket(
            timestamp=self.ts[row],
            src_ip=self.src_ip[row],
            dst_ip=self.dst_ip[row],
            src_port=self.src_port[row],
            dst_port=self.dst_port[row],
            udp_payload_length=self.payload_len[row],
            packets=self.packets_of(row),
            klass=_KLASS_VALUES[self.klass[row]],
            origin=self.origins[self.origin_id[row]],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CaptureTable):
            return NotImplemented
        if self.origins != other.origins or self.blob != other.blob:
            return False
        return all(
            getattr(self, name) == getattr(other, name)
            for name, _ in ROW_COLUMNS + PACKET_COLUMNS + OFFSET_COLUMNS
        ) and self.sv_values == other.sv_values

    __hash__ = None  # mutable container


class CapturedRowView:
    """A ``CapturedPacket``-shaped window onto one table row.

    Attribute-compatible with :class:`CapturedPacket` (including the
    ``coalesced`` / ``remote_ip`` properties), so analyses accept views
    and materialized packets interchangeably.  Parsed packet headers are
    materialized on first access and cached — session grouping touches
    ``packets`` repeatedly for the same row.
    """

    __slots__ = ("_table", "_row", "_packets")

    def __init__(self, table: CaptureTable, row: int) -> None:
        self._table = table
        self._row = row
        self._packets: Optional[List[ParsedLongHeader]] = None

    @property
    def timestamp(self) -> float:
        return self._table.ts[self._row]

    @property
    def src_ip(self) -> int:
        return self._table.src_ip[self._row]

    @property
    def dst_ip(self) -> int:
        return self._table.dst_ip[self._row]

    @property
    def src_port(self) -> int:
        return self._table.src_port[self._row]

    @property
    def dst_port(self) -> int:
        return self._table.dst_port[self._row]

    @property
    def udp_payload_length(self) -> int:
        return self._table.payload_len[self._row]

    @property
    def packets(self) -> List[ParsedLongHeader]:
        if self._packets is None:
            self._packets = self._table.packets_of(self._row)
        return self._packets

    @property
    def klass(self) -> PacketClass:
        return _KLASS_VALUES[self._table.klass[self._row]]

    @property
    def origin(self) -> str:
        return self._table.origins[self._table.origin_id[self._row]]

    @property
    def coalesced(self) -> bool:
        return self._table.pkt_start[self._row + 1] - self._table.pkt_start[self._row] > 1

    @property
    def remote_ip(self) -> int:
        return self.src_ip

    def to_packet(self) -> CapturedPacket:
        return self._table.materialize(self._row)

    def __repr__(self) -> str:
        return "CapturedRowView(row=%d, klass=%s, origin=%s)" % (
            self._row,
            self.klass.value,
            self.origin,
        )


class ClassifiedView:
    """:class:`ClassifiedCapture`-compatible facade over a CaptureTable.

    Exposes ``backscatter`` / ``scans`` / ``stats`` / ``__len__`` exactly
    like the object pipeline's output, with rows wrapped in
    :class:`CapturedRowView`; the split lists are built lazily on first
    access.
    """

    def __init__(self, table: CaptureTable, stats: SanitizationStats) -> None:
        self.table = table
        self.stats = stats
        self._backscatter: Optional[List[CapturedRowView]] = None
        self._scans: Optional[List[CapturedRowView]] = None

    def _split(self) -> None:
        backscatter: List[CapturedRowView] = []
        scans: List[CapturedRowView] = []
        klass = self.table.klass
        for row in range(self.table.num_rows):
            (backscatter if klass[row] == 0 else scans).append(
                CapturedRowView(self.table, row)
            )
        self._backscatter = backscatter
        self._scans = scans

    @property
    def backscatter(self) -> List[CapturedRowView]:
        if self._backscatter is None:
            self._split()
        return self._backscatter

    @property
    def scans(self) -> List[CapturedRowView]:
        if self._scans is None:
            self._split()
        return self._scans

    def __len__(self) -> int:
        return self.table.num_rows

    def iter_rows(self) -> Iterator[CapturedRowView]:
        for row in range(self.table.num_rows):
            yield CapturedRowView(self.table, row)

    def to_classified_capture(self) -> ClassifiedCapture:
        """Fully materialize into the legacy object representation."""
        out = ClassifiedCapture(stats=self.stats)
        for row in range(self.table.num_rows):
            packet = self.table.materialize(row)
            (
                out.backscatter
                if packet.klass is PacketClass.BACKSCATTER
                else out.scans
            ).append(packet)
        return out
