"""Columnar capture store: dissect once, analyze many times (paper §3.2).

The analysis plane of the toolchain.  ``build`` turns a pcap into a
:class:`~repro.capstore.table.CaptureTable` (streaming, optionally over a
worker pool), ``format`` persists it as a versioned ``.capidx`` sidecar,
and ``cache`` makes the whole thing transparent to ``repro
classify``/``analyze``: build on miss, validate by source fingerprint,
load columns straight from disk on hit.
"""

from repro.capstore.build import (
    build_capture_table,
    build_from_records,
    build_from_shards,
    default_acknowledged,
    default_asdb,
    emit_stats_counters,
)
from repro.capstore.cache import (
    CacheResult,
    fingerprint_matches,
    load_or_build,
    load_or_build_ex,
    pcap_fingerprint,
    prefix_fingerprint,
    prefix_matches,
    sidecar_path,
)
from repro.capstore.format import (
    MAGIC,
    SCHEMA_VERSION,
    CapIndexError,
    IndexPayload,
    dump_index,
    dumps_index,
    load_index,
    read_header,
)
from repro.capstore.table import (
    CapturedRowView,
    CaptureTable,
    ClassifiedView,
)

__all__ = [
    "CaptureTable",
    "CapturedRowView",
    "ClassifiedView",
    "build_capture_table",
    "build_from_records",
    "build_from_shards",
    "default_asdb",
    "default_acknowledged",
    "emit_stats_counters",
    "load_or_build",
    "load_or_build_ex",
    "CacheResult",
    "sidecar_path",
    "pcap_fingerprint",
    "prefix_fingerprint",
    "prefix_matches",
    "fingerprint_matches",
    "MAGIC",
    "SCHEMA_VERSION",
    "CapIndexError",
    "IndexPayload",
    "dump_index",
    "dumps_index",
    "load_index",
    "read_header",
]
