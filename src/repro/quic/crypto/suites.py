"""Packet protection suites: the RFC 9001 AEAD path and a fast stand-in.

Both suites share the protection *driver*: header-protection masking of the
first byte and packet-number field, nonce construction, and AEAD sealing of
the payload with the header as associated data.  They differ only in the
AEAD and the mask primitive:

* :class:`Rfc9001Protection` — AES-128-GCM payload protection and AES-ECB
  header protection, exactly as RFC 9001 specifies.  Verified against the
  RFC's Appendix-A vectors.
* :class:`FastProtection` — SHA-256 keystream + truncated-HMAC tag and a
  SHA-256 mask.  Structurally identical packets (same lengths, same header
  bits, same failure modes) at ~100x the speed, used for bulk simulation.

A dissector can tell which suite protected a packet only by attempting to
unprotect — the same situation a telescope faces with unknown stacks.
"""

from __future__ import annotations

import hashlib
import hmac

from repro import hotpath
from repro.quic.crypto.gcm import AesGcm, AuthenticationError
from repro.quic.crypto.initial import DirectionKeys, InitialKeys
from repro.quic.crypto.memo import cached_aes, cached_gcm, cached_initial_keys

#: RFC 9001 §5.4.2: at least 4 bytes after the packet-number offset must
#: exist before the 16-byte header-protection sample.
SAMPLE_OFFSET = 4
SAMPLE_LENGTH = 16
TAG_LENGTH = 16


class ProtectionError(ValueError):
    """Raised when a packet cannot be unprotected (not QUIC / wrong keys)."""


class PacketProtection:
    """Base driver for Initial packet protection.

    Subclasses provide ``_seal``, ``_open``, and ``_hp_mask``; the driver
    implements the byte-level header protection dance shared by all suites.
    """

    name = "abstract"

    #: Optional :class:`~repro.obs.prof.Profiler` hook (instance attr set
    #: by the owning engine when profiling).  Class-level None keeps the
    #: unprofiled hot path to a single attribute load; threading the full
    #: Observability bundle into the crypto layer would cost more than
    #: the stages being measured.
    prof = None
    prof_profile = None

    def __init__(self, version: int, client_dcid: bytes) -> None:
        self.version = version
        self.client_dcid = bytes(client_dcid)
        # Memoized per (version, DCID): scanners and retransmitting
        # clients re-present the same DCID, and dissectors re-derive the
        # same schedule the engine just used (see repro.quic.crypto.memo).
        self.keys: InitialKeys = cached_initial_keys(version, self.client_dcid)

    # -- primitives supplied by subclasses ---------------------------------
    def _seal(self, keys: DirectionKeys, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        raise NotImplementedError

    def _open(self, keys: DirectionKeys, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        raise NotImplementedError

    def _hp_mask(self, keys: DirectionKeys, sample: bytes) -> bytes:
        raise NotImplementedError

    # -- driver -------------------------------------------------------------
    def protect(
        self,
        is_server: bool,
        header: bytes,
        packet_number: int,
        payload: bytes,
    ) -> bytes:
        """Protect one packet.

        ``header`` is the complete unprotected header *including* the encoded
        packet-number field as its trailing bytes; the packet-number length is
        taken from the two low bits of the first header byte (RFC 9000 §17.2).
        Returns header-protected header || sealed payload.
        """
        keys = self.keys.for_sender(is_server)
        pn_length = (header[0] & 0x03) + 1
        pn_offset = len(header) - pn_length
        nonce = keys.nonce(packet_number)
        prof = self.prof
        if prof is None:
            sealed = self._seal(keys, nonce, payload, header)
        else:
            node, start = prof.leaf_begin("engine.aead", self.prof_profile)
            sealed = self._seal(keys, nonce, payload, header)
            prof.leaf_end(node, start, packets=1)
        packet = bytearray(header + sealed)
        sample_start = pn_offset + SAMPLE_OFFSET
        sample = bytes(packet[sample_start : sample_start + SAMPLE_LENGTH])
        if len(sample) != SAMPLE_LENGTH:
            raise ProtectionError("packet too short to sample for header protection")
        if prof is None:
            mask = self._hp_mask(keys, sample)
        else:
            node, start = prof.leaf_begin("engine.hp", self.prof_profile)
            mask = self._hp_mask(keys, sample)
            prof.leaf_end(node, start, packets=1)
        packet[0] ^= mask[0] & (0x0F if packet[0] & 0x80 else 0x1F)
        for i in range(pn_length):
            packet[pn_offset + i] ^= mask[1 + i]
        return bytes(packet)

    def unprotect(
        self,
        from_server: bool,
        packet: bytes,
        pn_offset: int,
        largest_pn: int = 0,
    ) -> tuple[bytes, int, int]:
        """Reverse :meth:`protect`.

        ``packet`` must start at the first byte of the QUIC packet and run at
        least to the end of the protected payload (a coalesced datagram tail
        is fine).  Returns ``(plaintext_payload, packet_number, pn_length)``.
        """
        keys = self.keys.for_sender(from_server)
        sample_start = pn_offset + SAMPLE_OFFSET
        sample = packet[sample_start : sample_start + SAMPLE_LENGTH]
        if len(sample) != SAMPLE_LENGTH:
            raise ProtectionError("truncated packet: no header-protection sample")
        mask = self._hp_mask(keys, sample)
        first = packet[0] ^ (mask[0] & (0x0F if packet[0] & 0x80 else 0x1F))
        pn_length = (first & 0x03) + 1
        pn_bytes = bytearray(packet[pn_offset : pn_offset + pn_length])
        for i in range(pn_length):
            pn_bytes[i] ^= mask[1 + i]
        truncated_pn = int.from_bytes(pn_bytes, "big")
        packet_number = decode_packet_number(truncated_pn, pn_length * 8, largest_pn)
        header = bytes([first]) + packet[1:pn_offset] + bytes(pn_bytes)
        sealed = packet[pn_offset + pn_length :]
        nonce = keys.nonce(packet_number)
        try:
            plaintext = self._open(keys, nonce, sealed, header)
        except AuthenticationError as exc:
            raise ProtectionError(str(exc)) from exc
        return plaintext, packet_number, pn_length


def decode_packet_number(truncated: int, bits: int, largest_pn: int) -> int:
    """Recover a full packet number from its truncated encoding (RFC 9000 A.3)."""
    expected = largest_pn + 1
    window = 1 << bits
    half = window // 2
    mask = window - 1
    candidate = (expected & ~mask) | truncated
    if candidate <= expected - half and candidate < (1 << 62) - window:
        return candidate + window
    if candidate > expected + half and candidate >= window:
        return candidate - window
    return candidate


class Rfc9001Protection(PacketProtection):
    """Real RFC 9001 Initial protection: AES-128-GCM + AES-ECB header mask."""

    name = "rfc9001"

    # AES schedules and GHASH tables are memoized process-wide (they are
    # pure functions of the 16-byte key), so two connections sharing a
    # DCID — or a dissector re-opening what the engine sealed — expand
    # each key exactly once.

    def _seal(self, keys: DirectionKeys, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        return cached_gcm(keys.key).seal(nonce, plaintext, aad)

    def _open(self, keys: DirectionKeys, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        return cached_gcm(keys.key).open(nonce, sealed, aad)

    def _hp_mask(self, keys: DirectionKeys, sample: bytes) -> bytes:
        return cached_aes(keys.hp).encrypt_block(sample)[:5]


class FastProtection(PacketProtection):
    """Keystream/HMAC stand-in suite for bulk simulation.

    Same key schedule, same packet layout, same 16-byte tag, same
    tamper-detection behaviour; only the primitives are cheaper.
    """

    name = "fast"

    @staticmethod
    def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
        # SHAKE-256 produces the whole keystream in one native call.
        return hashlib.shake_256(key + nonce).digest(length)

    @staticmethod
    def _xor(data: bytes, stream: bytes) -> bytes:
        # Whole-buffer XOR via big-int arithmetic: one C-level operation
        # instead of a per-byte generator, ~10x faster on the ~1.2 KB
        # datagrams this suite seals millions of times per simulated month.
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(len(data), "big")

    def _seal(self, keys: DirectionKeys, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        stream = self._keystream(keys.key, nonce, len(plaintext))
        ciphertext = self._xor(plaintext, stream)
        tag = hmac.new(keys.key, nonce + aad + ciphertext, hashlib.sha256).digest()
        return ciphertext + tag[:TAG_LENGTH]

    def protect(
        self,
        is_server: bool,
        header: bytes,
        packet_number: int,
        payload: bytes,
    ) -> bytes:
        """Fused seal + header protection for the template hot path.

        Byte-identical to the base driver (the parity tests and the
        bench gate hold it to that); it exists to collapse the six
        Python-level calls per packet — for_sender, _seal, _keystream,
        _xor, _hp_mask, hmac.new().digest() — into straight-line code
        with one-shot :func:`hmac.digest`.  Falls back to the driver
        when profiling (the engine.aead / engine.hp leaves live there)
        or when the hot path is disabled (the rebuild baseline must pay
        pre-refactor costs).
        """
        if self.prof is not None or not hotpath.enabled:
            return PacketProtection.protect(
                self, is_server, header, packet_number, payload
            )
        keys = self.keys.server if is_server else self.keys.client
        key = keys.key
        nonce = (keys.iv_int ^ packet_number).to_bytes(12, "big")
        stream = hashlib.shake_256(key + nonce).digest(len(payload))
        ciphertext = (
            int.from_bytes(payload, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(len(payload), "big")
        packet = bytearray(header)
        packet += ciphertext
        packet += hmac.digest(key, nonce + header + ciphertext, "sha256")[:TAG_LENGTH]
        pn_length = (header[0] & 0x03) + 1
        pn_offset = len(header) - pn_length
        sample_start = pn_offset + SAMPLE_OFFSET
        sample = bytes(packet[sample_start : sample_start + SAMPLE_LENGTH])
        if len(sample) != SAMPLE_LENGTH:
            raise ProtectionError("packet too short to sample for header protection")
        mask = hashlib.sha256(keys.hp + sample).digest()
        packet[0] ^= mask[0] & (0x0F if header[0] & 0x80 else 0x1F)
        for i in range(pn_length):
            packet[pn_offset + i] ^= mask[1 + i]
        return bytes(packet)

    def _open(self, keys: DirectionKeys, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        if len(sealed) < TAG_LENGTH:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = sealed[:-TAG_LENGTH], sealed[-TAG_LENGTH:]
        expected = hmac.new(
            keys.key, nonce + aad + ciphertext, hashlib.sha256
        ).digest()[:TAG_LENGTH]
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError("tag mismatch")
        stream = self._keystream(keys.key, nonce, len(ciphertext))
        return self._xor(ciphertext, stream)

    def _hp_mask(self, keys: DirectionKeys, sample: bytes) -> bytes:
        return hashlib.sha256(keys.hp + sample).digest()[:5]


class NullProtection(PacketProtection):
    """Zero-cost suite for bulk active-scan scenarios.

    Packets keep the exact wire layout (16-byte tag, masked header fields —
    the mask is all-zero) but no cryptography runs.  Only used where the
    experiment measures routing/enumeration, never where the sanitization
    pipeline's AEAD check matters.
    """

    name = "null"

    _ZERO_KEYS = InitialKeys(
        client=DirectionKeys(key=b"\x00" * 16, iv=b"\x00" * 12, hp=b"\x00" * 16),
        server=DirectionKeys(key=b"\x00" * 16, iv=b"\x00" * 12, hp=b"\x00" * 16),
    )

    def __init__(self, version: int, client_dcid: bytes) -> None:
        # Skip HKDF entirely: keys are never used.
        self.version = version
        self.client_dcid = bytes(client_dcid)
        self.keys = self._ZERO_KEYS

    def _seal(self, keys: DirectionKeys, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        return plaintext + b"\x00" * TAG_LENGTH

    def _open(self, keys: DirectionKeys, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        if len(sealed) < TAG_LENGTH:
            raise AuthenticationError("ciphertext shorter than tag")
        return sealed[:-TAG_LENGTH]

    def _hp_mask(self, keys: DirectionKeys, sample: bytes) -> bytes:
        return b"\x00" * 5

    # The all-zero mask leaves the header untouched, so the whole driver
    # dance collapses; overriding it removes the remaining per-packet cost.
    def protect(self, is_server, header, packet_number, payload):  # noqa: D102
        return header + payload + b"\x00" * TAG_LENGTH

    def unprotect(self, from_server, packet, pn_offset, largest_pn=0):  # noqa: D102
        pn_length = (packet[0] & 0x03) + 1
        if len(packet) < pn_offset + pn_length + TAG_LENGTH:
            raise ProtectionError("truncated packet")
        packet_number = int.from_bytes(
            packet[pn_offset : pn_offset + pn_length], "big"
        )
        return packet[pn_offset + pn_length : -TAG_LENGTH], packet_number, pn_length


#: Suites a dissector should attempt, in order, when classifying traffic.
DEFAULT_SUITES: tuple[type, ...] = (FastProtection, Rfc9001Protection)

_SUITES = {cls.name: cls for cls in (FastProtection, Rfc9001Protection, NullProtection)}


def suite_by_name(name: str) -> type:
    try:
        return _SUITES[name]
    except KeyError:
        raise KeyError("unknown protection suite %r" % name) from None
