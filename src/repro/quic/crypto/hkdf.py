"""HKDF-SHA256 (RFC 5869) and the TLS 1.3 HKDF-Expand-Label (RFC 8446 §7.1).

QUIC derives its Initial keys from the client's Destination Connection ID
through HKDF-Extract with a version-specific salt followed by
HKDF-Expand-Label with the labels "client in" / "server in" / "quic key" /
"quic iv" / "quic hp" (RFC 9001 §5).
"""

from __future__ import annotations

import hashlib
import hmac

_HASH_LEN = 32  # SHA-256


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract(salt, IKM) with SHA-256."""
    return hmac.new(salt or b"\x00" * _HASH_LEN, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand(PRK, info, L) with SHA-256."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF-Expand length too large: %d" % length)
    blocks = []
    block = b""
    counter = 1
    while len(blocks) * _HASH_LEN < length:
        block = hmac.new(
            prk, block + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(block)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf_expand_label(secret: bytes, label: str, context: bytes, length: int) -> bytes:
    """TLS 1.3 HKDF-Expand-Label: prefixes the label with "tls13 "."""
    full_label = b"tls13 " + label.encode("ascii")
    info = (
        length.to_bytes(2, "big")
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, info, length)
