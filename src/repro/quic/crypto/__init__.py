"""From-scratch cryptography for QUIC Initial packet protection.

Implements AES-128 (encrypt-only, which suffices for CTR/GCM and header
protection), AES-128-GCM, HKDF-SHA256, and the RFC 9001 Initial secret
derivation plus header/packet protection.  Verified against the RFC 9001
Appendix-A test vectors in the test suite.

Because pure-Python AES-GCM costs milliseconds per packet, the simulator
defaults to :class:`repro.quic.crypto.suites.FastProtection`, a stand-in
suite (SHA-256 keystream + truncated HMAC tag) that exercises the identical
protect/unprotect code paths at native-hash speed.  The real suite is
:class:`repro.quic.crypto.suites.Rfc9001Protection`.
"""

from repro.quic.crypto.aes import AES128
from repro.quic.crypto.gcm import AesGcm, AuthenticationError
from repro.quic.crypto.hkdf import hkdf_expand_label, hkdf_extract
from repro.quic.crypto.initial import InitialKeys, derive_initial_keys
from repro.quic.crypto.suites import (
    FastProtection,
    PacketProtection,
    Rfc9001Protection,
    ProtectionError,
)

__all__ = [
    "AES128",
    "AesGcm",
    "AuthenticationError",
    "hkdf_extract",
    "hkdf_expand_label",
    "InitialKeys",
    "derive_initial_keys",
    "PacketProtection",
    "FastProtection",
    "Rfc9001Protection",
    "ProtectionError",
]
