"""RFC 9001 §5.2 Initial secret derivation.

Initial packets are protected with keys derived solely from the client's
first Destination Connection ID and a version-specific salt.  Any observer
of the first flight — which includes a network telescope — can therefore
decrypt Initial packets; this is exactly what Wireshark's dissector does and
what our sanitization pipeline relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quic import version as quic_version
from repro.quic.crypto.hkdf import hkdf_expand_label, hkdf_extract

#: Version-specific Initial salts (RFC 9001 §5.2 and predecessors).
INITIAL_SALTS: dict[int, bytes] = {
    quic_version.QUIC_V1.value: bytes.fromhex(
        "38762cf7f55934b34d179ae6a4c80cadccbb7f0a"
    ),
    quic_version.QUIC_V2.value: bytes.fromhex(
        "0dede3def700a6db819381be6e269dcbf9bd2ed9"
    ),
    quic_version.DRAFT_29.value: bytes.fromhex(
        "afbfec289993d24c9e9786f19c6111e04390a899"
    ),
    quic_version.DRAFT_28.value: bytes.fromhex(
        "c3eef712c72ebb5a11a7d2432bb46365bef9f502"
    ),
    quic_version.DRAFT_27.value: bytes.fromhex(
        "c3eef712c72ebb5a11a7d2432bb46365bef9f502"
    ),
}


def initial_salt(version: int) -> bytes:
    """Return the Initial salt for ``version``.

    Unknown versions (including mvfst, which reuses the draft derivation)
    fall back to the draft-29 salt; this mirrors how dissectors try a small
    set of salts when classifying traffic.
    """
    if version in INITIAL_SALTS:
        return INITIAL_SALTS[version]
    if (version >> 8) == 0xFACEB0:
        return INITIAL_SALTS[quic_version.DRAFT_29.value]
    return INITIAL_SALTS[quic_version.QUIC_V1.value]


@dataclass(frozen=True)
class DirectionKeys:
    """AEAD key material for one direction of an Initial exchange."""

    key: bytes  # 16 bytes (AES-128)
    iv: bytes  # 12 bytes
    hp: bytes  # 16 bytes, header protection key

    def __post_init__(self) -> None:
        # The IV as a 96-bit integer; derived state on a frozen dataclass
        # needs object.__setattr__.  Memoized key objects are shared
        # across every packet of a connection, so the conversion happens
        # once per key instead of once per nonce.
        object.__setattr__(self, "iv_int", int.from_bytes(self.iv, "big"))

    def nonce(self, packet_number: int) -> bytes:
        """Per-packet nonce: IV XORed with the packet number (RFC 9001 §5.3).

        Bytewise XOR against the zero-extended packet number equals one
        96-bit integer XOR, which is a single C-level operation instead
        of a 12-step generator on this per-packet path.
        """
        return (self.iv_int ^ packet_number).to_bytes(12, "big")


@dataclass(frozen=True)
class InitialKeys:
    """Both directions of Initial key material for one connection."""

    client: DirectionKeys
    server: DirectionKeys

    def for_sender(self, is_server: bool) -> DirectionKeys:
        return self.server if is_server else self.client


def _derive_direction(secret: bytes) -> DirectionKeys:
    return DirectionKeys(
        key=hkdf_expand_label(secret, "quic key", b"", 16),
        iv=hkdf_expand_label(secret, "quic iv", b"", 12),
        hp=hkdf_expand_label(secret, "quic hp", b"", 16),
    )


def derive_initial_keys(version: int, client_dcid: bytes) -> InitialKeys:
    """Derive client and server Initial keys per RFC 9001 §5.2."""
    initial_secret = hkdf_extract(initial_salt(version), client_dcid)
    client_secret = hkdf_expand_label(initial_secret, "client in", b"", 32)
    server_secret = hkdf_expand_label(initial_secret, "server in", b"", 32)
    return InitialKeys(
        client=_derive_direction(client_secret),
        server=_derive_direction(server_secret),
    )
