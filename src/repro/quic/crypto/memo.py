"""Deterministic memoization of the pure crypto derivations.

BENCH_prof.json showed 15k ``engine.aead`` calls against only 579
``engine.keys`` derivations — key material is reused almost totally,
yet every connection used to re-run HKDF, re-expand AES round keys and
re-build GHASH Shoup tables from scratch.  All three derivations are
pure functions of small byte keys, so they sit behind module-level
:class:`~repro.hotpath.LruCache` instances shared by every suite
instance in the process:

* ``cached_initial_keys(version, dcid)`` — the full RFC 9001 Initial
  key schedule (HKDF-Extract + 8 Expand-Labels).
* ``cached_aes(key)`` — an :class:`AES128` with its round keys expanded
  (header protection, and the GCM block cipher).
* ``cached_gcm(key)`` — an :class:`AesGcm` with its GHASH byte tables
  built (the expensive one: 16×256 field multiplications per key).

The cached objects are safe to share: ``InitialKeys`` is frozen, and
``AES128``/``AesGcm`` carry no per-call state.  When the hot path is
disabled (:mod:`repro.hotpath`), every helper falls through to a fresh
derivation so the memo-vs-cold bench arm measures honestly.
"""

from __future__ import annotations

from repro import hotpath
from repro.hotpath import LruCache
from repro.quic.crypto.aes import AES128
from repro.quic.crypto.gcm import AesGcm
from repro.quic.crypto.initial import InitialKeys, derive_initial_keys

#: A telescope month sees a long tail of one-shot DCIDs; 4096 entries
#: comfortably covers the working set of live connections plus scanners.
_INITIAL_KEYS_CACHE = LruCache(4096)
#: Key schedules are heavier per entry (GHASH tables ≈ 4096 big ints);
#: Initial traffic derives server/client keys per DCID, so the working
#: set matches the connection cache.
_AES_CACHE = LruCache(1024)
_GCM_CACHE = LruCache(1024)


def cached_initial_keys(version: int, dcid: bytes) -> InitialKeys:
    """Memoized :func:`derive_initial_keys` per ``(version, DCID)``."""
    if not hotpath.enabled:
        return derive_initial_keys(version, dcid)
    return _INITIAL_KEYS_CACHE.get_or_build(
        (version, dcid), lambda: derive_initial_keys(version, dcid)
    )


def cached_aes(key: bytes) -> AES128:
    """Memoized AES-128 key-schedule expansion per 16-byte key."""
    if not hotpath.enabled:
        return AES128(key)
    return _AES_CACHE.get_or_build(key, lambda: AES128(key))


def cached_gcm(key: bytes) -> AesGcm:
    """Memoized AES-GCM instance (round keys + GHASH tables) per key."""
    if not hotpath.enabled:
        return AesGcm(key)
    return _GCM_CACHE.get_or_build(key, lambda: AesGcm(key))


def clear_crypto_memos() -> None:
    """Drop all cached schedules (bench cold arms, test isolation)."""
    _INITIAL_KEYS_CACHE.clear()
    _AES_CACHE.clear()
    _GCM_CACHE.clear()


def memo_stats() -> dict:
    """Hit/miss counters for the bench report."""
    return {
        "initial_keys": {
            "hits": _INITIAL_KEYS_CACHE.hits,
            "misses": _INITIAL_KEYS_CACHE.misses,
        },
        "aes": {"hits": _AES_CACHE.hits, "misses": _AES_CACHE.misses},
        "gcm": {"hits": _GCM_CACHE.hits, "misses": _GCM_CACHE.misses},
    }
