"""AES-128 block cipher, encrypt-only, implemented from first principles.

Only encryption is needed: GCM runs the cipher in counter mode for both
directions, and QUIC header protection applies the forward cipher to a
ciphertext sample.  The S-box and round constants are generated
programmatically from the GF(2^8) field definition rather than pasted as
magic tables, which keeps the construction auditable.
"""

from __future__ import annotations


def _build_sbox() -> list[int]:
    """Construct the AES S-box from multiplicative inverses in GF(2^8)."""
    # Exponentiation/log tables over GF(2^8) with generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 (generator): x * 2 xor x, with reduction 0x11b
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(b: int) -> int:
        return 0 if b == 0 else exp[255 - log[b]]

    sbox = []
    for b in range(256):
        inv = inverse(b)
        # Affine transformation over GF(2).
        s = inv
        for shift in (1, 2, 3, 4):
            s ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox.append(s ^ 0x63)
    return sbox


SBOX = _build_sbox()
assert SBOX[0x00] == 0x63 and SBOX[0x53] == 0xED, "S-box self-check failed"


def _xtime(b: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) with the AES reduction polynomial."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


_XTIME = [_xtime(b) for b in range(256)]
# mul3[b] = 3*b in GF(2^8); used by MixColumns.
_MUL3 = [_XTIME[b] ^ b for b in range(256)]

_RCON = []
_r = 1
for _ in range(10):
    _RCON.append(_r)
    _r = _xtime(_r)


class AES128:
    """AES with a 128-bit key; exposes single-block encryption."""

    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 key must be 16 bytes, got %d" % len(key))
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """Produce 11 round keys of 16 bytes each (as flat byte lists)."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (AES128.ROUNDS + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(AES128.ROUNDS + 1):
            flat: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes, got %d" % len(block))
        sbox = SBOX
        xt = _XTIME
        mul3 = _MUL3
        rk = self._round_keys
        state = [b ^ k for b, k in zip(block, rk[0])]
        for rnd in range(1, self.ROUNDS):
            # SubBytes + ShiftRows fused: state is column-major (AES order:
            # byte i lives at row i%4, column i//4; ShiftRows rotates rows).
            s = [sbox[b] for b in state]
            shifted = [
                s[0], s[5], s[10], s[15],
                s[4], s[9], s[14], s[3],
                s[8], s[13], s[2], s[7],
                s[12], s[1], s[6], s[11],
            ]
            key = rk[rnd]
            new = [0] * 16
            for c in range(4):
                a0, a1, a2, a3 = shifted[4 * c : 4 * c + 4]
                new[4 * c] = xt[a0] ^ mul3[a1] ^ a2 ^ a3 ^ key[4 * c]
                new[4 * c + 1] = a0 ^ xt[a1] ^ mul3[a2] ^ a3 ^ key[4 * c + 1]
                new[4 * c + 2] = a0 ^ a1 ^ xt[a2] ^ mul3[a3] ^ key[4 * c + 2]
                new[4 * c + 3] = mul3[a0] ^ a1 ^ a2 ^ xt[a3] ^ key[4 * c + 3]
            state = new
        # Final round: no MixColumns.
        s = [sbox[b] for b in state]
        shifted = [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]
        key = rk[self.ROUNDS]
        return bytes(b ^ k for b, k in zip(shifted, key))

    def ctr_keystream(self, nonce: bytes, length: int, initial_counter: int = 1) -> bytes:
        """Generate ``length`` bytes of CTR-mode keystream.

        GCM uses a 12-byte nonce with a 32-bit big-endian block counter
        appended, starting at 2 for the payload (counter 1 encrypts the tag).
        """
        if len(nonce) != 12:
            raise ValueError("CTR nonce must be 12 bytes")
        out = bytearray()
        counter = initial_counter
        while len(out) < length:
            block = nonce + counter.to_bytes(4, "big")
            out.extend(self.encrypt_block(block))
            counter += 1
        return bytes(out[:length])
