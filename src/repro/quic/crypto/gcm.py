"""AES-128-GCM authenticated encryption (NIST SP 800-38D), from scratch.

GHASH multiplication in GF(2^128) uses per-byte-position lookup tables built
once per key, which keeps per-block cost at 16 table lookups + XORs instead
of a 128-iteration shift-and-reduce loop.
"""

from __future__ import annotations

from repro.quic.crypto.aes import AES128


class AuthenticationError(ValueError):
    """Raised when a GCM tag fails verification."""


# The GCM reduction constant R = 0xe1 followed by 120 zero bits, as an
# integer in the big-endian block representation GCM uses.
_R = 0xE1 << 120


def _gf_mult(x: int, y: int) -> int:
    """Multiply two GF(2^128) elements in GCM's bit-reflected representation.

    Blocks are interpreted as big-endian 128-bit integers; the integer MSB is
    GCM bit 0.  Reference shift-and-reduce algorithm, used only to seed the
    lookup tables.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _mul_by_x8(v: int) -> int:
    """Multiply a field element by x^8 (one byte shift) with reduction."""
    for _ in range(8):
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return v


class _Ghash:
    """GHASH with Shoup-style byte tables for a fixed hash subkey H."""

    def __init__(self, h_bytes: bytes) -> None:
        h = int.from_bytes(h_bytes, "big")
        # tables[j][b] = (b placed at big-endian byte position j) * H.
        tables: list[list[int]] = []
        first = [_gf_mult(b << 120, h) for b in range(256)]
        tables.append(first)
        for _ in range(15):
            prev = tables[-1]
            tables.append([_mul_by_x8(v) for v in prev])
        self._tables = tables

    def digest(self, aad: bytes, ciphertext: bytes) -> bytes:
        """Compute GHASH(H, aad, ciphertext) with standard length block."""
        y = 0
        y = self._absorb(y, aad)
        y = self._absorb(y, ciphertext)
        length_block = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        y = self._mult(y ^ int.from_bytes(length_block, "big"))
        return y.to_bytes(16, "big")

    def _absorb(self, y: int, data: bytes) -> int:
        tables = self._tables
        for offset in range(0, len(data), 16):
            block = data[offset : offset + 16]
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            y ^= int.from_bytes(block, "big")
            y = self._mult_tables(y, tables)
        return y

    def _mult(self, y: int) -> int:
        return self._mult_tables(y, self._tables)

    @staticmethod
    def _mult_tables(y: int, tables: list[list[int]]) -> int:
        z = 0
        yb = y.to_bytes(16, "big")
        for j in range(16):
            z ^= tables[j][yb[j]]
        return z


class AesGcm:
    """AES-128-GCM with 12-byte nonces and 16-byte tags."""

    TAG_LENGTH = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)
        self._ghash = _Ghash(self._aes.encrypt_block(b"\x00" * 16))

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        """Encrypt and authenticate; returns ciphertext || tag."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        keystream = self._aes.ctr_keystream(nonce, len(plaintext), initial_counter=2)
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
        tag = self._tag(nonce, aad, ciphertext)
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        """Verify the tag and decrypt; raises AuthenticationError on mismatch."""
        if len(sealed) < self.TAG_LENGTH:
            raise AuthenticationError("ciphertext shorter than the GCM tag")
        ciphertext, tag = sealed[: -self.TAG_LENGTH], sealed[-self.TAG_LENGTH :]
        expected = self._tag(nonce, aad, ciphertext)
        if not _constant_time_eq(tag, expected):
            raise AuthenticationError("GCM tag mismatch")
        keystream = self._aes.ctr_keystream(nonce, len(ciphertext), initial_counter=2)
        return bytes(c ^ k for c, k in zip(ciphertext, keystream))

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = self._ghash.digest(aad, ciphertext)
        ek0 = self._aes.encrypt_block(nonce + b"\x00\x00\x00\x01")
        return bytes(g ^ e for g, e in zip(ghash, ek0))


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
