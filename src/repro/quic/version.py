"""Registry of QUIC version numbers seen in the wild.

The paper's Table 2 groups telescope traffic by the version field of the
long header: QUICv1 (0x00000001), Facebook's mvfst versions, the IETF drafts
(0xff0000xx), Google QUIC (gQUIC, ASCII 'Q0xx'), and "others".  This module
knows how to classify an arbitrary 32-bit version value into those buckets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuicVersion:
    """A known QUIC version number and its display metadata."""

    value: int
    name: str
    family: str  # one of: v1, v2, draft, mvfst, gquic, reserved, unknown

    def __int__(self) -> int:
        return self.value


#: QUIC v1 (RFC 9000).
QUIC_V1 = QuicVersion(0x00000001, "QUICv1", "v1")
#: QUIC v2 (RFC 9369).
QUIC_V2 = QuicVersion(0x6B3343CF, "QUICv2", "v2")
#: IETF draft-29, the dominant pre-v1 draft in 2021 telescope data.
DRAFT_29 = QuicVersion(0xFF00001D, "draft-29", "draft")
DRAFT_27 = QuicVersion(0xFF00001B, "draft-27", "draft")
DRAFT_28 = QuicVersion(0xFF00001C, "draft-28", "draft")
#: Facebook mvfst versions. "mvfst 2" in the paper maps to 0xfaceb002;
#: mvfst also used 0xfaceb001 and experimental 0xfaceb00e/f.
MVFST_1 = QuicVersion(0xFACEB001, "Facebook mvfst 1", "mvfst")
MVFST_2 = QuicVersion(0xFACEB002, "Facebook mvfst 2", "mvfst")
MVFST_EXP = QuicVersion(0xFACEB00E, "Facebook mvfst exp", "mvfst")
#: gQUIC Q050 / Q046 / Q043 — ASCII 'Q' '0' '5' '0' etc.
GQUIC_Q050 = QuicVersion(0x51303530, "gQUIC Q050", "gquic")
GQUIC_Q046 = QuicVersion(0x51303436, "gQUIC Q046", "gquic")
GQUIC_Q043 = QuicVersion(0x51303433, "gQUIC Q043", "gquic")

VERSIONS: dict[int, QuicVersion] = {
    v.value: v
    for v in (
        QUIC_V1,
        QUIC_V2,
        DRAFT_27,
        DRAFT_28,
        DRAFT_29,
        MVFST_1,
        MVFST_2,
        MVFST_EXP,
        GQUIC_Q050,
        GQUIC_Q046,
        GQUIC_Q043,
    )
}

#: The version value 0 marks a Version Negotiation packet (RFC 8999 §6).
VERSION_NEGOTIATION = 0x00000000


def is_reserved_version(value: int) -> bool:
    """RFC 9000 §15: versions matching 0x?a?a?a?a are reserved for greasing.

    Acknowledged research scanners deliberately offer such versions to force
    servers into version negotiation; the sanitization pipeline uses this to
    recognize enumeration scans.
    """
    return (value & 0x0F0F0F0F) == 0x0A0A0A0A


def is_gquic(value: int) -> bool:
    """True for legacy Google QUIC versions ('Q' + 3 ASCII digits)."""
    raw = value.to_bytes(4, "big")
    return raw[0:1] == b"Q" and all(0x30 <= b <= 0x39 for b in raw[1:])


def lookup(value: int) -> QuicVersion:
    """Classify ``value``, returning a catch-all entry for unknown versions."""
    if value in VERSIONS:
        return VERSIONS[value]
    if is_reserved_version(value):
        return QuicVersion(value, "reserved-0x%08x" % value, "reserved")
    if is_gquic(value):
        return QuicVersion(value, "gQUIC 0x%08x" % value, "gquic")
    if 0xFF000000 <= value <= 0xFF0000FF:
        return QuicVersion(value, "draft-%02d" % (value & 0xFF), "draft")
    if (value >> 8) == 0xFACEB0:
        return QuicVersion(value, "mvfst-0x%08x" % value, "mvfst")
    return QuicVersion(value, "unknown-0x%08x" % value, "unknown")


def table2_bucket(value: int) -> str:
    """Map a version to the row label used by the paper's Table 2."""
    version = lookup(value)
    if version.value == QUIC_V1.value:
        return "QUICv1"
    if version.family == "mvfst":
        return "Facebook mvfst 2" if version.value == MVFST_2.value else "others"
    if version.value == DRAFT_29.value:
        return "draft-29"
    return "others"
