"""QUIC wire-format substrate: varints, versions, headers, frames, CIDs, crypto.

This package implements enough of RFC 8999/9000/9001 to build, protect,
dissect, and unprotect the long-header packets that appear in Internet
background radiation: Initial, Handshake, 0-RTT, Retry, and Version
Negotiation, plus packet coalescence and the frames those packets carry.
"""

from repro.quic.varint import decode_varint, encode_varint
from repro.quic.version import QuicVersion, VERSIONS
from repro.quic.packet import (
    CoalescedDatagram,
    LongHeaderPacket,
    PacketType,
    ShortHeaderPacket,
    VersionNegotiationPacket,
    decode_datagram,
    encode_datagram,
)

__all__ = [
    "decode_varint",
    "encode_varint",
    "QuicVersion",
    "VERSIONS",
    "PacketType",
    "LongHeaderPacket",
    "ShortHeaderPacket",
    "VersionNegotiationPacket",
    "CoalescedDatagram",
    "decode_datagram",
    "encode_datagram",
]
