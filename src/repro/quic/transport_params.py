"""QUIC transport parameters (RFC 9000 §18).

Transport parameters ride inside the TLS handshake.  Active scans (the
Zirngibl et al. campaign the paper builds on) extract them to fingerprint
stacks; our active prober does the same against simulated deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buffer import BufferError_, Reader, Writer
from repro.quic.varint import encode_varint, read_varint

# Parameter IDs (RFC 9000 §18.2).
ORIGINAL_DESTINATION_CONNECTION_ID = 0x00
MAX_IDLE_TIMEOUT = 0x01
STATELESS_RESET_TOKEN = 0x02
MAX_UDP_PAYLOAD_SIZE = 0x03
INITIAL_MAX_DATA = 0x04
INITIAL_MAX_STREAM_DATA_BIDI_LOCAL = 0x05
INITIAL_MAX_STREAM_DATA_BIDI_REMOTE = 0x06
INITIAL_MAX_STREAM_DATA_UNI = 0x07
INITIAL_MAX_STREAMS_BIDI = 0x08
INITIAL_MAX_STREAMS_UNI = 0x09
ACK_DELAY_EXPONENT = 0x0A
MAX_ACK_DELAY = 0x0B
DISABLE_ACTIVE_MIGRATION = 0x0C
ACTIVE_CONNECTION_ID_LIMIT = 0x0E
INITIAL_SOURCE_CONNECTION_ID = 0x0F
RETRY_SOURCE_CONNECTION_ID = 0x10

#: Parameters whose value is a varint (vs opaque bytes or zero-length flag).
_VARINT_PARAMS = {
    MAX_IDLE_TIMEOUT,
    MAX_UDP_PAYLOAD_SIZE,
    INITIAL_MAX_DATA,
    INITIAL_MAX_STREAM_DATA_BIDI_LOCAL,
    INITIAL_MAX_STREAM_DATA_BIDI_REMOTE,
    INITIAL_MAX_STREAM_DATA_UNI,
    INITIAL_MAX_STREAMS_BIDI,
    INITIAL_MAX_STREAMS_UNI,
    ACK_DELAY_EXPONENT,
    MAX_ACK_DELAY,
    ACTIVE_CONNECTION_ID_LIMIT,
}

_NAMES = {
    ORIGINAL_DESTINATION_CONNECTION_ID: "original_destination_connection_id",
    MAX_IDLE_TIMEOUT: "max_idle_timeout",
    STATELESS_RESET_TOKEN: "stateless_reset_token",
    MAX_UDP_PAYLOAD_SIZE: "max_udp_payload_size",
    INITIAL_MAX_DATA: "initial_max_data",
    INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: "initial_max_stream_data_bidi_local",
    INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: "initial_max_stream_data_bidi_remote",
    INITIAL_MAX_STREAM_DATA_UNI: "initial_max_stream_data_uni",
    INITIAL_MAX_STREAMS_BIDI: "initial_max_streams_bidi",
    INITIAL_MAX_STREAMS_UNI: "initial_max_streams_uni",
    ACK_DELAY_EXPONENT: "ack_delay_exponent",
    MAX_ACK_DELAY: "max_ack_delay",
    DISABLE_ACTIVE_MIGRATION: "disable_active_migration",
    ACTIVE_CONNECTION_ID_LIMIT: "active_connection_id_limit",
    INITIAL_SOURCE_CONNECTION_ID: "initial_source_connection_id",
    RETRY_SOURCE_CONNECTION_ID: "retry_source_connection_id",
}


class TransportParamError(ValueError):
    """Raised on malformed transport parameter encodings."""


@dataclass
class TransportParameters:
    """An ordered mapping of parameter ID to raw or integer value."""

    values: dict[int, object] = field(default_factory=dict)

    def set(self, param_id: int, value) -> "TransportParameters":
        self.values[param_id] = value
        return self

    def get(self, param_id: int, default=None):
        return self.values.get(param_id, default)

    def named(self) -> dict[str, object]:
        """Return values keyed by human-readable names (unknown → hex id)."""
        return {
            _NAMES.get(pid, "param_0x%02x" % pid): value
            for pid, value in self.values.items()
        }

    def encode(self) -> bytes:
        writer = Writer()
        for param_id, value in self.values.items():
            writer.write(encode_varint(param_id))
            if param_id in _VARINT_PARAMS:
                if not isinstance(value, int):
                    raise TransportParamError(
                        "parameter 0x%02x expects an integer" % param_id
                    )
                encoded = encode_varint(value)
            elif param_id == DISABLE_ACTIVE_MIGRATION:
                encoded = b""
            else:
                if not isinstance(value, (bytes, bytearray)):
                    raise TransportParamError(
                        "parameter 0x%02x expects bytes" % param_id
                    )
                encoded = bytes(value)
            writer.write(encode_varint(len(encoded)))
            writer.write(encoded)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "TransportParameters":
        reader = Reader(data)
        params = cls()
        try:
            while not reader.at_end():
                param_id = read_varint(reader)
                length = read_varint(reader)
                raw = reader.read(length)
                if param_id in _VARINT_PARAMS:
                    value, consumed = _decode_varint_value(raw)
                    if consumed != len(raw):
                        raise TransportParamError(
                            "trailing bytes in varint parameter 0x%02x" % param_id
                        )
                    params.values[param_id] = value
                elif param_id == DISABLE_ACTIVE_MIGRATION:
                    if raw:
                        raise TransportParamError(
                            "disable_active_migration must be empty"
                        )
                    params.values[param_id] = True
                else:
                    params.values[param_id] = raw
        except BufferError_ as exc:
            raise TransportParamError(str(exc)) from exc
        return params


def _decode_varint_value(raw: bytes) -> tuple[int, int]:
    reader = Reader(raw)
    value = read_varint(reader)
    return value, reader.pos
