"""QUIC variable-length integer encoding (RFC 9000 §16).

The two most significant bits of the first byte select the total length of
the encoding (1, 2, 4, or 8 bytes); the remaining bits carry the value in
network byte order.
"""

from __future__ import annotations

from repro.buffer import Reader, Writer

#: Largest value representable as a QUIC varint (2^62 - 1).
VARINT_MAX = (1 << 62) - 1

_PREFIX_TO_LENGTH = {0: 1, 1: 2, 2: 4, 3: 8}


def varint_length(value: int) -> int:
    """Return the number of bytes the minimal encoding of ``value`` uses."""
    if value < 0 or value > VARINT_MAX:
        raise ValueError("varint out of range: %d" % value)
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    return 8


def encode_varint(value: int, width: int | None = None) -> bytes:
    """Encode ``value`` as a QUIC varint.

    ``width`` may force a non-minimal encoding (1, 2, 4, or 8), which RFC 9000
    permits and which real stacks use, e.g. to reserve room for the length
    field before the payload size is known.
    """
    minimal = varint_length(value)
    if width is None:
        width = minimal
    if width not in (1, 2, 4, 8):
        raise ValueError("invalid varint width %d" % width)
    if width < minimal:
        raise ValueError("value %d does not fit in %d-byte varint" % (value, width))
    prefix = {1: 0, 2: 1, 4: 2, 8: 3}[width]
    encoded = value | (prefix << (8 * width - 2))
    return encoded.to_bytes(width, "big")


def read_varint(reader: Reader) -> int:
    """Read one varint from ``reader``, advancing its cursor."""
    first = reader.peek(1)[0]
    length = _PREFIX_TO_LENGTH[first >> 6]
    raw = int.from_bytes(reader.read(length), "big")
    return raw & ((1 << (8 * length - 2)) - 1)


def decode_varint(data: bytes) -> tuple[int, int]:
    """Decode one varint from the front of ``data``.

    Returns ``(value, bytes_consumed)``.
    """
    reader = Reader(data)
    value = read_varint(reader)
    return value, reader.pos


def write_varint(writer: Writer, value: int, width: int | None = None) -> None:
    writer.write(encode_varint(value, width))
